//! Per-block access counting — the raw material of every Figure 2/3
//! analysis.
//!
//! Counting is a per-key reduction, so it splits cleanly across workers
//! by hash partition (the paper frames SieveStore-D's offline counting
//! as exactly this map-reduce shape): [`sharded_block_counts`] buckets a
//! block stream with [`sievestore_types::shard_of`] — the same partition
//! function the parallel replay engine routes work with — and
//! [`BlockCounts::merge`] recombines shard results into a table equal to
//! the single-pass one.

use std::collections::HashMap;

use sievestore_types::{shard_of, Request};

/// Access counts per block over some slice of a trace (typically one
/// calendar day, one server, or one volume).
///
/// # Examples
///
/// ```
/// use sievestore_analysis::BlockCounts;
///
/// let counts = BlockCounts::from_blocks([1u64, 1, 2].into_iter());
/// assert_eq!(counts.get(1), 2);
/// assert_eq!(counts.unique_blocks(), 2);
/// assert_eq!(counts.total_accesses(), 3);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BlockCounts {
    counts: HashMap<u64, u64>,
    total: u64,
}

impl BlockCounts {
    /// Creates an empty count table.
    pub fn new() -> Self {
        BlockCounts::default()
    }

    /// Counts each block key produced by the iterator.
    pub fn from_blocks(blocks: impl Iterator<Item = u64>) -> Self {
        let mut c = BlockCounts::new();
        for b in blocks {
            c.record(b);
        }
        c
    }

    /// Counts every 512-byte block touched by the requests.
    pub fn from_requests<'a>(requests: impl Iterator<Item = &'a Request>) -> Self {
        BlockCounts::from_blocks(requests.flat_map(|r| r.blocks().map(|b| b.raw())))
    }

    /// Records one access.
    pub fn record(&mut self, key: u64) {
        *self.counts.entry(key).or_insert(0) += 1;
        self.total += 1;
    }

    /// Access count of one block (0 if untouched).
    pub fn get(&self, key: u64) -> u64 {
        self.counts.get(&key).copied().unwrap_or(0)
    }

    /// Number of distinct blocks.
    pub fn unique_blocks(&self) -> usize {
        self.counts.len()
    }

    /// Total accesses.
    pub fn total_accesses(&self) -> u64 {
        self.total
    }

    /// Whether nothing was counted.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// All counts in descending order (the ranked popularity curve).
    pub fn sorted_desc(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.counts.values().copied().collect();
        v.sort_unstable_by(|a, b| b.cmp(a));
        v
    }

    /// `(key, count)` pairs sorted by descending count, ties by key.
    pub fn ranked(&self) -> Vec<(u64, u64)> {
        let mut v: Vec<(u64, u64)> = self.counts.iter().map(|(&k, &c)| (k, c)).collect();
        v.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// The most-accessed `fraction` of blocks and the accesses they cover.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `[0, 1]`.
    pub fn top_fraction(&self, fraction: f64) -> (Vec<u64>, u64) {
        assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0,1]");
        let n = (self.counts.len() as f64 * fraction).round() as usize;
        let mut ranked = self.ranked();
        ranked.truncate(n);
        let covered = ranked.iter().map(|&(_, c)| c).sum();
        (ranked.into_iter().map(|(k, _)| k).collect(), covered)
    }

    /// Fraction of distinct blocks whose count is at most `limit`
    /// (e.g. the paper's "99 % of blocks see 10 or fewer accesses").
    pub fn fraction_with_at_most(&self, limit: u64) -> f64 {
        if self.counts.is_empty() {
            return 0.0;
        }
        let n = self.counts.values().filter(|&&c| c <= limit).count();
        n as f64 / self.counts.len() as f64
    }

    /// Iterates over `(key, count)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts.iter().map(|(&k, &c)| (k, c))
    }

    /// Folds another count table into this one. Merging is commutative
    /// and associative (integer sums per key), so shard results combine
    /// into the same table in any order.
    pub fn merge(&mut self, other: &BlockCounts) {
        for (&k, &c) in &other.counts {
            *self.counts.entry(k).or_insert(0) += c;
        }
        self.total += other.total;
    }
}

/// Counts a block stream split across `shards` hash partitions (keyed by
/// [`shard_of`], matching the replay engine's worker routing). Shard `s`
/// of the result counts exactly the keys with `shard_of(key, shards) ==
/// s`; merging all shards with [`BlockCounts::merge`] reproduces the
/// single-pass [`BlockCounts::from_blocks`] table.
///
/// # Panics
///
/// Panics if `shards == 0`.
pub fn sharded_block_counts(blocks: impl Iterator<Item = u64>, shards: usize) -> Vec<BlockCounts> {
    assert!(shards > 0, "shard count must be nonzero");
    let mut parts = vec![BlockCounts::new(); shards];
    for b in blocks {
        parts[shard_of(b, shards)].record(b);
    }
    parts
}

impl<'a> FromIterator<&'a Request> for BlockCounts {
    fn from_iter<I: IntoIterator<Item = &'a Request>>(iter: I) -> Self {
        BlockCounts::from_requests(iter.into_iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sievestore_types::{BlockAddr, Micros, RequestKind, ServerId, VolumeId};

    #[test]
    fn counting_and_ranking() {
        let counts = BlockCounts::from_blocks([5u64, 5, 5, 3, 3, 9].into_iter());
        assert_eq!(counts.sorted_desc(), vec![3, 2, 1]);
        assert_eq!(counts.ranked(), vec![(5, 3), (3, 2), (9, 1)]);
        assert_eq!(counts.total_accesses(), 6);
        assert!(!counts.is_empty());
    }

    #[test]
    fn from_requests_counts_blocks_not_requests() {
        let req = Request::new(
            Micros::new(0),
            BlockAddr::new(ServerId::new(0), VolumeId::new(0), 8),
            4,
            RequestKind::Read,
        );
        let counts = BlockCounts::from_requests([req].iter());
        assert_eq!(counts.total_accesses(), 4);
        assert_eq!(counts.unique_blocks(), 4);
        let counts: BlockCounts = [req, req].iter().collect();
        assert_eq!(counts.total_accesses(), 8);
        assert_eq!(counts.unique_blocks(), 4);
    }

    #[test]
    fn top_fraction_and_low_reuse() {
        let mut blocks = vec![1u64; 10]; // block 1: 10 accesses
        blocks.extend(2..=100u64); // 99 one-touch blocks
        let counts = BlockCounts::from_blocks(blocks.into_iter());
        let (top, covered) = counts.top_fraction(0.01);
        assert_eq!(top, vec![1]);
        assert_eq!(covered, 10);
        assert!((counts.fraction_with_at_most(1) - 0.99).abs() < 1e-12);
        assert_eq!(counts.fraction_with_at_most(10), 1.0);
    }

    #[test]
    fn sharded_counts_merge_to_single_pass_table() {
        let blocks: Vec<u64> = (0..500u64).map(|i| i * i % 97).collect();
        let direct = BlockCounts::from_blocks(blocks.iter().copied());
        for shards in [1usize, 2, 4, 8] {
            let parts = sharded_block_counts(blocks.iter().copied(), shards);
            assert_eq!(parts.len(), shards);
            // Each shard holds only its own partition's keys.
            for (s, part) in parts.iter().enumerate() {
                for (k, _) in part.iter() {
                    assert_eq!(sievestore_types::shard_of(k, shards), s);
                }
            }
            // Merging in any order reproduces the single-pass table.
            let mut merged = BlockCounts::new();
            for part in parts.iter().rev() {
                merged.merge(part);
            }
            assert_eq!(merged, direct, "{shards} shards");
        }
    }

    #[test]
    fn merge_is_commutative() {
        let a = BlockCounts::from_blocks([1u64, 1, 2].into_iter());
        let b = BlockCounts::from_blocks([2u64, 3].into_iter());
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.get(2), 2);
        assert_eq!(ab.total_accesses(), 5);
    }

    #[test]
    fn empty_counts_are_well_behaved() {
        let counts = BlockCounts::new();
        assert!(counts.is_empty());
        assert_eq!(counts.fraction_with_at_most(5), 0.0);
        assert_eq!(counts.top_fraction(0.5), (vec![], 0));
        assert!(counts.sorted_desc().is_empty());
    }
}
