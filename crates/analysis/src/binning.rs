//! Percentile binning of the ranked popularity curve (Figure 2(a)).
//!
//! The paper sorts a day's blocks by descending popularity and groups
//! them into 10 000 equal-population bins (0.01 % of blocks each), then
//! plots each bin's mean access count against its percentile rank on
//! log-log axes. [`PopularityBins`] reproduces that reduction.

use crate::counting::BlockCounts;

/// One equal-population bin of the ranked popularity curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BinStat {
    /// Upper percentile edge of the bin (e.g. 1.0 = the top 1 %).
    pub percentile: f64,
    /// Mean access count of the bin's blocks.
    pub mean_count: f64,
    /// Maximum access count within the bin.
    pub max_count: u64,
    /// Minimum access count within the bin.
    pub min_count: u64,
}

/// The binned popularity curve of one day (or any count set).
///
/// # Examples
///
/// ```
/// use sievestore_analysis::{BlockCounts, PopularityBins};
///
/// let counts = BlockCounts::from_blocks((0..1000u64).flat_map(|b| {
///     std::iter::repeat(b).take(if b == 0 { 100 } else { 1 })
/// }));
/// let bins = PopularityBins::from_counts(&counts, 100);
/// // The first percentile bin contains the hot block.
/// assert!(bins.bins()[0].mean_count > bins.bins()[50].mean_count);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PopularityBins {
    bins: Vec<BinStat>,
}

impl PopularityBins {
    /// The paper's bin count: 10 000 bins of 0.01 % each.
    pub const PAPER_BINS: usize = 10_000;

    /// Bins the ranked counts into at most `bins` equal-population bins
    /// (fewer when there are fewer distinct blocks than bins).
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0`.
    pub fn from_counts(counts: &BlockCounts, bins: usize) -> Self {
        assert!(bins > 0, "need at least one bin");
        let sorted = counts.sorted_desc();
        Self::from_sorted_desc(&sorted, bins)
    }

    /// Bins an already-sorted (descending) count vector.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0`.
    pub fn from_sorted_desc(sorted: &[u64], bins: usize) -> Self {
        assert!(bins > 0, "need at least one bin");
        let n = sorted.len();
        if n == 0 {
            return PopularityBins { bins: Vec::new() };
        }
        let bins = bins.min(n);
        let mut out = Vec::with_capacity(bins);
        for i in 0..bins {
            let lo = i * n / bins;
            let hi = ((i + 1) * n / bins).max(lo + 1).min(n);
            let slice = &sorted[lo..hi];
            let sum: u64 = slice.iter().sum();
            out.push(BinStat {
                percentile: hi as f64 / n as f64 * 100.0,
                mean_count: sum as f64 / slice.len() as f64,
                max_count: *slice.first().expect("nonempty bin"),
                min_count: *slice.last().expect("nonempty bin"),
            });
        }
        PopularityBins { bins: out }
    }

    /// The bins, ordered from most to least popular.
    pub fn bins(&self) -> &[BinStat] {
        &self.bins
    }

    /// The bin containing the given percentile (e.g. 1.0 for the bin at
    /// the top-1 % boundary), if any blocks were counted.
    pub fn bin_at_percentile(&self, percentile: f64) -> Option<&BinStat> {
        self.bins
            .iter()
            .find(|b| b.percentile >= percentile)
            .or_else(|| self.bins.last())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn zipfish_counts() -> BlockCounts {
        // Block b gets max(1000 / (b + 1), 1) accesses, 1000 blocks.
        BlockCounts::from_blocks((0..1000u64).flat_map(|b| {
            let reps = (1000 / (b + 1)).max(1) as usize;
            std::iter::repeat_n(b, reps)
        }))
    }

    #[test]
    fn bins_are_monotonically_nonincreasing_in_mean() {
        let bins = PopularityBins::from_counts(&zipfish_counts(), 50);
        let means: Vec<f64> = bins.bins().iter().map(|b| b.mean_count).collect();
        assert!(means.windows(2).all(|w| w[0] >= w[1]), "{means:?}");
    }

    #[test]
    fn percentiles_cover_zero_to_hundred() {
        let bins = PopularityBins::from_counts(&zipfish_counts(), 10);
        assert_eq!(bins.bins().len(), 10);
        assert!((bins.bins().last().unwrap().percentile - 100.0).abs() < 1e-9);
        assert!(bins.bins()[0].percentile > 0.0);
    }

    #[test]
    fn fewer_blocks_than_bins_collapses() {
        let counts = BlockCounts::from_blocks([1u64, 2, 3].into_iter());
        let bins = PopularityBins::from_counts(&counts, 100);
        assert_eq!(bins.bins().len(), 3);
    }

    #[test]
    fn empty_counts_give_no_bins() {
        let bins = PopularityBins::from_counts(&BlockCounts::new(), 10);
        assert!(bins.bins().is_empty());
        assert!(bins.bin_at_percentile(1.0).is_none());
    }

    #[test]
    fn bin_at_percentile_lookup() {
        let bins = PopularityBins::from_counts(&zipfish_counts(), 100);
        let top1 = bins.bin_at_percentile(1.0).unwrap();
        assert!(top1.percentile >= 1.0);
        assert!(top1.mean_count > 100.0, "top bin mean {}", top1.mean_count);
        let beyond = bins.bin_at_percentile(1000.0).unwrap();
        assert!((beyond.percentile - 100.0).abs() < 1e-9);
    }

    #[test]
    fn min_max_bracket_mean() {
        let bins = PopularityBins::from_counts(&zipfish_counts(), 20);
        for b in bins.bins() {
            assert!(b.min_count as f64 <= b.mean_count);
            assert!(b.mean_count <= b.max_count as f64);
        }
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panics() {
        let _ = PopularityBins::from_counts(&BlockCounts::new(), 0);
    }
}
