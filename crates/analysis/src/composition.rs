//! Per-server composition of the ensemble hot set (Figure 3(d)) and
//! hot-set drift measures.
//!
//! Figure 3(d) plots, for each day, what fraction of the ensemble's
//! top-1 % blocks each server contributes — the day-to-day variation is
//! the paper's argument against any statically partitioned per-server
//! cache. The overlap helpers quantify hot-set drift: consecutive days
//! overlap strongly while distant days diverge (the property that makes
//! SieveStore-D's yesterday-predicts-today strategy work).

use std::collections::HashSet;

use sievestore_types::GlobalBlock;

use crate::counting::BlockCounts;

/// Per-server share of a block selection.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerShare {
    /// Server index.
    pub server: usize,
    /// Number of selected blocks owned by the server.
    pub blocks: u64,
    /// Fraction of the selection owned by the server (0–1).
    pub fraction: f64,
}

/// Splits a block selection by owning server (Figure 3(d)'s stacked bar
/// for one day).
///
/// `servers` bounds the output length; blocks from servers at or beyond
/// it are ignored.
///
/// # Examples
///
/// ```
/// use sievestore_analysis::composition_by_server;
/// use sievestore_types::{BlockAddr, GlobalBlock, ServerId, VolumeId};
///
/// let block = |s, b| GlobalBlock::pack(ServerId::new(s), VolumeId::new(0), b).raw();
/// let selection = vec![block(0, 1), block(0, 2), block(1, 3)];
/// let shares = composition_by_server(&selection, 2);
/// assert_eq!(shares[0].blocks, 2);
/// assert!((shares[1].fraction - 1.0 / 3.0).abs() < 1e-12);
/// ```
pub fn composition_by_server(selection: &[u64], servers: usize) -> Vec<ServerShare> {
    let mut counts = vec![0u64; servers];
    let mut total = 0u64;
    for &raw in selection {
        let s = GlobalBlock::from_raw(raw).server().as_usize();
        if s < servers {
            counts[s] += 1;
            total += 1;
        }
    }
    counts
        .into_iter()
        .enumerate()
        .map(|(server, blocks)| ServerShare {
            server,
            blocks,
            fraction: if total == 0 {
                0.0
            } else {
                blocks as f64 / total as f64
            },
        })
        .collect()
}

/// Containment overlap between two block sets: `|a ∩ b| / min(|a|, |b|)`.
/// 1.0 means the smaller set is fully contained; 0.0 means disjoint.
pub fn containment_overlap(a: &[u64], b: &[u64]) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let set: HashSet<u64> = a.iter().copied().collect();
    let inter = b.iter().filter(|k| set.contains(k)).count();
    inter as f64 / a.len().min(b.len()) as f64
}

/// Jaccard similarity between two block sets: `|a ∩ b| / |a ∪ b|`.
pub fn jaccard_overlap(a: &[u64], b: &[u64]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    let sa: HashSet<u64> = a.iter().copied().collect();
    let sb: HashSet<u64> = b.iter().copied().collect();
    let inter = sa.intersection(&sb).count();
    let union = sa.union(&sb).count();
    inter as f64 / union as f64
}

/// Hot-set drift over a sequence of per-day counts: for each pair of
/// consecutive days, the containment overlap of their top-`fraction`
/// selections.
pub fn consecutive_day_overlaps(days: &[BlockCounts], fraction: f64) -> Vec<f64> {
    let tops: Vec<Vec<u64>> = days.iter().map(|c| c.top_fraction(fraction).0).collect();
    tops.windows(2)
        .map(|w| containment_overlap(&w[0], &w[1]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sievestore_types::{ServerId, VolumeId};

    fn block(s: u8, b: u64) -> u64 {
        GlobalBlock::pack(ServerId::new(s), VolumeId::new(0), b).raw()
    }

    #[test]
    fn composition_counts_and_fractions() {
        let selection = vec![block(0, 1), block(2, 5), block(2, 6), block(2, 7)];
        let shares = composition_by_server(&selection, 3);
        assert_eq!(shares.len(), 3);
        assert_eq!(shares[0].blocks, 1);
        assert_eq!(shares[1].blocks, 0);
        assert_eq!(shares[2].blocks, 3);
        assert!((shares[2].fraction - 0.75).abs() < 1e-12);
        let total: f64 = shares.iter().map(|s| s.fraction).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn composition_of_empty_selection() {
        let shares = composition_by_server(&[], 2);
        assert!(shares.iter().all(|s| s.blocks == 0 && s.fraction == 0.0));
    }

    #[test]
    fn out_of_range_servers_are_ignored() {
        let selection = vec![block(5, 1), block(0, 2)];
        let shares = composition_by_server(&selection, 2);
        assert_eq!(shares[0].blocks, 1);
        assert!((shares[0].fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn overlap_measures() {
        let a = vec![1u64, 2, 3, 4];
        let b = vec![3u64, 4, 5, 6];
        assert!((containment_overlap(&a, &b) - 0.5).abs() < 1e-12);
        assert!((jaccard_overlap(&a, &b) - 2.0 / 6.0).abs() < 1e-12);
        assert_eq!(containment_overlap(&a, &[]), 0.0);
        assert_eq!(jaccard_overlap(&[], &[]), 0.0);
        assert!((containment_overlap(&a, &a) - 1.0).abs() < 1e-12);
        assert!((jaccard_overlap(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn containment_uses_smaller_set() {
        let small = vec![1u64, 2];
        let large = vec![1u64, 2, 3, 4, 5, 6, 7, 8];
        assert!((containment_overlap(&small, &large) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn consecutive_overlaps_detect_drift() {
        // Three days whose hot sets shift by half each day.
        let day = |start: u64| {
            BlockCounts::from_blocks(
                (start..start + 10)
                    .flat_map(|b| std::iter::repeat_n(b, 100))
                    .chain(1000..2000), // cold tail
            )
        };
        let days = vec![day(0), day(5), day(10)];
        let overlaps = consecutive_day_overlaps(&days, 0.01);
        assert_eq!(overlaps.len(), 2);
        for o in overlaps {
            assert!((0.3..0.8).contains(&o), "overlap {o}");
        }
    }
}
