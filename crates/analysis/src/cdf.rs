//! Cumulative popularity distributions (Figures 2(b), 2(c), 3(a)–3(c)).
//!
//! For blocks ranked by descending access count, the CDF maps a block-rank
//! percentile to the cumulative fraction of accesses absorbed by all
//! blocks at or above that rank. The knee of this curve near the 1st
//! percentile is the paper's central workload observation; comparing the
//! curves of two servers, two volumes or two days exhibits the skew
//! *variation* of observation O2.

use crate::counting::BlockCounts;

/// One sampled point of a popularity CDF.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CdfPoint {
    /// Block-rank percentile (0–100, most popular first).
    pub percentile: f64,
    /// Cumulative fraction of accesses covered (0–1).
    pub cumulative_fraction: f64,
}

/// A sampled popularity CDF.
///
/// # Examples
///
/// ```
/// use sievestore_analysis::{popularity_cdf, BlockCounts};
///
/// // One very hot block among many cold ones: the curve starts steep.
/// let counts = BlockCounts::from_blocks(
///     std::iter::repeat(0u64).take(90).chain(1..=10),
/// );
/// let cdf = popularity_cdf(&counts, 11);
/// assert!(cdf.points()[0].cumulative_fraction > 0.8);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PopularityCdf {
    points: Vec<CdfPoint>,
}

impl PopularityCdf {
    /// The sampled points, in increasing percentile order.
    pub fn points(&self) -> &[CdfPoint] {
        &self.points
    }

    /// Cumulative access fraction at a block-rank percentile (linear
    /// interpolation between samples; 0 for an empty CDF).
    pub fn fraction_at(&self, percentile: f64) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        let p = percentile.clamp(0.0, 100.0);
        let mut prev = CdfPoint {
            percentile: 0.0,
            cumulative_fraction: 0.0,
        };
        for &pt in &self.points {
            if pt.percentile >= p {
                let span = pt.percentile - prev.percentile;
                if span <= 0.0 {
                    return pt.cumulative_fraction;
                }
                let w = (p - prev.percentile) / span;
                return prev.cumulative_fraction
                    + w * (pt.cumulative_fraction - prev.cumulative_fraction);
            }
            prev = pt;
        }
        self.points.last().expect("nonempty").cumulative_fraction
    }

    /// Restricts the CDF to percentiles at or below `max_percentile`
    /// (the paper's zoomed Figure 2(c) uses the top 5 %).
    pub fn zoomed(&self, max_percentile: f64) -> PopularityCdf {
        PopularityCdf {
            points: self
                .points
                .iter()
                .copied()
                .filter(|p| p.percentile <= max_percentile)
                .collect(),
        }
    }

    /// A scalar skew summary: the cumulative fraction at the 1st
    /// percentile (higher = more skewed).
    pub fn top1_share(&self) -> f64 {
        self.fraction_at(1.0)
    }
}

/// Computes the popularity CDF sampled at `samples` evenly-spaced
/// percentile points.
///
/// # Panics
///
/// Panics if `samples == 0`.
pub fn popularity_cdf(counts: &BlockCounts, samples: usize) -> PopularityCdf {
    assert!(samples > 0, "need at least one sample");
    let sorted = counts.sorted_desc();
    if sorted.is_empty() {
        return PopularityCdf::default();
    }
    let total: u64 = counts.total_accesses();
    let n = sorted.len();
    let samples = samples.min(n);
    let mut points = Vec::with_capacity(samples);
    let mut cumulative = 0u64;
    let mut consumed = 0usize;
    for i in 0..samples {
        let upto = ((i + 1) * n / samples).max(consumed + 1).min(n);
        for &c in &sorted[consumed..upto] {
            cumulative += c;
        }
        consumed = upto;
        points.push(CdfPoint {
            percentile: upto as f64 / n as f64 * 100.0,
            cumulative_fraction: cumulative as f64 / total as f64,
        });
    }
    PopularityCdf { points }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn skewed() -> BlockCounts {
        // Block 0: 900 accesses; blocks 1..=99: 1 access each.
        BlockCounts::from_blocks(std::iter::repeat_n(0u64, 900).chain(1..=99))
    }

    fn flat() -> BlockCounts {
        BlockCounts::from_blocks((0..100u64).flat_map(|b| std::iter::repeat_n(b, 5)))
    }

    #[test]
    fn cdf_ends_at_one() {
        for counts in [skewed(), flat()] {
            let cdf = popularity_cdf(&counts, 20);
            let last = cdf.points().last().unwrap();
            assert!((last.percentile - 100.0).abs() < 1e-9);
            assert!((last.cumulative_fraction - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn cdf_is_monotone() {
        let cdf = popularity_cdf(&skewed(), 50);
        let pts = cdf.points();
        assert!(pts
            .windows(2)
            .all(|w| w[0].cumulative_fraction <= w[1].cumulative_fraction));
        assert!(pts.windows(2).all(|w| w[0].percentile < w[1].percentile));
    }

    #[test]
    fn skewed_beats_flat_at_the_top() {
        let s = popularity_cdf(&skewed(), 100);
        let f = popularity_cdf(&flat(), 100);
        assert!(s.top1_share() > 0.8, "skewed top-1% {}", s.top1_share());
        assert!(f.top1_share() < 0.05, "flat top-1% {}", f.top1_share());
    }

    #[test]
    fn interpolation_brackets_samples() {
        let cdf = popularity_cdf(&flat(), 10);
        // Flat distribution: fraction ~= percentile / 100.
        for p in [5.0, 25.0, 50.0, 95.0] {
            let f = cdf.fraction_at(p);
            assert!((f - p / 100.0).abs() < 0.06, "p={p} f={f}");
        }
        assert_eq!(cdf.fraction_at(-5.0), cdf.fraction_at(0.0));
        assert!((cdf.fraction_at(150.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zoom_restricts_domain() {
        let cdf = popularity_cdf(&skewed(), 100);
        let zoom = cdf.zoomed(5.0);
        assert!(!zoom.points().is_empty());
        assert!(zoom.points().iter().all(|p| p.percentile <= 5.0));
    }

    #[test]
    fn empty_counts_yield_empty_cdf() {
        let cdf = popularity_cdf(&BlockCounts::new(), 10);
        assert!(cdf.points().is_empty());
        assert_eq!(cdf.fraction_at(50.0), 0.0);
        assert_eq!(cdf.top1_share(), 0.0);
    }

    #[test]
    #[should_panic(expected = "sample")]
    fn zero_samples_panics() {
        let _ = popularity_cdf(&BlockCounts::new(), 0);
    }

    proptest! {
        #[test]
        fn cdf_invariants_hold_for_random_workloads(
            counts in proptest::collection::vec(1u64..50, 1..500),
            samples in 1usize..64,
        ) {
            let blocks = counts
                .iter()
                .enumerate()
                .flat_map(|(b, &c)| std::iter::repeat_n(b as u64, c as usize));
            let counts = BlockCounts::from_blocks(blocks);
            let cdf = popularity_cdf(&counts, samples);
            let pts = cdf.points();
            prop_assert!(!pts.is_empty());
            prop_assert!((pts.last().unwrap().cumulative_fraction - 1.0).abs() < 1e-9);
            prop_assert!(pts.windows(2).all(|w| w[0].cumulative_fraction <= w[1].cumulative_fraction + 1e-12));
            // fraction_at is monotone.
            let mut last = 0.0;
            for p in 0..=10 {
                let f = cdf.fraction_at(p as f64 * 10.0);
                prop_assert!(f + 1e-12 >= last);
                last = f;
            }
        }
    }
}
