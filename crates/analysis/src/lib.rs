//! Popularity-skew analytics for the SieveStore reproduction.
//!
//! These are the reductions behind the paper's workload-characterization
//! figures:
//!
//! * [`BlockCounts`] — per-block access counting over any trace slice;
//! * [`PopularityBins`] — 10 000-bin ranked access-count curve
//!   (Figure 2(a));
//! * [`popularity_cdf`] — cumulative access distributions and zooms
//!   (Figures 2(b), 2(c), 3(a)–(c));
//! * [`composition_by_server`] — per-server shares of the ensemble top-1 %
//!   (Figure 3(d)) plus hot-set overlap/drift measures;
//! * [`TextTable`] / [`write_csv`] — report formatting.
//!
//! # Examples
//!
//! ```
//! use sievestore_analysis::{popularity_cdf, BlockCounts};
//!
//! let counts = BlockCounts::from_blocks(
//!     std::iter::repeat(7u64).take(50).chain(0..50),
//! );
//! let cdf = popularity_cdf(&counts, 10);
//! // One block holds half the accesses, so the top decile covers > 50 %.
//! assert!(cdf.fraction_at(10.0) > 0.5);
//! ```

#![warn(missing_docs)]

pub mod binning;
pub mod cdf;
pub mod composition;
pub mod counting;
pub mod report;

pub use binning::{BinStat, PopularityBins};
pub use cdf::{popularity_cdf, CdfPoint, PopularityCdf};
pub use composition::{
    composition_by_server, consecutive_day_overlaps, containment_overlap, jaccard_overlap,
    ServerShare,
};
pub use counting::{sharded_block_counts, BlockCounts};
pub use report::{pct, thousands, write_csv, TextTable};
