//! Report formatting: aligned text tables for stdout and CSV series for
//! downstream plotting.

use std::fmt::Write as _;
use std::fs::{self, File};
use std::io::{BufWriter, Write};
use std::path::Path;

use sievestore_types::SieveError;

/// A simple column-aligned text table.
///
/// # Examples
///
/// ```
/// use sievestore_analysis::TextTable;
///
/// let mut table = TextTable::new(vec!["policy".into(), "hits".into()]);
/// table.push_row(vec!["AOD".into(), "123".into()]);
/// let rendered = table.render();
/// assert!(rendered.contains("policy"));
/// assert!(rendered.contains("AOD"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<String>) -> Self {
        TextTable {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the row's length differs from the header count.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns and a separator rule.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                // Left-align the first column, right-align the rest
                // (labels left, numbers right).
                if i == 0 {
                    let _ = write!(out, "{:<width$}", cell, width = widths[i]);
                } else {
                    let _ = write!(out, "{:>width$}", cell, width = widths[i]);
                }
            }
            out.push('\n');
        };
        render_row(&mut out, &self.headers);
        let rule_len = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(rule_len));
        out.push('\n');
        for row in &self.rows {
            render_row(&mut out, row);
        }
        out
    }

    /// Writes the table as CSV.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_csv(&self, path: impl AsRef<Path>) -> Result<(), SieveError> {
        write_csv(path, &self.headers, self.rows.iter().map(|r| r.as_slice()))
    }
}

/// Writes rows of string cells as CSV, creating parent directories.
/// Cells containing commas or quotes are quoted.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_csv<'a>(
    path: impl AsRef<Path>,
    headers: &[String],
    rows: impl Iterator<Item = &'a [String]>,
) -> Result<(), SieveError> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    let mut out = BufWriter::new(File::create(path)?);
    writeln!(
        out,
        "{}",
        headers
            .iter()
            .map(|h| escape(h))
            .collect::<Vec<_>>()
            .join(",")
    )?;
    for row in rows {
        writeln!(
            out,
            "{}",
            row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(",")
        )?;
    }
    out.flush()?;
    Ok(())
}

fn escape(cell: &str) -> String {
    if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_string()
    }
}

/// Formats a fraction as a percentage with one decimal ("34.5%").
pub fn pct(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

/// Formats a count with thousands separators ("1,234,567").
pub fn thousands(n: u64) -> String {
    let digits = n.to_string();
    let mut out = String::with_capacity(digits.len() + digits.len() / 3);
    for (i, ch) in digits.chars().enumerate() {
        if i > 0 && (digits.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(ch);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = TextTable::new(vec!["name".into(), "value".into()]);
        t.push_row(vec!["a".into(), "1".into()]);
        t.push_row(vec!["longer".into(), "12345".into()]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines have equal width.
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
        // Numbers right-aligned: "1" ends its line.
        assert!(lines[2].ends_with("1"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = TextTable::new(vec!["a".into()]);
        t.push_row(vec!["x".into(), "y".into()]);
    }

    #[test]
    fn csv_roundtrip_with_escaping() {
        let dir = std::env::temp_dir().join(format!("sievestore-report-{}", std::process::id()));
        let path = dir.join("t.csv");
        let mut t = TextTable::new(vec!["k".into(), "v".into()]);
        t.push_row(vec!["a,b".into(), "he said \"hi\"".into()]);
        t.write_csv(&path).unwrap();
        let text = fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("\"a,b\""));
        assert!(text.contains("\"he said \"\"hi\"\"\""));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.345), "34.5%");
        assert_eq!(pct(0.0), "0.0%");
        assert_eq!(thousands(0), "0");
        assert_eq!(thousands(999), "999");
        assert_eq!(thousands(1_000), "1,000");
        assert_eq!(thousands(1_234_567), "1,234,567");
    }
}
