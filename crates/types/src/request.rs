//! Block-level I/O requests.
//!
//! A [`Request`] mirrors one record of a block-device trace: a timestamp, a
//! starting block address, a length in 512-byte blocks, a read/write flag
//! and a measured response time. Multi-block requests are the norm (the
//! paper's ensemble averages ~11 KiB per request); the simulator expands
//! them into per-block accesses.

use std::fmt;

use crate::{BlockAddr, GlobalBlock, Micros, BLOCK_SIZE};

/// Whether a request reads or writes.
///
/// # Examples
///
/// ```
/// use sievestore_types::RequestKind;
/// assert!(RequestKind::Read.is_read());
/// assert!(!RequestKind::Write.is_read());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RequestKind {
    /// A read of one or more blocks.
    Read,
    /// A write of one or more blocks.
    Write,
}

impl RequestKind {
    /// Returns `true` for [`RequestKind::Read`].
    pub const fn is_read(self) -> bool {
        matches!(self, RequestKind::Read)
    }

    /// Returns `true` for [`RequestKind::Write`].
    pub const fn is_write(self) -> bool {
        matches!(self, RequestKind::Write)
    }

    /// Single-byte tag used by the binary trace format.
    pub const fn as_byte(self) -> u8 {
        match self {
            RequestKind::Read => b'R',
            RequestKind::Write => b'W',
        }
    }

    /// Parses the single-byte tag used by the binary trace format.
    pub const fn from_byte(byte: u8) -> Option<Self> {
        match byte {
            b'R' => Some(RequestKind::Read),
            b'W' => Some(RequestKind::Write),
            _ => None,
        }
    }
}

impl fmt::Display for RequestKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RequestKind::Read => "read",
            RequestKind::Write => "write",
        })
    }
}

/// One block-device request, as recorded below the buffer cache.
///
/// # Examples
///
/// ```
/// use sievestore_types::{BlockAddr, Micros, Request, RequestKind, ServerId, VolumeId};
///
/// let start = BlockAddr::new(ServerId::new(0), VolumeId::new(0), 64);
/// let req = Request::new(Micros::from_secs(5), start, 8, RequestKind::Write)
///     .with_response_time(Micros::new(1_200));
/// assert_eq!(req.blocks().count(), 8);
/// assert_eq!(req.completion_time(), Micros::new(5_001_200));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Request {
    /// Issue time, microseconds since trace start.
    pub timestamp: Micros,
    /// Address of the first block.
    pub start: BlockAddr,
    /// Length in 512-byte blocks (at least 1).
    pub len_blocks: u32,
    /// Read or write.
    pub kind: RequestKind,
    /// Device response time (issue to completion).
    pub response_time: Micros,
}

impl Request {
    /// Creates a request with a zero response time.
    ///
    /// # Panics
    ///
    /// Panics if `len_blocks == 0`.
    pub fn new(timestamp: Micros, start: BlockAddr, len_blocks: u32, kind: RequestKind) -> Self {
        assert!(len_blocks > 0, "request must span at least one block");
        Request {
            timestamp,
            start,
            len_blocks,
            kind,
            response_time: Micros::new(0),
        }
    }

    /// Sets the measured response time and returns the request.
    #[must_use]
    pub fn with_response_time(mut self, response_time: Micros) -> Self {
        self.response_time = response_time;
        self
    }

    /// Returns the request length in bytes.
    pub fn len_bytes(&self) -> u64 {
        self.len_blocks as u64 * BLOCK_SIZE as u64
    }

    /// Returns the completion time (`timestamp + response_time`).
    pub fn completion_time(&self) -> Micros {
        self.timestamp + self.response_time
    }

    /// Iterates over the packed keys of every block the request touches.
    pub fn blocks(&self) -> Blocks {
        Blocks {
            base: GlobalBlock::from(self.start),
            next: 0,
            len: self.len_blocks,
        }
    }

    /// Returns the completion time attributed to the `i`-th block of the
    /// request, by linear interpolation across the request's duration.
    ///
    /// The paper (§4) infers per-block completion times this way for large
    /// multi-block requests so that SieveStore-C's allocation-writes start
    /// only once the underlying data would have been fetched.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len_blocks`.
    pub fn block_completion_time(&self, i: u32) -> Micros {
        assert!(i < self.len_blocks, "block index out of request bounds");
        if self.len_blocks == 1 {
            return self.completion_time();
        }
        let total = self.response_time.as_u64();
        let frac = total * (i as u64 + 1) / self.len_blocks as u64;
        self.timestamp + Micros::new(frac)
    }

    /// Returns the number of 4 KiB pages this request occupies on a device,
    /// counting partially-covered pages in full (the paper's conservative
    /// treatment of the ~6% of requests that are not 4 KiB-aligned).
    pub fn pages(&self) -> u64 {
        let first = self.start.block;
        let last = first + self.len_blocks as u64 - 1;
        let bpp = crate::BLOCKS_PER_PAGE as u64;
        (last / bpp) - (first / bpp) + 1
    }
}

impl fmt::Display for Request {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {}+{}",
            self.timestamp, self.kind, self.start, self.len_blocks
        )
    }
}

/// Iterator over the block keys of a request, produced by [`Request::blocks`].
#[derive(Debug, Clone)]
pub struct Blocks {
    base: GlobalBlock,
    next: u32,
    len: u32,
}

impl Iterator for Blocks {
    type Item = GlobalBlock;

    fn next(&mut self) -> Option<GlobalBlock> {
        if self.next >= self.len {
            return None;
        }
        let key = GlobalBlock::from_raw(self.base.raw() + self.next as u64);
        self.next += 1;
        Some(key)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = (self.len - self.next) as usize;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for Blocks {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ServerId, VolumeId};
    use proptest::prelude::*;

    fn addr(block: u64) -> BlockAddr {
        BlockAddr::new(ServerId::new(2), VolumeId::new(1), block)
    }

    #[test]
    fn blocks_iterates_contiguous_keys() {
        let req = Request::new(Micros::new(0), addr(100), 4, RequestKind::Read);
        let blocks: Vec<u64> = req.blocks().map(|b| b.block()).collect();
        assert_eq!(blocks, vec![100, 101, 102, 103]);
        for b in req.blocks() {
            assert_eq!(b.server(), ServerId::new(2));
            assert_eq!(b.volume(), VolumeId::new(1));
        }
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn zero_length_request_is_rejected() {
        let _ = Request::new(Micros::new(0), addr(0), 0, RequestKind::Read);
    }

    #[test]
    fn page_count_aligned() {
        // 8 blocks starting at a page boundary = exactly 1 page.
        let req = Request::new(Micros::new(0), addr(16), 8, RequestKind::Read);
        assert_eq!(req.pages(), 1);
        // 16 blocks = 2 pages.
        let req = Request::new(Micros::new(0), addr(16), 16, RequestKind::Read);
        assert_eq!(req.pages(), 2);
    }

    #[test]
    fn page_count_unaligned_rounds_up() {
        // 1 block straddling nothing: still occupies a full page.
        let req = Request::new(Micros::new(0), addr(17), 1, RequestKind::Write);
        assert_eq!(req.pages(), 1);
        // 8 blocks starting mid-page straddle two pages.
        let req = Request::new(Micros::new(0), addr(20), 8, RequestKind::Write);
        assert_eq!(req.pages(), 2);
    }

    #[test]
    fn interpolated_completion_times_are_monotonic_and_bounded() {
        let req = Request::new(Micros::from_secs(10), addr(0), 5, RequestKind::Read)
            .with_response_time(Micros::new(1000));
        let mut last = Micros::new(0);
        for i in 0..5 {
            let t = req.block_completion_time(i);
            assert!(t >= req.timestamp);
            assert!(t <= req.completion_time());
            assert!(t >= last);
            last = t;
        }
        assert_eq!(req.block_completion_time(4), req.completion_time());
    }

    #[test]
    fn single_block_completion_is_request_completion() {
        let req = Request::new(Micros::from_secs(1), addr(9), 1, RequestKind::Write)
            .with_response_time(Micros::new(77));
        assert_eq!(req.block_completion_time(0), req.completion_time());
    }

    #[test]
    fn kind_byte_roundtrip() {
        for kind in [RequestKind::Read, RequestKind::Write] {
            assert_eq!(RequestKind::from_byte(kind.as_byte()), Some(kind));
        }
        assert_eq!(RequestKind::from_byte(b'x'), None);
    }

    proptest! {
        #[test]
        fn pages_matches_naive_page_set(start in 0u64..10_000, len in 1u32..600) {
            let req = Request::new(Micros::new(0), addr(start), len, RequestKind::Read);
            let mut pages = std::collections::HashSet::new();
            for b in req.blocks() {
                pages.insert(b.block() / crate::BLOCKS_PER_PAGE as u64);
            }
            prop_assert_eq!(req.pages(), pages.len() as u64);
        }

        #[test]
        fn block_iterator_length_matches(len in 1u32..1000) {
            let req = Request::new(Micros::new(0), addr(5), len, RequestKind::Write);
            prop_assert_eq!(req.blocks().len(), len as usize);
            prop_assert_eq!(req.blocks().count(), len as usize);
        }
    }
}
