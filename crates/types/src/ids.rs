//! Identity types: servers, volumes and block addresses.
//!
//! A storage ensemble is a set of servers, each exporting one or more block
//! volumes. An individual 512-byte block is addressed by
//! `(server, volume, block index)` — the [`BlockAddr`] triple — and can be
//! packed losslessly into a single `u64` key, [`GlobalBlock`], which is what
//! caches, sieves and counters use internally.

use std::fmt;

/// Identifies one server in the storage ensemble.
///
/// The paper's ensemble has 13 servers; we allow up to 256.
///
/// # Examples
///
/// ```
/// use sievestore_types::ServerId;
/// let s = ServerId::new(7);
/// assert_eq!(s.index(), 7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ServerId(u8);

impl ServerId {
    /// Creates a server id from its ensemble index.
    pub const fn new(index: u8) -> Self {
        ServerId(index)
    }

    /// Returns the ensemble index of this server.
    pub const fn index(self) -> u8 {
        self.0
    }

    /// Returns the index widened to `usize` for table lookups.
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ServerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "srv{}", self.0)
    }
}

impl From<u8> for ServerId {
    fn from(index: u8) -> Self {
        ServerId(index)
    }
}

/// Identifies one volume within a server.
///
/// The paper's servers export between 1 and 5 volumes; we allow up to 16.
///
/// # Examples
///
/// ```
/// use sievestore_types::VolumeId;
/// assert_eq!(VolumeId::new(2).index(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VolumeId(u8);

impl VolumeId {
    /// Maximum number of volumes a single server may export.
    pub const MAX_PER_SERVER: u8 = 16;

    /// Creates a volume id from its per-server index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= VolumeId::MAX_PER_SERVER`.
    pub const fn new(index: u8) -> Self {
        assert!(index < Self::MAX_PER_SERVER, "volume index out of range");
        VolumeId(index)
    }

    /// Returns the per-server index of this volume.
    pub const fn index(self) -> u8 {
        self.0
    }

    /// Returns the index widened to `usize` for table lookups.
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VolumeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vol{}", self.0)
    }
}

/// The address of one 512-byte block: `(server, volume, block index)`.
///
/// # Examples
///
/// ```
/// use sievestore_types::{BlockAddr, ServerId, VolumeId};
/// let a = BlockAddr::new(ServerId::new(1), VolumeId::new(0), 99);
/// assert_eq!(a.block, 99);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BlockAddr {
    /// Owning server.
    pub server: ServerId,
    /// Volume within the server.
    pub volume: VolumeId,
    /// Block index within the volume (512-byte units).
    pub block: u64,
}

impl BlockAddr {
    /// Number of bits reserved for the block index inside a [`GlobalBlock`].
    pub const BLOCK_BITS: u32 = 48;

    /// Largest representable block index (48-bit), i.e. volumes up to 128 PiB.
    pub const MAX_BLOCK: u64 = (1 << Self::BLOCK_BITS) - 1;

    /// Creates a block address.
    ///
    /// # Panics
    ///
    /// Panics if `block` exceeds [`BlockAddr::MAX_BLOCK`].
    pub const fn new(server: ServerId, volume: VolumeId, block: u64) -> Self {
        assert!(block <= Self::MAX_BLOCK, "block index exceeds 48 bits");
        BlockAddr {
            server,
            volume,
            block,
        }
    }

    /// Returns the address `offset` blocks past this one on the same volume.
    ///
    /// # Panics
    ///
    /// Panics if the result would exceed [`BlockAddr::MAX_BLOCK`].
    pub const fn offset(self, offset: u64) -> Self {
        BlockAddr::new(self.server, self.volume, self.block + offset)
    }
}

impl fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}/{}", self.server, self.volume, self.block)
    }
}

/// A [`BlockAddr`] packed into a single `u64`.
///
/// Layout (most-significant to least-significant):
/// 8 bits server, 8 bits volume, 48 bits block index. The packing is a
/// bijection over valid addresses, so `GlobalBlock` is usable as a hash key
/// or array index seed wherever a compact block identity is needed.
///
/// # Examples
///
/// ```
/// use sievestore_types::{BlockAddr, GlobalBlock, ServerId, VolumeId};
/// let a = BlockAddr::new(ServerId::new(12), VolumeId::new(3), 123_456);
/// let g = GlobalBlock::from(a);
/// assert_eq!(BlockAddr::from(g), a);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct GlobalBlock(u64);

impl GlobalBlock {
    /// Packs the parts of a block address into a key.
    pub const fn pack(server: ServerId, volume: VolumeId, block: u64) -> Self {
        assert!(block <= BlockAddr::MAX_BLOCK, "block index exceeds 48 bits");
        GlobalBlock(((server.index() as u64) << 56) | ((volume.index() as u64) << 48) | block)
    }

    /// Returns the raw packed key.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Reconstructs a key from its raw packed form.
    pub const fn from_raw(raw: u64) -> Self {
        GlobalBlock(raw)
    }

    /// Returns the owning server.
    pub const fn server(self) -> ServerId {
        ServerId::new((self.0 >> 56) as u8)
    }

    /// Returns the volume within the server.
    pub const fn volume(self) -> VolumeId {
        VolumeId::new(((self.0 >> 48) & 0xff) as u8)
    }

    /// Returns the block index within the volume.
    pub const fn block(self) -> u64 {
        self.0 & BlockAddr::MAX_BLOCK
    }
}

impl From<BlockAddr> for GlobalBlock {
    fn from(addr: BlockAddr) -> Self {
        GlobalBlock::pack(addr.server, addr.volume, addr.block)
    }
}

impl From<GlobalBlock> for BlockAddr {
    fn from(key: GlobalBlock) -> Self {
        BlockAddr::new(key.server(), key.volume(), key.block())
    }
}

impl fmt::Display for GlobalBlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&BlockAddr::from(*self), f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pack_unpack_roundtrip_simple() {
        let a = BlockAddr::new(ServerId::new(255), VolumeId::new(15), BlockAddr::MAX_BLOCK);
        assert_eq!(BlockAddr::from(GlobalBlock::from(a)), a);
    }

    #[test]
    fn packing_orders_by_server_then_volume_then_block() {
        let lo = GlobalBlock::pack(ServerId::new(1), VolumeId::new(5), u32::MAX as u64);
        let hi = GlobalBlock::pack(ServerId::new(2), VolumeId::new(0), 0);
        assert!(lo < hi);
        let lo = GlobalBlock::pack(ServerId::new(1), VolumeId::new(1), u32::MAX as u64);
        let hi = GlobalBlock::pack(ServerId::new(1), VolumeId::new(2), 0);
        assert!(lo < hi);
    }

    #[test]
    #[should_panic(expected = "48 bits")]
    fn oversized_block_index_is_rejected() {
        let _ = BlockAddr::new(ServerId::new(0), VolumeId::new(0), 1 << 48);
    }

    #[test]
    fn offset_advances_block_only() {
        let a = BlockAddr::new(ServerId::new(3), VolumeId::new(2), 10);
        let b = a.offset(7);
        assert_eq!(b.block, 17);
        assert_eq!(b.server, a.server);
        assert_eq!(b.volume, a.volume);
    }

    #[test]
    fn display_is_nonempty_and_structured() {
        let a = BlockAddr::new(ServerId::new(3), VolumeId::new(2), 10);
        assert_eq!(a.to_string(), "srv3/vol2/10");
        assert_eq!(GlobalBlock::from(a).to_string(), "srv3/vol2/10");
    }

    proptest! {
        #[test]
        fn pack_unpack_roundtrip(server in 0u8..=255, volume in 0u8..16, block in 0u64..=BlockAddr::MAX_BLOCK) {
            let addr = BlockAddr::new(ServerId::new(server), VolumeId::new(volume), block);
            let key = GlobalBlock::from(addr);
            prop_assert_eq!(BlockAddr::from(key), addr);
            prop_assert_eq!(key.server().index(), server);
            prop_assert_eq!(key.volume().index(), volume);
            prop_assert_eq!(key.block(), block);
        }

        #[test]
        fn packing_is_injective(a in any::<(u8, u8, u64)>(), b in any::<(u8, u8, u64)>()) {
            let norm = |(s, v, blk): (u8, u8, u64)| {
                BlockAddr::new(ServerId::new(s), VolumeId::new(v % 16), blk & BlockAddr::MAX_BLOCK)
            };
            let (x, y) = (norm(a), norm(b));
            prop_assert_eq!(x == y, GlobalBlock::from(x) == GlobalBlock::from(y));
        }
    }
}
