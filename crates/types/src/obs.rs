//! Zero-dependency observability: a lock-free metrics registry and
//! lightweight structured event tracing.
//!
//! The replay engine processes tens of millions of block accesses per
//! second, so the only affordable instrumentation is the kind that costs
//! ~nothing when it is off. This module provides exactly that:
//!
//! * a **fixed-schema [`Registry`]** of atomic counters ([`CounterId`]),
//!   gauges ([`GaugeId`]) and log-bucketed histograms ([`HistId`]) —
//!   no locks, no allocation, no registration step; every metric is an
//!   enum-indexed slot in a static array;
//! * **[`MetricsSnapshot`]** — a plain-integer copy of the registry whose
//!   [`merge`](MetricsSnapshot::merge) is commutative and associative, so
//!   per-shard snapshots combine into the same totals in any order (the
//!   same contract `DayMetrics` follows in the simulator);
//! * **structured events** ([`Event`]) delivered to a pluggable
//!   [`EventSink`] — no-op, stderr, JSONL file, or a capturing sink for
//!   tests.
//!
//! # Cost model
//!
//! Instrumented call sites go through [`count`] / [`observe`], which test
//! one `AtomicBool` with a relaxed load and branch away when runtime
//! recording is off ([`set_enabled`]). Crates additionally compile their
//! call sites behind an `obs` cargo feature (via the [`obs_count!`](crate::obs_count) and
//! [`obs_observe!`](crate::obs_observe) macros), so a default build carries no instrumentation
//! at all. The hierarchy is:
//!
//! | build                  | runtime flag | per-event cost              |
//! |------------------------|--------------|-----------------------------|
//! | default (no `obs`)     | —            | zero (code compiled out)    |
//! | `--features obs`       | disabled     | one relaxed load + branch   |
//! | `--features obs`       | enabled      | one relaxed `fetch_add`     |
//!
//! # Examples
//!
//! ```
//! use sievestore_types::obs::{self, CounterId, Registry};
//!
//! // Private registries are cheap and need no global state:
//! let reg = Registry::new();
//! reg.add(CounterId::CacheHits, 3);
//! let snap = reg.snapshot();
//! assert_eq!(snap.counter(CounterId::CacheHits), 3);
//!
//! // Snapshot merges are commutative:
//! let mut a = reg.snapshot();
//! let b = reg.snapshot();
//! a.merge(&b);
//! assert_eq!(a.counter(CounterId::CacheHits), 6);
//! # let _ = obs::enabled();
//! ```

use std::fmt;
use std::io::Write as _;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

// ---------------------------------------------------------------------------
// Metric identifiers
// ---------------------------------------------------------------------------

/// Monotonic counters tracked by a [`Registry`].
///
/// The set is a fixed schema: adding a metric means adding a variant
/// here (and to [`CounterId::ALL`]), which keeps the registry lock-free
/// and snapshot serialization deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CounterId {
    /// Block accesses routed to replay workers by the coordinator.
    ReplayEventsRouted,
    /// Batches of request groups sent over worker channels.
    ReplayBatchesSent,
    /// Processed batches returned to the coordinator's buffer pool.
    ReplayBatchesRecycled,
    /// Day boundaries crossed by the replay coordinator.
    ReplayDayBoundaries,
    /// LRU cache hits (`touch` found the key resident).
    CacheHits,
    /// LRU cache misses (`touch` missed).
    CacheMisses,
    /// LRU evictions performed by `insert`.
    CacheEvictions,
    /// Sieve decisions that rejected a miss (allocation-writes avoided).
    SieveRejections,
    /// Sieve decisions that admitted a block (allocation granted).
    SieveAdmissions,
    /// Misses that graduated past the imprecise IMCT tier.
    SieveGraduations,
    /// Read requests served by a node (any path).
    NodeReads,
    /// Write requests served by a node (any path).
    NodeWrites,
    /// Requests served in degraded pass-through mode.
    NodeDegraded,
    /// Requests answered with a `Deadline` error.
    NodeDeadlineOverruns,
    /// Circuit-breaker trips into the open (degraded) state.
    NodeBreakerTrips,
    /// Circuit-breaker recoveries back to the closed (healthy) state.
    NodeBreakerRecoveries,
    /// Client-side transient-failure retries.
    ClientRetries,
    /// Client-side transparent reconnects.
    ClientReconnects,
    /// Dirty frames left stranded by a failed shutdown-flush round.
    NodeFlushFailures,
    /// Frames restored (warm) from durable media on recovery.
    DurableRecoveredFrames,
    /// Frames quarantined for failed checksums (torn/rotted media).
    DurableQuarantinedFrames,
    /// Dirty frames whose only copy was lost to corrupt media.
    DurableLostDirtyFrames,
    /// Frames whose checksum a scrub pass verified.
    DurableScrubbedFrames,
    /// Durable-media write/sync failures observed by the cache.
    DurableMediaErrors,
    /// Records appended to the durable metadata journal.
    DurableJournalRecords,
}

impl CounterId {
    /// Every counter, in canonical (serialization) order.
    pub const ALL: [CounterId; 25] = [
        CounterId::ReplayEventsRouted,
        CounterId::ReplayBatchesSent,
        CounterId::ReplayBatchesRecycled,
        CounterId::ReplayDayBoundaries,
        CounterId::CacheHits,
        CounterId::CacheMisses,
        CounterId::CacheEvictions,
        CounterId::SieveRejections,
        CounterId::SieveAdmissions,
        CounterId::SieveGraduations,
        CounterId::NodeReads,
        CounterId::NodeWrites,
        CounterId::NodeDegraded,
        CounterId::NodeDeadlineOverruns,
        CounterId::NodeBreakerTrips,
        CounterId::NodeBreakerRecoveries,
        CounterId::ClientRetries,
        CounterId::ClientReconnects,
        CounterId::NodeFlushFailures,
        CounterId::DurableRecoveredFrames,
        CounterId::DurableQuarantinedFrames,
        CounterId::DurableLostDirtyFrames,
        CounterId::DurableScrubbedFrames,
        CounterId::DurableMediaErrors,
        CounterId::DurableJournalRecords,
    ];

    /// The counter's stable snake-case name (used in snapshots and JSON).
    pub const fn name(self) -> &'static str {
        match self {
            CounterId::ReplayEventsRouted => "replay_events_routed",
            CounterId::ReplayBatchesSent => "replay_batches_sent",
            CounterId::ReplayBatchesRecycled => "replay_batches_recycled",
            CounterId::ReplayDayBoundaries => "replay_day_boundaries",
            CounterId::CacheHits => "cache_hits",
            CounterId::CacheMisses => "cache_misses",
            CounterId::CacheEvictions => "cache_evictions",
            CounterId::SieveRejections => "sieve_rejections",
            CounterId::SieveAdmissions => "sieve_admissions",
            CounterId::SieveGraduations => "sieve_graduations",
            CounterId::NodeReads => "node_reads",
            CounterId::NodeWrites => "node_writes",
            CounterId::NodeDegraded => "node_degraded",
            CounterId::NodeDeadlineOverruns => "node_deadline_overruns",
            CounterId::NodeBreakerTrips => "node_breaker_trips",
            CounterId::NodeBreakerRecoveries => "node_breaker_recoveries",
            CounterId::ClientRetries => "client_retries",
            CounterId::ClientReconnects => "client_reconnects",
            CounterId::NodeFlushFailures => "node_flush_failures",
            CounterId::DurableRecoveredFrames => "durable_recovered_frames",
            CounterId::DurableQuarantinedFrames => "durable_quarantined_frames",
            CounterId::DurableLostDirtyFrames => "durable_lost_dirty_frames",
            CounterId::DurableScrubbedFrames => "durable_scrubbed_frames",
            CounterId::DurableMediaErrors => "durable_media_errors",
            CounterId::DurableJournalRecords => "durable_journal_records",
        }
    }

    const fn index(self) -> usize {
        self as usize
    }
}

/// Point-in-time gauges tracked by a [`Registry`].
///
/// Gauges are set (not accumulated) by their owner. In snapshot merges
/// they *sum*, which is meaningful when each contributor owns a disjoint
/// share of the quantity (per-shard resident frames, per-shard tracked
/// blocks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GaugeId {
    /// Frames currently resident in LRU caches.
    CacheResidentFrames,
    /// Blocks currently tracked precisely by MCTs.
    MctTrackedBlocks,
    /// TCP connections currently served by node servers.
    NodeLiveConnections,
    /// Requests queued on node shard-worker rings (summed over workers).
    NodeWorkerQueueDepth,
}

impl GaugeId {
    /// Every gauge, in canonical (serialization) order.
    pub const ALL: [GaugeId; 4] = [
        GaugeId::CacheResidentFrames,
        GaugeId::MctTrackedBlocks,
        GaugeId::NodeLiveConnections,
        GaugeId::NodeWorkerQueueDepth,
    ];

    /// The gauge's stable snake-case name.
    pub const fn name(self) -> &'static str {
        match self {
            GaugeId::CacheResidentFrames => "cache_resident_frames",
            GaugeId::MctTrackedBlocks => "mct_tracked_blocks",
            GaugeId::NodeLiveConnections => "node_live_connections",
            GaugeId::NodeWorkerQueueDepth => "node_worker_queue_depth",
        }
    }

    const fn index(self) -> usize {
        self as usize
    }
}

/// Log-bucketed histograms tracked by a [`Registry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HistId {
    /// Nanoseconds a replay worker waited on its input channel per recv.
    ReplayChannelWaitNanos,
    /// Nanoseconds the coordinator spent inside one day-boundary barrier.
    ReplayDayBarrierNanos,
    /// Node server read-request service time in nanoseconds.
    NodeReadNanos,
    /// Node server write-request service time in nanoseconds.
    NodeWriteNanos,
    /// Durable-store crash-recovery wall time in nanoseconds.
    DurableRecoveryNanos,
}

impl HistId {
    /// Every histogram, in canonical (serialization) order.
    pub const ALL: [HistId; 5] = [
        HistId::ReplayChannelWaitNanos,
        HistId::ReplayDayBarrierNanos,
        HistId::NodeReadNanos,
        HistId::NodeWriteNanos,
        HistId::DurableRecoveryNanos,
    ];

    /// The histogram's stable snake-case name.
    pub const fn name(self) -> &'static str {
        match self {
            HistId::ReplayChannelWaitNanos => "replay_channel_wait_ns",
            HistId::ReplayDayBarrierNanos => "replay_day_barrier_ns",
            HistId::NodeReadNanos => "node_read_ns",
            HistId::NodeWriteNanos => "node_write_ns",
            HistId::DurableRecoveryNanos => "durable_recovery_ns",
        }
    }

    const fn index(self) -> usize {
        self as usize
    }
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

/// Buckets per histogram: bucket `0` holds zero values, bucket `i > 0`
/// holds values with `i` significant bits (`2^(i-1) ..= 2^i - 1`).
pub const HIST_BUCKETS: usize = 65;

/// The bucket a value lands in (log2 bucketing, like `DayMetrics`' day
/// slots this is a pure function of the value, so merged histograms are
/// scheduling-independent).
///
/// # Examples
///
/// ```
/// use sievestore_types::obs::bucket_of;
/// assert_eq!(bucket_of(0), 0);
/// assert_eq!(bucket_of(1), 1);
/// assert_eq!(bucket_of(2), 2);
/// assert_eq!(bucket_of(3), 2);
/// assert_eq!(bucket_of(1024), 11);
/// ```
pub const fn bucket_of(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// The smallest value falling into `bucket` (inverse of [`bucket_of`]).
pub const fn bucket_floor(bucket: usize) -> u64 {
    if bucket == 0 {
        0
    } else {
        1u64 << (bucket - 1)
    }
}

/// A lock-free, mergeable, log-bucketed histogram of `u64` samples.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS],
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// A plain-integer copy of the current bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; HIST_BUCKETS];
        for (slot, bucket) in buckets.iter_mut().zip(&self.buckets) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        HistogramSnapshot { buckets }
    }

    /// Zeroes every bucket.
    pub fn reset(&self) {
        for bucket in &self.buckets {
            bucket.store(0, Ordering::Relaxed);
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// A plain-integer copy of a [`Histogram`]; merges are element-wise sums
/// (commutative and associative).
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (see [`bucket_of`] for the bucketing).
    pub buckets: [u64; HIST_BUCKETS],
}

impl HistogramSnapshot {
    /// An empty snapshot.
    pub const fn empty() -> Self {
        HistogramSnapshot {
            buckets: [0; HIST_BUCKETS],
        }
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Folds another snapshot in (element-wise sum).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += *theirs;
        }
    }

    /// A conservative (lower-bound) estimate of the `q`-quantile:
    /// the floor of the bucket where the cumulative count crosses
    /// `q * count`. Returns `None` for an empty histogram; `q` is clamped
    /// to `[0, 1]`.
    pub fn quantile_floor(&self, q: f64) -> Option<u64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(bucket_floor(i));
            }
        }
        Some(bucket_floor(HIST_BUCKETS - 1))
    }
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot::empty()
    }
}

impl fmt::Debug for HistogramSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut map = f.debug_map();
        for (i, &n) in self.buckets.iter().enumerate() {
            if n > 0 {
                map.entry(&bucket_floor(i), &n);
            }
        }
        map.finish()
    }
}

// ---------------------------------------------------------------------------
// Registry and snapshot
// ---------------------------------------------------------------------------

/// A lock-free metrics registry: one atomic slot per [`CounterId`] /
/// [`GaugeId`] / [`HistId`]. Constructible in `const` contexts, so it can
/// live in a `static` or as a cheap private instance.
#[derive(Debug)]
pub struct Registry {
    counters: [AtomicU64; CounterId::ALL.len()],
    gauges: [AtomicI64; GaugeId::ALL.len()],
    hists: [Histogram; HistId::ALL.len()],
}

impl Registry {
    /// An all-zero registry.
    pub const fn new() -> Self {
        Registry {
            counters: [const { AtomicU64::new(0) }; CounterId::ALL.len()],
            gauges: [const { AtomicI64::new(0) }; GaugeId::ALL.len()],
            hists: [const { Histogram::new() }; HistId::ALL.len()],
        }
    }

    /// Adds `n` to a counter.
    #[inline]
    pub fn add(&self, id: CounterId, n: u64) {
        self.counters[id.index()].fetch_add(n, Ordering::Relaxed);
    }

    /// Current value of a counter.
    pub fn counter(&self, id: CounterId) -> u64 {
        self.counters[id.index()].load(Ordering::Relaxed)
    }

    /// Sets a gauge to `value`.
    #[inline]
    pub fn set_gauge(&self, id: GaugeId, value: i64) {
        self.gauges[id.index()].store(value, Ordering::Relaxed);
    }

    /// Adjusts a gauge by `delta`.
    #[inline]
    pub fn adjust_gauge(&self, id: GaugeId, delta: i64) {
        self.gauges[id.index()].fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value of a gauge.
    pub fn gauge(&self, id: GaugeId) -> i64 {
        self.gauges[id.index()].load(Ordering::Relaxed)
    }

    /// Records one histogram sample.
    #[inline]
    pub fn record(&self, id: HistId, value: u64) {
        self.hists[id.index()].record(value);
    }

    /// The live histogram for `id`.
    pub fn histogram(&self, id: HistId) -> &Histogram {
        &self.hists[id.index()]
    }

    /// A plain-integer copy of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::empty();
        for id in CounterId::ALL {
            snap.counters[id.index()] = self.counter(id);
        }
        for id in GaugeId::ALL {
            snap.gauges[id.index()] = self.gauge(id);
        }
        for id in HistId::ALL {
            snap.hists[id.index()] = self.hists[id.index()].snapshot();
        }
        snap
    }

    /// Zeroes every counter, gauge and histogram.
    pub fn reset(&self) {
        for counter in &self.counters {
            counter.store(0, Ordering::Relaxed);
        }
        for gauge in &self.gauges {
            gauge.store(0, Ordering::Relaxed);
        }
        for hist in &self.hists {
            hist.reset();
        }
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

/// A plain-integer copy of a [`Registry`].
///
/// Merging sums every slot, so merges are commutative and associative:
/// per-shard snapshots combine into the same totals in any order, exactly
/// like the simulator's `DayMetrics`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    counters: [u64; CounterId::ALL.len()],
    gauges: [i64; GaugeId::ALL.len()],
    hists: [HistogramSnapshot; HistId::ALL.len()],
}

impl MetricsSnapshot {
    /// An all-zero snapshot.
    pub const fn empty() -> Self {
        MetricsSnapshot {
            counters: [0; CounterId::ALL.len()],
            gauges: [0; GaugeId::ALL.len()],
            hists: [HistogramSnapshot::empty(); HistId::ALL.len()],
        }
    }

    /// A counter's value.
    pub fn counter(&self, id: CounterId) -> u64 {
        self.counters[id.index()]
    }

    /// Sets a counter's value (snapshot assembly).
    pub fn set_counter(&mut self, id: CounterId, value: u64) {
        self.counters[id.index()] = value;
    }

    /// A gauge's value.
    pub fn gauge(&self, id: GaugeId) -> i64 {
        self.gauges[id.index()]
    }

    /// Sets a gauge's value (snapshot assembly).
    pub fn set_gauge(&mut self, id: GaugeId, value: i64) {
        self.gauges[id.index()] = value;
    }

    /// A histogram's bucket counts.
    pub fn histogram(&self, id: HistId) -> &HistogramSnapshot {
        &self.hists[id.index()]
    }

    /// Mutable access to a histogram's bucket counts (snapshot assembly).
    pub fn histogram_mut(&mut self, id: HistId) -> &mut HistogramSnapshot {
        &mut self.hists[id.index()]
    }

    /// Whether every slot is zero.
    pub fn is_empty(&self) -> bool {
        self.counters.iter().all(|&c| c == 0)
            && self.gauges.iter().all(|&g| g == 0)
            && self.hists.iter().all(|h| h.count() == 0)
    }

    /// Folds another snapshot in: counters, gauges and histogram buckets
    /// all sum element-wise. Commutative and associative.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (mine, theirs) in self.counters.iter_mut().zip(&other.counters) {
            *mine += *theirs;
        }
        for (mine, theirs) in self.gauges.iter_mut().zip(&other.gauges) {
            *mine += *theirs;
        }
        for (mine, theirs) in self.hists.iter_mut().zip(&other.hists) {
            mine.merge(theirs);
        }
    }

    /// One deterministic JSON line: integers only, fixed key order
    /// (the canonical `ALL` orders), zero-valued entries skipped. Two
    /// snapshots with equal contents serialize to identical bytes.
    pub fn to_json_line(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        let mut first = true;
        for id in CounterId::ALL {
            let v = self.counter(id);
            if v != 0 {
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str(&format!("\"{}\":{v}", id.name()));
            }
        }
        out.push_str("},\"gauges\":{");
        let mut first = true;
        for id in GaugeId::ALL {
            let v = self.gauge(id);
            if v != 0 {
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str(&format!("\"{}\":{v}", id.name()));
            }
        }
        out.push_str("},\"hists\":{");
        let mut first = true;
        for id in HistId::ALL {
            let h = self.histogram(id);
            if h.count() == 0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\"{}\":{{", id.name()));
            let mut first_bucket = true;
            for (i, &n) in h.buckets.iter().enumerate() {
                if n != 0 {
                    if !first_bucket {
                        out.push(',');
                    }
                    first_bucket = false;
                    out.push_str(&format!("\"{}\":{n}", bucket_floor(i)));
                }
            }
            out.push('}');
        }
        out.push_str("}}");
        out
    }
}

impl Default for MetricsSnapshot {
    fn default() -> Self {
        MetricsSnapshot::empty()
    }
}

// ---------------------------------------------------------------------------
// Global registry + runtime switch
// ---------------------------------------------------------------------------

static GLOBAL: Registry = Registry::new();
static ENABLED: AtomicBool = AtomicBool::new(false);

/// The process-global registry instrumented hot paths write to.
pub fn global() -> &'static Registry {
    &GLOBAL
}

/// Turns runtime metric recording on or off (off by default). With
/// recording off, every instrumented call site costs one relaxed atomic
/// load and a predictable branch.
pub fn set_enabled(enabled: bool) {
    ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether runtime metric recording is on.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Adds `n` to a global counter if recording is enabled.
#[inline]
pub fn count(id: CounterId, n: u64) {
    if enabled() {
        GLOBAL.add(id, n);
    }
}

/// Records a global histogram sample if recording is enabled.
#[inline]
pub fn observe(id: HistId, value: u64) {
    if enabled() {
        GLOBAL.record(id, value);
    }
}

/// Sets a global gauge if recording is enabled.
#[inline]
pub fn gauge_set(id: GaugeId, value: i64) {
    if enabled() {
        GLOBAL.set_gauge(id, value);
    }
}

/// Adjusts a global gauge if recording is enabled.
#[inline]
pub fn gauge_adjust(id: GaugeId, delta: i64) {
    if enabled() {
        GLOBAL.adjust_gauge(id, delta);
    }
}

// ---------------------------------------------------------------------------
// Structured events
// ---------------------------------------------------------------------------

/// One field value on a structured [`Event`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FieldValue {
    /// An unsigned integer field.
    U64(u64),
    /// A signed integer field.
    I64(i64),
    /// A short string field (state names, error classes).
    Str(&'static str),
}

impl fmt::Display for FieldValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::Str(s) => write!(f, "{s}"),
        }
    }
}

/// A structured trace event: a static name plus a handful of typed
/// fields. Events are cheap to build (fields live in a small `Vec`) and
/// only built at all when a sink is installed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Dotted event name, e.g. `"node.breaker.transition"`.
    pub name: &'static str,
    /// Key/value fields in emission order.
    pub fields: Vec<(&'static str, FieldValue)>,
}

impl Event {
    /// An event with no fields yet.
    pub fn new(name: &'static str) -> Self {
        Event {
            name,
            fields: Vec::new(),
        }
    }

    /// Appends a field (builder-style).
    #[must_use]
    pub fn with(mut self, key: &'static str, value: FieldValue) -> Self {
        self.fields.push((key, value));
        self
    }

    /// The first field with `key`, if any.
    pub fn field(&self, key: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// One deterministic JSON line (string values are static identifiers,
    /// so no escaping is needed).
    pub fn to_json_line(&self) -> String {
        let mut out = format!("{{\"event\":\"{}\"", self.name);
        for (key, value) in &self.fields {
            match value {
                FieldValue::Str(s) => out.push_str(&format!(",\"{key}\":\"{s}\"")),
                other => out.push_str(&format!(",\"{key}\":{other}")),
            }
        }
        out.push('}');
        out
    }
}

/// A destination for structured [`Event`]s.
///
/// Sinks must be cheap and non-panicking: they run inline on the
/// emitting thread (server request handlers, replay coordinator).
pub trait EventSink: Send + Sync {
    /// Delivers one event.
    fn record(&self, event: &Event);
}

/// Discards every event.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSink;

impl EventSink for NoopSink {
    fn record(&self, _event: &Event) {}
}

/// Writes one JSON line per event to stderr.
#[derive(Debug, Default, Clone, Copy)]
pub struct StderrSink;

impl EventSink for StderrSink {
    fn record(&self, event: &Event) {
        eprintln!("{}", event.to_json_line());
    }
}

/// Appends one JSON line per event to an owned writer (typically a file).
pub struct JsonlSink {
    writer: Mutex<Box<dyn std::io::Write + Send>>,
}

impl JsonlSink {
    /// A sink writing JSONL to `writer`.
    pub fn new(writer: Box<dyn std::io::Write + Send>) -> Self {
        JsonlSink {
            writer: Mutex::new(writer),
        }
    }

    /// A sink appending to the file at `path` (created if absent).
    ///
    /// # Errors
    ///
    /// Propagates the open failure.
    pub fn create(path: &std::path::Path) -> std::io::Result<Self> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(JsonlSink::new(Box::new(file)))
    }
}

impl fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JsonlSink").finish_non_exhaustive()
    }
}

impl EventSink for JsonlSink {
    fn record(&self, event: &Event) {
        if let Ok(mut writer) = self.writer.lock() {
            let _ = writeln!(writer, "{}", event.to_json_line());
        }
    }
}

/// Buffers every event in memory — the assertion surface for tests.
#[derive(Debug, Default)]
pub struct CapturingSink {
    events: Mutex<Vec<Event>>,
}

impl CapturingSink {
    /// An empty capturing sink.
    pub fn new() -> Self {
        CapturingSink::default()
    }

    /// A copy of every event captured so far.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().expect("capturing sink poisoned").clone()
    }

    /// Drains and returns the captured events.
    pub fn take(&self) -> Vec<Event> {
        std::mem::take(&mut *self.events.lock().expect("capturing sink poisoned"))
    }

    /// Captured events with the given name.
    pub fn named(&self, name: &str) -> Vec<Event> {
        self.events()
            .into_iter()
            .filter(|e| e.name == name)
            .collect()
    }
}

impl EventSink for CapturingSink {
    fn record(&self, event: &Event) {
        self.events
            .lock()
            .expect("capturing sink poisoned")
            .push(event.clone());
    }
}

static TRACING: AtomicBool = AtomicBool::new(false);
static SINK: RwLock<Option<Arc<dyn EventSink>>> = RwLock::new(None);

/// Installs the process-global event sink (replacing any previous one)
/// and turns event emission on.
pub fn set_sink(sink: Arc<dyn EventSink>) {
    *SINK.write().expect("sink lock poisoned") = Some(sink);
    TRACING.store(true, Ordering::Release);
}

/// Removes the global sink; [`emit`] becomes a cheap no-op again.
pub fn clear_sink() {
    TRACING.store(false, Ordering::Release);
    *SINK.write().expect("sink lock poisoned") = None;
}

/// Whether a global sink is installed.
#[inline]
pub fn tracing_enabled() -> bool {
    TRACING.load(Ordering::Acquire)
}

/// Delivers an event to the global sink, if one is installed. The
/// disabled path is one atomic load and a branch; callers should build
/// the [`Event`] lazily behind [`tracing_enabled`] when fields are
/// expensive.
pub fn emit(event: &Event) {
    if !tracing_enabled() {
        return;
    }
    let guard = SINK.read().expect("sink lock poisoned");
    if let Some(sink) = guard.as_ref() {
        sink.record(event);
    }
}

// ---------------------------------------------------------------------------
// Instrumentation macros
// ---------------------------------------------------------------------------
//
// These expand `cfg!(feature = "obs")` in the *invoking* crate, so each
// instrumented crate gates its own call sites behind its own `obs`
// feature while the disabled path still type-checks (the compile-out
// branch can't rot). The macros live here (and are `#[macro_export]`ed
// from the crate root) so every crate shares one spelling.

/// `true` when the invoking crate compiled with its `obs` feature *and*
/// runtime recording is enabled — the guard for instrumentation with
/// setup cost (e.g. reading a clock).
#[macro_export]
macro_rules! obs_enabled {
    () => {
        cfg!(feature = "obs") && $crate::obs::enabled()
    };
}

/// Adds `$n` to the global counter `CounterId::$id` when the invoking
/// crate's `obs` feature is on (and recording is enabled at runtime).
#[macro_export]
macro_rules! obs_count {
    ($id:ident, $n:expr) => {
        if cfg!(feature = "obs") {
            $crate::obs::count($crate::obs::CounterId::$id, $n);
        }
    };
}

/// Records `$value` in the global histogram `HistId::$id` when the
/// invoking crate's `obs` feature is on (and recording is enabled).
#[macro_export]
macro_rules! obs_observe {
    ($id:ident, $value:expr) => {
        if cfg!(feature = "obs") {
            $crate::obs::observe($crate::obs::HistId::$id, $value);
        }
    };
}

/// Sets the global gauge `GaugeId::$id` when the invoking crate's `obs`
/// feature is on (and recording is enabled).
#[macro_export]
macro_rules! obs_gauge_set {
    ($id:ident, $value:expr) => {
        if cfg!(feature = "obs") {
            $crate::obs::gauge_set($crate::obs::GaugeId::$id, $value);
        }
    };
}

/// Adjusts the global gauge `GaugeId::$id` by `$delta` when the invoking
/// crate's `obs` feature is on (and recording is enabled).
#[macro_export]
macro_rules! obs_gauge_adjust {
    ($id:ident, $delta:expr) => {
        if cfg!(feature = "obs") {
            $crate::obs::gauge_adjust($crate::obs::GaugeId::$id, $delta);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucketing_is_log2_with_zero_bucket() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        for b in 0..HIST_BUCKETS {
            let floor = bucket_floor(b);
            assert_eq!(bucket_of(floor), b, "floor of bucket {b} round-trips");
        }
    }

    #[test]
    fn histogram_records_and_snapshots() {
        let h = Histogram::new();
        for v in [0u64, 1, 2, 3, 1000, 1000] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), 6);
        assert_eq!(snap.buckets[0], 1);
        assert_eq!(snap.buckets[1], 1);
        assert_eq!(snap.buckets[2], 2);
        assert_eq!(snap.buckets[10], 2); // 1000 has 10 significant bits
        h.reset();
        assert_eq!(h.snapshot().count(), 0);
    }

    #[test]
    fn quantile_floor_is_conservative() {
        let mut snap = HistogramSnapshot::empty();
        assert_eq!(snap.quantile_floor(0.5), None);
        // 10 samples in bucket 4 (values 8..=15), 10 in bucket 8.
        snap.buckets[4] = 10;
        snap.buckets[8] = 10;
        assert_eq!(snap.quantile_floor(0.0), Some(bucket_floor(4)));
        assert_eq!(snap.quantile_floor(0.5), Some(bucket_floor(4)));
        assert_eq!(snap.quantile_floor(0.51), Some(bucket_floor(8)));
        assert_eq!(snap.quantile_floor(1.0), Some(bucket_floor(8)));
    }

    #[test]
    fn registry_counters_gauges_hists() {
        let reg = Registry::new();
        reg.add(CounterId::CacheHits, 2);
        reg.add(CounterId::CacheHits, 3);
        reg.set_gauge(GaugeId::CacheResidentFrames, 7);
        reg.adjust_gauge(GaugeId::CacheResidentFrames, -2);
        reg.record(HistId::NodeReadNanos, 100);
        assert_eq!(reg.counter(CounterId::CacheHits), 5);
        assert_eq!(reg.gauge(GaugeId::CacheResidentFrames), 5);
        let snap = reg.snapshot();
        assert_eq!(snap.counter(CounterId::CacheHits), 5);
        assert_eq!(snap.gauge(GaugeId::CacheResidentFrames), 5);
        assert_eq!(snap.histogram(HistId::NodeReadNanos).count(), 1);
        assert!(!snap.is_empty());
        reg.reset();
        assert!(reg.snapshot().is_empty());
    }

    #[test]
    fn snapshot_merge_sums_everything() {
        let reg = Registry::new();
        reg.add(CounterId::SieveRejections, 4);
        reg.set_gauge(GaugeId::MctTrackedBlocks, 3);
        reg.record(HistId::NodeWriteNanos, 9);
        let mut a = reg.snapshot();
        let b = reg.snapshot();
        a.merge(&b);
        assert_eq!(a.counter(CounterId::SieveRejections), 8);
        assert_eq!(a.gauge(GaugeId::MctTrackedBlocks), 6);
        assert_eq!(a.histogram(HistId::NodeWriteNanos).count(), 2);
    }

    #[test]
    fn json_line_is_deterministic_and_skips_zeros() {
        let mut snap = MetricsSnapshot::empty();
        assert_eq!(
            snap.to_json_line(),
            "{\"counters\":{},\"gauges\":{},\"hists\":{}}"
        );
        snap.set_counter(CounterId::CacheHits, 12);
        snap.set_gauge(GaugeId::MctTrackedBlocks, -1);
        snap.histogram_mut(HistId::NodeReadNanos).buckets[3] = 2;
        let line = snap.to_json_line();
        assert_eq!(
            line,
            "{\"counters\":{\"cache_hits\":12},\"gauges\":{\"mct_tracked_blocks\":-1},\
             \"hists\":{\"node_read_ns\":{\"4\":2}}}"
        );
        // Equal snapshots serialize to identical bytes.
        assert_eq!(line, snap.clone().to_json_line());
    }

    #[test]
    fn global_recording_respects_the_runtime_flag() {
        // The global registry is shared across tests in this binary, so
        // assert on deltas of a counter this test owns exclusively.
        let before = global().counter(CounterId::ReplayDayBoundaries);
        let was = enabled();
        set_enabled(false);
        count(CounterId::ReplayDayBoundaries, 1);
        assert_eq!(global().counter(CounterId::ReplayDayBoundaries), before);
        set_enabled(true);
        count(CounterId::ReplayDayBoundaries, 2);
        assert_eq!(global().counter(CounterId::ReplayDayBoundaries), before + 2);
        set_enabled(was);
    }

    #[test]
    fn events_serialize_and_capture() {
        let event = Event::new("node.breaker.transition")
            .with("from", FieldValue::Str("healthy"))
            .with("to", FieldValue::Str("degraded"))
            .with("failures", FieldValue::U64(3));
        assert_eq!(
            event.to_json_line(),
            "{\"event\":\"node.breaker.transition\",\"from\":\"healthy\",\
             \"to\":\"degraded\",\"failures\":3}"
        );
        assert_eq!(event.field("to"), Some(&FieldValue::Str("degraded")));
        let sink = CapturingSink::new();
        sink.record(&event);
        sink.record(&Event::new("other"));
        assert_eq!(sink.events().len(), 2);
        assert_eq!(sink.named("node.breaker.transition").len(), 1);
        assert_eq!(sink.take().len(), 2);
        assert!(sink.events().is_empty());
    }

    #[test]
    fn jsonl_sink_writes_lines() {
        let buf: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl std::io::Write for Shared {
            fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(data);
                Ok(data.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let sink = JsonlSink::new(Box::new(Shared(buf.clone())));
        sink.record(&Event::new("a").with("x", FieldValue::I64(-4)));
        sink.record(&Event::new("b"));
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        assert_eq!(text, "{\"event\":\"a\",\"x\":-4}\n{\"event\":\"b\"}\n");
    }
}
