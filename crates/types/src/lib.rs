//! Shared vocabulary for the SieveStore reproduction.
//!
//! This crate defines the small, copyable value types every other crate in
//! the workspace speaks: block addresses ([`BlockAddr`], [`GlobalBlock`]),
//! server/volume identity ([`ServerId`], [`VolumeId`]), block-level I/O
//! requests ([`Request`], [`RequestKind`]) and time units ([`Micros`],
//! [`Minute`], [`Day`]).
//!
//! SieveStore (ISCA 2010) counts storage accesses at 512-byte block
//! granularity and accounts for SSD device occupancy at 4 KiB page
//! granularity; the corresponding constants live here
//! ([`BLOCK_SIZE`], [`PAGE_SIZE`], [`BLOCKS_PER_PAGE`]).
//!
//! # Examples
//!
//! ```
//! use sievestore_types::{BlockAddr, GlobalBlock, Micros, Request, RequestKind, ServerId, VolumeId};
//!
//! let addr = BlockAddr::new(ServerId::new(3), VolumeId::new(1), 4096);
//! let packed = GlobalBlock::from(addr);
//! assert_eq!(BlockAddr::from(packed), addr);
//!
//! let req = Request::new(Micros::new(1_000_000), addr, 8, RequestKind::Read)
//!     .with_response_time(Micros::new(900));
//! assert_eq!(req.len_bytes(), 8 * sievestore_types::BLOCK_SIZE as u64);
//! ```

#![warn(missing_docs)]

pub mod error;
pub mod ids;
pub mod request;
pub mod time;

pub use error::{ErrorClass, NodeError, ParseRequestError, SieveError};
pub use ids::{BlockAddr, GlobalBlock, ServerId, VolumeId};
pub use request::{Request, RequestKind};
pub use time::{Day, Micros, Minute};

/// Size of one storage block in bytes (the trace accounting granularity).
pub const BLOCK_SIZE: usize = 512;

/// Size of one SSD page in bytes (the device IOPS accounting granularity).
pub const PAGE_SIZE: usize = 4096;

/// Number of 512-byte blocks per 4 KiB SSD page.
pub const BLOCKS_PER_PAGE: usize = PAGE_SIZE / BLOCK_SIZE;

/// Number of bytes in one gibibyte, used for capacity conversions.
pub const GIB: u64 = 1 << 30;

/// Converts a capacity in gibibytes to a frame count of 512-byte blocks.
///
/// # Examples
///
/// ```
/// assert_eq!(sievestore_types::gib_to_blocks(16), 33_554_432);
/// ```
pub const fn gib_to_blocks(gib: u64) -> u64 {
    gib * GIB / BLOCK_SIZE as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_page_constants_are_consistent() {
        assert_eq!(BLOCKS_PER_PAGE, 8);
        assert_eq!(PAGE_SIZE % BLOCK_SIZE, 0);
    }

    #[test]
    fn gib_conversion_matches_hand_computation() {
        // 1 GiB = 2^30 bytes = 2^21 blocks of 512 bytes.
        assert_eq!(gib_to_blocks(1), 1 << 21);
        assert_eq!(gib_to_blocks(32), 32 << 21);
    }
}
