//! Shared vocabulary for the SieveStore reproduction.
//!
//! This crate defines the small, copyable value types every other crate in
//! the workspace speaks: block addresses ([`BlockAddr`], [`GlobalBlock`]),
//! server/volume identity ([`ServerId`], [`VolumeId`]), block-level I/O
//! requests ([`Request`], [`RequestKind`]) and time units ([`Micros`],
//! [`Minute`], [`Day`]).
//!
//! SieveStore (ISCA 2010) counts storage accesses at 512-byte block
//! granularity and accounts for SSD device occupancy at 4 KiB page
//! granularity; the corresponding constants live here
//! ([`BLOCK_SIZE`], [`PAGE_SIZE`], [`BLOCKS_PER_PAGE`]).
//!
//! # Examples
//!
//! ```
//! use sievestore_types::{BlockAddr, GlobalBlock, Micros, Request, RequestKind, ServerId, VolumeId};
//!
//! let addr = BlockAddr::new(ServerId::new(3), VolumeId::new(1), 4096);
//! let packed = GlobalBlock::from(addr);
//! assert_eq!(BlockAddr::from(packed), addr);
//!
//! let req = Request::new(Micros::new(1_000_000), addr, 8, RequestKind::Read)
//!     .with_response_time(Micros::new(900));
//! assert_eq!(req.len_bytes(), 8 * sievestore_types::BLOCK_SIZE as u64);
//! ```

#![warn(missing_docs)]

pub mod error;
pub mod fastmap;
pub mod ids;
pub mod obs;
pub mod proc;
pub mod request;
pub mod time;

pub use error::{DurableError, ErrorClass, NodeError, ParseRequestError, SieveError};
pub use fastmap::{U64Map, U64Set};
pub use ids::{BlockAddr, GlobalBlock, ServerId, VolumeId};
pub use proc::peak_rss_bytes;
pub use request::{Request, RequestKind};
pub use time::{Day, Micros, Minute};

/// Size of one storage block in bytes (the trace accounting granularity).
pub const BLOCK_SIZE: usize = 512;

/// Size of one SSD page in bytes (the device IOPS accounting granularity).
pub const PAGE_SIZE: usize = 4096;

/// Number of 512-byte blocks per 4 KiB SSD page.
pub const BLOCKS_PER_PAGE: usize = PAGE_SIZE / BLOCK_SIZE;

/// Number of bytes in one gibibyte, used for capacity conversions.
pub const GIB: u64 = 1 << 30;

/// Converts a capacity in gibibytes to a frame count of 512-byte blocks.
///
/// # Examples
///
/// ```
/// assert_eq!(sievestore_types::gib_to_blocks(16), 33_554_432);
/// ```
pub const fn gib_to_blocks(gib: u64) -> u64 {
    gib * GIB / BLOCK_SIZE as u64
}

/// The SplitMix64 finalizer — the canonical block-key hash of the
/// workspace.
///
/// Every consumer that buckets block keys (the sieve's IMCT slots, the
/// analysis crate's sharded counting, the parallel replay engine's
/// worker partitioning) uses this one mixer, so a key's bucket in one
/// subsystem determines its bucket in every other. That shared structure
/// is what lets the replay engine slice the IMCT by slot and still
/// reproduce the sequential sieve's aliasing bit-for-bit.
///
/// # Examples
///
/// ```
/// // Deterministic and well-mixed: distinct keys spread across residues.
/// let a = sievestore_types::mix64(1);
/// assert_eq!(a, sievestore_types::mix64(1));
/// assert_ne!(a, sievestore_types::mix64(2));
/// ```
pub const fn mix64(key: u64) -> u64 {
    let mut z = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The worker shard a block key belongs to when hash-partitioned across
/// `shards` workers (the replay engine's and `analysis`'s partition
/// function).
///
/// # Panics
///
/// Panics if `shards == 0`.
///
/// # Examples
///
/// ```
/// use sievestore_types::shard_of;
///
/// assert_eq!(shard_of(42, 1), 0);
/// assert!(shard_of(42, 4) < 4);
/// // Stable: the same key always lands on the same shard.
/// assert_eq!(shard_of(42, 4), shard_of(42, 4));
/// ```
pub fn shard_of(key: u64, shards: usize) -> usize {
    assert!(shards > 0, "shard count must be nonzero");
    (mix64(key) % shards as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_page_constants_are_consistent() {
        assert_eq!(BLOCKS_PER_PAGE, 8);
        assert_eq!(PAGE_SIZE % BLOCK_SIZE, 0);
    }

    #[test]
    fn gib_conversion_matches_hand_computation() {
        // 1 GiB = 2^30 bytes = 2^21 blocks of 512 bytes.
        assert_eq!(gib_to_blocks(1), 1 << 21);
        assert_eq!(gib_to_blocks(32), 32 << 21);
    }

    #[test]
    fn mix64_matches_splitmix_reference() {
        // Reference values of the SplitMix64 finalizer (Steele et al.),
        // pinning the exact constants other subsystems rely on.
        assert_eq!(mix64(0), 0xE220_A839_7B1D_CDAF);
        assert_eq!(mix64(1), 0x910A_2DEC_8902_5CC1);
    }

    #[test]
    fn shard_of_partitions_and_is_total() {
        for key in 0..1000u64 {
            assert_eq!(shard_of(key, 1), 0);
            let s = shard_of(key, 7);
            assert!(s < 7);
        }
        // The partition is reasonably balanced for sequential keys.
        let mut per_shard = [0usize; 4];
        for key in 0..4000u64 {
            per_shard[shard_of(key, 4)] += 1;
        }
        for &n in &per_shard {
            assert!((800..1200).contains(&n), "imbalanced: {per_shard:?}");
        }
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn shard_of_rejects_zero_shards() {
        let _ = shard_of(1, 0);
    }
}
