//! Error types shared across the workspace.

use std::error::Error;
use std::fmt;
use std::io;

/// Errors produced by SieveStore components.
///
/// # Examples
///
/// ```
/// use sievestore_types::SieveError;
/// let err = SieveError::InvalidConfig("cache capacity must be nonzero".into());
/// assert!(err.to_string().contains("capacity"));
/// ```
#[derive(Debug)]
pub enum SieveError {
    /// A configuration value was rejected at validation time.
    InvalidConfig(String),
    /// An underlying I/O operation failed (trace files, spill files).
    Io(io::Error),
    /// A trace record could not be decoded.
    Parse(ParseRequestError),
    /// A node request failed (connection, protocol or node-side error).
    Node(NodeError),
    /// The durable cache tier failed (media, format or corruption).
    Durable(DurableError),
}

impl fmt::Display for SieveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SieveError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            SieveError::Io(err) => write!(f, "i/o error: {err}"),
            SieveError::Parse(err) => write!(f, "trace parse error: {err}"),
            SieveError::Node(err) => write!(f, "node error: {err}"),
            SieveError::Durable(err) => write!(f, "durable store error: {err}"),
        }
    }
}

impl Error for SieveError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SieveError::Io(err) => Some(err),
            SieveError::Parse(err) => Some(err),
            SieveError::Node(err) => Some(err),
            SieveError::Durable(err) => Some(err),
            SieveError::InvalidConfig(_) => None,
        }
    }
}

impl From<DurableError> for SieveError {
    fn from(err: DurableError) -> Self {
        SieveError::Durable(err)
    }
}

impl From<io::Error> for SieveError {
    fn from(err: io::Error) -> Self {
        SieveError::Io(err)
    }
}

impl From<ParseRequestError> for SieveError {
    fn from(err: ParseRequestError) -> Self {
        SieveError::Parse(err)
    }
}

impl From<NodeError> for SieveError {
    fn from(err: NodeError) -> Self {
        SieveError::Node(err)
    }
}

/// How a caller should react to a node failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorClass {
    /// The failure is momentary; retrying the same request is safe and
    /// likely to succeed (connection blips, backing-store hiccups,
    /// deadline overruns).
    Transient,
    /// Retrying will not help; surface the failure to the caller.
    Fatal,
    /// One side violated the wire protocol; the connection is suspect
    /// and the request must not be blindly retried.
    Protocol,
}

/// A typed node I/O failure, replacing stringly `io::Error`s on the
/// client path so callers can tell transient from fatal conditions.
///
/// # Examples
///
/// ```
/// use sievestore_types::{ErrorClass, NodeError};
///
/// let err = NodeError::NodeTransient("backing read failed".into());
/// assert_eq!(err.class(), ErrorClass::Transient);
/// assert!(err.is_transient());
/// ```
#[derive(Debug)]
pub enum NodeError {
    /// Establishing (or re-establishing) a connection failed.
    Connect(io::Error),
    /// The transport failed mid-request; the connection is unusable
    /// until reconnected, but the request itself may be retried.
    Transport(io::Error),
    /// The node reported a transient failure (e.g. a backing-store
    /// hiccup); safe to retry.
    NodeTransient(String),
    /// The node reported a permanent failure; retrying will not help.
    NodeFatal(String),
    /// The node could not finish the request within its deadline.
    Deadline(String),
    /// A malformed or unexpected frame was seen on the wire.
    Protocol(String),
    /// The retry budget ran out; holds the final attempt's error.
    RetriesExhausted {
        /// Attempts performed before giving up.
        attempts: u32,
        /// The error from the final attempt.
        last: Box<NodeError>,
    },
}

impl NodeError {
    /// Classifies this error for retry decisions.
    pub fn class(&self) -> ErrorClass {
        match self {
            NodeError::Connect(_)
            | NodeError::Transport(_)
            | NodeError::NodeTransient(_)
            | NodeError::Deadline(_) => ErrorClass::Transient,
            NodeError::NodeFatal(_) | NodeError::RetriesExhausted { .. } => ErrorClass::Fatal,
            NodeError::Protocol(_) => ErrorClass::Protocol,
        }
    }

    /// Whether a retry of the same request is reasonable.
    pub fn is_transient(&self) -> bool {
        self.class() == ErrorClass::Transient
    }

    /// Classifies a raw transport error: connection-lifecycle failures
    /// are transient (reconnect and retry), data corruption is not.
    pub fn from_transport(err: io::Error) -> Self {
        match err.kind() {
            io::ErrorKind::InvalidData => NodeError::Protocol(err.to_string()),
            _ => NodeError::Transport(err),
        }
    }
}

impl fmt::Display for NodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeError::Connect(err) => write!(f, "connect failed: {err}"),
            NodeError::Transport(err) => write!(f, "transport failed: {err}"),
            NodeError::NodeTransient(msg) => write!(f, "node transient error: {msg}"),
            NodeError::NodeFatal(msg) => write!(f, "node fatal error: {msg}"),
            NodeError::Deadline(msg) => write!(f, "deadline exceeded: {msg}"),
            NodeError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            NodeError::RetriesExhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts: {last}")
            }
        }
    }
}

impl Error for NodeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NodeError::Connect(err) | NodeError::Transport(err) => Some(err),
            NodeError::RetriesExhausted { last, .. } => Some(last.as_ref()),
            _ => None,
        }
    }
}

impl From<NodeError> for io::Error {
    fn from(err: NodeError) -> Self {
        let kind = match &err {
            NodeError::Connect(e) | NodeError::Transport(e) => e.kind(),
            NodeError::Deadline(_) => io::ErrorKind::TimedOut,
            NodeError::Protocol(_) => io::ErrorKind::InvalidData,
            _ => io::ErrorKind::Other,
        };
        io::Error::new(kind, err.to_string())
    }
}

/// A failure in the durable cache tier (the on-disk frame segment and
/// metadata journal behind a node's data cache).
///
/// Media errors are distinguished from *format* problems: an
/// [`DurableError::Io`] may heal on retry, a bad magic/version means the
/// files belong to a different (or future) build, and corruption is
/// detected — never served — via per-record checksums.
///
/// # Examples
///
/// ```
/// use sievestore_types::DurableError;
/// let err = DurableError::Corrupt {
///     what: "frame slot 3",
///     detail: "crc mismatch".into(),
/// };
/// assert!(err.to_string().contains("frame slot 3"));
/// ```
#[derive(Debug)]
pub enum DurableError {
    /// The underlying media (file, simulated device) failed.
    Io(io::Error),
    /// A file did not start with the expected magic bytes.
    BadMagic {
        /// Which file ("segment", "journal").
        what: &'static str,
    },
    /// The on-disk format version is not one this build understands.
    UnsupportedVersion {
        /// The version found on media.
        found: u16,
        /// The newest version this build reads.
        supported: u16,
    },
    /// A checksummed record failed verification.
    Corrupt {
        /// What was being read ("segment header", "frame slot 7", …).
        what: &'static str,
        /// Human-readable specifics.
        detail: String,
    },
    /// The store's slot geometry does not match the caller's capacity.
    Geometry(String),
}

impl DurableError {
    /// A stable lowercase name for the error class, for structured
    /// events and metrics labels.
    pub fn kind_name(&self) -> &'static str {
        match self {
            DurableError::Io(_) => "io",
            DurableError::BadMagic { .. } => "bad_magic",
            DurableError::UnsupportedVersion { .. } => "unsupported_version",
            DurableError::Corrupt { .. } => "corrupt",
            DurableError::Geometry(_) => "geometry",
        }
    }
}

impl fmt::Display for DurableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurableError::Io(err) => write!(f, "media i/o failed: {err}"),
            DurableError::BadMagic { what } => write!(f, "bad magic in {what} file"),
            DurableError::UnsupportedVersion { found, supported } => {
                write!(f, "format version {found} unsupported (max {supported})")
            }
            DurableError::Corrupt { what, detail } => {
                write!(f, "corrupt {what}: {detail}")
            }
            DurableError::Geometry(msg) => write!(f, "slot geometry mismatch: {msg}"),
        }
    }
}

impl Error for DurableError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DurableError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<io::Error> for DurableError {
    fn from(err: io::Error) -> Self {
        DurableError::Io(err)
    }
}

impl From<DurableError> for io::Error {
    fn from(err: DurableError) -> Self {
        match err {
            DurableError::Io(e) => e,
            // Format and corruption problems are data errors: retrying
            // the same bytes cannot help.
            other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
        }
    }
}

/// A trace record failed to decode.
///
/// # Examples
///
/// ```
/// use sievestore_types::ParseRequestError;
/// let err = ParseRequestError::new(42, "unknown request kind tag");
/// assert_eq!(err.record(), 42);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRequestError {
    record: u64,
    message: String,
}

impl ParseRequestError {
    /// Creates a parse error for the given zero-based record index.
    pub fn new(record: u64, message: impl Into<String>) -> Self {
        ParseRequestError {
            record,
            message: message.into(),
        }
    }

    /// Returns the zero-based index of the record that failed to decode.
    pub fn record(&self) -> u64 {
        self.record
    }

    /// Returns the human-readable failure description.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for ParseRequestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "record {}: {}", self.record, self.message)
    }
}

impl Error for ParseRequestError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let err = SieveError::InvalidConfig("threshold must be positive".into());
        assert_eq!(
            err.to_string(),
            "invalid configuration: threshold must be positive"
        );
        let err = SieveError::from(ParseRequestError::new(7, "bad tag"));
        assert_eq!(err.to_string(), "trace parse error: record 7: bad tag");
    }

    #[test]
    fn io_errors_are_chained_as_source() {
        let inner = io::Error::new(io::ErrorKind::UnexpectedEof, "eof");
        let err = SieveError::from(inner);
        assert!(err.source().is_some());
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SieveError>();
        assert_send_sync::<ParseRequestError>();
        assert_send_sync::<NodeError>();
    }

    #[test]
    fn node_error_classification() {
        let refused = || io::Error::new(io::ErrorKind::ConnectionRefused, "refused");
        assert!(NodeError::Connect(refused()).is_transient());
        assert!(NodeError::Transport(refused()).is_transient());
        assert!(NodeError::Deadline("slow".into()).is_transient());
        assert_eq!(
            NodeError::NodeFatal("bad".into()).class(),
            ErrorClass::Fatal
        );
        assert_eq!(
            NodeError::Protocol("tag".into()).class(),
            ErrorClass::Protocol
        );
        let exhausted = NodeError::RetriesExhausted {
            attempts: 4,
            last: Box::new(NodeError::NodeTransient("flaky".into())),
        };
        assert_eq!(exhausted.class(), ErrorClass::Fatal);
        assert!(exhausted.to_string().contains("4 attempts"));
        assert!(exhausted.source().is_some());
    }

    #[test]
    fn transport_classifier_flags_corruption_as_protocol() {
        let bad = io::Error::new(io::ErrorKind::InvalidData, "garbled frame");
        assert_eq!(NodeError::from_transport(bad).class(), ErrorClass::Protocol);
        let eof = io::Error::new(io::ErrorKind::UnexpectedEof, "peer went away");
        assert!(NodeError::from_transport(eof).is_transient());
    }

    #[test]
    fn node_errors_nest_into_sieve_and_io_errors() {
        let err = SieveError::from(NodeError::Deadline("read".into()));
        assert!(err.to_string().contains("deadline"));
        assert!(err.source().is_some());
        let io_err: io::Error = NodeError::Deadline("read".into()).into();
        assert_eq!(io_err.kind(), io::ErrorKind::TimedOut);
    }
}
