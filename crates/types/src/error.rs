//! Error types shared across the workspace.

use std::error::Error;
use std::fmt;
use std::io;

/// Errors produced by SieveStore components.
///
/// # Examples
///
/// ```
/// use sievestore_types::SieveError;
/// let err = SieveError::InvalidConfig("cache capacity must be nonzero".into());
/// assert!(err.to_string().contains("capacity"));
/// ```
#[derive(Debug)]
pub enum SieveError {
    /// A configuration value was rejected at validation time.
    InvalidConfig(String),
    /// An underlying I/O operation failed (trace files, spill files).
    Io(io::Error),
    /// A trace record could not be decoded.
    Parse(ParseRequestError),
}

impl fmt::Display for SieveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SieveError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            SieveError::Io(err) => write!(f, "i/o error: {err}"),
            SieveError::Parse(err) => write!(f, "trace parse error: {err}"),
        }
    }
}

impl Error for SieveError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SieveError::Io(err) => Some(err),
            SieveError::Parse(err) => Some(err),
            SieveError::InvalidConfig(_) => None,
        }
    }
}

impl From<io::Error> for SieveError {
    fn from(err: io::Error) -> Self {
        SieveError::Io(err)
    }
}

impl From<ParseRequestError> for SieveError {
    fn from(err: ParseRequestError) -> Self {
        SieveError::Parse(err)
    }
}

/// A trace record failed to decode.
///
/// # Examples
///
/// ```
/// use sievestore_types::ParseRequestError;
/// let err = ParseRequestError::new(42, "unknown request kind tag");
/// assert_eq!(err.record(), 42);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRequestError {
    record: u64,
    message: String,
}

impl ParseRequestError {
    /// Creates a parse error for the given zero-based record index.
    pub fn new(record: u64, message: impl Into<String>) -> Self {
        ParseRequestError {
            record,
            message: message.into(),
        }
    }

    /// Returns the zero-based index of the record that failed to decode.
    pub fn record(&self) -> u64 {
        self.record
    }

    /// Returns the human-readable failure description.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for ParseRequestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "record {}: {}", self.record, self.message)
    }
}

impl Error for ParseRequestError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let err = SieveError::InvalidConfig("threshold must be positive".into());
        assert_eq!(
            err.to_string(),
            "invalid configuration: threshold must be positive"
        );
        let err = SieveError::from(ParseRequestError::new(7, "bad tag"));
        assert_eq!(err.to_string(), "trace parse error: record 7: bad tag");
    }

    #[test]
    fn io_errors_are_chained_as_source() {
        let inner = io::Error::new(io::ErrorKind::UnexpectedEof, "eof");
        let err = SieveError::from(inner);
        assert!(err.source().is_some());
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SieveError>();
        assert_send_sync::<ParseRequestError>();
    }
}
