//! Allocation-lean open-addressing containers for `u64` block keys.
//!
//! Every per-event structure in the workspace — the LRU's key→slot
//! index, the precise miss-count table, the discrete epoch residency set,
//! the per-epoch access counter — is keyed by a packed
//! [`GlobalBlock`](crate::GlobalBlock) `u64`. `std::collections::HashMap`
//! pays SipHash plus control-byte metadata on every one of those lookups;
//! this module replaces it on the hot path with [`U64Map`]: a
//! power-of-two open-addressing table using a single Fibonacci
//! multiply-shift mixer, linear probing, and backward-shift deletion (no
//! tombstones, so probe chains never degrade over a workload's churn).
//!
//! The probe loop touches only the key array (eight 8-byte keys per cache
//! line); values live in a parallel array touched only on a match.
//! Vacancy is encoded by the reserved key [`u64::MAX`]; the real key
//! `u64::MAX`, should a workload ever produce it, is carried in a
//! dedicated side slot so the table stays total over all 64-bit keys.
//!
//! [`U64Set`] is the value-less variant used for residency sets.
//!
//! # Examples
//!
//! ```
//! use sievestore_types::U64Map;
//!
//! let mut map: U64Map<u32> = U64Map::new();
//! map.insert(42, 7);
//! *map.get_or_insert_with(42, || 0) += 1;
//! assert_eq!(map.get(42), Some(&8));
//! assert_eq!(map.remove(9), None);
//! assert_eq!(map.remove(42), Some(8));
//! assert!(map.is_empty());
//! ```

/// Reserved vacancy marker inside the key array. The key `u64::MAX`
/// itself is stored out of band (see [`U64Map`]).
const VACANT: u64 = u64::MAX;

/// Smallest allocated table size (slots).
const MIN_SLOTS: usize = 16;

/// The Fibonacci multiply-shift mixer: multiply by 2^64/φ and keep the
/// top bits. Multiplication diffuses every input bit into the high output
/// bits, which is exactly the slice a power-of-two table indexes with, so
/// sequential or strided block keys spread evenly without a second
/// mixing round.
#[inline]
const fn fib_mix(key: u64) -> u64 {
    key.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// An open-addressing hash map from `u64` keys to `V` values.
///
/// Capacity is always a power of two; lookups are one multiply, one
/// shift, and a linear scan of the key array. Deletion uses backward
/// shifting, so the table carries no tombstones and lookup cost stays a
/// function of load factor alone. The maximum load factor is 3/4.
///
/// `V: Default` is required: vacated value slots are reset to the default
/// value (this is what lets the value array be plain `Box<[V]>` with no
/// per-slot `Option` overhead).
#[derive(Debug, Clone)]
pub struct U64Map<V> {
    /// Slot keys; `VACANT` marks an empty slot.
    keys: Box<[u64]>,
    /// Slot values, parallel to `keys`.
    values: Box<[V]>,
    /// `keys.len() - 1` (0 for an unallocated table).
    mask: usize,
    /// `64 - log2(keys.len())`: the Fibonacci shift.
    shift: u32,
    /// Occupied slots (excluding the out-of-band `u64::MAX` entry).
    len: usize,
    /// Value for the key `u64::MAX`, which cannot live in the key array.
    max_key: Option<V>,
}

impl<V: Default> Default for U64Map<V> {
    fn default() -> Self {
        U64Map::new()
    }
}

impl<V: Default> U64Map<V> {
    /// Creates an empty map; no allocation until the first insert.
    pub fn new() -> Self {
        U64Map {
            keys: Box::new([]),
            values: Box::new([]),
            mask: 0,
            shift: 0,
            len: 0,
            max_key: None,
        }
    }

    /// Creates a map pre-sized so `entries` insertions never rehash.
    pub fn with_capacity(entries: usize) -> Self {
        let mut map = U64Map::new();
        if entries > 0 {
            map.allocate(Self::slots_for(entries));
        }
        map
    }

    /// Slots needed to hold `entries` under the 3/4 load ceiling.
    fn slots_for(entries: usize) -> usize {
        (entries / 3)
            .saturating_mul(4)
            .saturating_add(entries % 3 + 1)
            .next_power_of_two()
            .max(MIN_SLOTS)
    }

    fn allocate(&mut self, slots: usize) {
        debug_assert!(slots.is_power_of_two());
        self.keys = vec![VACANT; slots].into_boxed_slice();
        self.values = (0..slots).map(|_| V::default()).collect();
        self.mask = slots - 1;
        self.shift = 64 - slots.trailing_zeros();
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len + usize::from(self.max_key.is_some())
    }

    /// Whether the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Allocated slot count (0 before the first insert).
    pub fn slots(&self) -> usize {
        self.keys.len()
    }

    /// Approximate heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.keys.len() * (std::mem::size_of::<u64>() + std::mem::size_of::<V>())
    }

    /// The home slot of `key` in the current table.
    #[inline]
    fn bucket(&self, key: u64) -> usize {
        (fib_mix(key) >> self.shift) as usize
    }

    /// Probes for `key`: returns `(slot, true)` if present, or
    /// `(first vacant slot, false)` if absent. Requires an allocated
    /// table that is not full.
    #[inline]
    fn probe(&self, key: u64) -> (usize, bool) {
        debug_assert!(!self.keys.is_empty());
        let mut i = self.bucket(key);
        loop {
            let k = self.keys[i];
            if k == key {
                return (i, true);
            }
            if k == VACANT {
                return (i, false);
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Whether `key` is present.
    #[inline]
    pub fn contains_key(&self, key: u64) -> bool {
        self.get(key).is_some()
    }

    /// A reference to `key`'s value, if present.
    #[inline]
    pub fn get(&self, key: u64) -> Option<&V> {
        if key == VACANT {
            return self.max_key.as_ref();
        }
        if self.keys.is_empty() {
            return None;
        }
        let (slot, found) = self.probe(key);
        found.then(|| &self.values[slot])
    }

    /// A mutable reference to `key`'s value, if present.
    #[inline]
    pub fn get_mut(&mut self, key: u64) -> Option<&mut V> {
        if key == VACANT {
            return self.max_key.as_mut();
        }
        if self.keys.is_empty() {
            return None;
        }
        let (slot, found) = self.probe(key);
        found.then(|| &mut self.values[slot])
    }

    /// Grows if inserting one more entry would exceed the load ceiling.
    #[inline]
    fn grow_if_needed(&mut self) {
        if self.keys.is_empty() {
            self.allocate(MIN_SLOTS);
        } else if (self.len + 1) * 4 > self.keys.len() * 3 {
            self.rehash(self.keys.len() * 2);
        }
    }

    fn rehash(&mut self, new_slots: usize) {
        let old_keys = std::mem::replace(&mut self.keys, Box::new([]));
        let old_values = std::mem::replace(&mut self.values, Box::new([]));
        self.allocate(new_slots);
        for (key, value) in old_keys.into_vec().into_iter().zip(old_values.into_vec()) {
            if key != VACANT {
                let (slot, found) = self.probe(key);
                debug_assert!(!found, "duplicate key during rehash");
                self.keys[slot] = key;
                self.values[slot] = value;
            }
        }
    }

    /// Inserts `key → value`, returning the previous value if the key was
    /// present.
    #[inline]
    pub fn insert(&mut self, key: u64, value: V) -> Option<V> {
        if key == VACANT {
            return self.max_key.replace(value);
        }
        self.grow_if_needed();
        let (slot, found) = self.probe(key);
        if found {
            Some(std::mem::replace(&mut self.values[slot], value))
        } else {
            self.keys[slot] = key;
            self.values[slot] = value;
            self.len += 1;
            None
        }
    }

    /// Returns a mutable reference to `key`'s value, inserting
    /// `default()` first if absent — the single-probe upsert the per-event
    /// counters use.
    #[inline]
    pub fn get_or_insert_with(&mut self, key: u64, default: impl FnOnce() -> V) -> &mut V {
        if key == VACANT {
            return self.max_key.get_or_insert_with(default);
        }
        self.grow_if_needed();
        let (slot, found) = self.probe(key);
        if !found {
            self.keys[slot] = key;
            self.values[slot] = default();
            self.len += 1;
        }
        &mut self.values[slot]
    }

    /// Removes `key`, returning its value if it was present.
    ///
    /// Uses backward-shift deletion: every displaced successor in the
    /// probe cluster is moved one hole closer to its home slot, so no
    /// tombstone is left behind.
    pub fn remove(&mut self, key: u64) -> Option<V> {
        if key == VACANT {
            return self.max_key.take();
        }
        if self.keys.is_empty() {
            return None;
        }
        let (slot, found) = self.probe(key);
        if !found {
            return None;
        }
        let value = std::mem::take(&mut self.values[slot]);
        self.delete_slot(slot);
        Some(value)
    }

    /// Empties `slot` and backward-shifts the tail of its probe cluster.
    fn delete_slot(&mut self, slot: usize) {
        let mut hole = slot;
        let mut i = slot;
        loop {
            i = (i + 1) & self.mask;
            let k = self.keys[i];
            if k == VACANT {
                break;
            }
            // `i` may move into the hole iff its home slot is cyclically
            // no later than the hole (otherwise the move would place it
            // before its home and lookups would miss it).
            let home = self.bucket(k);
            if (i.wrapping_sub(home) & self.mask) >= (i.wrapping_sub(hole) & self.mask) {
                self.keys[hole] = k;
                self.values[hole] = std::mem::take(&mut self.values[i]);
                hole = i;
            }
        }
        self.keys[hole] = VACANT;
        self.values[hole] = V::default();
        self.len -= 1;
    }

    /// Keeps only the entries for which `keep` returns `true`.
    ///
    /// `keep` must be a pure function of `(key, value)`: backward-shift
    /// deletion can relocate surviving entries into slots the scan has
    /// already passed, in which case they are re-tested.
    pub fn retain(&mut self, mut keep: impl FnMut(u64, &mut V) -> bool) {
        if let Some(v) = self.max_key.as_mut() {
            if !keep(VACANT, v) {
                self.max_key = None;
            }
        }
        let mut i = 0;
        while i < self.keys.len() {
            let k = self.keys[i];
            if k != VACANT && !keep(k, &mut self.values[i]) {
                self.delete_slot(i);
                // A successor may have shifted into slot i: re-test it.
                continue;
            }
            i += 1;
        }
    }

    /// Drops every entry, keeping the allocation.
    pub fn clear(&mut self) {
        self.keys.iter_mut().for_each(|k| *k = VACANT);
        self.values.iter_mut().for_each(|v| *v = V::default());
        self.len = 0;
        self.max_key = None;
    }

    /// Iterates over `(key, &value)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &V)> + '_ {
        self.keys
            .iter()
            .zip(self.values.iter())
            .filter(|(&k, _)| k != VACANT)
            .map(|(&k, v)| (k, v))
            .chain(self.max_key.iter().map(|v| (VACANT, v)))
    }

    /// Iterates over the stored keys in unspecified order.
    pub fn keys(&self) -> impl Iterator<Item = u64> + '_ {
        self.iter().map(|(k, _)| k)
    }
}

/// Order-independent equality: two maps are equal iff they hold the same
/// key→value pairs, regardless of slot layout or growth history.
impl<V: Default + PartialEq> PartialEq for U64Map<V> {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().all(|(k, v)| other.get(k) == Some(v))
    }
}

impl<V: Default + Eq> Eq for U64Map<V> {}

/// An open-addressing set of `u64` keys — [`U64Map`] without values.
///
/// # Examples
///
/// ```
/// use sievestore_types::U64Set;
///
/// let mut set = U64Set::new();
/// assert!(set.insert(3));
/// assert!(!set.insert(3));
/// assert!(set.contains(3));
/// assert!(set.remove(3));
/// assert!(set.is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct U64Set {
    map: U64Map<()>,
}

impl U64Set {
    /// Creates an empty set; no allocation until the first insert.
    pub fn new() -> Self {
        U64Set::default()
    }

    /// Creates a set pre-sized so `entries` insertions never rehash.
    pub fn with_capacity(entries: usize) -> Self {
        U64Set {
            map: U64Map::with_capacity(entries),
        }
    }

    /// Number of stored keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Whether `key` is in the set.
    #[inline]
    pub fn contains(&self, key: u64) -> bool {
        self.map.contains_key(key)
    }

    /// Adds `key`; returns whether it was newly inserted.
    #[inline]
    pub fn insert(&mut self, key: u64) -> bool {
        self.map.insert(key, ()).is_none()
    }

    /// Removes `key`; returns whether it was present.
    pub fn remove(&mut self, key: u64) -> bool {
        self.map.remove(key).is_some()
    }

    /// Drops every key, keeping the allocation.
    pub fn clear(&mut self) {
        self.map.clear();
    }

    /// Iterates over the stored keys in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.map.keys()
    }

    /// Approximate heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.map.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashMap;

    #[test]
    fn empty_map_operations() {
        let mut m: U64Map<u32> = U64Map::new();
        assert_eq!(m.len(), 0);
        assert!(m.is_empty());
        assert_eq!(m.slots(), 0);
        assert_eq!(m.get(5), None);
        assert_eq!(m.remove(5), None);
        assert_eq!(m.iter().count(), 0);
        m.clear();
        assert!(m.is_empty());
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut m: U64Map<u32> = U64Map::new();
        assert_eq!(m.insert(1, 10), None);
        assert_eq!(m.insert(2, 20), None);
        assert_eq!(m.insert(1, 11), Some(10));
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(1), Some(&11));
        assert_eq!(m.get(2), Some(&20));
        assert_eq!(m.get(3), None);
        assert_eq!(m.remove(1), Some(11));
        assert_eq!(m.remove(1), None);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn reserved_max_key_is_a_legal_key() {
        let mut m: U64Map<u32> = U64Map::new();
        assert_eq!(m.insert(u64::MAX, 7), None);
        assert_eq!(m.len(), 1);
        assert!(m.contains_key(u64::MAX));
        assert_eq!(m.insert(u64::MAX, 9), Some(7));
        *m.get_or_insert_with(u64::MAX, || 0) += 1;
        assert_eq!(m.get(u64::MAX), Some(&10));
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![(u64::MAX, &10)]);
        m.retain(|_, _| false);
        assert!(!m.contains_key(u64::MAX));
        assert_eq!(m.remove(u64::MAX), None);
    }

    #[test]
    fn get_or_insert_with_upserts() {
        let mut m: U64Map<u64> = U64Map::new();
        for _ in 0..3 {
            *m.get_or_insert_with(9, || 0) += 1;
        }
        assert_eq!(m.get(9), Some(&3));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn growth_preserves_entries() {
        let mut m: U64Map<u32> = U64Map::new();
        for k in 0..10_000u64 {
            m.insert(k, (k * 3) as u32);
        }
        assert_eq!(m.len(), 10_000);
        for k in 0..10_000u64 {
            assert_eq!(m.get(k), Some(&((k * 3) as u32)), "key {k}");
        }
        // Load factor stays at or below 3/4.
        assert!(m.len() * 4 <= m.slots() * 3);
    }

    #[test]
    fn with_capacity_never_rehashes() {
        let mut m: U64Map<u32> = U64Map::with_capacity(1000);
        let slots = m.slots();
        assert!(slots >= 1000 * 4 / 3);
        for k in 0..1000u64 {
            m.insert(k, 0);
        }
        assert_eq!(m.slots(), slots, "pre-sized map must not rehash");
    }

    /// Forces a probe cluster that wraps the end of the table, then
    /// deletes through it — the classic backward-shift edge case.
    #[test]
    fn backward_shift_across_wraparound() {
        let mut m: U64Map<u32> = U64Map::with_capacity(4); // 16 slots
        let slots = m.slots() as u64;
        // Find keys whose home slot is the last slot of the table.
        let colliders: Vec<u64> = (0..100_000u64)
            .filter(|&k| (fib_mix(k) >> (64 - slots.trailing_zeros())) == slots - 1)
            .take(4)
            .collect();
        assert_eq!(colliders.len(), 4, "need 4 colliding keys");
        for (i, &k) in colliders.iter().enumerate() {
            m.insert(k, i as u32);
        }
        // The cluster now wraps into slots 0..2. Delete the head and make
        // sure the wrapped tail stays reachable.
        assert_eq!(m.remove(colliders[0]), Some(0));
        for (i, &k) in colliders.iter().enumerate().skip(1) {
            assert_eq!(m.get(k), Some(&(i as u32)), "collider {i} lost");
        }
        assert_eq!(m.remove(colliders[2]), Some(2));
        assert_eq!(m.get(colliders[1]), Some(&1));
        assert_eq!(m.get(colliders[3]), Some(&3));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn retain_keeps_matching_entries() {
        let mut m: U64Map<u32> = U64Map::new();
        for k in 0..1000u64 {
            m.insert(k, k as u32);
        }
        m.retain(|k, _| k % 3 == 0);
        assert_eq!(m.len(), 334);
        for k in 0..1000u64 {
            assert_eq!(m.contains_key(k), k % 3 == 0, "key {k}");
        }
    }

    #[test]
    fn clear_retains_allocation_and_empties() {
        let mut m: U64Map<u32> = U64Map::new();
        for k in 0..100u64 {
            m.insert(k, 1);
        }
        let slots = m.slots();
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.slots(), slots);
        assert_eq!(m.get(5), None);
        m.insert(5, 2);
        assert_eq!(m.get(5), Some(&2));
    }

    #[test]
    fn set_basics() {
        let mut s = U64Set::with_capacity(10);
        assert!(s.insert(1));
        assert!(s.insert(u64::MAX));
        assert!(!s.insert(1));
        assert_eq!(s.len(), 2);
        assert!(s.contains(u64::MAX));
        let mut keys: Vec<u64> = s.iter().collect();
        keys.sort_unstable();
        assert_eq!(keys, vec![1, u64::MAX]);
        assert!(s.remove(1));
        assert!(!s.remove(1));
        s.clear();
        assert!(s.is_empty());
        assert!(s.memory_bytes() > 0);
    }

    #[derive(Debug, Clone)]
    enum Op {
        Insert(u64, u32),
        Upsert(u64),
        Remove(u64),
        Get(u64),
        RetainMod(u64),
        Clear,
    }

    fn key_strategy() -> impl Strategy<Value = u64> {
        // Small keys collide in buckets often; the special values exercise
        // the reserved-key path and extreme mixes. (Weights are emulated
        // by repetition — the proptest shim's prop_oneof! is unweighted.)
        prop_oneof![
            0u64..64,
            0u64..64,
            0u64..64,
            0u64..64,
            any::<u64>(),
            any::<u64>(),
            Just(u64::MAX),
            Just(0u64),
        ]
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        let ins = || (key_strategy(), any::<u32>()).prop_map(|(k, v)| Op::Insert(k, v));
        prop_oneof![
            ins(),
            ins(),
            ins(),
            key_strategy().prop_map(Op::Upsert),
            key_strategy().prop_map(Op::Upsert),
            key_strategy().prop_map(Op::Remove),
            key_strategy().prop_map(Op::Remove),
            key_strategy().prop_map(Op::Get),
            (1u64..5).prop_map(Op::RetainMod),
            Just(Op::Clear),
        ]
    }

    proptest! {
        /// The open-addressing map is observationally identical to
        /// `std::collections::HashMap` under arbitrary op sequences,
        /// including backward-shift deletions and retain sweeps.
        #[test]
        fn matches_std_hashmap(ops in proptest::collection::vec(op_strategy(), 0..600)) {
            let mut fast: U64Map<u32> = U64Map::new();
            let mut std_map: HashMap<u64, u32> = HashMap::new();
            for op in ops {
                match op {
                    Op::Insert(k, v) => {
                        prop_assert_eq!(fast.insert(k, v), std_map.insert(k, v));
                    }
                    Op::Upsert(k) => {
                        let fv = fast.get_or_insert_with(k, || 7);
                        *fv += 1;
                        let sv = std_map.entry(k).or_insert(7);
                        *sv += 1;
                        prop_assert_eq!(&*fv, sv);
                    }
                    Op::Remove(k) => {
                        prop_assert_eq!(fast.remove(k), std_map.remove(&k));
                    }
                    Op::Get(k) => {
                        prop_assert_eq!(fast.get(k), std_map.get(&k));
                    }
                    Op::RetainMod(m) => {
                        fast.retain(|k, v| (k.wrapping_add(*v as u64)) % m != 0);
                        std_map.retain(|k, v| (k.wrapping_add(*v as u64)) % m != 0);
                    }
                    Op::Clear => {
                        fast.clear();
                        std_map.clear();
                    }
                }
                prop_assert_eq!(fast.len(), std_map.len());
                // Full-content check: iteration yields exactly the std map.
                let mut got: Vec<(u64, u32)> = fast.iter().map(|(k, &v)| (k, v)).collect();
                got.sort_unstable();
                let mut want: Vec<(u64, u32)> = std_map.iter().map(|(&k, &v)| (k, v)).collect();
                want.sort_unstable();
                prop_assert_eq!(got, want);
            }
        }
    }
}
