//! Time units used by the trace and the simulator.
//!
//! Trace timestamps are microseconds since the start of the trace
//! ([`Micros`]). SSD cost accounting aggregates per wall-clock minute
//! ([`Minute`]) and experiment reporting aggregates per calendar day
//! ([`Day`]), following the paper's methodology.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Microseconds since the start of the trace.
///
/// # Examples
///
/// ```
/// use sievestore_types::Micros;
/// let t = Micros::new(90_000_000);
/// assert_eq!(t.as_secs_f64(), 90.0);
/// assert_eq!(t.minute().index(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Micros(u64);

impl Micros {
    /// Microseconds per second.
    pub const PER_SEC: u64 = 1_000_000;
    /// Microseconds per minute.
    pub const PER_MINUTE: u64 = 60 * Self::PER_SEC;
    /// Microseconds per hour.
    pub const PER_HOUR: u64 = 60 * Self::PER_MINUTE;
    /// Microseconds per day.
    pub const PER_DAY: u64 = 24 * Self::PER_HOUR;

    /// Creates a timestamp from a raw microsecond count.
    pub const fn new(us: u64) -> Self {
        Micros(us)
    }

    /// Creates a timestamp from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        Micros(secs * Self::PER_SEC)
    }

    /// Creates a timestamp from whole hours.
    pub const fn from_hours(hours: u64) -> Self {
        Micros(hours * Self::PER_HOUR)
    }

    /// Creates a timestamp from whole days.
    pub const fn from_days(days: u64) -> Self {
        Micros(days * Self::PER_DAY)
    }

    /// Returns the raw microsecond count.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the timestamp in (possibly fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / Self::PER_SEC as f64
    }

    /// Returns the wall-clock minute this instant falls in.
    pub const fn minute(self) -> Minute {
        Minute((self.0 / Self::PER_MINUTE) as u32)
    }

    /// Returns the calendar day this instant falls in (day 0 is the first).
    pub const fn day(self) -> Day {
        Day((self.0 / Self::PER_DAY) as u16)
    }

    /// Saturating subtraction; clamps at zero rather than wrapping.
    pub const fn saturating_sub(self, rhs: Micros) -> Micros {
        Micros(self.0.saturating_sub(rhs.0))
    }
}

impl Add for Micros {
    type Output = Micros;
    fn add(self, rhs: Micros) -> Micros {
        Micros(self.0 + rhs.0)
    }
}

impl AddAssign for Micros {
    fn add_assign(&mut self, rhs: Micros) {
        self.0 += rhs.0;
    }
}

impl Sub for Micros {
    type Output = Micros;
    /// # Panics
    ///
    /// Panics in debug builds if `rhs > self` (integer underflow).
    fn sub(self, rhs: Micros) -> Micros {
        Micros(self.0 - rhs.0)
    }
}

impl fmt::Display for Micros {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

/// A wall-clock minute index into the trace (the paper's week has 10 080).
///
/// # Examples
///
/// ```
/// use sievestore_types::{Micros, Minute};
/// assert_eq!(Micros::from_days(1).minute(), Minute::new(1440));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Minute(u32);

impl Minute {
    /// Minutes per day.
    pub const PER_DAY: u32 = 24 * 60;

    /// Creates a minute index.
    pub const fn new(index: u32) -> Self {
        Minute(index)
    }

    /// Returns the raw minute index.
    pub const fn index(self) -> u32 {
        self.0
    }

    /// Returns the index widened to `usize` for table lookups.
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }

    /// Returns the calendar day containing this minute.
    pub const fn day(self) -> Day {
        Day((self.0 / Self::PER_DAY) as u16)
    }

    /// Returns the minute-of-day in `0..1440`.
    pub const fn of_day(self) -> u32 {
        self.0 % Self::PER_DAY
    }
}

impl fmt::Display for Minute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// A calendar-day index into the trace (the paper analyzes 8 calendar days).
///
/// # Examples
///
/// ```
/// use sievestore_types::Day;
/// assert_eq!(Day::new(2).index(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Day(u16);

impl Day {
    /// Creates a day index (day 0 is the first calendar day).
    pub const fn new(index: u16) -> Self {
        Day(index)
    }

    /// Returns the raw day index.
    pub const fn index(self) -> u16 {
        self.0
    }

    /// Returns the index widened to `usize` for table lookups.
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }

    /// Returns the next calendar day.
    pub const fn next(self) -> Day {
        Day(self.0 + 1)
    }

    /// Returns the first instant of this day.
    pub const fn start(self) -> Micros {
        Micros::from_days(self.0 as u64)
    }

    /// Returns the first instant of the following day.
    pub const fn end(self) -> Micros {
        Micros::from_days(self.0 as u64 + 1)
    }
}

impl fmt::Display for Day {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "day{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micros_to_minute_and_day() {
        let t = Micros::from_days(3) + Micros::from_hours(2) + Micros::from_secs(61);
        assert_eq!(t.day(), Day::new(3));
        assert_eq!(t.minute().of_day(), 2 * 60 + 1);
        assert_eq!(t.minute().day(), Day::new(3));
    }

    #[test]
    fn day_boundaries() {
        let d = Day::new(5);
        assert_eq!(d.start().day(), d);
        assert_eq!(d.end(), d.next().start());
        assert_eq!(d.end().day(), d.next());
    }

    #[test]
    fn saturating_sub_clamps() {
        let a = Micros::from_secs(1);
        let b = Micros::from_secs(2);
        assert_eq!(b.saturating_sub(a), Micros::from_secs(1));
        assert_eq!(a.saturating_sub(b), Micros::new(0));
    }

    #[test]
    fn arithmetic_round_trips() {
        let a = Micros::from_secs(90);
        let b = Micros::from_secs(30);
        assert_eq!((a - b) + b, a);
        let mut c = a;
        c += b;
        assert_eq!(c, Micros::from_secs(120));
    }

    #[test]
    fn week_has_10080_minutes() {
        assert_eq!(Micros::from_days(7).minute().index(), 10_080);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Micros::from_secs(1).to_string(), "1.000000s");
        assert_eq!(Minute::new(7).to_string(), "m7");
        assert_eq!(Day::new(7).to_string(), "day7");
    }
}
