//! Process-level resource introspection.
//!
//! The bench binaries gate full-scale streaming runs on a hard peak-RSS
//! ceiling; this module supplies the one probe they need. On Linux the
//! kernel exposes the high-water resident set as the `VmHWM` line of
//! `/proc/self/status`; elsewhere there is no portable equivalent, so the
//! probe degrades to `0` and callers treat the gate as unenforceable.

/// Peak resident set size of the current process in bytes.
///
/// Reads `VmHWM` from `/proc/self/status` on Linux (the kernel reports it
/// in KiB). Returns `0` on other platforms or when the file cannot be
/// parsed, so callers can distinguish "no data" from any real measurement.
///
/// # Examples
///
/// ```
/// let peak = sievestore_types::peak_rss_bytes();
/// #[cfg(target_os = "linux")]
/// assert!(peak > 0);
/// ```
pub fn peak_rss_bytes() -> u64 {
    #[cfg(target_os = "linux")]
    {
        let status = match std::fs::read_to_string("/proc/self/status") {
            Ok(s) => s,
            Err(_) => return 0,
        };
        for line in status.lines() {
            if let Some(rest) = line.strip_prefix("VmHWM:") {
                let kb: u64 = rest
                    .trim()
                    .trim_end_matches("kB")
                    .trim()
                    .parse()
                    .unwrap_or(0);
                return kb * 1024;
            }
        }
        0
    }
    #[cfg(not(target_os = "linux"))]
    {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(target_os = "linux")]
    fn peak_rss_is_positive_and_monotone() {
        let before = peak_rss_bytes();
        assert!(before > 0, "VmHWM should be readable on Linux");
        // Touch a buffer large enough to move the high-water mark, then
        // confirm the probe never goes backwards.
        let buf = vec![1u8; 8 << 20];
        std::hint::black_box(&buf);
        let after = peak_rss_bytes();
        assert!(after >= before);
    }

    #[test]
    fn peak_rss_does_not_panic() {
        let _ = peak_rss_bytes();
    }
}
