//! Analytical SSD device model and drive-occupancy accounting.
//!
//! The paper never executes on real hardware: it computes a **drive-IOPS
//! occupancy** per trace minute from the cache simulation and the published
//! ratings of the Intel X25-E SSD (35 000 random-read IOPS and 3 300
//! random-write IOPS at 4 KiB), then derives the number of drives needed at
//! a given time-coverage (Figures 8 and 9) and the write-endurance
//! lifetime. This crate implements exactly that methodology:
//!
//! * [`SsdSpec`] — device ratings ([`SsdSpec::x25e`] is the paper's drive);
//! * [`OccupancyTracker`] — per-minute read/write page counts →
//!   occupancy series, drives-needed series, coverage table;
//! * [`endurance_years`] — lifetime under a measured write rate.
//!
//! Each 4 KiB read occupies the drive for `1/read_iops` seconds and each
//! 4 KiB write for `1/write_iops` seconds; a minute's occupancy is total
//! busy time divided by 60 s. The model deliberately ignores queueing — as
//! the paper argues, the sieved drive operates far below saturation.
//!
//! # Examples
//!
//! ```
//! use sievestore_ssd::{OccupancyTracker, SsdSpec};
//! use sievestore_types::Minute;
//!
//! let mut tracker = OccupancyTracker::new(SsdSpec::x25e(), 2);
//! tracker.record_read_pages(Minute::new(0), 35_000 * 60); // exactly 1 drive-minute
//! assert!((tracker.occupancy(Minute::new(0)) - 1.0).abs() < 1e-9);
//! assert_eq!(tracker.drives_needed(Minute::new(0)), 1);
//! ```

#![warn(missing_docs)]

pub mod latency;

pub use latency::LatencyModel;

use std::fmt;

use sievestore_types::{Minute, PAGE_SIZE};

/// Published ratings of a solid-state (or mechanical) drive.
///
/// # Examples
///
/// ```
/// let spec = sievestore_ssd::SsdSpec::x25e();
/// assert_eq!(spec.read_iops, 35_000.0);
/// assert!(spec.random_read_mbps() > 130.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SsdSpec {
    /// Marketing name, for reports.
    pub name: String,
    /// Random 4 KiB read IOPS.
    pub read_iops: f64,
    /// Random 4 KiB write IOPS.
    pub write_iops: f64,
    /// Sustained sequential read bandwidth, MB/s.
    pub seq_read_mbps: f64,
    /// Sustained sequential write bandwidth, MB/s.
    pub seq_write_mbps: f64,
    /// Usable capacity in GB.
    pub capacity_gb: u64,
    /// Total write endurance in bytes.
    pub endurance_bytes: u64,
}

impl SsdSpec {
    /// The Intel X25-E Extreme SATA SSD, as modeled in §4 of the paper:
    /// 35 000 / 3 300 random 4 KiB IOPS, 250 / 170 MB/s sequential,
    /// 1 PB write endurance.
    pub fn x25e() -> Self {
        SsdSpec {
            name: "Intel X25-E".to_string(),
            read_iops: 35_000.0,
            write_iops: 3_300.0,
            seq_read_mbps: 250.0,
            seq_write_mbps: 170.0,
            capacity_gb: 32,
            endurance_bytes: 1_000_000_000_000_000, // 1 PB
        }
    }

    /// A representative 15k-RPM enterprise hard drive, for the paper's
    /// "SSD IOPS are 1–2 orders of magnitude above HDD" comparisons.
    pub fn enterprise_hdd() -> Self {
        SsdSpec {
            name: "15k enterprise HDD".to_string(),
            read_iops: 300.0,
            write_iops: 250.0,
            seq_read_mbps: 120.0,
            seq_write_mbps: 120.0,
            capacity_gb: 300,
            endurance_bytes: u64::MAX, // not wear-limited
        }
    }

    /// Random-read bandwidth implied by the IOPS rating at 4 KiB, MB/s.
    /// (The paper notes this is the tighter constraint: ~140 MB/s reads,
    /// ~13.2 MB/s writes for the X25-E.)
    pub fn random_read_mbps(&self) -> f64 {
        self.read_iops * PAGE_SIZE as f64 / 1e6
    }

    /// Random-write bandwidth implied by the IOPS rating at 4 KiB, MB/s.
    pub fn random_write_mbps(&self) -> f64 {
        self.write_iops * PAGE_SIZE as f64 / 1e6
    }

    /// Seconds of drive time one 4 KiB random read occupies.
    pub fn read_service_secs(&self) -> f64 {
        1.0 / self.read_iops
    }

    /// Seconds of drive time one 4 KiB random write occupies.
    pub fn write_service_secs(&self) -> f64 {
        1.0 / self.write_iops
    }
}

impl fmt::Display for SsdSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({:.0}/{:.0} r/w IOPS, {:.0}/{:.0} MB/s seq)",
            self.name, self.read_iops, self.write_iops, self.seq_read_mbps, self.seq_write_mbps
        )
    }
}

/// Per-minute page-level load on the cache device.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MinuteLoad {
    /// 4 KiB read operations in this minute.
    pub read_pages: u64,
    /// 4 KiB write operations in this minute (hits + allocation-writes).
    pub write_pages: u64,
}

impl MinuteLoad {
    /// Total page operations.
    pub fn total_pages(&self) -> u64 {
        self.read_pages + self.write_pages
    }
}

/// Accumulates per-minute device load and answers the paper's cost
/// questions: occupancy series (Fig. 8), drives needed per minute and at a
/// coverage level (Fig. 9).
///
/// `load_multiplier` re-scales measured page counts back to full-scale
/// units when the simulation ran on a proportionally shrunk trace.
#[derive(Debug, Clone)]
pub struct OccupancyTracker {
    spec: SsdSpec,
    minutes: Vec<MinuteLoad>,
    load_multiplier: f64,
}

impl OccupancyTracker {
    /// Creates a tracker for `total_minutes` of trace time.
    pub fn new(spec: SsdSpec, total_minutes: usize) -> Self {
        OccupancyTracker {
            spec,
            minutes: vec![MinuteLoad::default(); total_minutes],
            load_multiplier: 1.0,
        }
    }

    /// Sets the factor by which recorded loads are multiplied when
    /// computing occupancy (use the trace scale denominator).
    #[must_use]
    pub fn with_load_multiplier(mut self, multiplier: f64) -> Self {
        self.load_multiplier = multiplier;
        self
    }

    /// The device spec in use.
    pub fn spec(&self) -> &SsdSpec {
        &self.spec
    }

    /// Number of tracked minutes.
    pub fn len_minutes(&self) -> usize {
        self.minutes.len()
    }

    fn slot(&mut self, minute: Minute) -> &mut MinuteLoad {
        let idx = minute.as_usize();
        if idx >= self.minutes.len() {
            self.minutes.resize(idx + 1, MinuteLoad::default());
        }
        &mut self.minutes[idx]
    }

    /// Records 4 KiB read operations in a minute.
    pub fn record_read_pages(&mut self, minute: Minute, pages: u64) {
        self.slot(minute).read_pages += pages;
    }

    /// Records 4 KiB write operations in a minute.
    pub fn record_write_pages(&mut self, minute: Minute, pages: u64) {
        self.slot(minute).write_pages += pages;
    }

    /// Folds another tracker's per-minute loads into this one with
    /// elementwise integer adds (growing to the longer series). Merging
    /// is commutative and associative, so per-shard trackers from the
    /// parallel replay engine combine into the same series in any order.
    /// The receiver keeps its own spec and load multiplier.
    pub fn merge(&mut self, other: &OccupancyTracker) {
        if other.minutes.len() > self.minutes.len() {
            self.minutes
                .resize(other.minutes.len(), MinuteLoad::default());
        }
        for (mine, theirs) in self.minutes.iter_mut().zip(&other.minutes) {
            mine.read_pages += theirs.read_pages;
            mine.write_pages += theirs.write_pages;
        }
    }

    /// The raw load recorded for a minute.
    pub fn load(&self, minute: Minute) -> MinuteLoad {
        self.minutes
            .get(minute.as_usize())
            .copied()
            .unwrap_or_default()
    }

    /// Drive-IOPS occupancy of one minute: busy seconds divided by 60.
    /// Values above 1.0 mean more than one drive is needed.
    pub fn occupancy(&self, minute: Minute) -> f64 {
        self.occupancy_of(self.load(minute))
    }

    fn occupancy_of(&self, load: MinuteLoad) -> f64 {
        let busy = load.read_pages as f64 * self.spec.read_service_secs()
            + load.write_pages as f64 * self.spec.write_service_secs();
        busy * self.load_multiplier / 60.0
    }

    /// The full per-minute occupancy series (Figure 8's Y values).
    pub fn occupancy_series(&self) -> Vec<f64> {
        self.minutes.iter().map(|&l| self.occupancy_of(l)).collect()
    }

    /// Drives needed in one minute: the occupancy rounded up.
    pub fn drives_needed(&self, minute: Minute) -> u32 {
        Self::drives_of(self.occupancy(minute))
    }

    fn drives_of(occupancy: f64) -> u32 {
        occupancy.ceil() as u32
    }

    /// Per-minute drives-needed series, sorted ascending (Figure 9's
    /// presentation: minutes ordered by requirement, not chronology).
    pub fn drives_needed_sorted(&self) -> Vec<u32> {
        let mut v: Vec<u32> = self
            .occupancy_series()
            .into_iter()
            .map(Self::drives_of)
            .collect();
        v.sort_unstable();
        v
    }

    /// Drives needed to cover `coverage` (in `(0, 1]`) of trace minutes.
    /// `coverage = 1.0` is the worst-case minute.
    ///
    /// # Panics
    ///
    /// Panics if `coverage` is not in `(0, 1]` or no minutes are tracked.
    pub fn drives_for_coverage(&self, coverage: f64) -> u32 {
        assert!(
            coverage > 0.0 && coverage <= 1.0,
            "coverage must be in (0, 1]"
        );
        let sorted = self.drives_needed_sorted();
        assert!(!sorted.is_empty(), "no minutes tracked");
        let idx = ((sorted.len() as f64 * coverage).ceil() as usize).clamp(1, sorted.len());
        sorted[idx - 1]
    }

    /// Fraction of minutes whose occupancy stays at or below 1.0 (i.e. a
    /// single drive suffices).
    pub fn single_drive_coverage(&self) -> f64 {
        if self.minutes.is_empty() {
            return 1.0;
        }
        let ok = self
            .occupancy_series()
            .iter()
            .filter(|&&o| o <= 1.0)
            .count();
        ok as f64 / self.minutes.len() as f64
    }

    /// Total bytes written over the trace (full-scale, multiplier applied).
    pub fn total_write_bytes(&self) -> f64 {
        let pages: u64 = self.minutes.iter().map(|l| l.write_pages).sum();
        pages as f64 * PAGE_SIZE as f64 * self.load_multiplier
    }

    /// Bandwidth of the busiest minute, MB/s (full-scale); used to check
    /// the paper's network/bandwidth feasibility argument.
    pub fn peak_bandwidth_mbps(&self) -> f64 {
        self.minutes
            .iter()
            .map(|l| l.total_pages() as f64 * PAGE_SIZE as f64 * self.load_multiplier / 60.0 / 1e6)
            .fold(0.0, f64::max)
    }
}

/// Endurance lifetime in years given bytes written per day.
///
/// The paper's check: under 500 M 512-byte writes/day against the X25-E's
/// 1 PB rating, lifetime exceeds 10 years.
///
/// # Examples
///
/// ```
/// use sievestore_ssd::{endurance_years, SsdSpec};
/// let daily = 500.0e6 * 512.0; // 500M 512-B writes per day
/// let years = endurance_years(&SsdSpec::x25e(), daily);
/// assert!(years > 10.0);
/// ```
pub fn endurance_years(spec: &SsdSpec, bytes_written_per_day: f64) -> f64 {
    if bytes_written_per_day <= 0.0 {
        return f64::INFINITY;
    }
    spec.endurance_bytes as f64 / (bytes_written_per_day * 365.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn x25e_matches_paper_parameters() {
        let spec = SsdSpec::x25e();
        assert_eq!(spec.read_iops, 35_000.0);
        assert_eq!(spec.write_iops, 3_300.0);
        assert_eq!(spec.seq_read_mbps, 250.0);
        assert_eq!(spec.seq_write_mbps, 170.0);
        // Random bandwidths from §4: ~140 MB/s reads, ~13.2 MB/s writes.
        assert!((spec.random_read_mbps() - 143.36).abs() < 0.01);
        assert!((spec.random_write_mbps() - 13.52).abs() < 0.01);
    }

    #[test]
    fn hdd_is_orders_of_magnitude_slower() {
        let ssd = SsdSpec::x25e();
        let hdd = SsdSpec::enterprise_hdd();
        assert!(ssd.read_iops / hdd.read_iops >= 100.0);
        assert!(ssd.write_iops / hdd.write_iops >= 10.0);
    }

    #[test]
    fn occupancy_is_linear_in_load() {
        let mut t = OccupancyTracker::new(SsdSpec::x25e(), 1);
        // Half a drive-minute of reads.
        t.record_read_pages(Minute::new(0), 35_000 * 30);
        assert!((t.occupancy(Minute::new(0)) - 0.5).abs() < 1e-9);
        // Add half a drive-minute of writes.
        t.record_write_pages(Minute::new(0), 3_300 * 30);
        assert!((t.occupancy(Minute::new(0)) - 1.0).abs() < 1e-9);
        assert_eq!(t.drives_needed(Minute::new(0)), 1);
        t.record_write_pages(Minute::new(0), 1);
        assert_eq!(t.drives_needed(Minute::new(0)), 2);
    }

    #[test]
    fn writes_cost_more_than_reads() {
        let spec = SsdSpec::x25e();
        assert!(spec.write_service_secs() > 10.0 * spec.read_service_secs());
    }

    #[test]
    fn load_multiplier_upscales() {
        let mut t = OccupancyTracker::new(SsdSpec::x25e(), 1).with_load_multiplier(256.0);
        t.record_read_pages(Minute::new(0), 35_000 * 60 / 256);
        let occ = t.occupancy(Minute::new(0));
        assert!((occ - 1.0).abs() < 0.01, "occupancy {occ}");
    }

    #[test]
    fn tracker_grows_for_out_of_range_minutes() {
        let mut t = OccupancyTracker::new(SsdSpec::x25e(), 2);
        t.record_write_pages(Minute::new(10), 5);
        assert_eq!(t.len_minutes(), 11);
        assert_eq!(t.load(Minute::new(10)).write_pages, 5);
        assert_eq!(t.load(Minute::new(100)), MinuteLoad::default());
    }

    #[test]
    fn merge_sums_loads_and_grows_to_longer_series() {
        let mut a = OccupancyTracker::new(SsdSpec::x25e(), 2);
        a.record_read_pages(Minute::new(0), 10);
        a.record_write_pages(Minute::new(1), 3);
        let mut b = OccupancyTracker::new(SsdSpec::x25e(), 4);
        b.record_read_pages(Minute::new(0), 5);
        b.record_write_pages(Minute::new(3), 7);
        let mut ab = a.clone();
        ab.merge(&b);
        assert_eq!(ab.len_minutes(), 4);
        assert_eq!(ab.load(Minute::new(0)).read_pages, 15);
        assert_eq!(ab.load(Minute::new(1)).write_pages, 3);
        assert_eq!(ab.load(Minute::new(3)).write_pages, 7);
        // Commutative: merging the other way yields the same series.
        let mut ba = b.clone();
        ba.merge(&a);
        for m in 0..4 {
            assert_eq!(ab.load(Minute::new(m)), ba.load(Minute::new(m)));
        }
    }

    #[test]
    fn coverage_quantiles() {
        let mut t = OccupancyTracker::new(SsdSpec::x25e(), 10);
        // 9 idle minutes, 1 minute needing 3 drives.
        t.record_write_pages(Minute::new(7), 3_300 * 60 * 2 + 60);
        assert_eq!(t.drives_for_coverage(0.9), 0);
        assert_eq!(t.drives_for_coverage(1.0), 3);
        assert!((t.single_drive_coverage() - 0.9).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "coverage")]
    fn zero_coverage_panics() {
        let t = OccupancyTracker::new(SsdSpec::x25e(), 1);
        let _ = t.drives_for_coverage(0.0);
    }

    #[test]
    fn endurance_matches_paper_example() {
        // 500M 512-B writes/day on a 1 PB drive: ~10.7 years.
        let years = endurance_years(&SsdSpec::x25e(), 500.0e6 * 512.0);
        assert!((10.0..12.0).contains(&years), "{years}");
        assert!(endurance_years(&SsdSpec::x25e(), 0.0).is_infinite());
    }

    #[test]
    fn write_bytes_and_bandwidth_accounting() {
        let mut t = OccupancyTracker::new(SsdSpec::x25e(), 2).with_load_multiplier(2.0);
        t.record_write_pages(Minute::new(0), 100);
        t.record_read_pages(Minute::new(1), 50);
        assert_eq!(t.total_write_bytes(), 100.0 * 4096.0 * 2.0);
        let peak = t.peak_bandwidth_mbps();
        assert!((peak - 100.0 * 4096.0 * 2.0 / 60.0 / 1e6).abs() < 1e-9);
    }

    #[test]
    fn display_is_informative() {
        let s = SsdSpec::x25e().to_string();
        assert!(s.contains("X25-E"));
        assert!(s.contains("35000"));
    }

    proptest! {
        #[test]
        fn drives_needed_is_monotone_in_coverage(
            loads in proptest::collection::vec(0u64..200_000, 1..200),
        ) {
            let mut t = OccupancyTracker::new(SsdSpec::x25e(), loads.len());
            for (i, &l) in loads.iter().enumerate() {
                t.record_write_pages(Minute::new(i as u32), l);
            }
            let c50 = t.drives_for_coverage(0.5);
            let c99 = t.drives_for_coverage(0.99);
            let c100 = t.drives_for_coverage(1.0);
            prop_assert!(c50 <= c99);
            prop_assert!(c99 <= c100);
            let max_series = t.drives_needed_sorted().last().copied().unwrap();
            prop_assert_eq!(c100, max_series);
        }

        #[test]
        fn occupancy_additive_across_reads_and_writes(r in 0u64..100_000, w in 0u64..100_000) {
            let spec = SsdSpec::x25e();
            let mut both = OccupancyTracker::new(spec.clone(), 1);
            both.record_read_pages(Minute::new(0), r);
            both.record_write_pages(Minute::new(0), w);
            let mut reads = OccupancyTracker::new(spec.clone(), 1);
            reads.record_read_pages(Minute::new(0), r);
            let mut writes = OccupancyTracker::new(spec, 1);
            writes.record_write_pages(Minute::new(0), w);
            let sum = reads.occupancy(Minute::new(0)) + writes.occupancy(Minute::new(0));
            prop_assert!((both.occupancy(Minute::new(0)) - sum).abs() < 1e-9);
        }
    }
}
