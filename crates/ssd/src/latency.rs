//! A simple service-time model for hit/miss latency accounting.
//!
//! The paper quantifies SieveStore's benefit in accesses captured and
//! drives needed; a deployment also cares about the implied *latency*
//! win: a hit is served at SSD service time, a bypass/miss at HDD service
//! time, and an allocation-write adds an SSD write on top of the HDD
//! fetch. This module turns a simulation's operation mix into mean
//! service times and speedups — an extension beyond the paper's figures,
//! using only the same device ratings.

use crate::SsdSpec;

/// Service times (microseconds per 4 KiB operation) derived from device
/// IOPS ratings.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyModel {
    /// SSD read service time, µs.
    pub ssd_read_us: f64,
    /// SSD write service time, µs.
    pub ssd_write_us: f64,
    /// HDD read service time, µs.
    pub hdd_read_us: f64,
    /// HDD write service time, µs.
    pub hdd_write_us: f64,
}

impl LatencyModel {
    /// Builds the model from two device specs (service time = 1/IOPS).
    pub fn from_specs(ssd: &SsdSpec, hdd: &SsdSpec) -> Self {
        LatencyModel {
            ssd_read_us: 1e6 / ssd.read_iops,
            ssd_write_us: 1e6 / ssd.write_iops,
            hdd_read_us: 1e6 / hdd.read_iops,
            hdd_write_us: 1e6 / hdd.write_iops,
        }
    }

    /// The paper's devices: X25-E SSD over 15k enterprise HDDs.
    ///
    /// # Examples
    ///
    /// ```
    /// let m = sievestore_ssd::LatencyModel::paper_default();
    /// assert!(m.hdd_read_us > 50.0 * m.ssd_read_us);
    /// ```
    pub fn paper_default() -> Self {
        LatencyModel::from_specs(&SsdSpec::x25e(), &SsdSpec::enterprise_hdd())
    }

    /// Mean service time per access (µs) for an operation mix, all
    /// quantities as fractions of total accesses. Misses are served by
    /// the HDD tier; allocation-writes add an SSD write (off the critical
    /// path of the triggering access, but device time nonetheless — set
    /// `charge_allocations` to include it).
    pub fn mean_access_us(
        &self,
        read_hit_frac: f64,
        write_hit_frac: f64,
        read_miss_frac: f64,
        write_miss_frac: f64,
        allocation_frac: f64,
        charge_allocations: bool,
    ) -> f64 {
        let mut t = read_hit_frac * self.ssd_read_us
            + write_hit_frac * self.ssd_write_us
            + read_miss_frac * self.hdd_read_us
            + write_miss_frac * self.hdd_write_us;
        if charge_allocations {
            t += allocation_frac * self.ssd_write_us;
        }
        t
    }

    /// Speedup of a cached configuration over serving everything from the
    /// HDD tier, for the given mix.
    pub fn speedup_vs_hdd(
        &self,
        read_hit_frac: f64,
        write_hit_frac: f64,
        read_miss_frac: f64,
        write_miss_frac: f64,
        allocation_frac: f64,
        charge_allocations: bool,
    ) -> f64 {
        let read_frac = read_hit_frac + read_miss_frac;
        let write_frac = write_hit_frac + write_miss_frac;
        let baseline = read_frac * self.hdd_read_us + write_frac * self.hdd_write_us;
        let cached = self.mean_access_us(
            read_hit_frac,
            write_hit_frac,
            read_miss_frac,
            write_miss_frac,
            allocation_frac,
            charge_allocations,
        );
        if cached <= 0.0 {
            return 1.0;
        }
        baseline / cached
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_service_times() {
        let m = LatencyModel::paper_default();
        assert!((m.ssd_read_us - 1e6 / 35_000.0).abs() < 1e-9);
        assert!((m.ssd_write_us - 1e6 / 3_300.0).abs() < 1e-9);
        assert!((m.hdd_read_us - 1e6 / 300.0).abs() < 1e-9);
    }

    #[test]
    fn all_hits_equal_ssd_time() {
        let m = LatencyModel::paper_default();
        let t = m.mean_access_us(1.0, 0.0, 0.0, 0.0, 0.0, true);
        assert!((t - m.ssd_read_us).abs() < 1e-9);
    }

    #[test]
    fn no_hits_equal_hdd_time() {
        let m = LatencyModel::paper_default();
        let t = m.mean_access_us(0.0, 0.0, 0.75, 0.25, 0.0, true);
        let expect = 0.75 * m.hdd_read_us + 0.25 * m.hdd_write_us;
        assert!((t - expect).abs() < 1e-9);
        let s = m.speedup_vs_hdd(0.0, 0.0, 0.75, 0.25, 0.0, true);
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn hits_speed_things_up_and_allocations_cost() {
        let m = LatencyModel::paper_default();
        let without = m.mean_access_us(0.3, 0.1, 0.45, 0.15, 0.6, false);
        let with = m.mean_access_us(0.3, 0.1, 0.45, 0.15, 0.6, true);
        assert!(with > without);
        let s = m.speedup_vs_hdd(0.3, 0.1, 0.45, 0.15, 0.0, true);
        assert!(s > 1.3, "35% hits should speed up storage, got {s}");
    }

    #[test]
    fn sieving_beats_aod_on_latency_at_equal_hits() {
        // Same 35% hit rate; AOD allocates on every miss, a sieve on ~1%.
        let m = LatencyModel::paper_default();
        let aod = m.speedup_vs_hdd(0.2625, 0.0875, 0.4875, 0.1625, 0.65, true);
        let sieved = m.speedup_vs_hdd(0.2625, 0.0875, 0.4875, 0.1625, 0.01, true);
        assert!(sieved > aod, "sieved {sieved} vs aod {aod}");
    }
}
