//! Discretized sliding-window miss counters.
//!
//! SieveStore-C logically counts a block's misses over the past `W` hours.
//! Keeping per-time-slice state is impractical, so the paper (§3.3)
//! discretizes the window into `k` subwindows of `W/k` each: an entry keeps
//! `k` counters plus the subwindow index of its last update. On an update,
//! if the current subwindow is `k` or more past the last update, all
//! counters are stale and zeroed; otherwise only the skipped subwindows
//! are cleared. The paper tunes `W` = 8 h with `k` = 4.

use sievestore_types::Micros;

/// Window discretization parameters.
///
/// # Examples
///
/// ```
/// use sievestore_sieve::WindowConfig;
/// use sievestore_types::Micros;
///
/// let w = WindowConfig::paper_default();
/// assert_eq!(w.subwindows, 4);
/// assert_eq!(w.subwindow_index(Micros::from_hours(3)), 1); // 2h subwindows
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowConfig {
    /// Window length `W`.
    pub window: Micros,
    /// Number of subwindows `k`.
    pub subwindows: u32,
}

impl WindowConfig {
    /// The paper's tuned parameters: `W` = 8 hours, `k` = 4.
    pub fn paper_default() -> Self {
        WindowConfig {
            window: Micros::from_hours(8),
            subwindows: 4,
        }
    }

    /// Creates a window configuration.
    ///
    /// # Panics
    ///
    /// Panics if the window is empty or `subwindows == 0`.
    pub fn new(window: Micros, subwindows: u32) -> Self {
        assert!(window.as_u64() > 0, "window must be nonempty");
        assert!(subwindows > 0, "need at least one subwindow");
        WindowConfig { window, subwindows }
    }

    /// Length of one subwindow in microseconds.
    pub fn subwindow_us(&self) -> u64 {
        (self.window.as_u64() / self.subwindows as u64).max(1)
    }

    /// The global subwindow index an instant falls in.
    pub fn subwindow_index(&self, now: Micros) -> u64 {
        now.as_u64() / self.subwindow_us()
    }
}

/// One entry's `k` subwindow counters plus its last-update index.
///
/// This is the building block of both the aliased IMCT and the precise MCT.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowedCounter {
    counts: Box<[u32]>,
    last_sub: u64,
    /// Whether the entry has ever been written (distinguishes subwindow 0).
    live: bool,
}

impl WindowedCounter {
    /// Creates a zeroed counter with `k` subwindows.
    pub fn new(subwindows: u32) -> Self {
        WindowedCounter {
            counts: vec![0; subwindows as usize].into_boxed_slice(),
            last_sub: 0,
            live: false,
        }
    }

    fn k(&self) -> u64 {
        self.counts.len() as u64
    }

    /// Expires subwindows between the last update and `now_sub`.
    fn roll_to(&mut self, now_sub: u64) {
        if !self.live {
            self.counts.iter_mut().for_each(|c| *c = 0);
            self.last_sub = now_sub;
            self.live = true;
            return;
        }
        if now_sub < self.last_sub {
            // Out-of-order timestamps: fold into the current subwindow.
            return;
        }
        let gap = now_sub - self.last_sub;
        if gap >= self.k() {
            // All counters are stale.
            self.counts.iter_mut().for_each(|c| *c = 0);
        } else {
            // Clear only the subwindows that were skipped over.
            for s in (self.last_sub + 1)..=now_sub {
                self.counts[(s % self.k()) as usize] = 0;
            }
        }
        self.last_sub = now_sub;
    }

    /// Advances the window to `now_sub` without recording an event
    /// (creates a live, zero-count window position).
    pub fn observe(&mut self, now_sub: u64) {
        self.roll_to(now_sub);
    }

    /// Records one event at global subwindow `now_sub`; returns the total
    /// count within the live window after the increment.
    pub fn record(&mut self, now_sub: u64) -> u32 {
        self.roll_to(now_sub);
        let idx = (self.last_sub % self.k()) as usize;
        self.counts[idx] = self.counts[idx].saturating_add(1);
        self.total_unchecked()
    }

    /// Current in-window total as of global subwindow `now_sub` (expires
    /// stale subwindows first).
    pub fn total(&mut self, now_sub: u64) -> u32 {
        self.roll_to(now_sub);
        self.total_unchecked()
    }

    fn total_unchecked(&self) -> u32 {
        self.counts.iter().sum()
    }

    /// Whether the entry is entirely stale as of `now_sub` (safe to prune).
    pub fn is_stale(&self, now_sub: u64) -> bool {
        !self.live || now_sub >= self.last_sub + self.k()
    }

    /// Zeroes the counter.
    pub fn reset(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.live = false;
        self.last_sub = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_default_is_8h_by_4() {
        let w = WindowConfig::paper_default();
        assert_eq!(w.window, Micros::from_hours(8));
        assert_eq!(w.subwindow_us(), Micros::from_hours(2).as_u64());
        assert_eq!(w.subwindow_index(Micros::from_hours(8)), 4);
    }

    #[test]
    #[should_panic(expected = "subwindow")]
    fn zero_subwindows_panics() {
        let _ = WindowConfig::new(Micros::from_hours(1), 0);
    }

    #[test]
    fn counts_accumulate_within_window() {
        let mut c = WindowedCounter::new(4);
        assert_eq!(c.record(0), 1);
        assert_eq!(c.record(0), 2);
        assert_eq!(c.record(1), 3);
        assert_eq!(c.record(3), 4);
    }

    #[test]
    fn jump_of_k_or_more_expires_everything() {
        let mut c = WindowedCounter::new(4);
        for _ in 0..5 {
            c.record(0);
        }
        assert_eq!(c.record(4), 1, "gap of k zeroes all counters");
        let mut c = WindowedCounter::new(4);
        c.record(2);
        assert_eq!(c.record(100), 1);
    }

    #[test]
    fn partial_expiry_clears_only_skipped_subwindows() {
        let mut c = WindowedCounter::new(4);
        c.record(0); // sub 0: 1
        c.record(1); // sub 1: 1
        c.record(2); // sub 2: 1
        c.record(3); // sub 3: 1
                     // Moving to sub 5 skips sub 4 (wraps to slot 0) and lands on slot 1:
                     // slots 0 and 1 are cleared, slots 2 and 3 (subs 2, 3) survive.
        assert_eq!(c.record(5), 3);
    }

    #[test]
    fn sliding_expiry_one_at_a_time() {
        let mut c = WindowedCounter::new(2);
        c.record(0);
        c.record(1);
        assert_eq!(c.total(1), 2);
        // Sub 2 evicts sub 0's count.
        assert_eq!(c.record(2), 2);
        // Sub 3 evicts sub 1's count.
        assert_eq!(c.record(3), 2);
    }

    #[test]
    fn out_of_order_updates_do_not_lose_counts() {
        let mut c = WindowedCounter::new(4);
        c.record(5);
        let total = c.record(3); // late event folds into the current window
        assert_eq!(total, 2);
    }

    #[test]
    fn staleness_and_reset() {
        let mut c = WindowedCounter::new(4);
        assert!(c.is_stale(0), "virgin counters are stale");
        c.record(10);
        assert!(!c.is_stale(12));
        assert!(c.is_stale(14));
        c.reset();
        assert!(c.is_stale(0));
        assert_eq!(c.total(20), 0);
    }

    #[test]
    fn first_event_at_late_subwindow() {
        let mut c = WindowedCounter::new(3);
        assert_eq!(c.record(1000), 1);
        assert_eq!(c.total(1001), 1);
        assert_eq!(c.total(1003), 0);
    }

    proptest! {
        /// The discretized window never counts events older than k
        /// subwindows and never forgets events in the current subwindow.
        #[test]
        fn window_bounds_hold(
            subs in proptest::collection::vec(0u64..40, 1..200),
            k in 1u32..6,
        ) {
            let mut sorted = subs.clone();
            sorted.sort_unstable();
            let mut c = WindowedCounter::new(k);
            let mut events: Vec<u64> = Vec::new();
            for &s in &sorted {
                c.record(s);
                events.push(s);
                let now = s;
                let total = c.total(now);
                // Exact semantics: events in subwindows (now - k, now] that
                // were not dropped by an intervening full reset. We bound
                // instead of replicate: at least the events in the current
                // subwindow, at most all events in the last k subwindows.
                let lower = events.iter().filter(|&&e| e == now).count() as u32;
                let upper = events
                    .iter()
                    .filter(|&&e| e + k as u64 > now)
                    .count() as u32;
                prop_assert!(total >= lower, "total {total} < lower {lower}");
                prop_assert!(total <= upper, "total {total} > upper {upper}");
            }
        }
    }
}
