//! The randomized sieving baselines (RandSieve-BlkD and RandSieve-C).
//!
//! The paper evaluates two randomized sieves to show that SieveStore's
//! gains come from *identifying* hot blocks rather than merely restricting
//! the allocation rate:
//!
//! * **RandSieve-BlkD** — a discrete variant that batch-allocates a random
//!   1 % of the blocks accessed in an epoch;
//! * **RandSieve-C** — a continuous variant that allocates a random 1 % of
//!   misses.
//!
//! Both perform only marginally better than unsieved allocation, because
//! ~60 % of all accesses come from low-reuse blocks: random sampling keeps
//! allocating those.

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use sievestore_types::SieveError;

/// RandSieve-C: admits each miss independently with a fixed probability.
///
/// # Examples
///
/// ```
/// use sievestore_sieve::RandomMissSieve;
///
/// let mut sieve = RandomMissSieve::new(0.01, 42).unwrap();
/// let admitted = (0..10_000).filter(|_| sieve.on_miss()).count();
/// assert!((50..200).contains(&admitted)); // ~1%
/// ```
#[derive(Debug, Clone)]
pub struct RandomMissSieve {
    probability: f64,
    rng: SmallRng,
    misses: u64,
    granted: u64,
}

impl RandomMissSieve {
    /// The paper's sampling rate: allocate 1 % of misses.
    pub const PAPER_PROBABILITY: f64 = 0.01;

    /// Creates a sieve admitting each miss with `probability`.
    ///
    /// # Errors
    ///
    /// Returns [`SieveError::InvalidConfig`] unless
    /// `0.0 <= probability <= 1.0`.
    pub fn new(probability: f64, seed: u64) -> Result<Self, SieveError> {
        if !(0.0..=1.0).contains(&probability) {
            return Err(SieveError::InvalidConfig(format!(
                "admission probability must be in [0,1], got {probability}"
            )));
        }
        Ok(RandomMissSieve {
            probability,
            rng: SmallRng::seed_from_u64(seed),
            misses: 0,
            granted: 0,
        })
    }

    /// Decides one miss; `true` means allocate.
    pub fn on_miss(&mut self) -> bool {
        self.misses += 1;
        let grant = self.rng.random::<f64>() < self.probability;
        if grant {
            self.granted += 1;
        }
        grant
    }

    /// Misses decided so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Allocations granted so far.
    pub fn granted(&self) -> u64 {
        self.granted
    }
}

/// RandSieve-BlkD's epoch selection: a uniformly random `fraction` of the
/// distinct blocks accessed in an epoch, chosen deterministically from
/// `seed` (reservoir sampling).
///
/// # Examples
///
/// ```
/// use sievestore_sieve::random_block_selection;
///
/// let accessed: Vec<u64> = (0..1000).collect();
/// let picked = random_block_selection(accessed.iter().copied(), 0.01, 7);
/// assert_eq!(picked.len(), 10);
/// ```
///
/// # Panics
///
/// Panics if `fraction` is not in `[0, 1]`.
pub fn random_block_selection(
    accessed: impl Iterator<Item = u64>,
    fraction: f64,
    seed: u64,
) -> Vec<u64> {
    assert!(
        (0.0..=1.0).contains(&fraction),
        "selection fraction must be in [0,1]"
    );
    // Reservoir sampling over the (deduplicated upstream) block stream.
    // Two passes would need the caller to collect anyway, so sample to an
    // unknown-size reservoir: first collect count, then size the reservoir.
    let items: Vec<u64> = accessed.collect();
    let k = (items.len() as f64 * fraction).round() as usize;
    if k == 0 {
        return Vec::new();
    }
    if k >= items.len() {
        return items;
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut reservoir: Vec<u64> = items[..k].to_vec();
    for (i, &item) in items.iter().enumerate().skip(k) {
        let j = rng.random_range(0..=i);
        if j < k {
            reservoir[j] = item;
        }
    }
    reservoir
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn rejects_bad_probability() {
        assert!(RandomMissSieve::new(-0.1, 0).is_err());
        assert!(RandomMissSieve::new(1.1, 0).is_err());
        assert!(RandomMissSieve::new(0.0, 0).is_ok());
        assert!(RandomMissSieve::new(1.0, 0).is_ok());
    }

    #[test]
    fn admission_rate_approximates_probability() {
        let mut sieve = RandomMissSieve::new(0.25, 9).unwrap();
        let n = 100_000;
        let granted = (0..n).filter(|_| sieve.on_miss()).count();
        let rate = granted as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
        assert_eq!(sieve.misses(), n as u64);
        assert_eq!(sieve.granted(), granted as u64);
    }

    #[test]
    fn extreme_probabilities() {
        let mut never = RandomMissSieve::new(0.0, 1).unwrap();
        assert!((0..1000).all(|_| !never.on_miss()));
        let mut always = RandomMissSieve::new(1.0, 1).unwrap();
        assert!((0..1000).all(|_| always.on_miss()));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = RandomMissSieve::new(0.5, 123).unwrap();
        let mut b = RandomMissSieve::new(0.5, 123).unwrap();
        for _ in 0..1000 {
            assert_eq!(a.on_miss(), b.on_miss());
        }
    }

    #[test]
    fn block_selection_size_and_membership() {
        let blocks: Vec<u64> = (0..10_000).collect();
        let picked = random_block_selection(blocks.iter().copied(), 0.01, 5);
        assert_eq!(picked.len(), 100);
        let set: HashSet<u64> = picked.iter().copied().collect();
        assert_eq!(set.len(), 100, "no duplicates");
        assert!(set.iter().all(|&b| b < 10_000));
    }

    #[test]
    fn block_selection_edge_fractions() {
        let blocks: Vec<u64> = (0..100).collect();
        assert!(random_block_selection(blocks.iter().copied(), 0.0, 1).is_empty());
        assert_eq!(
            random_block_selection(blocks.iter().copied(), 1.0, 1).len(),
            100
        );
        assert!(random_block_selection(std::iter::empty(), 0.5, 1).is_empty());
    }

    #[test]
    fn block_selection_is_deterministic_and_seed_sensitive() {
        let blocks: Vec<u64> = (0..5000).collect();
        let a = random_block_selection(blocks.iter().copied(), 0.02, 11);
        let b = random_block_selection(blocks.iter().copied(), 0.02, 11);
        let c = random_block_selection(blocks.iter().copied(), 0.02, 12);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn block_selection_is_roughly_uniform() {
        // Selecting 10% of 0..10_000 repeatedly: each half should receive
        // about half the picks.
        let blocks: Vec<u64> = (0..10_000).collect();
        let mut low = 0usize;
        let mut total = 0usize;
        for seed in 0..20 {
            for b in random_block_selection(blocks.iter().copied(), 0.1, seed) {
                total += 1;
                if b < 5_000 {
                    low += 1;
                }
            }
        }
        let frac = low as f64 / total as f64;
        assert!((frac - 0.5).abs() < 0.05, "low-half fraction {frac}");
    }
}
