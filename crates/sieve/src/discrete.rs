//! SieveStore-D's access-count discrete batch-allocation (ADBA) sieve.
//!
//! All accesses of an epoch are counted (via any
//! [`AccessCounter`] — the in-memory
//! map or the paper's hash-partitioned log), and at the epoch boundary the
//! blocks whose count reached the threshold `t` (paper: `t` = 10 with
//! one-day epochs) are selected for batch allocation into the next epoch's
//! cache.

use sievestore_extsort::{AccessCounter, AccessCounts, InMemoryCounter};
use sievestore_types::SieveError;

/// The epoch-batched access-count sieve, generic over the counting
/// substrate.
///
/// # Examples
///
/// ```
/// use sievestore_extsort::InMemoryCounter;
/// use sievestore_sieve::DiscreteSieve;
///
/// let mut sieve = DiscreteSieve::new(InMemoryCounter::new(), 3).unwrap();
/// for _ in 0..3 {
///     sieve.record_access(11);
/// }
/// sieve.record_access(22);
/// let selected = sieve.end_epoch(InMemoryCounter::new()).unwrap();
/// assert_eq!(selected, vec![11]);
/// ```
#[derive(Debug)]
pub struct DiscreteSieve<C: AccessCounter> {
    counter: Option<C>,
    threshold: u64,
    epoch: u64,
}

impl<C: AccessCounter> DiscreteSieve<C> {
    /// The paper's allocation threshold: 10 accesses per (one-day) epoch.
    pub const PAPER_THRESHOLD: u64 = 10;

    /// Creates a sieve using `counter` for the first epoch.
    ///
    /// # Errors
    ///
    /// Returns [`SieveError::InvalidConfig`] if `threshold == 0`.
    pub fn new(counter: C, threshold: u64) -> Result<Self, SieveError> {
        if threshold == 0 {
            return Err(SieveError::InvalidConfig(
                "discrete sieve threshold must be positive".into(),
            ));
        }
        Ok(DiscreteSieve {
            counter: Some(counter),
            threshold,
            epoch: 0,
        })
    }

    /// The allocation threshold `t`.
    pub fn threshold(&self) -> u64 {
        self.threshold
    }

    /// The current epoch index (starts at 0, advances per `end_epoch`).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Records one access in the current epoch.
    pub fn record_access(&mut self, key: u64) {
        self.counter
            .as_mut()
            .expect("counter present between epochs")
            .record(key);
    }

    /// Ends the epoch: finalizes the counts, installs `next` as the new
    /// epoch's counter, and returns the selected block keys (sorted).
    ///
    /// Selection goes through [`AccessCounter::finish_selection`], so a
    /// spill-backed substrate never materializes the epoch's full
    /// distinct-key totals — only the selected keys.
    ///
    /// # Errors
    ///
    /// Propagates failures from finalizing the counting substrate.
    pub fn end_epoch(&mut self, next: C) -> Result<Vec<u64>, SieveError> {
        let counter = self.counter.take().expect("counter present");
        let selected = counter.finish_selection(self.threshold)?;
        self.counter = Some(next);
        self.epoch += 1;
        Ok(selected)
    }

    /// Like [`DiscreteSieve::end_epoch`] but returns the full counts, for
    /// callers that also need totals (e.g. the ideal top-1 % oracle).
    ///
    /// # Errors
    ///
    /// Propagates failures from finalizing the counting substrate.
    pub fn end_epoch_with_counts(&mut self, next: C) -> Result<AccessCounts, SieveError> {
        let counter = self.counter.take().expect("counter present");
        let counts = counter.finish()?;
        self.counter = Some(next);
        self.epoch += 1;
        Ok(counts)
    }
}

impl DiscreteSieve<InMemoryCounter> {
    /// Convenience constructor for the in-memory substrate with the
    /// paper's threshold of 10.
    ///
    /// # Examples
    ///
    /// ```
    /// let sieve = sievestore_sieve::DiscreteSieve::in_memory_paper_default();
    /// assert_eq!(sieve.threshold(), 10);
    /// ```
    pub fn in_memory_paper_default() -> Self {
        DiscreteSieve::new(InMemoryCounter::new(), Self::PAPER_THRESHOLD)
            .expect("paper threshold is valid")
    }

    /// Ends the epoch with a fresh in-memory counter.
    ///
    /// # Errors
    ///
    /// Never fails for the in-memory substrate; the `Result` mirrors the
    /// generic interface.
    pub fn end_epoch_in_memory(&mut self) -> Result<Vec<u64>, SieveError> {
        self.end_epoch(InMemoryCounter::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sievestore_extsort::AccessLog;

    #[test]
    fn zero_threshold_is_rejected() {
        assert!(DiscreteSieve::new(InMemoryCounter::new(), 0).is_err());
    }

    #[test]
    fn selects_exactly_blocks_at_or_over_threshold() {
        let mut sieve = DiscreteSieve::new(InMemoryCounter::new(), 10).unwrap();
        for _ in 0..10 {
            sieve.record_access(1); // exactly at threshold
        }
        for _ in 0..11 {
            sieve.record_access(2); // over
        }
        for _ in 0..9 {
            sieve.record_access(3); // under
        }
        let selected = sieve.end_epoch_in_memory().unwrap();
        assert_eq!(selected, vec![1, 2]);
    }

    #[test]
    fn epochs_are_independent() {
        let mut sieve = DiscreteSieve::new(InMemoryCounter::new(), 2).unwrap();
        sieve.record_access(1);
        assert_eq!(sieve.end_epoch_in_memory().unwrap(), Vec::<u64>::new());
        assert_eq!(sieve.epoch(), 1);
        // The single access from epoch 0 must not carry over.
        sieve.record_access(1);
        assert_eq!(sieve.end_epoch_in_memory().unwrap(), Vec::<u64>::new());
        sieve.record_access(4);
        sieve.record_access(4);
        assert_eq!(sieve.end_epoch_in_memory().unwrap(), vec![4]);
        assert_eq!(sieve.epoch(), 3);
    }

    #[test]
    fn counts_variant_exposes_totals() {
        let mut sieve = DiscreteSieve::new(InMemoryCounter::new(), 5).unwrap();
        sieve.record_access(9);
        sieve.record_access(9);
        let counts = sieve.end_epoch_with_counts(InMemoryCounter::new()).unwrap();
        assert_eq!(counts.get(9), 2);
        assert_eq!(counts.total_accesses(), 2);
    }

    #[test]
    fn works_over_the_external_log_substrate() {
        let dir = std::env::temp_dir().join(format!("sievestore-dsieve-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let log = AccessLog::create(&dir, 4).unwrap();
        let mut sieve = DiscreteSieve::new(log, 3).unwrap();
        for _ in 0..3 {
            sieve.record_access(42);
        }
        sieve.record_access(43);
        let next = AccessLog::create(dir.join("next"), 4).unwrap();
        let selected = sieve.end_epoch(next).unwrap();
        assert_eq!(selected, vec![42]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
