//! Sieving: selective cache allocation for SieveStore.
//!
//! "Sieving" is the paper's core mechanism — deciding, per miss or per
//! epoch, whether a block has earned a cache frame, so that low-reuse
//! blocks never trigger allocation-writes. This crate provides every
//! sieving data structure the paper describes:
//!
//! * [`WindowedCounter`] / [`WindowConfig`] — discretized sliding-window
//!   miss counts (`W` = 8 h in `k` = 4 subwindows);
//! * [`Imct`] — the fixed-size, aliased imprecise miss-count table;
//! * [`Mct`] — the precise, prunable miss-count table;
//! * [`TwoTierSieve`] — SieveStore-C's IMCT→MCT admission pipeline
//!   (`t1` = 9 imprecise, then `t2` = 4 precise misses);
//! * [`DiscreteSieve`] — SieveStore-D's epoch access-count rule
//!   (`count >= 10` per day), generic over the counting substrate;
//! * [`RandomMissSieve`] / [`random_block_selection`] — the randomized
//!   baselines RandSieve-C and RandSieve-BlkD.
//!
//! # Examples
//!
//! ```
//! use sievestore_sieve::{TwoTierConfig, TwoTierSieve};
//! use sievestore_types::Micros;
//!
//! let mut sieve = TwoTierSieve::new(TwoTierConfig::paper_default()).unwrap();
//! let now = Micros::from_hours(1);
//! // A single-touch block does not earn a frame.
//! assert!(!sieve.on_miss(123, now));
//! ```

#![warn(missing_docs)]

pub mod discrete;
pub mod random;
pub mod tables;
pub mod two_tier;
pub mod window;

pub use discrete::DiscreteSieve;
pub use random::{random_block_selection, RandomMissSieve};
pub use tables::{Imct, Mct};
pub use two_tier::{TwoTierConfig, TwoTierSieve};
pub use window::{WindowConfig, WindowedCounter};
