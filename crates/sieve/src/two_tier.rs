//! The two-tier sieve of SieveStore-C.
//!
//! Flow on every cache miss (§3.3): the miss is first counted in the
//! aliased [`Imct`]. Only once a block's (possibly inflated)
//! IMCT count reaches `t1` does the block graduate to the precise
//! [`Mct`], where it must see `t2` *additional* misses within
//! the window before it qualifies for allocation. The paper tunes
//! `t1` = 9 and `t2` = 4 over an 8-hour window of 4 subwindows, and
//! reports ~8 GB of metastate for its traces.

use sievestore_types::{obs_count, obs_gauge_set, Micros, SieveError};

use crate::tables::{Imct, Mct};
use crate::window::WindowConfig;

/// Parameters of the two-tier sieve.
///
/// # Examples
///
/// ```
/// let cfg = sievestore_sieve::TwoTierConfig::paper_default();
/// assert_eq!(cfg.t1, 9);
/// assert_eq!(cfg.t2, 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TwoTierConfig {
    /// IMCT graduation threshold (imprecise misses).
    pub t1: u32,
    /// MCT allocation threshold (additional precise misses).
    pub t2: u32,
    /// Miss-count window discretization.
    pub window: WindowConfig,
    /// Number of IMCT slots.
    pub imct_entries: usize,
}

impl TwoTierConfig {
    /// The paper's tuned parameters: `t1` = 9, `t2` = 4, `W` = 8 h, `k` = 4.
    /// The IMCT size defaults to 2^20 slots; scale it with the workload.
    pub fn paper_default() -> Self {
        TwoTierConfig {
            t1: 9,
            t2: 4,
            window: WindowConfig::paper_default(),
            imct_entries: 1 << 20,
        }
    }

    /// Sets the IMCT slot count.
    #[must_use]
    pub fn with_imct_entries(mut self, entries: usize) -> Self {
        self.imct_entries = entries;
        self
    }

    /// Sets the thresholds.
    #[must_use]
    pub fn with_thresholds(mut self, t1: u32, t2: u32) -> Self {
        self.t1 = t1;
        self.t2 = t2;
        self
    }

    /// Sets the window discretization.
    #[must_use]
    pub fn with_window(mut self, window: WindowConfig) -> Self {
        self.window = window;
        self
    }

    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`SieveError::InvalidConfig`] for a zero-sized IMCT or zero
    /// thresholds.
    pub fn validate(&self) -> Result<(), SieveError> {
        if self.imct_entries == 0 {
            return Err(SieveError::InvalidConfig("imct_entries must be > 0".into()));
        }
        if self.t1 == 0 || self.t2 == 0 {
            return Err(SieveError::InvalidConfig(
                "sieve thresholds must be positive".into(),
            ));
        }
        Ok(())
    }

    /// Validates that this configuration can be split across `shards`
    /// parallel workers: the shard count must divide the IMCT slot count
    /// so slot ownership aligns with the `mix64` key partition.
    ///
    /// # Errors
    ///
    /// Returns [`SieveError::InvalidConfig`] if `shards` is zero or does
    /// not divide `imct_entries`.
    pub fn validate_sharding(&self, shards: usize) -> Result<(), SieveError> {
        self.validate()?;
        if shards == 0 {
            return Err(SieveError::InvalidConfig("shard count must be > 0".into()));
        }
        if !self.imct_entries.is_multiple_of(shards) {
            return Err(SieveError::InvalidConfig(format!(
                "shard count {shards} must divide imct_entries {}",
                self.imct_entries
            )));
        }
        Ok(())
    }
}

impl Default for TwoTierConfig {
    fn default() -> Self {
        TwoTierConfig::paper_default()
    }
}

/// The IMCT + MCT sieve: decides, per miss, whether a block has earned a
/// cache frame.
///
/// # Examples
///
/// ```
/// use sievestore_sieve::{TwoTierConfig, TwoTierSieve};
/// use sievestore_types::Micros;
///
/// let cfg = TwoTierConfig::paper_default()
///     .with_imct_entries(1024)
///     .with_thresholds(2, 2);
/// let mut sieve = TwoTierSieve::new(cfg).unwrap();
/// let now = Micros::from_hours(1);
/// // Miss 2 graduates the block through the IMCT; misses 3-4 are the
/// // additional precise misses; the 4th qualifies it.
/// assert!(!sieve.on_miss(7, now));
/// assert!(!sieve.on_miss(7, now));
/// assert!(!sieve.on_miss(7, now));
/// assert!(sieve.on_miss(7, now));
/// ```
#[derive(Debug, Clone)]
pub struct TwoTierSieve {
    config: TwoTierConfig,
    imct: Imct,
    mct: Mct,
    misses_seen: u64,
    /// Subwindow of the most recent miss; MCT pruning triggers when it
    /// advances, so prune timing is a function of trace time alone (not
    /// of how many misses this instance happened to observe — which
    /// keeps a sharded sieve's per-key state identical to a sequential
    /// one's).
    last_sub: Option<u64>,
    /// Diagnostics: how many misses graduated past the IMCT.
    graduated: u64,
    /// Diagnostics: how many allocations were granted.
    granted: u64,
}

impl TwoTierSieve {
    /// Creates a sieve.
    ///
    /// # Errors
    ///
    /// Returns [`SieveError::InvalidConfig`] if `config` fails validation.
    pub fn new(config: TwoTierConfig) -> Result<Self, SieveError> {
        config.validate()?;
        Ok(TwoTierSieve {
            imct: Imct::new(config.imct_entries, config.window),
            mct: Mct::new(config.window),
            config,
            misses_seen: 0,
            last_sub: None,
            graduated: 0,
            granted: 0,
        })
    }

    /// Creates shard `shard` of a sieve split across `shards` parallel
    /// workers: the IMCT holds this shard's slice of the logical slot
    /// array ([`Imct::for_shard`]) and the MCT starts empty (it is
    /// per-key, so hash partitioning splits it trivially).
    ///
    /// Fed only the misses of keys with `shard_of(key, shards) == shard`,
    /// the shard reproduces the whole sieve's decisions for those keys
    /// exactly — see the sharded-replay design notes.
    ///
    /// # Errors
    ///
    /// Returns [`SieveError::InvalidConfig`] if `config` fails validation
    /// or `shards` does not divide `config.imct_entries`.
    pub fn for_shard(
        config: TwoTierConfig,
        shard: usize,
        shards: usize,
    ) -> Result<Self, SieveError> {
        config.validate_sharding(shards)?;
        if shard >= shards {
            return Err(SieveError::InvalidConfig(format!(
                "shard index {shard} out of range for {shards} shards"
            )));
        }
        Ok(TwoTierSieve {
            imct: Imct::for_shard(config.imct_entries, shard, shards, config.window),
            mct: Mct::new(config.window),
            config,
            misses_seen: 0,
            last_sub: None,
            graduated: 0,
            granted: 0,
        })
    }

    /// The sieve's configuration.
    pub fn config(&self) -> &TwoTierConfig {
        &self.config
    }

    /// Processes one miss at time `now`. Returns `true` if the block has
    /// now qualified for allocation (the paper's lazy n-th-miss rule).
    ///
    /// Qualification resets the block's MCT entry, so a block that gets
    /// allocated, evicted and misses again must re-earn its frame.
    ///
    /// Stale MCT entries are pruned at subwindow boundaries, before the
    /// first miss of each new subwindow is processed. Staleness is
    /// constant within a subwindow, so any key's visible MCT state
    /// depends only on the subwindow sequence of its own misses — not on
    /// interleaved misses of other keys.
    pub fn on_miss(&mut self, key: u64, now: Micros) -> bool {
        self.misses_seen += 1;
        let sub = self.config.window.subwindow_index(now);
        match self.last_sub {
            Some(prev) if sub > prev => {
                self.mct.prune(now);
                self.last_sub = Some(sub);
            }
            None => self.last_sub = Some(sub),
            _ => {}
        }
        let imct_count = self.imct.record_miss(key, now);
        if imct_count < self.config.t1 {
            obs_count!(SieveRejections, 1);
            return false;
        }
        self.graduated += 1;
        obs_count!(SieveGraduations, 1);
        if !self.mct.ensure(key, now) {
            // The miss that first graduates a block past the IMCT does not
            // count toward the *additional* t2 precise misses.
            obs_count!(SieveRejections, 1);
            obs_gauge_set!(MctTrackedBlocks, self.mct.len() as i64);
            return false;
        }
        let mct_count = self.mct.record_miss(key, now);
        let admitted = mct_count >= self.config.t2;
        if admitted {
            self.granted += 1;
            self.mct.remove(key);
            obs_count!(SieveAdmissions, 1);
        } else {
            obs_count!(SieveRejections, 1);
        }
        obs_gauge_set!(MctTrackedBlocks, self.mct.len() as i64);
        admitted
    }

    /// Total misses processed.
    pub fn misses_seen(&self) -> u64 {
        self.misses_seen
    }

    /// Misses that passed the IMCT threshold (reached the precise tier).
    pub fn graduated(&self) -> u64 {
        self.graduated
    }

    /// Allocations granted.
    pub fn granted(&self) -> u64 {
        self.granted
    }

    /// Number of blocks currently tracked precisely.
    pub fn mct_len(&self) -> usize {
        self.mct.len()
    }

    /// Approximate metastate footprint in bytes (IMCT + MCT).
    pub fn memory_bytes(&self) -> usize {
        self.imct.memory_bytes() + self.mct.memory_bytes()
    }

    /// Explicitly prunes stale MCT entries.
    pub fn prune(&mut self, now: Micros) -> usize {
        self.mct.prune(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(t1: u32, t2: u32) -> TwoTierSieve {
        TwoTierSieve::new(
            TwoTierConfig::paper_default()
                .with_imct_entries(1 << 16)
                .with_thresholds(t1, t2),
        )
        .expect("valid config")
    }

    #[test]
    fn config_validation() {
        assert!(TwoTierConfig::paper_default().validate().is_ok());
        assert!(TwoTierConfig::paper_default()
            .with_imct_entries(0)
            .validate()
            .is_err());
        assert!(TwoTierConfig::paper_default()
            .with_thresholds(0, 4)
            .validate()
            .is_err());
        assert!(TwoTierSieve::new(TwoTierConfig::paper_default().with_thresholds(9, 0)).is_err());
    }

    #[test]
    fn allocation_happens_on_expected_miss_count() {
        // t1 = 9, t2 = 4: the 13th miss in-window qualifies (miss 9
        // graduates the block, misses 10-13 are the additional precise
        // misses).
        let mut sieve = small(9, 4);
        let now = Micros::from_hours(1);
        for i in 1..=12 {
            assert!(!sieve.on_miss(5, now), "miss {i} must not allocate");
        }
        assert!(sieve.on_miss(5, now), "13th miss allocates");
        assert_eq!(sieve.granted(), 1);
    }

    #[test]
    fn qualification_resets_tracking() {
        let mut sieve = small(1, 2);
        let now = Micros::from_hours(1);
        assert!(!sieve.on_miss(3, now)); // graduates (zero entry)
        assert!(!sieve.on_miss(3, now)); // precise miss 1
        assert!(sieve.on_miss(3, now)); // precise miss 2: allocate
                                        // After allocation the precise entry is removed, so the block must
                                        // re-graduate and then re-earn t2 precise misses.
        assert!(!sieve.on_miss(3, now));
        assert!(!sieve.on_miss(3, now));
        assert!(sieve.on_miss(3, now));
        assert_eq!(sieve.granted(), 2);
    }

    #[test]
    fn cold_blocks_never_qualify() {
        let mut sieve = small(9, 4);
        // A million distinct one-touch blocks: none should allocate as
        // long as aliasing pressure stays moderate.
        let mut granted = 0;
        for key in 0..100_000u64 {
            if sieve.on_miss(key, Micros::from_hours(1)) {
                granted += 1;
            }
        }
        assert_eq!(sieve.granted(), granted);
        assert!(
            (granted as f64) < 100.0,
            "one-touch blocks granted {granted} allocations"
        );
    }

    #[test]
    fn window_expiry_blocks_slow_accumulators() {
        let mut sieve = small(2, 2);
        // Misses spaced 9 hours apart never accumulate in an 8-hour window.
        for i in 0..20u64 {
            let now = Micros::from_hours(9 * i);
            assert!(!sieve.on_miss(77, now), "spaced miss {i} allocated");
        }
    }

    #[test]
    fn aliasing_inflates_imct_but_mct_gatekeeps() {
        // One-slot IMCT: every block shares the imprecise count, so the
        // IMCT tier passes everything through almost immediately; the
        // precise MCT must still require t2 misses per actual block.
        let mut sieve = TwoTierSieve::new(
            TwoTierConfig::paper_default()
                .with_imct_entries(1)
                .with_thresholds(9, 4),
        )
        .unwrap();
        let now = Micros::from_hours(1);
        // 100 distinct blocks, one miss each: IMCT slot count soars, but no
        // individual block reaches 4 precise misses.
        for key in 0..100u64 {
            assert!(
                !sieve.on_miss(key, now),
                "aliased one-touch block allocated"
            );
        }
        assert!(sieve.graduated() > 0, "IMCT should graduate under aliasing");
        assert_eq!(sieve.granted(), 0);
        // A genuinely hot block still qualifies: one graduating miss plus
        // 4 additional precise misses.
        let mut alloc_at = 0;
        for i in 1..=5 {
            if sieve.on_miss(500, now) {
                alloc_at = i;
                break;
            }
        }
        assert_eq!(alloc_at, 5);
    }

    #[test]
    fn mct_population_is_bounded_by_graduated_blocks() {
        let mut sieve = small(9, 4);
        let now = Micros::from_hours(1);
        for key in 0..10_000u64 {
            sieve.on_miss(key, now);
        }
        assert!(
            sieve.mct_len() <= 10_000,
            "mct holds {} entries",
            sieve.mct_len()
        );
        assert!(sieve.memory_bytes() > 0);
        assert_eq!(sieve.misses_seen(), 10_000);
    }

    #[test]
    fn boundary_prune_is_time_driven() {
        // A stale MCT entry is dropped by the first miss of a later
        // subwindow, regardless of which key that miss is for.
        let mut sieve = small(1, 3);
        sieve.on_miss(1, Micros::from_hours(0));
        sieve.on_miss(1, Micros::from_hours(0));
        assert!(sieve.mct_len() > 0);
        // 20 hours later (10 subwindows), an unrelated key's miss prunes.
        sieve.on_miss(2, Micros::from_hours(20));
        assert_eq!(sieve.mct_len(), 1, "only key 2's fresh entry remains");
    }

    #[test]
    fn sharded_sieve_matches_whole_sieve_decisions() {
        let cfg = TwoTierConfig::paper_default()
            .with_imct_entries(1 << 8)
            .with_thresholds(3, 2);
        let shards = 4;
        let mut whole = TwoTierSieve::new(cfg).unwrap();
        let mut parts: Vec<TwoTierSieve> = (0..shards)
            .map(|s| TwoTierSieve::for_shard(cfg, s, shards).unwrap())
            .collect();
        // A deterministic mixed stream: repeated hot keys + cold singles,
        // spread over several subwindows.
        let mut granted = 0u64;
        for i in 0..20_000u64 {
            let key = if i % 3 == 0 { i % 17 } else { i };
            let now = Micros::from_hours(i / 4000);
            let s = sievestore_types::shard_of(key, shards);
            let whole_says = whole.on_miss(key, now);
            let part_says = parts[s].on_miss(key, now);
            assert_eq!(whole_says, part_says, "miss {i} key {key} diverged");
            granted += u64::from(whole_says);
        }
        assert!(granted > 0, "stream should grant some allocations");
        let part_granted: u64 = parts.iter().map(|p| p.granted()).sum();
        assert_eq!(whole.granted(), part_granted);
    }

    #[test]
    fn sharded_sieve_rejects_bad_split() {
        let cfg = TwoTierConfig::paper_default().with_imct_entries(100);
        assert!(TwoTierSieve::for_shard(cfg, 0, 3).is_err(), "3 ∤ 100");
        let cfg = TwoTierConfig::paper_default().with_imct_entries(1 << 8);
        assert!(TwoTierSieve::for_shard(cfg, 4, 4).is_err(), "index range");
        assert!(cfg.validate_sharding(0).is_err());
        assert!(cfg.validate_sharding(4).is_ok());
    }

    #[test]
    fn explicit_prune_drops_stale_state() {
        let mut sieve = small(1, 3);
        sieve.on_miss(1, Micros::from_hours(0));
        sieve.on_miss(1, Micros::from_hours(0));
        sieve.on_miss(1, Micros::from_hours(0));
        assert!(sieve.mct_len() > 0);
        let removed = sieve.prune(Micros::from_hours(20));
        assert_eq!(removed, 1);
        assert_eq!(sieve.mct_len(), 0);
    }
}
