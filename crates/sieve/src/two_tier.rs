//! The two-tier sieve of SieveStore-C.
//!
//! Flow on every cache miss (§3.3): the miss is first counted in the
//! aliased [`Imct`](crate::Imct). Only once a block's (possibly inflated)
//! IMCT count reaches `t1` does the block graduate to the precise
//! [`Mct`](crate::Mct), where it must see `t2` *additional* misses within
//! the window before it qualifies for allocation. The paper tunes
//! `t1` = 9 and `t2` = 4 over an 8-hour window of 4 subwindows, and
//! reports ~8 GB of metastate for its traces.

use sievestore_types::{Micros, SieveError};

use crate::tables::{Imct, Mct};
use crate::window::WindowConfig;

/// Parameters of the two-tier sieve.
///
/// # Examples
///
/// ```
/// let cfg = sievestore_sieve::TwoTierConfig::paper_default();
/// assert_eq!(cfg.t1, 9);
/// assert_eq!(cfg.t2, 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TwoTierConfig {
    /// IMCT graduation threshold (imprecise misses).
    pub t1: u32,
    /// MCT allocation threshold (additional precise misses).
    pub t2: u32,
    /// Miss-count window discretization.
    pub window: WindowConfig,
    /// Number of IMCT slots.
    pub imct_entries: usize,
    /// Prune the MCT after this many misses processed.
    pub prune_every: u64,
}

impl TwoTierConfig {
    /// The paper's tuned parameters: `t1` = 9, `t2` = 4, `W` = 8 h, `k` = 4.
    /// The IMCT size defaults to 2^20 slots; scale it with the workload.
    pub fn paper_default() -> Self {
        TwoTierConfig {
            t1: 9,
            t2: 4,
            window: WindowConfig::paper_default(),
            imct_entries: 1 << 20,
            prune_every: 1 << 20,
        }
    }

    /// Sets the IMCT slot count.
    #[must_use]
    pub fn with_imct_entries(mut self, entries: usize) -> Self {
        self.imct_entries = entries;
        self
    }

    /// Sets the thresholds.
    #[must_use]
    pub fn with_thresholds(mut self, t1: u32, t2: u32) -> Self {
        self.t1 = t1;
        self.t2 = t2;
        self
    }

    /// Sets the window discretization.
    #[must_use]
    pub fn with_window(mut self, window: WindowConfig) -> Self {
        self.window = window;
        self
    }

    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`SieveError::InvalidConfig`] for a zero-sized IMCT or zero
    /// thresholds.
    pub fn validate(&self) -> Result<(), SieveError> {
        if self.imct_entries == 0 {
            return Err(SieveError::InvalidConfig("imct_entries must be > 0".into()));
        }
        if self.t1 == 0 || self.t2 == 0 {
            return Err(SieveError::InvalidConfig(
                "sieve thresholds must be positive".into(),
            ));
        }
        if self.prune_every == 0 {
            return Err(SieveError::InvalidConfig("prune_every must be > 0".into()));
        }
        Ok(())
    }
}

impl Default for TwoTierConfig {
    fn default() -> Self {
        TwoTierConfig::paper_default()
    }
}

/// The IMCT + MCT sieve: decides, per miss, whether a block has earned a
/// cache frame.
///
/// # Examples
///
/// ```
/// use sievestore_sieve::{TwoTierConfig, TwoTierSieve};
/// use sievestore_types::Micros;
///
/// let cfg = TwoTierConfig::paper_default()
///     .with_imct_entries(1024)
///     .with_thresholds(2, 2);
/// let mut sieve = TwoTierSieve::new(cfg).unwrap();
/// let now = Micros::from_hours(1);
/// // Miss 2 graduates the block through the IMCT; misses 3-4 are the
/// // additional precise misses; the 4th qualifies it.
/// assert!(!sieve.on_miss(7, now));
/// assert!(!sieve.on_miss(7, now));
/// assert!(!sieve.on_miss(7, now));
/// assert!(sieve.on_miss(7, now));
/// ```
#[derive(Debug, Clone)]
pub struct TwoTierSieve {
    config: TwoTierConfig,
    imct: Imct,
    mct: Mct,
    misses_seen: u64,
    /// Diagnostics: how many misses graduated past the IMCT.
    graduated: u64,
    /// Diagnostics: how many allocations were granted.
    granted: u64,
}

impl TwoTierSieve {
    /// Creates a sieve.
    ///
    /// # Errors
    ///
    /// Returns [`SieveError::InvalidConfig`] if `config` fails validation.
    pub fn new(config: TwoTierConfig) -> Result<Self, SieveError> {
        config.validate()?;
        Ok(TwoTierSieve {
            imct: Imct::new(config.imct_entries, config.window),
            mct: Mct::new(config.window),
            config,
            misses_seen: 0,
            graduated: 0,
            granted: 0,
        })
    }

    /// The sieve's configuration.
    pub fn config(&self) -> &TwoTierConfig {
        &self.config
    }

    /// Processes one miss at time `now`. Returns `true` if the block has
    /// now qualified for allocation (the paper's lazy n-th-miss rule).
    ///
    /// Qualification resets the block's MCT entry, so a block that gets
    /// allocated, evicted and misses again must re-earn its frame.
    pub fn on_miss(&mut self, key: u64, now: Micros) -> bool {
        self.misses_seen += 1;
        if self.misses_seen.is_multiple_of(self.config.prune_every) {
            self.mct.prune(now);
        }
        let imct_count = self.imct.record_miss(key, now);
        if imct_count < self.config.t1 {
            return false;
        }
        self.graduated += 1;
        if !self.mct.ensure(key, now) {
            // The miss that first graduates a block past the IMCT does not
            // count toward the *additional* t2 precise misses.
            return false;
        }
        let mct_count = self.mct.record_miss(key, now);
        if mct_count >= self.config.t2 {
            self.granted += 1;
            self.mct.remove(key);
            true
        } else {
            false
        }
    }

    /// Total misses processed.
    pub fn misses_seen(&self) -> u64 {
        self.misses_seen
    }

    /// Misses that passed the IMCT threshold (reached the precise tier).
    pub fn graduated(&self) -> u64 {
        self.graduated
    }

    /// Allocations granted.
    pub fn granted(&self) -> u64 {
        self.granted
    }

    /// Number of blocks currently tracked precisely.
    pub fn mct_len(&self) -> usize {
        self.mct.len()
    }

    /// Approximate metastate footprint in bytes (IMCT + MCT).
    pub fn memory_bytes(&self) -> usize {
        self.imct.memory_bytes() + self.mct.memory_bytes()
    }

    /// Explicitly prunes stale MCT entries.
    pub fn prune(&mut self, now: Micros) -> usize {
        self.mct.prune(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(t1: u32, t2: u32) -> TwoTierSieve {
        TwoTierSieve::new(
            TwoTierConfig::paper_default()
                .with_imct_entries(1 << 16)
                .with_thresholds(t1, t2),
        )
        .expect("valid config")
    }

    #[test]
    fn config_validation() {
        assert!(TwoTierConfig::paper_default().validate().is_ok());
        assert!(TwoTierConfig::paper_default()
            .with_imct_entries(0)
            .validate()
            .is_err());
        assert!(TwoTierConfig::paper_default()
            .with_thresholds(0, 4)
            .validate()
            .is_err());
        assert!(TwoTierSieve::new(TwoTierConfig::paper_default().with_thresholds(9, 0)).is_err());
    }

    #[test]
    fn allocation_happens_on_expected_miss_count() {
        // t1 = 9, t2 = 4: the 13th miss in-window qualifies (miss 9
        // graduates the block, misses 10-13 are the additional precise
        // misses).
        let mut sieve = small(9, 4);
        let now = Micros::from_hours(1);
        for i in 1..=12 {
            assert!(!sieve.on_miss(5, now), "miss {i} must not allocate");
        }
        assert!(sieve.on_miss(5, now), "13th miss allocates");
        assert_eq!(sieve.granted(), 1);
    }

    #[test]
    fn qualification_resets_tracking() {
        let mut sieve = small(1, 2);
        let now = Micros::from_hours(1);
        assert!(!sieve.on_miss(3, now)); // graduates (zero entry)
        assert!(!sieve.on_miss(3, now)); // precise miss 1
        assert!(sieve.on_miss(3, now)); // precise miss 2: allocate
                                        // After allocation the precise entry is removed, so the block must
                                        // re-graduate and then re-earn t2 precise misses.
        assert!(!sieve.on_miss(3, now));
        assert!(!sieve.on_miss(3, now));
        assert!(sieve.on_miss(3, now));
        assert_eq!(sieve.granted(), 2);
    }

    #[test]
    fn cold_blocks_never_qualify() {
        let mut sieve = small(9, 4);
        // A million distinct one-touch blocks: none should allocate as
        // long as aliasing pressure stays moderate.
        let mut granted = 0;
        for key in 0..100_000u64 {
            if sieve.on_miss(key, Micros::from_hours(1)) {
                granted += 1;
            }
        }
        assert_eq!(sieve.granted(), granted);
        assert!(
            (granted as f64) < 100.0,
            "one-touch blocks granted {granted} allocations"
        );
    }

    #[test]
    fn window_expiry_blocks_slow_accumulators() {
        let mut sieve = small(2, 2);
        // Misses spaced 9 hours apart never accumulate in an 8-hour window.
        for i in 0..20u64 {
            let now = Micros::from_hours(9 * i);
            assert!(!sieve.on_miss(77, now), "spaced miss {i} allocated");
        }
    }

    #[test]
    fn aliasing_inflates_imct_but_mct_gatekeeps() {
        // One-slot IMCT: every block shares the imprecise count, so the
        // IMCT tier passes everything through almost immediately; the
        // precise MCT must still require t2 misses per actual block.
        let mut sieve = TwoTierSieve::new(
            TwoTierConfig::paper_default()
                .with_imct_entries(1)
                .with_thresholds(9, 4),
        )
        .unwrap();
        let now = Micros::from_hours(1);
        // 100 distinct blocks, one miss each: IMCT slot count soars, but no
        // individual block reaches 4 precise misses.
        for key in 0..100u64 {
            assert!(
                !sieve.on_miss(key, now),
                "aliased one-touch block allocated"
            );
        }
        assert!(sieve.graduated() > 0, "IMCT should graduate under aliasing");
        assert_eq!(sieve.granted(), 0);
        // A genuinely hot block still qualifies: one graduating miss plus
        // 4 additional precise misses.
        let mut alloc_at = 0;
        for i in 1..=5 {
            if sieve.on_miss(500, now) {
                alloc_at = i;
                break;
            }
        }
        assert_eq!(alloc_at, 5);
    }

    #[test]
    fn mct_population_is_bounded_by_graduated_blocks() {
        let mut sieve = small(9, 4);
        let now = Micros::from_hours(1);
        for key in 0..10_000u64 {
            sieve.on_miss(key, now);
        }
        assert!(
            sieve.mct_len() <= 10_000,
            "mct holds {} entries",
            sieve.mct_len()
        );
        assert!(sieve.memory_bytes() > 0);
        assert_eq!(sieve.misses_seen(), 10_000);
    }

    #[test]
    fn explicit_prune_drops_stale_state() {
        let mut sieve = small(1, 3);
        sieve.on_miss(1, Micros::from_hours(0));
        sieve.on_miss(1, Micros::from_hours(0));
        sieve.on_miss(1, Micros::from_hours(0));
        assert!(sieve.mct_len() > 0);
        let removed = sieve.prune(Micros::from_hours(20));
        assert_eq!(removed, 1);
        assert_eq!(sieve.mct_len(), 0);
    }
}
