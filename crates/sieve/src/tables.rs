//! The two miss-count tables: aliased IMCT and precise MCT.
//!
//! SieveStore-C must keep metastate for blocks that are *not* in the cache,
//! and that metastate is consulted on every miss, so it must live in
//! memory. Tracking every accessed block precisely would explode, so the
//! paper (§3.3) uses two tiers:
//!
//! * [`Imct`] — the *imprecise miss-count table*: a fixed-size array of
//!   windowed counters indexed by a hash of the block key. The
//!   many-to-one mapping aliases, so counts can only be *inflated* for any
//!   particular block (no false negatives against a threshold).
//! * [`Mct`] — the *precise miss-count table*: a hash table keyed by exact
//!   block, populated only for blocks that already passed the IMCT
//!   threshold, and pruned periodically to drop stale entries.

use sievestore_types::{mix64, Micros, U64Map};

use crate::window::{WindowConfig, WindowedCounter};

/// The imprecise (aliased) miss-count table.
///
/// Slots are indexed by the workspace-wide [`mix64`] hash. A table can
/// also be built as one *shard* of a larger logical table
/// ([`Imct::for_shard`]): shard `s` of `n` owns exactly the global slots
/// `g` with `g % n == s`, stored contiguously at local index `g / n`.
/// Because the replay engine routes keys to workers with the same hash
/// (`shard_of(key, n) == global_slot % n` whenever `n` divides the slot
/// count), the shard sees every key of its slots and no others — so the
/// sharded slot states, including aliasing collisions, are bit-identical
/// to the sequential table's.
///
/// # Examples
///
/// ```
/// use sievestore_sieve::{Imct, WindowConfig};
/// use sievestore_types::Micros;
///
/// let mut imct = Imct::new(1024, WindowConfig::paper_default());
/// let now = Micros::from_hours(1);
/// assert_eq!(imct.record_miss(42, now), 1);
/// assert_eq!(imct.record_miss(42, now), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Imct {
    entries: Vec<WindowedCounter>,
    config: WindowConfig,
    /// Modulus of the logical (unsharded) table this one is a slice of.
    total_slots: u64,
    /// Number of shards the logical table is split across (1 = whole).
    stride: u64,
}

impl Imct {
    /// Creates a table with `entries` slots.
    ///
    /// # Panics
    ///
    /// Panics if `entries == 0`.
    pub fn new(entries: usize, config: WindowConfig) -> Self {
        assert!(entries > 0, "imct needs at least one entry");
        Imct {
            entries: vec![WindowedCounter::new(config.subwindows); entries],
            config,
            total_slots: entries as u64,
            stride: 1,
        }
    }

    /// Creates shard `shard` of a logical `total_entries`-slot table split
    /// across `shards` workers. The shard holds `total_entries / shards`
    /// slots — the global slots congruent to `shard` modulo `shards` —
    /// and reproduces the logical table's slot states exactly for every
    /// key whose global slot it owns.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`, `shard >= shards`, or `shards` does not
    /// divide `total_entries` (divisibility is what aligns slot ownership
    /// with the `mix64`-based key partition).
    pub fn for_shard(
        total_entries: usize,
        shard: usize,
        shards: usize,
        config: WindowConfig,
    ) -> Self {
        assert!(shards > 0, "shard count must be nonzero");
        assert!(shard < shards, "shard index out of range");
        assert!(
            total_entries.is_multiple_of(shards) && total_entries > 0,
            "shard count must divide the imct slot count"
        );
        Imct {
            entries: vec![WindowedCounter::new(config.subwindows); total_entries / shards],
            config,
            total_slots: total_entries as u64,
            stride: shards as u64,
        }
    }

    /// Number of slots held locally.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table has zero slots (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The local slot a key maps to (exposed for aliasing tests). For a
    /// sharded table this is only meaningful for keys routed to this
    /// shard (`shard_of(key, shards)` equal to this shard's index).
    pub fn slot_of(&self, key: u64) -> usize {
        let global = mix64(key) % self.total_slots;
        (global / self.stride) as usize
    }

    /// Records a miss for `key` at time `now`; returns the slot's
    /// in-window total (which may include aliased contributions).
    pub fn record_miss(&mut self, key: u64, now: Micros) -> u32 {
        let sub = self.config.subwindow_index(now);
        let slot = self.slot_of(key);
        self.entries[slot].record(sub)
    }

    /// The slot's in-window total without recording.
    pub fn peek(&mut self, key: u64, now: Micros) -> u32 {
        let sub = self.config.subwindow_index(now);
        let slot = self.slot_of(key);
        self.entries[slot].total(sub)
    }

    /// Approximate resident size in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.entries.len() * (self.config.subwindows as usize * 4 + 16)
    }
}

/// The precise miss-count table.
///
/// Counters live in a slab (`Vec<WindowedCounter>`) indexed by an
/// open-addressing [`U64Map`] from block key to slab slot. Pruned or
/// removed entries push their slot onto a free list and the counter is
/// [`reset`](WindowedCounter::reset) on reuse, so its subwindow buffer is
/// allocated exactly once per slot for the lifetime of the table —
/// steady-state churn (blocks graduating in, going stale, being pruned)
/// allocates nothing.
///
/// # Examples
///
/// ```
/// use sievestore_sieve::{Mct, WindowConfig};
/// use sievestore_types::Micros;
///
/// let mut mct = Mct::new(WindowConfig::paper_default());
/// let now = Micros::from_hours(2);
/// assert_eq!(mct.record_miss(7, now), 1);
/// assert_eq!(mct.record_miss(7, now), 2);
/// assert_eq!(mct.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Mct {
    /// Block key → slab slot.
    index: U64Map<u32>,
    /// Counter storage; slots are recycled through `free`.
    slab: Vec<WindowedCounter>,
    /// Slab slots whose entries were pruned or removed, ready for reuse.
    free: Vec<u32>,
    config: WindowConfig,
}

impl Mct {
    /// Creates an empty table.
    pub fn new(config: WindowConfig) -> Self {
        Mct {
            index: U64Map::new(),
            slab: Vec::new(),
            free: Vec::new(),
            config,
        }
    }

    /// Number of tracked blocks.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether no block is tracked.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Grabs a reset counter slot, reusing a freed one when available.
    fn alloc_slot(&mut self) -> u32 {
        match self.free.pop() {
            Some(slot) => {
                self.slab[slot as usize].reset();
                slot
            }
            None => {
                let slot = u32::try_from(self.slab.len()).expect("mct slab exceeds u32 slots");
                self.slab.push(WindowedCounter::new(self.config.subwindows));
                slot
            }
        }
    }

    /// Ensures an entry exists for `key` (zero count, live at `now`);
    /// returns whether it already existed. Used when a block graduates
    /// from the IMCT: the graduating miss itself does not count toward
    /// the *additional* `t2` misses.
    pub fn ensure(&mut self, key: u64, now: Micros) -> bool {
        if self.index.contains_key(key) {
            return true;
        }
        let sub = self.config.subwindow_index(now);
        let slot = self.alloc_slot();
        self.slab[slot as usize].observe(sub);
        self.index.insert(key, slot);
        false
    }

    /// Records a miss for `key`; returns `key`'s exact in-window count.
    pub fn record_miss(&mut self, key: u64, now: Micros) -> u32 {
        let sub = self.config.subwindow_index(now);
        let slot = match self.index.get(key) {
            Some(&slot) => slot,
            None => {
                let slot = self.alloc_slot();
                self.index.insert(key, slot);
                slot
            }
        };
        self.slab[slot as usize].record(sub)
    }

    /// `key`'s exact in-window count without recording.
    pub fn peek(&mut self, key: u64, now: Micros) -> u32 {
        let sub = self.config.subwindow_index(now);
        match self.index.get(key) {
            Some(&slot) => self.slab[slot as usize].total(sub),
            None => 0,
        }
    }

    /// Drops entries whose whole window has expired ("periodically we
    /// prune the MCT to eliminate stale blocks"). Returns how many were
    /// removed. Freed counter slots are recycled by later insertions.
    pub fn prune(&mut self, now: Micros) -> usize {
        let sub = self.config.subwindow_index(now);
        let before = self.index.len();
        let (slab, free) = (&mut self.slab, &mut self.free);
        self.index.retain(|_, slot| {
            let stale = slab[*slot as usize].is_stale(sub);
            if stale {
                free.push(*slot);
            }
            !stale
        });
        before - self.index.len()
    }

    /// Removes a specific key (used when a block gets allocated and no
    /// longer needs miss tracking).
    pub fn remove(&mut self, key: u64) -> bool {
        match self.index.remove(key) {
            Some(slot) => {
                self.free.push(slot);
                true
            }
            None => false,
        }
    }

    /// Approximate resident size in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.index.memory_bytes()
            + self.slab.len() * (self.config.subwindows as usize * 4 + 24)
            + self.free.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashMap;

    fn cfg() -> WindowConfig {
        WindowConfig::paper_default()
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn empty_imct_panics() {
        let _ = Imct::new(0, cfg());
    }

    #[test]
    fn imct_counts_misses_within_window() {
        let mut imct = Imct::new(64, cfg());
        let now = Micros::from_hours(1);
        assert_eq!(imct.record_miss(1, now), 1);
        assert_eq!(imct.record_miss(1, now), 2);
        assert_eq!(imct.peek(1, now), 2);
        // 9 hours later the whole window has rolled over.
        assert_eq!(imct.peek(1, Micros::from_hours(10)), 0);
    }

    #[test]
    fn imct_aliases_share_one_slot() {
        let mut imct = Imct::new(1, cfg()); // everything aliases
        let now = Micros::from_hours(1);
        imct.record_miss(100, now);
        imct.record_miss(200, now);
        assert_eq!(imct.peek(300, now), 2, "aliased slot inflates counts");
    }

    #[test]
    fn imct_distinct_slots_do_not_interfere() {
        let mut imct = Imct::new(1 << 16, cfg());
        let now = Micros::from_hours(1);
        // Find two keys in different slots.
        let a = 1u64;
        let b = (2..)
            .find(|&k| imct.slot_of(k) != imct.slot_of(a))
            .expect("distinct slot exists");
        imct.record_miss(a, now);
        assert_eq!(imct.peek(b, now), 0);
    }

    #[test]
    fn mct_is_exact_per_key() {
        let mut mct = Mct::new(cfg());
        let now = Micros::from_hours(3);
        mct.record_miss(1, now);
        mct.record_miss(1, now);
        mct.record_miss(2, now);
        assert_eq!(mct.peek(1, now), 2);
        assert_eq!(mct.peek(2, now), 1);
        assert_eq!(mct.peek(3, now), 0);
        assert_eq!(mct.len(), 2);
    }

    #[test]
    fn mct_prune_removes_only_stale_entries() {
        let mut mct = Mct::new(cfg());
        mct.record_miss(1, Micros::from_hours(0));
        mct.record_miss(2, Micros::from_hours(9));
        // At hour 9, key 1 (hour 0) is more than 8h = 4 subwindows old.
        let removed = mct.prune(Micros::from_hours(9));
        assert_eq!(removed, 1);
        assert_eq!(mct.len(), 1);
        assert_eq!(mct.peek(2, Micros::from_hours(9)), 1);
    }

    #[test]
    fn mct_remove_specific_key() {
        let mut mct = Mct::new(cfg());
        mct.record_miss(5, Micros::from_hours(1));
        assert!(mct.remove(5));
        assert!(!mct.remove(5));
        assert!(mct.is_empty());
    }

    #[test]
    fn sharded_imct_reproduces_global_slot_states() {
        // Route keys by shard_of and compare every shard's counts against
        // the unsharded table — including aliasing within a slot.
        let total = 64;
        let shards = 4;
        let mut whole = Imct::new(total, cfg());
        let mut parts: Vec<Imct> = (0..shards)
            .map(|s| Imct::for_shard(total, s, shards, cfg()))
            .collect();
        let now = Micros::from_hours(1);
        for key in 0..5000u64 {
            let whole_count = whole.record_miss(key, now);
            let s = sievestore_types::shard_of(key, shards);
            let part_count = parts[s].record_miss(key, now);
            assert_eq!(whole_count, part_count, "key {key} diverged");
        }
    }

    #[test]
    fn sharded_imct_slot_indices_stay_in_range() {
        let parts: Vec<Imct> = (0..8)
            .map(|s| Imct::for_shard(1 << 10, s, 8, cfg()))
            .collect();
        for (s, part) in parts.iter().enumerate() {
            assert_eq!(part.len(), 128);
            for key in 0..2000u64 {
                if sievestore_types::shard_of(key, 8) == s {
                    assert!(part.slot_of(key) < part.len());
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "divide")]
    fn sharded_imct_requires_divisibility() {
        let _ = Imct::for_shard(100, 0, 3, cfg());
    }

    #[test]
    fn memory_estimates_scale() {
        let imct = Imct::new(1000, cfg());
        assert!(imct.memory_bytes() >= 1000 * 16);
        let mut mct = Mct::new(cfg());
        let base = mct.memory_bytes();
        mct.record_miss(1, Micros::from_hours(0));
        assert!(mct.memory_bytes() > base);
    }

    proptest! {
        /// Aliasing can only inflate: for any key, the IMCT count is at
        /// least the key's true miss count within the window.
        #[test]
        fn imct_never_undercounts(
            keys in proptest::collection::vec(0u64..500, 1..300),
            table_bits in 0u32..8,
        ) {
            let mut imct = Imct::new(1 << table_bits, cfg());
            let mut exact: HashMap<u64, u32> = HashMap::new();
            let now = Micros::from_hours(1); // single subwindow: no expiry
            for &k in &keys {
                imct.record_miss(k, now);
                *exact.entry(k).or_insert(0) += 1;
            }
            for (&k, &true_count) in &exact {
                prop_assert!(imct.peek(k, now) >= true_count);
            }
        }

        /// The MCT always matches a plain per-key counter inside one
        /// subwindow.
        #[test]
        fn mct_matches_plain_counter(
            keys in proptest::collection::vec(0u64..100, 0..300),
        ) {
            let mut mct = Mct::new(cfg());
            let mut exact: HashMap<u64, u32> = HashMap::new();
            let now = Micros::from_hours(1);
            for &k in &keys {
                mct.record_miss(k, now);
                *exact.entry(k).or_insert(0) += 1;
            }
            for (&k, &c) in &exact {
                prop_assert_eq!(mct.peek(k, now), c);
            }
            prop_assert_eq!(mct.len(), exact.len());
        }
    }
}
