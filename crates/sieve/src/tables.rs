//! The two miss-count tables: aliased IMCT and precise MCT.
//!
//! SieveStore-C must keep metastate for blocks that are *not* in the cache,
//! and that metastate is consulted on every miss, so it must live in
//! memory. Tracking every accessed block precisely would explode, so the
//! paper (§3.3) uses two tiers:
//!
//! * [`Imct`] — the *imprecise miss-count table*: a fixed-size array of
//!   windowed counters indexed by a hash of the block key. The
//!   many-to-one mapping aliases, so counts can only be *inflated* for any
//!   particular block (no false negatives against a threshold).
//! * [`Mct`] — the *precise miss-count table*: a hash table keyed by exact
//!   block, populated only for blocks that already passed the IMCT
//!   threshold, and pruned periodically to drop stale entries.

use std::collections::HashMap;

use sievestore_types::Micros;

use crate::window::{WindowConfig, WindowedCounter};

/// SplitMix64 finalizer; the IMCT slot hash.
fn mix(key: u64) -> u64 {
    let mut z = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The imprecise (aliased) miss-count table.
///
/// # Examples
///
/// ```
/// use sievestore_sieve::{Imct, WindowConfig};
/// use sievestore_types::Micros;
///
/// let mut imct = Imct::new(1024, WindowConfig::paper_default());
/// let now = Micros::from_hours(1);
/// assert_eq!(imct.record_miss(42, now), 1);
/// assert_eq!(imct.record_miss(42, now), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Imct {
    entries: Vec<WindowedCounter>,
    config: WindowConfig,
}

impl Imct {
    /// Creates a table with `entries` slots.
    ///
    /// # Panics
    ///
    /// Panics if `entries == 0`.
    pub fn new(entries: usize, config: WindowConfig) -> Self {
        assert!(entries > 0, "imct needs at least one entry");
        Imct {
            entries: vec![WindowedCounter::new(config.subwindows); entries],
            config,
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table has zero slots (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The slot a key maps to (exposed for aliasing tests).
    pub fn slot_of(&self, key: u64) -> usize {
        (mix(key) % self.entries.len() as u64) as usize
    }

    /// Records a miss for `key` at time `now`; returns the slot's
    /// in-window total (which may include aliased contributions).
    pub fn record_miss(&mut self, key: u64, now: Micros) -> u32 {
        let sub = self.config.subwindow_index(now);
        let slot = self.slot_of(key);
        self.entries[slot].record(sub)
    }

    /// The slot's in-window total without recording.
    pub fn peek(&mut self, key: u64, now: Micros) -> u32 {
        let sub = self.config.subwindow_index(now);
        let slot = self.slot_of(key);
        self.entries[slot].total(sub)
    }

    /// Approximate resident size in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.entries.len() * (self.config.subwindows as usize * 4 + 16)
    }
}

/// The precise miss-count table.
///
/// # Examples
///
/// ```
/// use sievestore_sieve::{Mct, WindowConfig};
/// use sievestore_types::Micros;
///
/// let mut mct = Mct::new(WindowConfig::paper_default());
/// let now = Micros::from_hours(2);
/// assert_eq!(mct.record_miss(7, now), 1);
/// assert_eq!(mct.record_miss(7, now), 2);
/// assert_eq!(mct.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Mct {
    entries: HashMap<u64, WindowedCounter>,
    config: WindowConfig,
}

impl Mct {
    /// Creates an empty table.
    pub fn new(config: WindowConfig) -> Self {
        Mct {
            entries: HashMap::new(),
            config,
        }
    }

    /// Number of tracked blocks.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no block is tracked.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Ensures an entry exists for `key` (zero count, live at `now`);
    /// returns whether it already existed. Used when a block graduates
    /// from the IMCT: the graduating miss itself does not count toward
    /// the *additional* `t2` misses.
    pub fn ensure(&mut self, key: u64, now: Micros) -> bool {
        let sub = self.config.subwindow_index(now);
        match self.entries.entry(key) {
            std::collections::hash_map::Entry::Occupied(_) => true,
            std::collections::hash_map::Entry::Vacant(v) => {
                let mut c = WindowedCounter::new(self.config.subwindows);
                c.observe(sub);
                v.insert(c);
                false
            }
        }
    }

    /// Records a miss for `key`; returns `key`'s exact in-window count.
    pub fn record_miss(&mut self, key: u64, now: Micros) -> u32 {
        let sub = self.config.subwindow_index(now);
        self.entries
            .entry(key)
            .or_insert_with(|| WindowedCounter::new(self.config.subwindows))
            .record(sub)
    }

    /// `key`'s exact in-window count without recording.
    pub fn peek(&mut self, key: u64, now: Micros) -> u32 {
        let sub = self.config.subwindow_index(now);
        match self.entries.get_mut(&key) {
            Some(c) => c.total(sub),
            None => 0,
        }
    }

    /// Drops entries whose whole window has expired ("periodically we
    /// prune the MCT to eliminate stale blocks"). Returns how many were
    /// removed.
    pub fn prune(&mut self, now: Micros) -> usize {
        let sub = self.config.subwindow_index(now);
        let before = self.entries.len();
        self.entries.retain(|_, c| !c.is_stale(sub));
        before - self.entries.len()
    }

    /// Removes a specific key (used when a block gets allocated and no
    /// longer needs miss tracking).
    pub fn remove(&mut self, key: u64) -> bool {
        self.entries.remove(&key).is_some()
    }

    /// Approximate resident size in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.entries.len() * (self.config.subwindows as usize * 4 + 48)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn cfg() -> WindowConfig {
        WindowConfig::paper_default()
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn empty_imct_panics() {
        let _ = Imct::new(0, cfg());
    }

    #[test]
    fn imct_counts_misses_within_window() {
        let mut imct = Imct::new(64, cfg());
        let now = Micros::from_hours(1);
        assert_eq!(imct.record_miss(1, now), 1);
        assert_eq!(imct.record_miss(1, now), 2);
        assert_eq!(imct.peek(1, now), 2);
        // 9 hours later the whole window has rolled over.
        assert_eq!(imct.peek(1, Micros::from_hours(10)), 0);
    }

    #[test]
    fn imct_aliases_share_one_slot() {
        let mut imct = Imct::new(1, cfg()); // everything aliases
        let now = Micros::from_hours(1);
        imct.record_miss(100, now);
        imct.record_miss(200, now);
        assert_eq!(imct.peek(300, now), 2, "aliased slot inflates counts");
    }

    #[test]
    fn imct_distinct_slots_do_not_interfere() {
        let mut imct = Imct::new(1 << 16, cfg());
        let now = Micros::from_hours(1);
        // Find two keys in different slots.
        let a = 1u64;
        let b = (2..)
            .find(|&k| imct.slot_of(k) != imct.slot_of(a))
            .expect("distinct slot exists");
        imct.record_miss(a, now);
        assert_eq!(imct.peek(b, now), 0);
    }

    #[test]
    fn mct_is_exact_per_key() {
        let mut mct = Mct::new(cfg());
        let now = Micros::from_hours(3);
        mct.record_miss(1, now);
        mct.record_miss(1, now);
        mct.record_miss(2, now);
        assert_eq!(mct.peek(1, now), 2);
        assert_eq!(mct.peek(2, now), 1);
        assert_eq!(mct.peek(3, now), 0);
        assert_eq!(mct.len(), 2);
    }

    #[test]
    fn mct_prune_removes_only_stale_entries() {
        let mut mct = Mct::new(cfg());
        mct.record_miss(1, Micros::from_hours(0));
        mct.record_miss(2, Micros::from_hours(9));
        // At hour 9, key 1 (hour 0) is more than 8h = 4 subwindows old.
        let removed = mct.prune(Micros::from_hours(9));
        assert_eq!(removed, 1);
        assert_eq!(mct.len(), 1);
        assert_eq!(mct.peek(2, Micros::from_hours(9)), 1);
    }

    #[test]
    fn mct_remove_specific_key() {
        let mut mct = Mct::new(cfg());
        mct.record_miss(5, Micros::from_hours(1));
        assert!(mct.remove(5));
        assert!(!mct.remove(5));
        assert!(mct.is_empty());
    }

    #[test]
    fn memory_estimates_scale() {
        let imct = Imct::new(1000, cfg());
        assert!(imct.memory_bytes() >= 1000 * 16);
        let mut mct = Mct::new(cfg());
        let base = mct.memory_bytes();
        mct.record_miss(1, Micros::from_hours(0));
        assert!(mct.memory_bytes() > base);
    }

    proptest! {
        /// Aliasing can only inflate: for any key, the IMCT count is at
        /// least the key's true miss count within the window.
        #[test]
        fn imct_never_undercounts(
            keys in proptest::collection::vec(0u64..500, 1..300),
            table_bits in 0u32..8,
        ) {
            let mut imct = Imct::new(1 << table_bits, cfg());
            let mut exact: HashMap<u64, u32> = HashMap::new();
            let now = Micros::from_hours(1); // single subwindow: no expiry
            for &k in &keys {
                imct.record_miss(k, now);
                *exact.entry(k).or_insert(0) += 1;
            }
            for (&k, &true_count) in &exact {
                prop_assert!(imct.peek(k, now) >= true_count);
            }
        }

        /// The MCT always matches a plain per-key counter inside one
        /// subwindow.
        #[test]
        fn mct_matches_plain_counter(
            keys in proptest::collection::vec(0u64..100, 0..300),
        ) {
            let mut mct = Mct::new(cfg());
            let mut exact: HashMap<u64, u32> = HashMap::new();
            let now = Micros::from_hours(1);
            for &k in &keys {
                mct.record_miss(k, now);
                *exact.entry(k).or_insert(0) += 1;
            }
            for (&k, &c) in &exact {
                prop_assert_eq!(mct.peek(k, now), c);
            }
            prop_assert_eq!(mct.len(), exact.len());
        }
    }
}
