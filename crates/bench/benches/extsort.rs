//! The offline access-counting substrate: external hash-partitioned log
//! vs the in-memory oracle.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use sievestore_extsort::{AccessCounter, AccessLog, InMemoryCounter};

const STREAM: usize = 100_000;
const KEYS: u64 = 10_000;

fn key_stream(seed: u64) -> Vec<u64> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..STREAM).map(|_| rng.random_range(0..KEYS)).collect()
}

fn in_memory(c: &mut Criterion) {
    let keys = key_stream(1);
    let mut group = c.benchmark_group("access_counting");
    group.sample_size(20);
    group.throughput(Throughput::Elements(STREAM as u64));
    group.bench_function("in_memory", |b| {
        b.iter(|| {
            let mut counter = InMemoryCounter::new();
            for &k in &keys {
                counter.record(k);
            }
            black_box(counter.finish().expect("in-memory"))
        })
    });
    group.finish();
}

fn external_log(c: &mut Criterion) {
    let keys = key_stream(2);
    let mut group = c.benchmark_group("access_counting_external");
    group.sample_size(10);
    group.throughput(Throughput::Elements(STREAM as u64));
    for &partitions in &[1usize, 8, 32] {
        group.bench_with_input(
            BenchmarkId::from_parameter(partitions),
            &partitions,
            |b, &partitions| {
                let dir = std::env::temp_dir().join(format!(
                    "sievestore-bench-extsort-{}-{partitions}",
                    std::process::id()
                ));
                b.iter(|| {
                    let mut log = AccessLog::create(&dir, partitions).expect("temp dir");
                    for &k in &keys {
                        log.record(k);
                    }
                    black_box(log.finish().expect("temp dir io"))
                });
                std::fs::remove_dir_all(&dir).ok();
            },
        );
    }
    group.finish();
}

criterion_group!(benches, in_memory, external_log);
criterion_main!(benches);
