//! End-to-end simulation throughput: sieved vs unsieved policies over the
//! same synthetic trace.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sievestore::PolicySpec;
use sievestore_sieve::TwoTierConfig;
use sievestore_sim::{simulate, simulate_sharded, SimConfig};
use sievestore_trace::{EnsembleConfig, SyntheticTrace};
use sievestore_types::Day;

fn trace_blocks(trace: &SyntheticTrace) -> u64 {
    (0..trace.days())
        .map(|d| {
            trace
                .day_requests(Day::new(d))
                .iter()
                .map(|r| r.len_blocks as u64)
                .sum::<u64>()
        })
        .sum()
}

fn policy_simulation(c: &mut Criterion) {
    let trace = SyntheticTrace::new(EnsembleConfig::tiny(9)).expect("valid config");
    let blocks_per_run = trace_blocks(&trace);
    let cfg =
        SimConfig::paper_16gb(trace.config().scale.denominator()).with_capacity_blocks(16_384);

    let mut group = c.benchmark_group("end_to_end_simulation");
    group.sample_size(10);
    group.throughput(Throughput::Elements(blocks_per_run));
    let policies: Vec<(&str, PolicySpec)> = vec![
        ("aod", PolicySpec::Aod),
        ("wmna", PolicySpec::Wmna),
        (
            "sievestore_c",
            PolicySpec::SieveStoreC(TwoTierConfig::paper_default().with_imct_entries(1 << 16)),
        ),
        ("sievestore_d", PolicySpec::SieveStoreD { threshold: 10 }),
    ];
    for (name, spec) in policies {
        group.bench_with_input(BenchmarkId::from_parameter(name), &spec, |b, spec| {
            b.iter(|| black_box(simulate(&trace, spec.clone(), &cfg).expect("valid policy")))
        });
    }
    group.finish();
}

/// Sequential vs sharded replay of the same SieveStore-D simulation (the
/// sharded engine produces identical metrics; this measures the speedup).
fn replay_modes(c: &mut Criterion) {
    let trace = SyntheticTrace::new(EnsembleConfig::tiny(9)).expect("valid config");
    let blocks_per_run = trace_blocks(&trace);
    let cfg =
        SimConfig::paper_16gb(trace.config().scale.denominator()).with_capacity_blocks(16_384);
    let spec = PolicySpec::SieveStoreD { threshold: 10 };

    let mut group = c.benchmark_group("replay_modes");
    group.sample_size(10);
    group.throughput(Throughput::Elements(blocks_per_run));
    group.bench_function("sequential", |b| {
        b.iter(|| black_box(simulate(&trace, spec.clone(), &cfg).expect("valid policy")))
    });
    for shards in [2usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("sharded", shards),
            &shards,
            |b, &shards| {
                b.iter(|| {
                    black_box(
                        simulate_sharded(&trace, spec.clone(), &cfg, shards).expect("valid policy"),
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, policy_simulation, replay_modes);
criterion_main!(benches);
