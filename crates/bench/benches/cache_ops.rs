//! Microbenchmarks for the cache substrates: LRU hit/miss/insert paths and
//! epoch batch installation.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use sievestore_cache::{BatchCache, LruCache};

fn lru_hits(c: &mut Criterion) {
    let mut group = c.benchmark_group("lru_touch_hit");
    for &size in &[1 << 10, 1 << 16, 1 << 20] {
        let mut cache = LruCache::new(size);
        for k in 0..size as u64 {
            cache.insert(k);
        }
        let mut rng = SmallRng::seed_from_u64(1);
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| {
                let k = rng.random_range(0..size as u64);
                black_box(cache.touch(black_box(k)))
            })
        });
    }
    group.finish();
}

fn lru_insert_evict(c: &mut Criterion) {
    let mut group = c.benchmark_group("lru_insert_evict");
    let size = 1 << 16;
    let mut cache = LruCache::new(size);
    let mut next = 0u64;
    group.throughput(Throughput::Elements(1));
    group.bench_function("steady_state", |b| {
        b.iter(|| {
            next += 1;
            black_box(cache.insert(black_box(next)))
        })
    });
    group.finish();
}

fn batch_install(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_install_epoch");
    for &n in &[1_000usize, 50_000] {
        // Half the selection overlaps the previous epoch (typical drift).
        let epoch_a: Vec<u64> = (0..n as u64).collect();
        let epoch_b: Vec<u64> = (n as u64 / 2..n as u64 * 3 / 2).collect();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut cache = BatchCache::new(2 * n);
                cache.install_epoch(epoch_a.iter().copied());
                black_box(cache.install_epoch(epoch_b.iter().copied()))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, lru_hits, lru_insert_evict, batch_install);
criterion_main!(benches);
