//! Microbenchmarks for the sieving data structures: the two-tier
//! IMCT/MCT pipeline under cold and hot miss streams, and the discrete
//! access counter.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use sievestore_extsort::InMemoryCounter;
use sievestore_sieve::{DiscreteSieve, TwoTierConfig, TwoTierSieve};
use sievestore_types::Micros;

fn two_tier_miss_stream(c: &mut Criterion) {
    let mut group = c.benchmark_group("two_tier_on_miss");
    // Cold: unique keys, the common case — misses die at the IMCT.
    {
        let mut sieve =
            TwoTierSieve::new(TwoTierConfig::paper_default().with_imct_entries(1 << 20))
                .expect("valid config");
        let mut next = 0u64;
        group.throughput(Throughput::Elements(1));
        group.bench_function("cold_unique_keys", |b| {
            b.iter(|| {
                next += 1;
                black_box(sieve.on_miss(black_box(next), Micros::from_hours(1)))
            })
        });
    }
    // Hot: a small key set that repeatedly graduates to the MCT.
    {
        let mut sieve =
            TwoTierSieve::new(TwoTierConfig::paper_default().with_imct_entries(1 << 20))
                .expect("valid config");
        let mut rng = SmallRng::seed_from_u64(2);
        group.bench_function("hot_small_set", |b| {
            b.iter(|| {
                let k = rng.random_range(0..512u64);
                black_box(sieve.on_miss(black_box(k), Micros::from_hours(1)))
            })
        });
    }
    group.finish();
}

fn discrete_record(c: &mut Criterion) {
    let mut group = c.benchmark_group("discrete_sieve");
    group.throughput(Throughput::Elements(1));
    let mut sieve = DiscreteSieve::in_memory_paper_default();
    let mut rng = SmallRng::seed_from_u64(3);
    group.bench_function("record_access", |b| {
        b.iter(|| {
            let k = rng.random_range(0..1_000_000u64);
            sieve.record_access(black_box(k));
        })
    });
    for &keys in &[10_000u64, 100_000] {
        group.bench_with_input(BenchmarkId::new("end_epoch", keys), &keys, |b, &keys| {
            b.iter_with_setup(
                || {
                    let mut s = DiscreteSieve::in_memory_paper_default();
                    let mut rng = SmallRng::seed_from_u64(4);
                    for _ in 0..keys * 3 {
                        s.record_access(rng.random_range(0..keys));
                    }
                    s
                },
                |mut s| black_box(s.end_epoch(InMemoryCounter::new()).expect("in-memory")),
            )
        });
    }
    group.finish();
}

criterion_group!(benches, two_tier_miss_stream, discrete_record);
criterion_main!(benches);
