//! Throughput of the synthetic trace generator and the trace codec.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use sievestore_trace::{EnsembleConfig, SyntheticTrace, TraceReader, TraceWriter};
use sievestore_types::Day;

fn generation(c: &mut Criterion) {
    let trace = SyntheticTrace::new(EnsembleConfig::tiny(7)).expect("valid config");
    let day_len = trace.day_requests(Day::new(1)).len() as u64;
    let mut group = c.benchmark_group("trace_generation");
    group.sample_size(20);
    group.throughput(Throughput::Elements(day_len));
    group.bench_function("tiny_ensemble_day", |b| {
        b.iter(|| black_box(trace.day_requests(black_box(Day::new(1)))))
    });
    group.finish();
}

fn codec(c: &mut Criterion) {
    let trace = SyntheticTrace::new(EnsembleConfig::tiny(7)).expect("valid config");
    let requests = trace.day_requests(Day::new(1));
    let mut group = c.benchmark_group("trace_codec");
    group.sample_size(20);
    group.throughput(Throughput::Elements(requests.len() as u64));
    group.bench_function("write_binary", |b| {
        b.iter(|| {
            let mut bytes = Vec::with_capacity(requests.len() * 28 + 16);
            let mut writer = TraceWriter::new(&mut bytes).expect("vec write");
            for r in &requests {
                writer.write(r).expect("vec write");
            }
            writer.finish().expect("vec write");
            black_box(bytes)
        })
    });
    let mut bytes = Vec::new();
    let mut writer = TraceWriter::new(&mut bytes).expect("vec write");
    for r in &requests {
        writer.write(r).expect("vec write");
    }
    writer.finish().expect("vec write");
    group.bench_function("read_binary", |b| {
        b.iter(|| {
            let reader = TraceReader::new(bytes.as_slice()).expect("valid header");
            black_box(
                reader
                    .inspect(|r| assert!(r.is_ok(), "valid record"))
                    .count(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, generation, codec);
criterion_main!(benches);
