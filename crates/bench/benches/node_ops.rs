//! Appliance-layer microbenchmarks: protocol codec throughput and
//! data-cache operation rates.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use sievestore::PolicySpec;
use sievestore_node::{DataCache, MemBacking, Request, WritePolicy};
use sievestore_sieve::TwoTierConfig;
use sievestore_types::Micros;

fn protocol_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("node_protocol");
    group.throughput(Throughput::Elements(1));
    let write = Request::Write {
        key: 42,
        data: Box::new([0xAB; 512]),
    };
    group.bench_function("encode_write", |b| {
        let mut buf = Vec::with_capacity(1024);
        b.iter(|| {
            buf.clear();
            write.encode(&mut buf).expect("vec write");
            black_box(buf.len())
        })
    });
    let mut encoded = Vec::new();
    write.encode(&mut encoded).expect("vec write");
    group.bench_function("decode_write", |b| {
        b.iter(|| black_box(Request::decode(&mut encoded.as_slice()).expect("own encoding")))
    });
    group.finish();
}

fn data_cache_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("node_data_cache");
    group.throughput(Throughput::Elements(1));

    // Hot reads: resident frames under AOD.
    {
        let mut cache =
            DataCache::new(MemBacking::new(), PolicySpec::Aod, 1 << 14).expect("valid appliance");
        for key in 0..1_000u64 {
            cache.write(key, &[1; 512], Micros::new(key)).expect("mem");
        }
        let mut rng = SmallRng::seed_from_u64(1);
        group.bench_function("read_hit", |b| {
            b.iter(|| {
                let key = rng.random_range(0..1_000u64);
                black_box(cache.read(key, Micros::new(key)).expect("mem"))
            })
        });
    }

    // Cold bypassed reads through the sieve (the common path).
    {
        let mut cache = DataCache::new(
            MemBacking::new(),
            PolicySpec::SieveStoreC(TwoTierConfig::paper_default().with_imct_entries(1 << 16)),
            1 << 14,
        )
        .expect("valid appliance");
        let mut next = 0u64;
        group.bench_function("read_cold_bypass", |b| {
            b.iter(|| {
                next += 1;
                black_box(cache.read(next, Micros::new(next)).expect("mem"))
            })
        });
    }

    // Write hits under both policies.
    for (label, policy) in [
        ("write_hit_through", WritePolicy::WriteThrough),
        ("write_hit_back", WritePolicy::WriteBack),
    ] {
        let mut cache = DataCache::new(MemBacking::new(), PolicySpec::Aod, 1 << 14)
            .expect("valid appliance")
            .with_write_policy(policy);
        for key in 0..1_000u64 {
            cache.write(key, &[1; 512], Micros::new(key)).expect("mem");
        }
        let mut rng = SmallRng::seed_from_u64(2);
        group.bench_with_input(BenchmarkId::from_parameter(label), &label, |b, _| {
            b.iter(|| {
                let key = rng.random_range(0..1_000u64);
                black_box(cache.write(key, &[2; 512], Micros::new(key)).expect("mem"))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, protocol_codec, data_cache_ops);
criterion_main!(benches);
