//! Ablation of the two-tier sieve design (§3.3).
//!
//! The paper motivates the IMCT+MCT split: an IMCT alone aliases too many
//! low-reuse blocks into allocations; an MCT alone tracks every missed
//! block and explodes in memory. This bench compares the three designs on
//! the same miss stream — time per miss — and prints each design's
//! allocation count and metastate footprint once up front, so quality and
//! cost can be read together.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use sievestore_sieve::{Imct, Mct, TwoTierConfig, TwoTierSieve, WindowConfig};
use sievestore_types::Micros;

const T1: u32 = 9;
const T2: u32 = 4;
const IMCT_ENTRIES: usize = 1 << 16;

/// A miss stream with the workload's shape: mostly one-touch cold blocks
/// plus a small, recurring hot set.
fn miss_stream(n: usize, seed: u64) -> Vec<u64> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut next_cold = 1_000_000u64;
    (0..n)
        .map(|_| {
            if rng.random::<f64>() < 0.35 {
                rng.random_range(0..256u64) // hot set
            } else {
                next_cold += 1;
                next_cold
            }
        })
        .collect()
}

/// IMCT-only sieving: allocate once the aliased count reaches t1 + t2.
fn imct_only(stream: &[u64]) -> u64 {
    let mut imct = Imct::new(IMCT_ENTRIES, WindowConfig::paper_default());
    let now = Micros::from_hours(1);
    let mut granted = 0;
    for &k in stream {
        if imct.record_miss(k, now) >= T1 + T2 {
            granted += 1;
        }
    }
    granted
}

/// MCT-only sieving: precise counts for every missed block.
fn mct_only(stream: &[u64]) -> (u64, usize) {
    let mut mct = Mct::new(WindowConfig::paper_default());
    let now = Micros::from_hours(1);
    let mut granted = 0;
    for &k in stream {
        if mct.record_miss(k, now) >= T1 + T2 {
            granted += 1;
            mct.remove(k);
        }
    }
    (granted, mct.memory_bytes())
}

fn two_tier(stream: &[u64]) -> (u64, usize) {
    let mut sieve = TwoTierSieve::new(
        TwoTierConfig::paper_default()
            .with_imct_entries(IMCT_ENTRIES)
            .with_thresholds(T1, T2),
    )
    .expect("valid config");
    let now = Micros::from_hours(1);
    let mut granted = 0;
    for &k in stream {
        if sieve.on_miss(k, now) {
            granted += 1;
        }
    }
    (granted, sieve.memory_bytes())
}

fn ablation(c: &mut Criterion) {
    let stream = miss_stream(200_000, 42);

    // Print the quality/footprint side of the ablation once.
    let imct_granted = imct_only(&stream);
    let (mct_granted, mct_bytes) = mct_only(&stream);
    let (tt_granted, tt_bytes) = two_tier(&stream);
    println!(
        "ablation quality over {} misses (35% hot):\n\
         - imct-only:  {imct_granted} allocations (aliasing admits cold blocks)\n\
         - mct-only:   {mct_granted} allocations, {mct_bytes} B metastate (tracks every block)\n\
         - two-tier:   {tt_granted} allocations, {tt_bytes} B metastate",
        stream.len()
    );

    let mut group = c.benchmark_group("sieve_ablation");
    group.sample_size(20);
    group.throughput(Throughput::Elements(stream.len() as u64));
    group.bench_function("imct_only", |b| b.iter(|| black_box(imct_only(&stream))));
    group.bench_function("mct_only", |b| b.iter(|| black_box(mct_only(&stream))));
    group.bench_function("two_tier", |b| b.iter(|| black_box(two_tier(&stream))));
    group.finish();
}

criterion_group!(benches, ablation);
criterion_main!(benches);
