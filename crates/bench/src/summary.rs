//! The headline-claims summary: reproduced vs paper-reported numbers.

use sievestore_analysis::{pct, TextTable};
use sievestore_ssd::endurance_years;
use sievestore_types::SieveError;

use crate::Harness;

/// Computes the paper's headline results from the shared policy runs and
/// renders them next to the paper's reported values.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn summary(h: &mut Harness) -> Result<String, SieveError> {
    let scale = h.scale();
    let days = h.trace().days();
    let runs = h.policy_runs()?;

    let best = runs.best_unsieved();
    let best_mean = best.mean_captured_fraction(&[]);
    let d_mean = runs.by_name("SieveStore-D").mean_captured_fraction(&[0]);
    let c_mean = runs.by_name("SieveStore-C").mean_captured_fraction(&[]);
    let ideal_mean = runs.by_name("Ideal").mean_captured_fraction(&[]);

    let alloc = |name: &str| runs.by_name(name).total().total_allocation_writes();
    let unsieved_alloc = alloc("AOD-32GB").min(alloc("WMNA-32GB"));
    let d_reduction = unsieved_alloc as f64 / alloc("SieveStore-D").max(1) as f64;
    let c_reduction = unsieved_alloc as f64 / alloc("SieveStore-C").max(1) as f64;

    let c_occ = &runs.by_name("SieveStore-C").occupancy;
    let d_occ = &runs.by_name("SieveStore-D").occupancy;
    let wmna_occ = &runs.by_name("WMNA-32GB").occupancy;

    let c_write_bytes_day = c_occ.total_write_bytes() / days.max(1) as f64;
    let lifetime = endurance_years(c_occ.spec(), c_write_bytes_day);

    let mut table = TextTable::new(vec![
        "claim".into(),
        "paper".into(),
        "this reproduction".into(),
    ]);
    table.push_row(vec![
        "SieveStore-D hits vs best unsieved".into(),
        "+35%".into(),
        format!("{:+.0}%", (d_mean / best_mean - 1.0) * 100.0),
    ]);
    table.push_row(vec![
        "SieveStore-C hits vs best unsieved".into(),
        "+50%".into(),
        format!("{:+.0}%", (c_mean / best_mean - 1.0) * 100.0),
    ]);
    let vs_ideal = |mean: f64| {
        let rel = (mean / ideal_mean - 1.0) * 100.0;
        if rel >= 0.0 {
            format!("{rel:.0}% above")
        } else {
            format!("{:.0}% below", -rel)
        }
    };
    table.push_row(vec![
        "SieveStore-D vs day-by-day ideal".into(),
        "within 14% below".into(),
        vs_ideal(d_mean),
    ]);
    table.push_row(vec![
        "SieveStore-C vs day-by-day ideal".into(),
        "within 4% below".into(),
        vs_ideal(c_mean),
    ]);
    table.push_row(vec![
        "allocation-write reduction (D)".into(),
        ">100x".into(),
        format!("{d_reduction:.0}x"),
    ]);
    table.push_row(vec![
        "allocation-write reduction (C)".into(),
        ">100x".into(),
        format!("{c_reduction:.0}x"),
    ]);
    table.push_row(vec![
        "SieveStore-D drives (1 covers)".into(),
        "100% of minutes".into(),
        pct(d_occ.single_drive_coverage()),
    ]);
    table.push_row(vec![
        "SieveStore-C drives (1 covers)".into(),
        ">=99.9% of minutes".into(),
        pct(c_occ.single_drive_coverage()),
    ]);
    table.push_row(vec![
        "WMNA drives at 99.9% coverage".into(),
        "7".into(),
        wmna_occ.drives_for_coverage(0.999).to_string(),
    ]);
    table.push_row(vec![
        "X25-E lifetime under SieveStore".into(),
        ">10 years".into(),
        format!("{lifetime:.0} years"),
    ]);
    Ok(format!(
        "Headline results at trace scale 1/{scale} \
         (shapes, not absolute numbers, are the reproduction target)\n{}",
        table.render()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_renders_all_claims() {
        let dir = std::env::temp_dir().join(format!("sievestore-summary-{}", std::process::id()));
        let mut h = Harness::smoke(&dir).unwrap();
        let out = summary(&mut h).unwrap();
        for needle in [
            "SieveStore-D hits",
            "SieveStore-C hits",
            "allocation-write reduction",
            "lifetime",
            "paper",
        ] {
            assert!(out.contains(needle), "missing {needle} in summary");
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
