//! The machine-readable replay benchmark report (`BENCH_replay.json`)
//! and the CI regression gate that consumes it.
//!
//! The workspace deliberately carries no serde dependency, so this module
//! hand-rolls the minimal JSON subset the report needs: objects, arrays,
//! strings (no escapes beyond `\"`, `\\`, `\n`, `\t`), numbers, booleans
//! and null. [`ReplayReport`] is the typed view; [`compare_reports`] is
//! the ±tolerance events/sec gate CI runs against the committed baseline.

use std::fmt::Write as _;

/// A parsed JSON value (minimal subset, numbers as `f64`).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (integers are exact up to 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on malformed input or trailing
    /// garbage.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing input at byte {pos}"));
        }
        Ok(value)
    }

    /// Looks a key up in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes with two-space indentation and a trailing newline.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        write_value(self, 0, &mut out);
        out.push('\n');
        out
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(entries));
            }
            loop {
                skip_ws(bytes, pos);
                let key = match parse_value(bytes, pos)? {
                    Json::Str(s) => s,
                    _ => return Err(format!("object key at byte {pos} is not a string")),
                };
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                entries.push((key, parse_value(bytes, pos)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(entries));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => {
            *pos += 1;
            let mut s = String::new();
            loop {
                match bytes.get(*pos) {
                    None => return Err("unterminated string".into()),
                    Some(b'"') => {
                        *pos += 1;
                        return Ok(Json::Str(s));
                    }
                    Some(b'\\') => {
                        *pos += 1;
                        match bytes.get(*pos) {
                            Some(b'"') => s.push('"'),
                            Some(b'\\') => s.push('\\'),
                            Some(b'n') => s.push('\n'),
                            Some(b't') => s.push('\t'),
                            Some(b'/') => s.push('/'),
                            other => return Err(format!("unsupported escape {other:?}")),
                        }
                        *pos += 1;
                    }
                    Some(&b) => {
                        // Multi-byte UTF-8 passes through unchanged.
                        let start = *pos;
                        let mut end = *pos + 1;
                        while end < bytes.len() && bytes[end] & 0xC0 == 0x80 {
                            end += 1;
                        }
                        if b < 0x80 {
                            end = *pos + 1;
                        }
                        s.push_str(
                            std::str::from_utf8(&bytes[start..end])
                                .map_err(|e| format!("invalid utf-8 in string: {e}"))?,
                        );
                        *pos = end;
                    }
                }
            }
        }
        Some(b't') if bytes[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if bytes[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if bytes[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii number run");
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|e| format!("bad number '{text}' at byte {start}: {e}"))
        }
    }
}

fn write_value(value: &Json, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Json::Num(n) => {
            // Integers serialize without a fractional part.
            if n.fract() == 0.0 && n.abs() < 9e15 {
                let _ = write!(out, "{}", *n as i64);
            } else {
                let _ = write!(out, "{n}");
            }
        }
        Json::Str(s) => {
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    c => out.push(c),
                }
            }
            out.push('"');
        }
        Json::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                let _ = write!(out, "{pad}  ");
                write_value(item, indent + 1, out);
                out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
            }
            let _ = write!(out, "{pad}]");
        }
        Json::Obj(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (k, v)) in entries.iter().enumerate() {
                let _ = write!(out, "{pad}  \"{k}\": ");
                write_value(v, indent + 1, out);
                out.push_str(if i + 1 < entries.len() { ",\n" } else { "\n" });
            }
            let _ = write!(out, "{pad}}}");
        }
    }
}

/// One timed replay configuration inside a [`ReplayReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// `"sequential"` or `"sharded"`.
    pub mode: String,
    /// Worker threads used (1 for sequential).
    pub threads: usize,
    /// Wall-clock seconds for the full replay.
    pub wall_secs: f64,
    /// Block accesses replayed per second (the gated figure).
    pub events_per_sec: f64,
    /// Busiest shard's block share over the mean share (1.0 = balanced).
    pub imbalance: f64,
}

/// One hot-path micro-benchmark result inside a [`ReplayReport`].
///
/// Micro figures are informational: they localize a replay regression to
/// a specific structure (map, LRU, MCT) but are not gated by
/// [`compare_reports`] — ns/op on shared runners is too noisy for a hard
/// floor, and the end-to-end events/sec gate already bounds the damage.
#[derive(Debug, Clone, PartialEq)]
pub struct MicroReport {
    /// Operation name, e.g. `"lru_touch"`.
    pub name: String,
    /// Nanoseconds per operation (fastest repetition).
    pub ns_per_op: f64,
}

/// The full `BENCH_replay.json` document.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayReport {
    /// Trace scale denominator the benchmark ran at.
    pub scale: u32,
    /// Trace seed.
    pub seed: u64,
    /// Total block accesses replayed per configuration.
    pub events: u64,
    /// One entry per timed configuration.
    pub runs: Vec<RunReport>,
    /// Hot-path micro-benchmarks (absent in pre-micro reports).
    pub micro: Vec<MicroReport>,
    /// Day-boundary snapshot export (`sievestore-day-snapshot/v1` JSON
    /// Lines, embedded verbatim). Deterministic for the benchmark's
    /// discrete policy: byte-identical at any shard count. Absent in
    /// pre-observability reports.
    pub day_snapshots_jsonl: Option<String>,
    /// Observability-registry totals (one
    /// `sievestore_types::obs::MetricsSnapshot` JSON line) when the
    /// benchmark ran with runtime metrics enabled. Wall-clock figures in
    /// here are diagnostics, never gated and never deterministic.
    pub obs_metrics: Option<String>,
    /// Peak resident set size of the benchmark process in bytes (Linux
    /// `VmHWM`; 0 where unavailable). Informational for the throughput
    /// gate; the full-scale CI job enforces a hard ceiling on it via
    /// `--max-rss-mb`. Absent in pre-streaming reports.
    pub peak_rss_bytes: Option<u64>,
}

/// Schema tag written into every report.
pub const REPLAY_SCHEMA: &str = "sievestore-replay-bench/v1";

impl ReplayReport {
    /// Serializes to the committed JSON format.
    pub fn to_json(&self) -> String {
        let mut entries = vec![
            ("schema".into(), Json::Str(REPLAY_SCHEMA.into())),
            ("scale".into(), Json::Num(self.scale as f64)),
            ("seed".into(), Json::Num(self.seed as f64)),
            ("events".into(), Json::Num(self.events as f64)),
            (
                "runs".into(),
                Json::Arr(
                    self.runs
                        .iter()
                        .map(|r| {
                            Json::Obj(vec![
                                ("mode".into(), Json::Str(r.mode.clone())),
                                ("threads".into(), Json::Num(r.threads as f64)),
                                ("wall_secs".into(), Json::Num(r.wall_secs)),
                                ("events_per_sec".into(), Json::Num(r.events_per_sec)),
                                ("imbalance".into(), Json::Num(r.imbalance)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "micro".into(),
                Json::Arr(
                    self.micro
                        .iter()
                        .map(|m| {
                            Json::Obj(vec![
                                ("name".into(), Json::Str(m.name.clone())),
                                ("ns_per_op".into(), Json::Num(m.ns_per_op)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ];
        if let Some(jsonl) = &self.day_snapshots_jsonl {
            entries.push(("day_snapshots_jsonl".into(), Json::Str(jsonl.clone())));
        }
        if let Some(metrics) = &self.obs_metrics {
            entries.push(("obs_metrics".into(), Json::Str(metrics.clone())));
        }
        if let Some(rss) = self.peak_rss_bytes {
            entries.push(("peak_rss_bytes".into(), Json::Num(rss as f64)));
        }
        Json::Obj(entries).to_pretty()
    }

    /// Parses a report document.
    ///
    /// # Errors
    ///
    /// Returns a message for malformed JSON, a wrong schema tag, or
    /// missing fields.
    pub fn from_json(text: &str) -> Result<ReplayReport, String> {
        let doc = Json::parse(text)?;
        let schema = doc
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("missing schema tag")?;
        if schema != REPLAY_SCHEMA {
            return Err(format!("unsupported schema '{schema}'"));
        }
        let num = |key: &str| {
            doc.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("missing numeric field '{key}'"))
        };
        let runs = doc
            .get("runs")
            .and_then(Json::as_array)
            .ok_or("missing runs array")?
            .iter()
            .map(|r| {
                let f = |key: &str| {
                    r.get(key)
                        .and_then(Json::as_f64)
                        .ok_or_else(|| format!("run missing numeric field '{key}'"))
                };
                Ok(RunReport {
                    mode: r
                        .get("mode")
                        .and_then(Json::as_str)
                        .ok_or("run missing mode")?
                        .to_string(),
                    threads: f("threads")? as usize,
                    wall_secs: f("wall_secs")?,
                    events_per_sec: f("events_per_sec")?,
                    imbalance: f("imbalance")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        // `micro` is optional so pre-micro baselines still parse.
        let micro = doc
            .get("micro")
            .and_then(Json::as_array)
            .unwrap_or(&[])
            .iter()
            .map(|m| {
                Ok(MicroReport {
                    name: m
                        .get("name")
                        .and_then(Json::as_str)
                        .ok_or("micro entry missing name")?
                        .to_string(),
                    ns_per_op: m
                        .get("ns_per_op")
                        .and_then(Json::as_f64)
                        .ok_or("micro entry missing ns_per_op")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(ReplayReport {
            scale: num("scale")? as u32,
            seed: num("seed")? as u64,
            events: num("events")? as u64,
            runs,
            micro,
            // Both observability sections are optional so pre-obs
            // baselines (and obs-less runs) still parse.
            day_snapshots_jsonl: doc
                .get("day_snapshots_jsonl")
                .and_then(Json::as_str)
                .map(str::to_string),
            obs_metrics: doc
                .get("obs_metrics")
                .and_then(Json::as_str)
                .map(str::to_string),
            peak_rss_bytes: doc
                .get("peak_rss_bytes")
                .and_then(Json::as_f64)
                .map(|n| n as u64),
        })
    }

    /// The run entry for a thread count, if present.
    pub fn run_with_threads(&self, threads: usize) -> Option<&RunReport> {
        self.runs.iter().find(|r| r.threads == threads)
    }

    /// The run entry for a `(mode, threads)` configuration, if present.
    ///
    /// The pair is the configuration key: a streaming benchmark can time
    /// both a sequential and a sharded run at the same thread count, so
    /// matching on threads alone would compare across modes.
    pub fn run_with(&self, mode: &str, threads: usize) -> Option<&RunReport> {
        self.runs
            .iter()
            .find(|r| r.mode == mode && r.threads == threads)
    }
}

/// Gates `current` against `baseline`: every baseline run configuration
/// must be present and its events/sec must not regress by more than
/// `tolerance` (e.g. `0.2` = −20 %). Returns the per-run comparison
/// lines on success and the failures on error. Faster-than-baseline runs
/// pass (the fresh artifact is there to re-baseline from).
///
/// # Errors
///
/// One message per regressed or missing configuration.
pub fn compare_reports(
    current: &ReplayReport,
    baseline: &ReplayReport,
    tolerance: f64,
) -> Result<Vec<String>, Vec<String>> {
    let mut lines = Vec::new();
    let mut failures = Vec::new();
    if current.scale != baseline.scale || current.seed != baseline.seed {
        failures.push(format!(
            "workload mismatch: current scale/seed {}/{:#x} vs baseline {}/{:#x}",
            current.scale, current.seed, baseline.scale, baseline.seed
        ));
    }
    for base in &baseline.runs {
        let Some(run) = current.run_with(&base.mode, base.threads) else {
            failures.push(format!(
                "missing run for {} ({} threads)",
                base.mode, base.threads
            ));
            continue;
        };
        let floor = base.events_per_sec * (1.0 - tolerance);
        let ratio = run.events_per_sec / base.events_per_sec;
        let line = format!(
            "{} ({} threads): {:.0} events/s vs baseline {:.0} ({:+.1} %)",
            run.mode,
            run.threads,
            run.events_per_sec,
            base.events_per_sec,
            (ratio - 1.0) * 100.0
        );
        if run.events_per_sec < floor {
            failures.push(format!("REGRESSION {line} — floor {floor:.0}"));
        } else {
            lines.push(line);
        }
    }
    if failures.is_empty() {
        Ok(lines)
    } else {
        Err(failures)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> ReplayReport {
        ReplayReport {
            scale: 8192,
            seed: 0x51EE_5704,
            events: 1_000_000,
            runs: vec![
                RunReport {
                    mode: "sequential".into(),
                    threads: 1,
                    wall_secs: 2.0,
                    events_per_sec: 500_000.0,
                    imbalance: 1.0,
                },
                RunReport {
                    mode: "sharded".into(),
                    threads: 4,
                    wall_secs: 0.8,
                    events_per_sec: 1_250_000.0,
                    imbalance: 1.07,
                },
            ],
            micro: vec![MicroReport {
                name: "lru_touch".into(),
                ns_per_op: 14.2,
            }],
            day_snapshots_jsonl: Some(
                "{\"schema\":\"sievestore-day-snapshot/v1\",\"policy\":\"sievestore-d\",\"capacity_blocks\":64,\"days\":1}\n{\"day\":0,\"read_hits\":3,\"write_hits\":1,\"read_misses\":2,\"write_misses\":0,\"allocation_writes\":1,\"batch_allocations\":1,\"cum_read_hits\":3,\"cum_write_hits\":1,\"cum_read_misses\":2,\"cum_write_misses\":0,\"cum_allocation_writes\":1,\"cum_batch_allocations\":1}\n"
                    .into(),
            ),
            obs_metrics: Some("{\"counters\":{\"replay_events_routed\":6}}".into()),
            peak_rss_bytes: Some(384 << 20),
        }
    }

    #[test]
    fn report_roundtrips_through_json() {
        let r = report();
        let text = r.to_json();
        assert!(text.contains(REPLAY_SCHEMA));
        let back = ReplayReport::from_json(&text).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn parser_handles_nesting_escapes_and_rejects_garbage() {
        let doc =
            Json::parse(r#"{"a": [1, 2.5, -3e2], "b": {"s": "x\n\"y\""}, "c": null}"#).unwrap();
        assert_eq!(doc.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            doc.get("a").unwrap().as_array().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(
            doc.get("b").unwrap().get("s").unwrap().as_str(),
            Some("x\n\"y\"")
        );
        assert_eq!(doc.get("c"), Some(&Json::Null));
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse(r#"{"k": tru}"#).is_err());
    }

    #[test]
    fn parser_accepts_own_pretty_output_and_unicode() {
        let v = Json::Obj(vec![
            ("name".into(), Json::Str("café ✓".into())),
            ("ok".into(), Json::Bool(true)),
            ("empty".into(), Json::Arr(vec![])),
        ]);
        let back = Json::parse(&v.to_pretty()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pre_micro_baselines_still_parse() {
        // Reports written before the micro section existed have no
        // "micro" key; they must keep parsing (as an empty list) so a
        // refreshed binary can gate against an old committed baseline.
        let mut doc = Json::parse(&report().to_json()).unwrap();
        if let Json::Obj(entries) = &mut doc {
            entries.retain(|(k, _)| k != "micro");
        }
        let back = ReplayReport::from_json(&doc.to_pretty()).unwrap();
        assert!(back.micro.is_empty());
        assert_eq!(back.runs, report().runs);
        // Micro figures are informational: they never gate.
        assert!(compare_reports(&back, &report(), 0.2).is_ok());
    }

    #[test]
    fn pre_obs_baselines_still_parse() {
        // Reports written before the observability sections existed have
        // neither "day_snapshots_jsonl" nor "obs_metrics"; they must keep
        // parsing (as None) and gating just like pre-micro baselines.
        let mut doc = Json::parse(&report().to_json()).unwrap();
        if let Json::Obj(entries) = &mut doc {
            entries.retain(|(k, _)| k != "day_snapshots_jsonl" && k != "obs_metrics");
        }
        let back = ReplayReport::from_json(&doc.to_pretty()).unwrap();
        assert!(back.day_snapshots_jsonl.is_none());
        assert!(back.obs_metrics.is_none());
        assert_eq!(back.runs, report().runs);
        // Observability payloads are diagnostics: they never gate.
        assert!(compare_reports(&back, &report(), 0.2).is_ok());
    }

    #[test]
    fn pre_streaming_baselines_still_parse() {
        // Reports written before the streaming pipeline have no
        // "peak_rss_bytes"; they must keep parsing (as None) and the RSS
        // figure must never gate the throughput comparison.
        let mut doc = Json::parse(&report().to_json()).unwrap();
        if let Json::Obj(entries) = &mut doc {
            entries.retain(|(k, _)| k != "peak_rss_bytes");
        }
        let back = ReplayReport::from_json(&doc.to_pretty()).unwrap();
        assert!(back.peak_rss_bytes.is_none());
        assert_eq!(back.runs, report().runs);
        assert!(compare_reports(&back, &report(), 0.2).is_ok());
    }

    #[test]
    fn runs_are_matched_by_mode_and_threads() {
        // A streaming report can carry a sequential run and a sharded run
        // at the same thread count; the baseline lookup must key on both.
        let mut base = report();
        base.runs.push(RunReport {
            mode: "sharded".into(),
            threads: 1,
            wall_secs: 2.2,
            events_per_sec: 450_000.0,
            imbalance: 1.0,
        });
        assert_eq!(
            base.run_with("sharded", 1).unwrap().events_per_sec,
            450_000.0
        );
        assert_eq!(
            base.run_with("sequential", 1).unwrap().events_per_sec,
            500_000.0
        );
        // A current report missing the same-thread-count sharded run must
        // fail the gate even though a 1-thread run exists.
        let current = report();
        let failures = compare_reports(&current, &base, 0.2).unwrap_err();
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("sharded (1 threads)"));
    }

    #[test]
    fn schema_mismatch_is_rejected() {
        let text = report().to_json().replace(REPLAY_SCHEMA, "other/v9");
        assert!(ReplayReport::from_json(&text).is_err());
    }

    #[test]
    fn comparison_passes_within_tolerance_and_on_speedups() {
        let base = report();
        let mut current = report();
        current.runs[0].events_per_sec = 450_000.0; // −10 %
        current.runs[1].events_per_sec = 2_000_000.0; // +60 %
        let lines = compare_reports(&current, &base, 0.2).unwrap();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("-10.0 %"));
    }

    #[test]
    fn comparison_fails_on_regression_and_missing_runs() {
        let base = report();
        let mut slow = report();
        slow.runs[1].events_per_sec = 900_000.0; // −28 %
        let failures = compare_reports(&slow, &base, 0.2).unwrap_err();
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("REGRESSION"));

        let mut missing = report();
        missing.runs.pop();
        assert!(compare_reports(&missing, &base, 0.2).is_err());

        let mut mismatched = report();
        mismatched.scale = 4096;
        assert!(compare_reports(&mismatched, &base, 0.2).is_err());
    }
}
