//! Cost experiments: drive-IOPS occupancy (Figure 8), drives needed vs
//! coverage (Figure 9), and the ensemble-vs-per-server comparison (§5.3).

use sievestore_analysis::{pct, TextTable};
use sievestore_sim::{drive_cost_comparison, ensemble_ideal_capture, per_server_ideal_capture};
use sievestore_ssd::endurance_years;
use sievestore_types::SieveError;

use crate::Harness;

/// The policies whose device load Figures 8 and 9 examine.
const COST_POLICIES: [&str; 3] = ["WMNA-32GB", "SieveStore-D", "SieveStore-C"];

/// Figure 8: per-minute drive-IOPS occupancy, WMNA vs the SieveStore
/// variants.
///
/// # Errors
///
/// Propagates simulation or CSV-writing failures.
pub fn fig8(h: &mut Harness) -> Result<String, SieveError> {
    let out_path = h.out_path("fig8.csv");
    let runs = h.policy_runs()?;
    let mut table = TextTable::new(vec![
        "policy".into(),
        "max occupancy".into(),
        "mean occupancy".into(),
        "minutes > 1 drive".into(),
        "single-drive coverage".into(),
    ]);
    let mut csv_rows: Vec<Vec<String>> = Vec::new();
    for name in COST_POLICIES {
        let r = runs.by_name(name);
        let series = r.occupancy.occupancy_series();
        for (minute, occ) in series.iter().enumerate() {
            // Keep the CSV readable: only record minutes with load.
            if *occ > 0.0 {
                csv_rows.push(vec![
                    name.to_string(),
                    minute.to_string(),
                    format!("{occ:.5}"),
                ]);
            }
        }
        let max = series.iter().cloned().fold(0.0, f64::max);
        let mean = series.iter().sum::<f64>() / series.len().max(1) as f64;
        let over = series.iter().filter(|&&o| o > 1.0).count();
        table.push_row(vec![
            name.to_string(),
            format!("{max:.3}"),
            format!("{mean:.4}"),
            over.to_string(),
            pct(r.occupancy.single_drive_coverage()),
        ]);
    }
    sievestore_analysis::write_csv(
        &out_path,
        &["policy".into(), "minute".into(), "occupancy".into()],
        csv_rows.iter().map(|r| r.as_slice()),
    )?;
    Ok(format!(
        "Figure 8: drive-IOPS occupancy per trace minute \
         (paper: SieveStore mostly <1; WMNA peaks high on allocation-writes)\n{}",
        table.render()
    ))
}

/// Figure 9: drives needed per minute (sorted) and the coverage table.
///
/// # Errors
///
/// Propagates simulation or CSV-writing failures.
pub fn fig9(h: &mut Harness) -> Result<String, SieveError> {
    let out_path = h.out_path("fig9.csv");
    let runs = h.policy_runs()?;
    let coverages = [0.90, 0.99, 0.999, 1.0];
    let mut headers = vec!["policy".into()];
    headers.extend(coverages.iter().map(|c| format!("{:.1}%", c * 100.0)));
    let mut table = TextTable::new(headers);
    let mut csv_rows: Vec<Vec<String>> = Vec::new();
    for name in COST_POLICIES {
        let r = runs.by_name(name);
        let sorted = r.occupancy.drives_needed_sorted();
        for (rank, drives) in sorted.iter().enumerate() {
            csv_rows.push(vec![name.to_string(), rank.to_string(), drives.to_string()]);
        }
        let mut row = vec![name.to_string()];
        for &c in &coverages {
            row.push(r.occupancy.drives_for_coverage(c).to_string());
        }
        table.push_row(row);
    }
    sievestore_analysis::write_csv(
        &out_path,
        &[
            "policy".into(),
            "minute_rank".into(),
            "drives_needed".into(),
        ],
        csv_rows.iter().map(|r| r.as_slice()),
    )?;
    Ok(format!(
        "Figure 9: SSD drives needed at a given time-coverage \
         (paper: SieveStore 1 drive at >=99.9%; WMNA 7 drives at 99.9%)\n{}",
        table.render()
    ))
}

/// §5.3: ensemble-level vs ideal per-server caching, plus the
/// minimum-drive-size cost comparison and the endurance check.
///
/// # Errors
///
/// Propagates simulation or CSV-writing failures.
pub fn sec5_3(h: &mut Harness) -> Result<String, SieveError> {
    let ensemble = ensemble_ideal_capture(h.trace(), 0.01);
    let per_server = per_server_ideal_capture(h.trace(), 0.01);
    let mut table = TextTable::new(vec![
        "day".into(),
        "ensemble top-1% capture".into(),
        "per-server top-1% capture".into(),
        "advantage".into(),
    ]);
    let mut csv_rows: Vec<Vec<String>> = Vec::new();
    for d in 0..ensemble.total.len() {
        let e = ensemble.fraction(d);
        let p = per_server.fraction(d);
        table.push_row(vec![
            d.to_string(),
            pct(e),
            pct(p),
            format!("{:+.1}pp", (e - p) * 100.0),
        ]);
        csv_rows.push(vec![d.to_string(), e.to_string(), p.to_string()]);
    }
    sievestore_analysis::write_csv(
        h.out_path("sec5_3.csv"),
        &[
            "day".into(),
            "ensemble_capture".into(),
            "per_server_capture".into(),
        ],
        csv_rows.iter().map(|r| r.as_slice()),
    )?;

    // Cost side: minimum drive sizes mean one drive per server.
    let servers = h.trace().config().servers.len();
    let days = h.trace().days();
    let runs = h.policy_runs()?;
    let ensemble_drives = runs
        .by_name("SieveStore-C")
        .occupancy
        .drives_for_coverage(0.999)
        .max(1);
    let (per_server_drives, ensemble_needed) = drive_cost_comparison(servers, ensemble_drives);

    // Endurance check (paper: >10 years under SieveStore's write load).
    let write_bytes_day =
        runs.by_name("SieveStore-C").occupancy.total_write_bytes() / days.max(1) as f64;
    let years = endurance_years(
        runs.by_name("SieveStore-C").occupancy.spec(),
        write_bytes_day,
    );

    Ok(format!(
        "Section 5.3: ensemble vs ideal per-server caching (iso-capacity)\n{}\n\
         drive cost: per-server needs >= {per_server_drives} minimum-size drives; \
         the ensemble cache needs {ensemble_needed} (paper: 1-2 vs 13)\n\
         endurance: SieveStore-C writes imply a {years:.0}-year X25-E lifetime \
         (paper: >10 years)\n\
         mean capture: ensemble {} vs per-server {}\n",
        table.render(),
        pct(ensemble.mean_fraction()),
        pct(per_server.mean_fraction()),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn harness() -> Harness {
        let dir = std::env::temp_dir().join(format!("sievestore-cost-{}", std::process::id()));
        Harness::smoke(dir).unwrap()
    }

    #[test]
    fn cost_experiments_run_and_write_csv() {
        let mut h = harness();
        let f8 = fig8(&mut h).unwrap();
        let f9 = fig9(&mut h).unwrap();
        let s = sec5_3(&mut h).unwrap();
        assert!(f8.contains("occupancy"));
        assert!(f9.contains("drives"));
        assert!(s.contains("ensemble"));
        for name in ["fig8.csv", "fig9.csv", "sec5_3.csv"] {
            assert!(h.out_path(name).exists(), "{name} missing");
        }
        std::fs::remove_dir_all(h.results_dir()).ok();
    }

    #[test]
    fn sieved_occupancy_below_unsieved() {
        let mut h = harness();
        let runs = h.policy_runs().unwrap();
        let mean = |name: &str| {
            let s = runs.by_name(name).occupancy.occupancy_series();
            s.iter().sum::<f64>() / s.len().max(1) as f64
        };
        assert!(
            mean("SieveStore-C") < mean("WMNA-32GB"),
            "sieved {} vs unsieved {}",
            mean("SieveStore-C"),
            mean("WMNA-32GB")
        );
        std::fs::remove_dir_all(h.results_dir()).ok();
    }
}
