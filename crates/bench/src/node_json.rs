//! The machine-readable serving benchmark report (`BENCH_node.json`)
//! and the CI gates that consume it.
//!
//! `loadgen` drives the single-lock and shared-nothing node servers with
//! the same pipelined workload and writes one of these per run: QPS plus
//! latency quantiles per server flavor. CI gates twice — a ±tolerance
//! QPS floor against the committed baseline ([`compare_node_reports`])
//! and a shared-nothing/legacy speedup floor ([`speedup_gate`]).
//!
//! JSON plumbing is shared with the replay report (see
//! [`crate::replay_json::Json`]); the workspace carries no serde.

use crate::replay_json::Json;

/// Schema tag written into every serving report.
pub const NODE_SCHEMA: &str = "sievestore-node-bench/v1";

/// One timed server configuration inside a [`NodeBenchReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct NodeRunReport {
    /// `"legacy"` (single-lock) or `"sharded"` (shared-nothing).
    pub mode: String,
    /// Shard workers serving requests (1 for legacy).
    pub workers: usize,
    /// Wall-clock seconds for the timed window.
    pub wall_secs: f64,
    /// Requests completed per second (the gated figure).
    pub qps: f64,
    /// Median request latency, microseconds.
    pub p50_us: u64,
    /// 95th-percentile request latency, microseconds.
    pub p95_us: u64,
    /// 99th-percentile request latency, microseconds.
    pub p99_us: u64,
    /// 99.9th-percentile request latency, microseconds.
    pub p999_us: u64,
}

/// The full `BENCH_node.json` document.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeBenchReport {
    /// Concurrent client connections.
    pub connections: usize,
    /// Pipeline depth (requests in flight per connection).
    pub depth: usize,
    /// Read share of the workload, percent.
    pub read_pct: u32,
    /// Distinct keys addressed.
    pub keys: u64,
    /// Zipf skew exponent (0 = uniform).
    pub zipf: f64,
    /// Workload seed.
    pub seed: u64,
    /// Requests completed per timed run.
    pub ops: u64,
    /// One entry per server flavor.
    pub runs: Vec<NodeRunReport>,
}

impl NodeBenchReport {
    /// Serializes to the committed JSON format.
    pub fn to_json(&self) -> String {
        Json::Obj(vec![
            ("schema".into(), Json::Str(NODE_SCHEMA.into())),
            ("connections".into(), Json::Num(self.connections as f64)),
            ("depth".into(), Json::Num(self.depth as f64)),
            ("read_pct".into(), Json::Num(self.read_pct as f64)),
            ("keys".into(), Json::Num(self.keys as f64)),
            ("zipf".into(), Json::Num(self.zipf)),
            ("seed".into(), Json::Num(self.seed as f64)),
            ("ops".into(), Json::Num(self.ops as f64)),
            (
                "runs".into(),
                Json::Arr(
                    self.runs
                        .iter()
                        .map(|r| {
                            Json::Obj(vec![
                                ("mode".into(), Json::Str(r.mode.clone())),
                                ("workers".into(), Json::Num(r.workers as f64)),
                                ("wall_secs".into(), Json::Num(r.wall_secs)),
                                ("qps".into(), Json::Num(r.qps)),
                                ("p50_us".into(), Json::Num(r.p50_us as f64)),
                                ("p95_us".into(), Json::Num(r.p95_us as f64)),
                                ("p99_us".into(), Json::Num(r.p99_us as f64)),
                                ("p999_us".into(), Json::Num(r.p999_us as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
        .to_pretty()
    }

    /// Parses a report document.
    ///
    /// # Errors
    ///
    /// Returns a message for malformed JSON, a wrong schema tag, or
    /// missing fields.
    pub fn from_json(text: &str) -> Result<NodeBenchReport, String> {
        let doc = Json::parse(text)?;
        let schema = doc
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("missing schema tag")?;
        if schema != NODE_SCHEMA {
            return Err(format!("unsupported schema '{schema}'"));
        }
        let num = |key: &str| {
            doc.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("missing numeric field '{key}'"))
        };
        let runs = doc
            .get("runs")
            .and_then(Json::as_array)
            .ok_or("missing runs array")?
            .iter()
            .map(|r| {
                let f = |key: &str| {
                    r.get(key)
                        .and_then(Json::as_f64)
                        .ok_or_else(|| format!("run missing numeric field '{key}'"))
                };
                Ok(NodeRunReport {
                    mode: r
                        .get("mode")
                        .and_then(Json::as_str)
                        .ok_or("run missing mode")?
                        .to_string(),
                    workers: f("workers")? as usize,
                    wall_secs: f("wall_secs")?,
                    qps: f("qps")?,
                    p50_us: f("p50_us")? as u64,
                    p95_us: f("p95_us")? as u64,
                    p99_us: f("p99_us")? as u64,
                    p999_us: f("p999_us")? as u64,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(NodeBenchReport {
            connections: num("connections")? as usize,
            depth: num("depth")? as usize,
            read_pct: num("read_pct")? as u32,
            keys: num("keys")? as u64,
            zipf: doc.get("zipf").and_then(Json::as_f64).unwrap_or(0.0),
            seed: num("seed")? as u64,
            ops: num("ops")? as u64,
            runs,
        })
    }

    /// The run entry for a server flavor, if present.
    pub fn run_with_mode(&self, mode: &str) -> Option<&NodeRunReport> {
        self.runs.iter().find(|r| r.mode == mode)
    }

    /// Shared-nothing QPS over legacy QPS, if both runs are present.
    pub fn speedup(&self) -> Option<f64> {
        let legacy = self.run_with_mode("legacy")?;
        let sharded = self.run_with_mode("sharded")?;
        (legacy.qps > 0.0).then(|| sharded.qps / legacy.qps)
    }
}

/// Gates `current` against `baseline`: the workloads must match and
/// every baseline server flavor must be present with QPS no more than
/// `tolerance` below baseline (e.g. `0.2` = −20 %). Returns the per-run
/// comparison lines on success and the failures on error. Faster runs
/// always pass.
///
/// # Errors
///
/// One message per regressed or missing configuration.
pub fn compare_node_reports(
    current: &NodeBenchReport,
    baseline: &NodeBenchReport,
    tolerance: f64,
) -> Result<Vec<String>, Vec<String>> {
    let mut lines = Vec::new();
    let mut failures = Vec::new();
    if current.connections != baseline.connections
        || current.depth != baseline.depth
        || current.read_pct != baseline.read_pct
        || current.keys != baseline.keys
        || current.seed != baseline.seed
    {
        failures.push(format!(
            "workload mismatch: current {}c/{}d/{}r/{}k/{:#x} vs baseline {}c/{}d/{}r/{}k/{:#x}",
            current.connections,
            current.depth,
            current.read_pct,
            current.keys,
            current.seed,
            baseline.connections,
            baseline.depth,
            baseline.read_pct,
            baseline.keys,
            baseline.seed
        ));
    }
    for base in &baseline.runs {
        let Some(run) = current.run_with_mode(&base.mode) else {
            failures.push(format!("missing run for mode '{}'", base.mode));
            continue;
        };
        let floor = base.qps * (1.0 - tolerance);
        let ratio = run.qps / base.qps;
        let line = format!(
            "{} ({} workers): {:.0} req/s p99 {} µs vs baseline {:.0} ({:+.1} %)",
            run.mode,
            run.workers,
            run.qps,
            run.p99_us,
            base.qps,
            (ratio - 1.0) * 100.0
        );
        if run.qps < floor {
            failures.push(format!("REGRESSION {line} — floor {floor:.0}"));
        } else {
            lines.push(line);
        }
    }
    if failures.is_empty() {
        Ok(lines)
    } else {
        Err(failures)
    }
}

/// Gates the shared-nothing speedup: sharded QPS must be at least
/// `min_speedup` × legacy QPS. A `min_speedup` of 0 disables the gate
/// (single-core runners cannot demonstrate parallel speedup).
///
/// # Errors
///
/// A message naming the measured and required speedups.
pub fn speedup_gate(report: &NodeBenchReport, min_speedup: f64) -> Result<String, String> {
    if min_speedup <= 0.0 {
        return Ok("speedup gate disabled".into());
    }
    let speedup = report
        .speedup()
        .ok_or("report lacks both a legacy and a sharded run")?;
    let line = format!("shared-nothing speedup {speedup:.2}x (floor {min_speedup:.2}x)");
    if speedup < min_speedup {
        Err(format!("GATE FAILED {line}"))
    } else {
        Ok(line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> NodeBenchReport {
        NodeBenchReport {
            connections: 256,
            depth: 16,
            read_pct: 70,
            keys: 4096,
            zipf: 0.9,
            seed: 0x10AD,
            ops: 200_000,
            runs: vec![
                NodeRunReport {
                    mode: "legacy".into(),
                    workers: 1,
                    wall_secs: 2.0,
                    qps: 100_000.0,
                    p50_us: 400,
                    p95_us: 900,
                    p99_us: 1500,
                    p999_us: 4000,
                },
                NodeRunReport {
                    mode: "sharded".into(),
                    workers: 4,
                    wall_secs: 0.8,
                    qps: 250_000.0,
                    p50_us: 200,
                    p95_us: 500,
                    p99_us: 800,
                    p999_us: 2500,
                },
            ],
        }
    }

    #[test]
    fn report_roundtrips_through_json() {
        let r = report();
        let text = r.to_json();
        assert!(text.contains(NODE_SCHEMA));
        let back = NodeBenchReport::from_json(&text).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn schema_mismatch_is_rejected() {
        let text = report().to_json().replace(NODE_SCHEMA, "other/v9");
        assert!(NodeBenchReport::from_json(&text).is_err());
    }

    #[test]
    fn comparison_passes_within_tolerance_and_on_speedups() {
        let base = report();
        let mut current = report();
        current.runs[0].qps = 90_000.0; // −10 %
        current.runs[1].qps = 400_000.0; // +60 %
        let lines = compare_node_reports(&current, &base, 0.2).unwrap();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("-10.0 %"));
    }

    #[test]
    fn comparison_fails_on_regression_missing_run_and_mismatch() {
        let base = report();
        let mut slow = report();
        slow.runs[1].qps = 150_000.0; // −40 %
        let failures = compare_node_reports(&slow, &base, 0.2).unwrap_err();
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("REGRESSION"));

        let mut missing = report();
        missing.runs.pop();
        assert!(compare_node_reports(&missing, &base, 0.2).is_err());

        let mut mismatched = report();
        mismatched.connections = 128;
        assert!(compare_node_reports(&mismatched, &base, 0.2).is_err());
    }

    #[test]
    fn speedup_gate_enforces_floor_and_can_be_disabled() {
        let r = report();
        assert!((r.speedup().unwrap() - 2.5).abs() < 1e-9);
        assert!(speedup_gate(&r, 2.0).is_ok());
        assert!(speedup_gate(&r, 3.0).is_err());
        assert!(speedup_gate(&r, 0.0).is_ok());

        let mut half = report();
        half.runs.retain(|run| run.mode == "legacy");
        assert!(speedup_gate(&half, 2.0).is_err());
        assert!(speedup_gate(&half, 0.0).is_ok());
    }
}
