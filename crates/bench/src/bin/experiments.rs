//! Regenerates every table and figure of the SieveStore paper.
//!
//! ```text
//! cargo run -p sievestore-bench --release --bin experiments -- all
//! cargo run -p sievestore-bench --release --bin experiments -- fig5 fig6 --scale 128
//! ```
//!
//! Text tables print to stdout; CSV series land in `results/`.

use std::process::ExitCode;

use sievestore_bench::{
    cost, extensions, policies, scenario, sens, shadow, summary, workload, Harness,
};

const USAGE: &str = "\
usage: experiments [--scale N|full] [--seed S] [--out DIR] <id>...

ids:
  table1 fig2a fig2b fig2c fig3a fig3b fig3c fig3d
  table2 table3 fig5 fig6 fig7 fig8 fig9 sec5_3 sens summary
  belady latency per_server   (extensions beyond the paper's figures)
  shadow     continuous policies under LRU and SIEVE eviction, side by
             side, with per-policy day-snapshot JSONL under <out>/shadow/
  scenarios  adversarial workload suite (flash crowd, hot-set inversion,
             failover, churn burst) x four policies x both evictions;
             writes <out>/scenario_report.json and per-scenario
             day-snapshot JSONL under <out>/scenarios/
  all        every experiment above

options:
  --scale N    trace scale denominator (default 256; smaller = higher
               fidelity); 'full' is an alias for 1 — pair it with --spill
               so memory stays bounded
  --seed S     master RNG seed (default 0x51EE5704)
  --out DIR    CSV output directory (default results/)
  --threads N  replay each simulation with N sharded workers (default 1:
               the sequential engine; discrete policies are bit-identical
               at any N)
  --eviction P continuous caches replace frames with policy P: 'lru'
               (default) or 'sieve' (lock-free hit path); discrete
               policies use the epoch-batch cache regardless
  --obs        enable runtime metrics recording; writes one day-boundary
               snapshot JSONL per policy run plus the registry totals
               (obs_metrics.json) to the output dir (hot-path counters
               need a build with --features obs)
  --spill DIR  bound memory: stream trace generation through spill files
               under DIR and count discrete epochs with the spill-backed
               counter (bit-identical figures; required for --scale full
               on ordinary hosts)
  --check-scenarios FILE
               after running the scenario suite, gate the fresh
               <out>/scenario_report.json against the committed baseline
               FILE (ci/SCENARIOS.json in CI); exits nonzero when any
               policy's degradation curve regressed beyond tolerance
               (implies the 'scenarios' id)
  --scenario-tolerance T
               absolute hit-ratio tolerance for --check-scenarios
               (default 0.02)
  --write-scenario-baseline FILE
               copy the fresh scenario report to FILE (re-baselining;
               implies the 'scenarios' id)";

const ALL: [&str; 22] = [
    "table1",
    "fig2a",
    "fig2b",
    "fig2c",
    "fig3a",
    "fig3b",
    "fig3c",
    "fig3d",
    "table2",
    "table3",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "sec5_3",
    "belady",
    "latency",
    "per_server",
    "sens",
    "shadow",
    "scenarios",
];

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale: u32 = 256;
    let mut seed: u64 = 0x51EE_5704;
    let mut out_dir = "results".to_string();
    let mut threads: usize = 1;
    let mut eviction = sievestore_sim::EvictionPolicy::default();
    let mut obs = false;
    let mut spill: Option<String> = None;
    let mut check_scenarios: Option<String> = None;
    let mut scenario_tolerance: f64 = 0.02;
    let mut write_scenario_baseline: Option<String> = None;
    let mut ids: Vec<String> = Vec::new();

    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--scale" => {
                let value = iter.next().ok_or("--scale needs a value")?;
                scale = if value == "full" {
                    1
                } else {
                    value.parse().map_err(|e| format!("bad --scale: {e}"))?
                };
            }
            "--seed" => {
                seed = iter
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--out" => {
                out_dir = iter.next().ok_or("--out needs a value")?;
            }
            "--threads" => {
                threads = iter
                    .next()
                    .ok_or("--threads needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --threads: {e}"))?;
            }
            "--eviction" => {
                eviction = iter
                    .next()
                    .ok_or("--eviction needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --eviction: {e}"))?;
            }
            "--obs" => obs = true,
            "--spill" => spill = Some(iter.next().ok_or("--spill needs a value")?),
            "--check-scenarios" => {
                check_scenarios = Some(iter.next().ok_or("--check-scenarios needs a file")?);
            }
            "--scenario-tolerance" => {
                scenario_tolerance = iter
                    .next()
                    .ok_or("--scenario-tolerance needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --scenario-tolerance: {e}"))?;
            }
            "--write-scenario-baseline" => {
                write_scenario_baseline = Some(
                    iter.next()
                        .ok_or("--write-scenario-baseline needs a file")?,
                );
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(());
            }
            id => ids.push(id.to_string()),
        }
    }
    // The scenario-gate flags imply the suite that produces the report.
    if (check_scenarios.is_some() || write_scenario_baseline.is_some())
        && !ids.iter().any(|i| i == "scenarios" || i == "all")
    {
        ids.push("scenarios".to_string());
    }
    if ids.is_empty() && !obs {
        return Err("no experiment ids given".into());
    }
    if obs {
        sievestore_types::obs::set_enabled(true);
    }
    if ids.iter().any(|i| i == "all") {
        ids = ALL.iter().map(|s| s.to_string()).collect();
        ids.push("summary".to_string());
    }

    let mut harness = Harness::new(scale, seed, &out_dir)
        .map_err(|e| e.to_string())?
        .with_threads(threads)
        .with_eviction(eviction);
    if let Some(dir) = &spill {
        harness = harness.with_spill(dir);
    }
    println!(
        "SieveStore experiments | 13-server ensemble, {} days, scale 1/{scale}, seed {seed:#x}, \
         replay {:?}, eviction {}{}",
        harness.trace().days(),
        harness.replay_mode(),
        harness.eviction(),
        if spill.is_some() { ", spill mode" } else { "" }
    );
    println!("CSV output: {out_dir}/\n");

    for id in &ids {
        let started = std::time::Instant::now();
        let output = dispatch(&mut harness, id).map_err(|e| format!("{id}: {e}"))?;
        println!(
            "=== {id} ({:.1}s) ===\n{output}",
            started.elapsed().as_secs_f64()
        );
    }

    if obs {
        let paths = harness
            .write_day_snapshots()
            .map_err(|e| format!("writing day snapshots: {e}"))?;
        println!("=== obs ===");
        for path in &paths {
            println!("day snapshots: {}", path.display());
        }
        let metrics = sievestore_types::obs::global().snapshot().to_json_line();
        let metrics_path = std::path::Path::new(&out_dir).join("obs_metrics.json");
        std::fs::write(&metrics_path, format!("{metrics}\n"))
            .map_err(|e| format!("writing {}: {e}", metrics_path.display()))?;
        println!("registry totals: {}", metrics_path.display());
    }

    // Every run records its provenance next to its outputs, so any
    // artifact directory is reproducible without the invoking command
    // line.
    let prov_path = std::path::Path::new(&out_dir).join("provenance.json");
    std::fs::create_dir_all(&out_dir).map_err(|e| format!("creating {out_dir}: {e}"))?;
    std::fs::write(&prov_path, scenario::provenance(&harness).to_pretty())
        .map_err(|e| format!("writing {}: {e}", prov_path.display()))?;

    let report_path = std::path::Path::new(&out_dir).join("scenario_report.json");
    if let Some(target) = &write_scenario_baseline {
        std::fs::copy(&report_path, target)
            .map_err(|e| format!("copying scenario baseline to {target}: {e}"))?;
        println!("scenario baseline written: {target}");
    }
    if let Some(baseline_path) = &check_scenarios {
        let current = scenario::load_report(&report_path)?;
        let baseline = scenario::load_report(std::path::Path::new(baseline_path))?;
        let summary = scenario::check_scenarios(&current, &baseline, scenario_tolerance)
            .map_err(|msg| format!("scenario regression vs {baseline_path}:\n{msg}"))?;
        println!("scenario gate: {summary}");
    }
    Ok(())
}

fn dispatch(h: &mut Harness, id: &str) -> Result<String, String> {
    let result = match id {
        "table1" => workload::table1(h),
        "fig2a" => workload::fig2a(h),
        "fig2b" | "fig2c" => workload::fig2bc(h),
        "fig3a" => workload::fig3a(h),
        "fig3b" => workload::fig3b(h),
        "fig3c" => workload::fig3c(h),
        "fig3d" => workload::fig3d(h),
        "table2" => policies::table2_exp(h),
        "table3" => Ok(policies::table3()),
        "fig5" => policies::fig5(h),
        "fig6" => policies::fig6(h),
        "fig7" => policies::fig7(h),
        "fig8" => cost::fig8(h),
        "fig9" => cost::fig9(h),
        "sec5_3" => cost::sec5_3(h),
        "belady" => extensions::belady(h),
        "latency" => extensions::latency(h),
        "per_server" => extensions::per_server_sim(h),
        "sens" => sens::sensitivity(h),
        "shadow" => shadow::shadow(h),
        "scenarios" => scenario::run_scenarios(h, &scenario::SCENARIO_IDS),
        "summary" => summary::summary(h),
        other => return Err(format!("unknown experiment id '{other}'")),
    };
    result.map_err(|e| e.to_string())
}
