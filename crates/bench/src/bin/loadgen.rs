//! Saturating ensemble load generator for the node serving path.
//!
//! Drives the single-lock (`legacy`) and shared-nothing (`sharded`) node
//! servers with the same multi-connection, pipelined, Zipf-skewed
//! read/write mix over loopback TCP, and reports QPS plus latency
//! quantiles per flavor as `BENCH_node.json`
//! ([`sievestore_bench::node_json`]).
//!
//! ```sh
//! cargo run -p sievestore-bench --release --bin loadgen -- \
//!     --out results/BENCH_node.json
//! cargo run -p sievestore-bench --release --bin loadgen -- \
//!     --check ci/BENCH_node.json --tolerance 0.25 --gate
//! ```
//!
//! With `--check`, fresh QPS is compared per flavor against the committed
//! baseline; a drop of more than `--tolerance` fails the run. With
//! `--gate`, the run additionally enforces the shared-nothing speedup,
//! tiered by what the host can physically demonstrate: on >= 4 cores the
//! sharded server must beat legacy by `--min-speedup` (default 2.0x), on
//! 2–3 cores it must reach parity, and on a single core — where workers
//! merely time-slice — only a catastrophic-overhead bound (half of
//! legacy) is asserted. `--smoke-faults` runs a fault-injection smoke
//! instead of the timed benchmark: the breaker must trip under injected
//! faults and probe back to healthy while a pipelined client is driving.
//!
//! When `GITHUB_STEP_SUMMARY` is set (GitHub Actions), a markdown table
//! of QPS and latency quantiles per flavor is appended.

use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Instant;

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use sievestore::PolicySpec;
use sievestore_bench::node_json::{
    compare_node_reports, NodeBenchReport, NodeRunReport, NODE_SCHEMA,
};
use sievestore_node::{
    ClientConfig, DataCache, FaultInjectingBacking, FaultPlan, MemBacking, NodeClient, NodeMode,
    NodeServerBuilder, PipelinedClient, RetryPolicy, WritePolicy,
};
use sievestore_trace::Zipf;
use sievestore_types::obs::{Histogram, HistogramSnapshot};

const USAGE: &str = "\
usage: loadgen [--connections N] [--depth D] [--read-pct P] [--keys K]
               [--zipf S] [--workers W] [--ops N] [--seed S] [--out FILE]
               [--check BASELINE] [--tolerance T] [--gate]
               [--min-speedup X] [--write-baseline] [--smoke-faults]

options:
  --connections N  concurrent client connections (default 32)
  --depth D        pipeline depth per connection (default 8)
  --read-pct P     read share of the workload in percent (default 70)
  --keys K         distinct keys addressed (default 4096)
  --zipf S         Zipf skew exponent, 0 = uniform (default 0.9)
  --workers W      shard workers for the shared-nothing run (default 4)
  --ops N          total requests per timed run (default 100000)
  --seed S         workload seed (default 0x10AD)
  --out FILE       where to write the report (default BENCH_node.json)
  --check FILE     compare QPS against a committed baseline report; exit
                   nonzero on regression beyond --tolerance
  --tolerance T    allowed fractional QPS regression for --check
                   (default 0.25)
  --gate           enforce the shared-nothing speedup, tiered by core
                   count (>= 4 cores: --min-speedup; 2-3: parity;
                   1: overhead bounded at 50 %)
  --min-speedup X  sharded-over-legacy QPS ratio required on >= 4 cores
                   with --gate (default 2.0)
  --write-baseline also refresh the committed ci/BENCH_node.json
  --smoke-faults   run the breaker fault smoke instead of the benchmark";

/// The committed CI baseline `--write-baseline` refreshes.
const CI_BASELINE: &str = "ci/BENCH_node.json";

struct Workload {
    connections: usize,
    depth: usize,
    read_pct: u32,
    keys: u64,
    zipf: f64,
    ops: u64,
    seed: u64,
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<ExitCode, String> {
    let mut wl = Workload {
        connections: 32,
        depth: 8,
        read_pct: 70,
        keys: 4096,
        zipf: 0.9,
        ops: 100_000,
        seed: 0x10AD,
    };
    let mut workers: usize = 4;
    let mut out = "BENCH_node.json".to_string();
    let mut check: Option<String> = None;
    let mut tolerance: f64 = 0.25;
    let mut gate = false;
    let mut min_speedup: f64 = 2.0;
    let mut write_baseline = false;
    let mut smoke_faults = false;

    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| iter.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--connections" => {
                wl.connections = value("--connections")?
                    .parse()
                    .map_err(|e| format!("bad --connections: {e}"))?;
                if wl.connections == 0 {
                    return Err("--connections must be at least 1".into());
                }
            }
            "--depth" => {
                wl.depth = value("--depth")?
                    .parse()
                    .map_err(|e| format!("bad --depth: {e}"))?;
                if wl.depth == 0 {
                    return Err("--depth must be at least 1".into());
                }
            }
            "--read-pct" => {
                wl.read_pct = value("--read-pct")?
                    .parse()
                    .map_err(|e| format!("bad --read-pct: {e}"))?;
                if wl.read_pct > 100 {
                    return Err("--read-pct must be in [0, 100]".into());
                }
            }
            "--keys" => {
                wl.keys = value("--keys")?
                    .parse()
                    .map_err(|e| format!("bad --keys: {e}"))?;
                if wl.keys == 0 {
                    return Err("--keys must be at least 1".into());
                }
            }
            "--zipf" => {
                wl.zipf = value("--zipf")?
                    .parse()
                    .map_err(|e| format!("bad --zipf: {e}"))?;
            }
            "--workers" => {
                workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("bad --workers: {e}"))?;
                if workers == 0 {
                    return Err("--workers must be at least 1".into());
                }
            }
            "--ops" => {
                wl.ops = value("--ops")?
                    .parse()
                    .map_err(|e| format!("bad --ops: {e}"))?;
                if wl.ops == 0 {
                    return Err("--ops must be at least 1".into());
                }
            }
            "--seed" => {
                wl.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--out" => out = value("--out")?,
            "--check" => check = Some(value("--check")?),
            "--tolerance" => {
                tolerance = value("--tolerance")?
                    .parse()
                    .map_err(|e| format!("bad --tolerance: {e}"))?;
                if !(0.0..1.0).contains(&tolerance) {
                    return Err("--tolerance must be in [0, 1)".into());
                }
            }
            "--gate" => gate = true,
            "--min-speedup" => {
                min_speedup = value("--min-speedup")?
                    .parse()
                    .map_err(|e| format!("bad --min-speedup: {e}"))?;
                if min_speedup < 1.0 {
                    return Err("--min-speedup must be at least 1.0".into());
                }
            }
            "--write-baseline" => write_baseline = true,
            "--smoke-faults" => smoke_faults = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(ExitCode::SUCCESS);
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }

    if smoke_faults {
        return fault_smoke(workers);
    }

    println!(
        "loadgen | {} conns x depth {}, {} % reads, {} keys (zipf {}), {} ops, seed {:#x}",
        wl.connections, wl.depth, wl.read_pct, wl.keys, wl.zipf, wl.ops, wl.seed
    );

    let legacy = {
        let cache = DataCache::new(MemBacking::new(), PolicySpec::Aod, wl.keys as usize)
            .map_err(|e| e.to_string())?;
        let server = NodeServerBuilder::new("127.0.0.1:0")
            .serve(cache)
            .map_err(|e| e.to_string())?;
        let run = drive("legacy", 1, server.addr(), &wl)?;
        server.shutdown();
        run
    };
    let sharded = {
        let server = NodeServerBuilder::new("127.0.0.1:0")
            .workers(workers)
            .serve_sharded(
                MemBacking::new(),
                PolicySpec::Aod,
                wl.keys as usize,
                WritePolicy::WriteThrough,
            )
            .map_err(|e| e.to_string())?;
        let run = drive("sharded", workers, server.addr(), &wl)?;
        server.shutdown();
        run
    };

    let report = NodeBenchReport {
        connections: wl.connections,
        depth: wl.depth,
        read_pct: wl.read_pct,
        keys: wl.keys,
        zipf: wl.zipf,
        seed: wl.seed,
        ops: wl.ops,
        runs: vec![legacy, sharded],
    };
    let text = report.to_json();
    assert!(text.contains(NODE_SCHEMA));
    write_report(&out, &text)?;
    println!("report written to {out}");
    if write_baseline {
        write_report(CI_BASELINE, &text)?;
        println!("baseline refreshed at {CI_BASELINE}");
    }

    let baseline = match &check {
        Some(path) => {
            let baseline_text = std::fs::read_to_string(path)
                .map_err(|e| format!("reading baseline {path}: {e}"))?;
            Some(
                NodeBenchReport::from_json(&baseline_text)
                    .map_err(|e| format!("parsing baseline {path}: {e}"))?,
            )
        }
        None => None,
    };

    // The markdown summary goes up regardless of whether the gates below
    // pass: failed runs are exactly the ones whose numbers matter.
    write_step_summary(&report, baseline.as_ref());

    if let Some(baseline) = &baseline {
        match compare_node_reports(&report, baseline, tolerance) {
            Ok(lines) => {
                println!(
                    "baseline check passed (tolerance {:.0} %):",
                    tolerance * 100.0
                );
                for line in lines {
                    println!("  {line}");
                }
            }
            Err(failures) => {
                for failure in &failures {
                    eprintln!("  {failure}");
                }
                eprintln!(
                    "performance gate failed: {} configuration(s) regressed beyond {:.0} %",
                    failures.len(),
                    tolerance * 100.0
                );
                return Ok(ExitCode::FAILURE);
            }
        }
    }

    if gate {
        let speedup = report.speedup().ok_or("both runs were just timed")?;
        let cores = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        // Tiered by what the host can physically show, mirroring the
        // replay scaling gate: >= 4 cores must demonstrate the real win,
        // 2-3 cores parity, and on a single core — where shard workers
        // time-slice with the client threads — only a catastrophic
        // overhead bound holds.
        let (floor, criterion) = if cores >= 4 {
            (
                min_speedup,
                format!("sharded must beat legacy by {min_speedup:.2}x"),
            )
        } else if cores >= 2 {
            (1.0, "sharded must match legacy".to_string())
        } else {
            (0.5, "overhead bounded at 50 %".to_string())
        };
        if speedup < floor {
            eprintln!(
                "speedup gate failed on {cores} core(s) ({criterion}): \
                 sharded({workers}) is {speedup:.2}x legacy — floor {floor:.2}x"
            );
            return Ok(ExitCode::FAILURE);
        }
        println!(
            "speedup gate passed on {cores} core(s) ({criterion}): \
             sharded({workers}) is {speedup:.2}x legacy"
        );
    }
    Ok(ExitCode::SUCCESS)
}

/// Times one server flavor: prefills every key (so steady-state reads
/// hit), then fans `connections` pipelined clients out and measures the
/// wall clock over exactly `ops` requests.
fn drive(
    mode: &str,
    workers: usize,
    addr: std::net::SocketAddr,
    wl: &Workload,
) -> Result<NodeRunReport, String> {
    // Prefill outside the timed window: with allocate-on-demand and
    // capacity == keys, every key is resident and the timed phase
    // measures the serving path, not cold misses.
    {
        let mut client =
            PipelinedClient::connect(addr, 64).map_err(|e| format!("prefill connect: {e}"))?;
        for key in 0..wl.keys {
            client
                .write(key, &[key as u8; 512])
                .map_err(|e| format!("prefill write: {e}"))?;
        }
        let done = client.drain().map_err(|e| format!("prefill drain: {e}"))?;
        if let Some(bad) = done.iter().find(|c| c.result.is_err()) {
            return Err(format!("prefill op on key {} failed", bad.key));
        }
        client.quit().map_err(|e| format!("prefill quit: {e}"))?;
    }

    let zipf = Zipf::new(wl.keys, wl.zipf)?;
    let barrier = Arc::new(Barrier::new(wl.connections + 1));
    let errors = Arc::new(AtomicU64::new(0));
    let per_conn = wl.ops / wl.connections as u64;
    let remainder = wl.ops % wl.connections as u64;

    let mut threads = Vec::with_capacity(wl.connections);
    for conn in 0..wl.connections {
        let barrier = Arc::clone(&barrier);
        let errors = Arc::clone(&errors);
        let quota = per_conn + u64::from((conn as u64) < remainder);
        let depth = wl.depth;
        let read_pct = wl.read_pct;
        let seed = wl.seed ^ (conn as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        threads.push(std::thread::spawn(
            move || -> Result<HistogramSnapshot, String> {
                let mut client = PipelinedClient::connect(addr, depth)
                    .map_err(|e| format!("conn {conn} connect: {e}"))?;
                let mut rng = SmallRng::seed_from_u64(seed);
                let hist = Histogram::new();
                let settle = |done: Vec<sievestore_node::Completion>| {
                    for c in done {
                        if c.result.is_err() {
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                        hist.record(c.latency.as_micros() as u64);
                    }
                };
                barrier.wait();
                for _ in 0..quota {
                    let key = zipf.sample(&mut rng) - 1;
                    let done = if rng.random_range(0..100u32) < read_pct {
                        client.read(key)
                    } else {
                        client.write(key, &[key as u8; 512])
                    }
                    .map_err(|e| format!("conn {conn} submit: {e}"))?;
                    settle(done);
                }
                settle(
                    client
                        .drain()
                        .map_err(|e| format!("conn {conn} drain: {e}"))?,
                );
                client
                    .quit()
                    .map_err(|e| format!("conn {conn} quit: {e}"))?;
                Ok(hist.snapshot())
            },
        ));
    }

    barrier.wait();
    let started = Instant::now();
    let mut merged = HistogramSnapshot::empty();
    for thread in threads {
        let snap = thread.join().map_err(|_| "connection thread panicked")??;
        merged.merge(&snap);
    }
    let wall_secs = started.elapsed().as_secs_f64();

    if errors.load(Ordering::Relaxed) > 0 {
        return Err(format!(
            "{} request(s) failed during the {mode} run",
            errors.load(Ordering::Relaxed)
        ));
    }
    if merged.count() != wl.ops {
        return Err(format!(
            "{mode} run completed {} of {} requests",
            merged.count(),
            wl.ops
        ));
    }

    let q = |quantile: f64| merged.quantile_floor(quantile).unwrap_or(0);
    let run = NodeRunReport {
        mode: mode.into(),
        workers,
        wall_secs,
        qps: wl.ops as f64 / wall_secs,
        p50_us: q(0.50),
        p95_us: q(0.95),
        p99_us: q(0.99),
        p999_us: q(0.999),
    };
    println!(
        "{:>8} ({} workers): {:>9.0} req/s | p50 {} µs, p95 {} µs, p99 {} µs, p99.9 {} µs",
        run.mode, run.workers, run.qps, run.p50_us, run.p95_us, run.p99_us, run.p999_us
    );
    Ok(run)
}

/// The CI fault smoke: a pipelined client drives the shared-nothing
/// server while injected backing faults trip a shard's breaker; every
/// request must still complete, and the breaker must probe back to
/// healthy.
fn fault_smoke(workers: usize) -> Result<ExitCode, String> {
    let backing = FaultInjectingBacking::new(MemBacking::new(), FaultPlan::new(0x5EED));
    let handle = backing.handle();
    let server = NodeServerBuilder::new("127.0.0.1:0")
        .workers(workers)
        .serve_sharded(backing, PolicySpec::Aod, 1024, WritePolicy::WriteThrough)
        .map_err(|e| e.to_string())?;

    let config = ClientConfig {
        retry: RetryPolicy {
            attempts: 8,
            base_backoff: std::time::Duration::from_millis(1),
            max_backoff: std::time::Duration::from_millis(8),
        },
        ..ClientConfig::default()
    };
    let mut client =
        PipelinedClient::connect_with(server.addr(), config, 8).map_err(|e| e.to_string())?;

    client.write(1, &[0x5A; 512]).map_err(|e| e.to_string())?;
    client.drain().map_err(|e| e.to_string())?;

    // Sustained faults on an uncached key trip its shard's breaker; the
    // pipelined retries ride through into degraded pass-through.
    handle.fail_next(3);
    client.read(999).map_err(|e| e.to_string())?;
    let done = client.drain().map_err(|e| e.to_string())?;
    if done.iter().any(|c| c.result.is_err()) {
        return Err("request failed while the breaker tripped".into());
    }
    if server.mode() != NodeMode::Degraded {
        return Err(format!(
            "breaker did not trip (mode {:?} after sustained faults)",
            server.mode()
        ));
    }
    println!("fault smoke: breaker tripped into degraded pass-through");

    // Spend the cooldown; the probe finds the healed backing.
    for _ in 0..16 {
        client.read(999).map_err(|e| e.to_string())?;
        client.drain().map_err(|e| e.to_string())?;
        if server.mode() == NodeMode::Healthy {
            break;
        }
    }
    if server.mode() != NodeMode::Healthy {
        return Err(format!(
            "breaker did not recover (mode {:?} after cooldown)",
            server.mode()
        ));
    }
    println!("fault smoke: breaker probed back to healthy under pipelined load");

    // The node still serves correct bytes end to end.
    let mut check = NodeClient::connect(server.addr()).map_err(|e| e.to_string())?;
    let (data, _) = check.read_block(1).map_err(|e| e.to_string())?;
    if data[0] != 0x5A {
        return Err("data corrupted across the fault cycle".into());
    }
    check.quit().map_err(|e| e.to_string())?;
    client.quit().map_err(|e| e.to_string())?;
    server.shutdown();
    println!("fault smoke passed");
    Ok(ExitCode::SUCCESS)
}

fn write_report(path: &str, text: &str) -> Result<(), String> {
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(|e| format!("creating {parent:?}: {e}"))?;
        }
    }
    std::fs::write(path, text).map_err(|e| format!("writing {path}: {e}"))
}

/// Appends a markdown QPS/latency table to `$GITHUB_STEP_SUMMARY` when
/// the environment provides one (GitHub Actions), including deltas
/// against the `--check` baseline when available. Best-effort: summary
/// failures never fail the benchmark.
fn write_step_summary(report: &NodeBenchReport, baseline: Option<&NodeBenchReport>) {
    let Ok(path) = std::env::var("GITHUB_STEP_SUMMARY") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let mut md = String::from("### Node serving throughput\n\n");
    md.push_str(&format!(
        "`{}` requests, {} connections x depth {}, {} % reads, {} keys (zipf {})\n\n",
        report.ops, report.connections, report.depth, report.read_pct, report.keys, report.zipf
    ));
    md.push_str("| mode | workers | req/s | p50 µs | p95 µs | p99 µs | p99.9 µs | vs baseline |\n");
    md.push_str("| --- | ---: | ---: | ---: | ---: | ---: | ---: | ---: |\n");
    for run in &report.runs {
        let delta = baseline
            .and_then(|b| b.run_with_mode(&run.mode))
            .map(|b| format!("{:+.1} %", (run.qps / b.qps - 1.0) * 100.0))
            .unwrap_or_else(|| "—".into());
        md.push_str(&format!(
            "| {} | {} | {:.0} | {} | {} | {} | {} | {} |\n",
            run.mode, run.workers, run.qps, run.p50_us, run.p95_us, run.p99_us, run.p999_us, delta
        ));
    }
    if let Some(speedup) = report.speedup() {
        md.push_str(&format!("\nshared-nothing speedup: **{speedup:.2}x**\n"));
    }
    let _ = std::fs::OpenOptions::new()
        .append(true)
        .create(true)
        .open(&path)
        .and_then(|mut f| std::io::Write::write_all(&mut f, md.as_bytes()));
}
