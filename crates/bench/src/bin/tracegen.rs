//! Generates synthetic ensemble traces to disk, in the binary `SSTR`
//! format and/or MSR-shaped CSV.
//!
//! ```text
//! cargo run -p sievestore-bench --release --bin tracegen -- \
//!     --out /tmp/ensemble --scale 1024 --days 3 --format both
//! ```
//!
//! One file per calendar day (`day-<n>.sstr` / `day-<n>.csv`), plus a
//! summary line per day. Useful for feeding external tools or decoupling
//! trace generation from simulation.

use std::fs::{self, File};
use std::path::PathBuf;
use std::process::ExitCode;

use sievestore_trace::{write_csv, EnsembleConfig, Scale, SyntheticTrace, TraceWriter};
use sievestore_types::Day;

const USAGE: &str = "\
usage: tracegen --out DIR [--scale N] [--seed S] [--days D] [--format binary|csv|both]

Generates the 13-server calibrated ensemble trace, one file per day.";

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let mut out: Option<PathBuf> = None;
    let mut scale: u32 = 1024;
    let mut seed: u64 = 0x51EE_5704;
    let mut days: Option<u16> = None;
    let mut format = "binary".to_string();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--out" => out = Some(PathBuf::from(value("--out")?)),
            "--scale" => {
                scale = value("--scale")?
                    .parse()
                    .map_err(|e| format!("bad --scale: {e}"))?
            }
            "--seed" => {
                seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?
            }
            "--days" => {
                days = Some(
                    value("--days")?
                        .parse()
                        .map_err(|e| format!("bad --days: {e}"))?,
                )
            }
            "--format" => format = value("--format")?,
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(());
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    let out = out.ok_or("--out is required")?;
    if !matches!(format.as_str(), "binary" | "csv" | "both") {
        return Err(format!("unknown format '{format}'"));
    }

    let mut config = EnsembleConfig::msr_like()
        .with_scale(Scale::new(scale).map_err(|e| e.to_string())?)
        .with_seed(seed);
    if let Some(d) = days {
        config = config.with_days(d);
    }
    let trace = SyntheticTrace::new(config).map_err(|e| e.to_string())?;
    fs::create_dir_all(&out).map_err(|e| e.to_string())?;

    for d in 0..trace.days() {
        let requests = trace.day_requests(Day::new(d));
        let blocks: u64 = requests.iter().map(|r| r.len_blocks as u64).sum();
        if format == "binary" || format == "both" {
            let path = out.join(format!("day-{d}.sstr"));
            let file = File::create(&path).map_err(|e| e.to_string())?;
            let mut writer =
                TraceWriter::with_count(file, requests.len() as u64).map_err(|e| e.to_string())?;
            for r in &requests {
                writer.write(r).map_err(|e| e.to_string())?;
            }
            writer.finish().map_err(|e| e.to_string())?;
        }
        if format == "csv" || format == "both" {
            let path = out.join(format!("day-{d}.csv"));
            let file = File::create(&path).map_err(|e| e.to_string())?;
            write_csv(file, requests.iter()).map_err(|e| e.to_string())?;
        }
        println!(
            "day {d}: {} requests, {} block accesses ({:.1} GB at scale 1/{scale})",
            requests.len(),
            blocks,
            blocks as f64 * 512.0 / 1e9,
        );
    }
    println!("wrote {} day file(s) to {}", trace.days(), out.display());
    Ok(())
}
