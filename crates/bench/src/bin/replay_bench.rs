//! Replay-engine throughput benchmark and CI regression gate.
//!
//! Replays a fixed seeded synthetic trace through the sequential engine
//! and the sharded engine at several thread counts, verifies the sharded
//! per-day metrics are byte-identical to the sequential report, and
//! writes a machine-readable `BENCH_replay.json` (events/sec, wall time,
//! per-shard imbalance).
//!
//! ```text
//! cargo run -p sievestore-bench --release --bin replay_bench -- \
//!     --out results/BENCH_replay.json
//! cargo run -p sievestore-bench --release --bin replay_bench -- \
//!     --check ci/BENCH_replay.json --tolerance 0.2
//! ```
//!
//! With `--check`, the fresh measurement is compared against the
//! committed baseline: any configuration whose events/sec falls more than
//! `--tolerance` below the baseline fails the run (exit code 1). Speedups
//! always pass; re-baseline with `--write-baseline`, which rewrites
//! `ci/BENCH_replay.json` from the fresh measurement in one command.
//!
//! With `--require-scaling`, the run additionally gates on multi-core
//! speedup, tiered by the host's core count: with four or more cores
//! (CI's perf runners) the widest sharded configuration must beat the
//! sequential engine by at least `--min-speedup` (default 1.3×) — a hard
//! requirement, no escape hatch; with two or three cores it must merely
//! beat sequential; on a single core, where parallel speedup is
//! physically impossible and only coordination overhead can be measured,
//! the bound degrades to keeping ≥ 50 % of sequential throughput.
//!
//! Besides the end-to-end replays, each run times a set of hot-path
//! micro-benchmarks (`U64Map` insert/get, `LruCache` touch/insert,
//! `SieveCache` touch/insert, `Mct::record_miss`) and embeds the ns/op
//! figures in the report so a replay regression can be localized to a
//! structure. Micro figures are informational only; they are never gated.
//!
//! Every report also embeds the day-boundary snapshot export
//! (`sievestore-day-snapshot/v1` JSONL) for the sequential run, and the
//! differential check requires the sharded engines to reproduce it
//! byte-for-byte. With `--obs`, runtime metrics recording is switched on
//! and the observability-registry totals are embedded as diagnostics
//! (full counters need a build with `--features obs`).
//!
//! `--scale` also accepts the literal `full` (denominator 1 — the paper's
//! complete 13-server ensemble). For such runs `--spill DIR` routes both
//! trace generation and epoch access counting through spill files so peak
//! RSS stays bounded by one server-day, and `--max-rss-mb N` turns the
//! measured `VmHWM` high-water mark into a hard gate. Every report embeds
//! the measured peak as `peak_rss_bytes`.
//!
//! When `GITHUB_STEP_SUMMARY` is set (GitHub Actions), a markdown table
//! of events/sec per mode — with deltas against the `--check` baseline —
//! is appended to it, so the perf job's numbers show up on the run's
//! summary page without digging through logs.

use std::process::ExitCode;
use std::time::Instant;

use sievestore::PolicySpec;
use sievestore_bench::replay_json::{compare_reports, MicroReport, ReplayReport, RunReport};
use sievestore_cache::{LruCache, SieveCache};
use sievestore_extsort::CountingConfig;
use sievestore_sieve::{Mct, WindowConfig};
use sievestore_sim::{
    simulate, simulate_sharded, EvictionPolicy, SimConfig, SimResult, SnapshotLog,
};
use sievestore_trace::{EnsembleConfig, Scale, SyntheticTrace, TraceStreamConfig};
use sievestore_types::{mix64, peak_rss_bytes, Micros, U64Map};

const USAGE: &str = "\
usage: replay_bench [--scale N|full] [--seed S] [--reps R] [--out FILE]
                    [--check BASELINE] [--tolerance T] [--require-scaling]
                    [--min-speedup X] [--write-baseline] [--eviction P]
                    [--obs] [--spill DIR] [--max-rss-mb N]

options:
  --scale N       trace scale denominator (default 2048); 'full' is an
                  alias for 1 (the paper's full 13-server ensemble)
  --seed S        trace seed (default 0x51EE5704)
  --reps R        repetitions per configuration; the fastest is reported
                  (default 3 — damps scheduler noise on shared runners)
  --out FILE      where to write the report (default BENCH_replay.json)
  --check FILE    compare against a committed baseline report; exit
                  nonzero if any configuration's events/sec regresses
  --tolerance T   allowed fractional regression for --check (default 0.2)
  --require-scaling
                  exit nonzero unless the widest sharded run beats the
                  sequential engine by --min-speedup (>= 4 cores), beats
                  it at all (2-3 cores), or stays within 50 % of it
                  (single-core hosts)
  --min-speedup X sharded-over-sequential ratio required on >= 4 cores
                  (default 1.3)
  --write-baseline
                  also write the fresh report to ci/BENCH_replay.json,
                  so re-baselining the committed gate is one command
  --eviction P    eviction policy for the continuous caches: 'lru'
                  (default) or 'sieve'; the gated replay is discrete, so
                  this only affects the eviction micro-benchmarks' labels
                  and any continuous diagnostics
  --obs           enable runtime metrics recording and embed the
                  observability-registry totals in the report (hot-path
                  counters need a build with --features obs)
  --spill DIR     bound memory: stream trace chunks through spill files
                  under DIR and count epoch accesses with the spill-backed
                  counter, so peak RSS tracks one server-day instead of
                  the whole trace (required for --scale full runs on
                  ordinary hosts)
  --max-rss-mb N  hard peak-RSS ceiling in MiB, checked against VmHWM
                  after the replay phase; exceeding it fails the run
                  (Linux only — elsewhere the probe reads 0 and the gate
                  is reported as unenforceable)";

/// The committed CI baseline `--write-baseline` refreshes.
const CI_BASELINE: &str = "ci/BENCH_replay.json";

/// Thread counts timed in addition to the sequential engine.
const SHARD_COUNTS: [usize; 2] = [2, 4];

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<ExitCode, String> {
    let mut scale: u32 = 2048;
    let mut seed: u64 = 0x51EE_5704;
    let mut reps: usize = 3;
    let mut out = "BENCH_replay.json".to_string();
    let mut check: Option<String> = None;
    let mut tolerance: f64 = 0.2;
    let mut require_scaling = false;
    let mut min_speedup: f64 = 1.3;
    let mut write_baseline = false;
    let mut eviction = EvictionPolicy::default();
    let mut obs = false;
    let mut spill: Option<String> = None;
    let mut max_rss_mb: Option<u64> = None;

    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--scale" => {
                let value = iter.next().ok_or("--scale needs a value")?;
                scale = if value == "full" {
                    1
                } else {
                    value.parse().map_err(|e| format!("bad --scale: {e}"))?
                };
            }
            "--seed" => {
                seed = iter
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--reps" => {
                reps = iter
                    .next()
                    .ok_or("--reps needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --reps: {e}"))?;
                if reps == 0 {
                    return Err("--reps must be at least 1".into());
                }
            }
            "--out" => out = iter.next().ok_or("--out needs a value")?,
            "--check" => check = Some(iter.next().ok_or("--check needs a value")?),
            "--tolerance" => {
                tolerance = iter
                    .next()
                    .ok_or("--tolerance needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --tolerance: {e}"))?;
                if !(0.0..1.0).contains(&tolerance) {
                    return Err("--tolerance must be in [0, 1)".into());
                }
            }
            "--require-scaling" => require_scaling = true,
            "--min-speedup" => {
                min_speedup = iter
                    .next()
                    .ok_or("--min-speedup needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --min-speedup: {e}"))?;
                if min_speedup < 1.0 {
                    return Err("--min-speedup must be at least 1.0".into());
                }
            }
            "--write-baseline" => write_baseline = true,
            "--eviction" => {
                eviction = iter
                    .next()
                    .ok_or("--eviction needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --eviction: {e}"))?;
            }
            "--obs" => obs = true,
            "--spill" => spill = Some(iter.next().ok_or("--spill needs a value")?),
            "--max-rss-mb" => {
                let value: u64 = iter
                    .next()
                    .ok_or("--max-rss-mb needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --max-rss-mb: {e}"))?;
                if value == 0 {
                    return Err("--max-rss-mb must be positive".into());
                }
                max_rss_mb = Some(value);
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(ExitCode::SUCCESS);
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }

    let trace = SyntheticTrace::new(
        EnsembleConfig::msr_like()
            .with_scale(Scale::new(scale).map_err(|e| e.to_string())?)
            .with_seed(seed),
    )
    .map_err(|e| e.to_string())?;
    // SieveStore-D is the paper's headline policy and is bit-identical
    // under sharding at any thread count, so the differential check below
    // can demand exact equality.
    let spec = PolicySpec::SieveStoreD { threshold: 10 };
    let mut cfg = SimConfig::paper_16gb(scale).with_eviction(eviction);
    if let Some(dir) = &spill {
        // Both the trace generator and the epoch counter spill under the
        // same root, so one flag bounds every unbounded structure: stream
        // peak falls to one server-day and counting to the hot-map budget.
        let root = std::path::PathBuf::from(dir);
        cfg = cfg
            .with_trace_stream(TraceStreamConfig::default().with_spill_dir(root.join("trace")))
            .with_counting(CountingConfig::spill(root.join("counts")));
    }
    if obs {
        sievestore_types::obs::set_enabled(true);
    }
    println!(
        "replay_bench | scale 1/{scale}, seed {seed:#x}, {} days, policy {spec:?}{}",
        trace.days(),
        if spill.is_some() { ", spill mode" } else { "" }
    );

    // Every configuration runs `reps` times; the fastest wall time is
    // reported, which damps transient scheduler noise on shared runners.
    let mut sequential = None;
    let mut seq_secs = f64::INFINITY;
    for _ in 0..reps {
        let started = Instant::now();
        let result = simulate(&trace, spec.clone(), &cfg).map_err(|e| e.to_string())?;
        seq_secs = seq_secs.min(started.elapsed().as_secs_f64());
        sequential = Some(result);
    }
    let sequential = sequential.expect("reps >= 1");
    // Built outside the timed region; the sharded runs below must
    // reproduce these bytes exactly.
    let snapshot_log = SnapshotLog::from_result(&sequential);
    let events = sequential.total().accesses();
    let mut runs = vec![RunReport {
        mode: "sequential".into(),
        threads: 1,
        wall_secs: seq_secs,
        events_per_sec: events as f64 / seq_secs,
        imbalance: 1.0,
    }];
    print_run(runs.last().expect("just pushed"));

    for &threads in &SHARD_COUNTS {
        let mut best_secs = f64::INFINITY;
        let mut imbalance = 1.0;
        for _ in 0..reps {
            let started = Instant::now();
            let (result, stats) =
                simulate_sharded(&trace, spec.clone(), &cfg, threads).map_err(|e| e.to_string())?;
            best_secs = best_secs.min(started.elapsed().as_secs_f64());
            imbalance = stats.imbalance();
            verify_identical(&sequential, &snapshot_log, &result, threads)?;
        }
        runs.push(RunReport {
            mode: "sharded".into(),
            threads,
            wall_secs: best_secs,
            events_per_sec: events as f64 / best_secs,
            imbalance,
        });
        print_run(runs.last().expect("just pushed"));
    }

    // Peak RSS is sampled before the micro phase: VmHWM is a process-wide
    // high-water mark, and the micro benchmarks allocate working sets that
    // have nothing to do with the replay pipeline's footprint.
    let peak_rss = peak_rss_bytes();
    println!(
        "peak RSS: {:.1} MiB (VmHWM)",
        peak_rss as f64 / (1 << 20) as f64
    );

    // Registry totals are captured before the micro phase so the
    // instrumented structures exercised there don't pollute the replay
    // figures.
    let obs_metrics = if obs {
        let line = sievestore_types::obs::global().snapshot().to_json_line();
        println!("obs registry: {line}");
        Some(line)
    } else {
        None
    };

    let micro = micro_phase(reps);

    let report = ReplayReport {
        scale,
        seed,
        events,
        runs,
        micro,
        day_snapshots_jsonl: Some(snapshot_log.to_jsonl()),
        obs_metrics,
        peak_rss_bytes: Some(peak_rss),
    };
    let text = report.to_json();
    if let Some(parent) = std::path::Path::new(&out).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(|e| format!("creating {parent:?}: {e}"))?;
        }
    }
    std::fs::write(&out, &text).map_err(|e| format!("writing {out}: {e}"))?;
    println!("report written to {out}");

    if write_baseline {
        if let Some(parent) = std::path::Path::new(CI_BASELINE).parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).map_err(|e| format!("creating {parent:?}: {e}"))?;
            }
        }
        std::fs::write(CI_BASELINE, &text).map_err(|e| format!("writing {CI_BASELINE}: {e}"))?;
        println!("baseline refreshed at {CI_BASELINE}");
    }

    let baseline = match &check {
        Some(path) => {
            let baseline_text = std::fs::read_to_string(path)
                .map_err(|e| format!("reading baseline {path}: {e}"))?;
            Some(
                ReplayReport::from_json(&baseline_text)
                    .map_err(|e| format!("parsing baseline {path}: {e}"))?,
            )
        }
        None => None,
    };

    // The markdown summary goes up regardless of whether the gates below
    // pass: failed runs are exactly the ones whose numbers matter.
    write_step_summary(&report, baseline.as_ref());

    if let Some(ceiling_mb) = max_rss_mb {
        // The report (with the measured peak) is already on disk, so a
        // failed ceiling still leaves the figures for diagnosis.
        if peak_rss == 0 {
            eprintln!("--max-rss-mb: VmHWM unavailable on this platform; gate not enforced");
        } else if peak_rss > ceiling_mb << 20 {
            eprintln!(
                "memory gate failed: peak RSS {:.1} MiB exceeds the {ceiling_mb} MiB ceiling",
                peak_rss as f64 / (1 << 20) as f64
            );
            return Ok(ExitCode::FAILURE);
        } else {
            println!(
                "memory gate passed: peak RSS {:.1} MiB within the {ceiling_mb} MiB ceiling",
                peak_rss as f64 / (1 << 20) as f64
            );
        }
    }

    if let Some(baseline) = &baseline {
        match compare_reports(&report, baseline, tolerance) {
            Ok(lines) => {
                println!(
                    "baseline check passed (tolerance {:.0} %):",
                    tolerance * 100.0
                );
                for line in lines {
                    println!("  {line}");
                }
            }
            Err(failures) => {
                for failure in &failures {
                    eprintln!("  {failure}");
                }
                eprintln!(
                    "performance gate failed: {} configuration(s) regressed beyond {:.0} %",
                    failures.len(),
                    tolerance * 100.0
                );
                return Ok(ExitCode::FAILURE);
            }
        }
    }

    if require_scaling {
        let wide_threads = *SHARD_COUNTS.last().expect("non-empty shard list");
        let seq = report
            .run_with("sequential", 1)
            .expect("sequential run is always first");
        let wide = report
            .run_with("sharded", wide_threads)
            .expect("widest sharded run was just timed");
        let cores = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        // Tiered by what the host can physically show. Four or more
        // cores (the CI perf runners) must demonstrate a real win — the
        // sharded engine has no reason to exist otherwise. Two or three
        // cores must still beat sequential, just without the margin. On
        // a single core parallel speedup is impossible — workers merely
        // time-slice with the coordinator — so the assertion degrades to
        // a catastrophic-regression bound: sharded keeps at least half
        // the sequential throughput.
        let (floor, criterion) = if cores >= 4 {
            (
                min_speedup * seq.events_per_sec,
                format!("sharded must beat sequential by {min_speedup:.2}x"),
            )
        } else if cores >= 2 {
            (seq.events_per_sec, "sharded must beat sequential".into())
        } else {
            (
                0.5 * seq.events_per_sec,
                "overhead bounded at 50 %".to_string(),
            )
        };
        let ratio = wide.events_per_sec / seq.events_per_sec;
        if wide.events_per_sec < floor {
            eprintln!(
                "scaling gate failed on {cores} core(s) ({criterion}): \
                 sharded({wide_threads}) {:.0} events/s is {ratio:.2}x sequential \
                 {:.0} — floor {floor:.0}",
                wide.events_per_sec, seq.events_per_sec
            );
            return Ok(ExitCode::FAILURE);
        }
        println!(
            "scaling gate passed on {cores} core(s) ({criterion}): \
             sharded({wide_threads}) is {ratio:.2}x sequential"
        );
    }
    Ok(ExitCode::SUCCESS)
}

/// Appends a markdown events/sec table to `$GITHUB_STEP_SUMMARY` when the
/// environment provides one (GitHub Actions), including deltas against
/// the `--check` baseline when available. Best-effort: summary failures
/// never fail the benchmark.
fn write_step_summary(report: &ReplayReport, baseline: Option<&ReplayReport>) {
    let Ok(path) = std::env::var("GITHUB_STEP_SUMMARY") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let mut md = String::from("### Replay throughput\n\n");
    md.push_str(&format!(
        "`{}` events, scale 1/{}, seed {:#x}\n\n",
        report.events, report.scale, report.seed
    ));
    md.push_str("| mode | threads | events/s | vs baseline |\n");
    md.push_str("| --- | ---: | ---: | ---: |\n");
    for run in &report.runs {
        let delta = baseline
            .and_then(|b| b.run_with(&run.mode, run.threads))
            .map(|b| {
                format!(
                    "{:+.1} %",
                    (run.events_per_sec / b.events_per_sec - 1.0) * 100.0
                )
            })
            .unwrap_or_else(|| "—".into());
        md.push_str(&format!(
            "| {} | {} | {:.0} | {} |\n",
            run.mode, run.threads, run.events_per_sec, delta
        ));
    }
    if let (Some(seq), Some(wide)) = (
        report.run_with("sequential", 1),
        report.runs.iter().rfind(|r| r.mode == "sharded"),
    ) {
        md.push_str(&format!(
            "\nsharded({}) / sequential = **{:.2}x**\n",
            wide.threads,
            wide.events_per_sec / seq.events_per_sec
        ));
    }
    if let Some(rss) = report.peak_rss_bytes {
        if rss > 0 {
            md.push_str(&format!(
                "\npeak RSS: **{:.1} MiB** (VmHWM)\n",
                rss as f64 / (1 << 20) as f64
            ));
        }
    }
    use std::io::Write as _;
    if let Ok(mut file) = std::fs::OpenOptions::new()
        .append(true)
        .create(true)
        .open(&path)
    {
        let _ = writeln!(file, "{md}");
    }
}

/// Operations per micro-benchmark repetition.
const MICRO_OPS: u64 = 1 << 20;

/// Resident key-set size for the steady-state micros (power of two).
const MICRO_KEYS: u64 = 1 << 16;

/// Fastest-of-`reps` wall time for `f`, scaled to ns per operation.
fn best_ns(reps: usize, ops: u64, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let started = Instant::now();
        f();
        best = best.min(started.elapsed().as_secs_f64());
    }
    best * 1e9 / ops as f64
}

/// Times the structures the replay hot path is built from, so an
/// end-to-end regression in the gated events/sec figure can be localized
/// without a profiler. Key streams come from [`mix64`] — deterministic,
/// cheap, and uncorrelated with the map's own hash.
fn micro_phase(reps: usize) -> Vec<MicroReport> {
    use std::hint::black_box;
    println!("hot-path micro-benchmarks ({MICRO_OPS} ops, fastest of {reps}):");
    let mut micro = Vec::new();
    let mut record = |name: &str, ns_per_op: f64| {
        println!("  {name:<16} {ns_per_op:>7.1} ns/op");
        micro.push(MicroReport {
            name: name.into(),
            ns_per_op,
        });
    };

    // Growth-inclusive inserts: a fresh map filled with distinct keys.
    record(
        "u64map_insert",
        best_ns(reps, MICRO_OPS, || {
            let mut map = U64Map::new();
            for i in 0..MICRO_OPS {
                map.insert(mix64(i), i as u32);
            }
            black_box(map.len());
        }),
    );

    let mut map = U64Map::new();
    for i in 0..MICRO_OPS {
        map.insert(mix64(i), i as u32);
    }
    record(
        "u64map_get",
        best_ns(reps, MICRO_OPS, || {
            let mut sum = 0u64;
            for i in 0..MICRO_OPS {
                if let Some(&v) = map.get(mix64(i)) {
                    sum += u64::from(v);
                }
            }
            black_box(sum);
        }),
    );

    // Hit path: touches cycling through a resident working set.
    let mut lru = LruCache::new(MICRO_KEYS as usize);
    for i in 0..MICRO_KEYS {
        lru.insert(mix64(i));
    }
    record(
        "lru_touch",
        best_ns(reps, MICRO_OPS, || {
            let mut hits = 0u64;
            for i in 0..MICRO_OPS {
                hits += u64::from(lru.touch(mix64(i & (MICRO_KEYS - 1))));
            }
            black_box(hits);
        }),
    );

    // Allocation path: distinct keys through a full cache, so every
    // insert past warm-up also evicts the LRU victim.
    record(
        "lru_insert",
        best_ns(reps, MICRO_OPS, || {
            let mut lru = LruCache::new(MICRO_KEYS as usize);
            let mut evicted = 0u64;
            for i in 0..MICRO_OPS {
                evicted += u64::from(lru.insert(mix64(i)).is_some());
            }
            black_box(evicted);
        }),
    );

    // SIEVE hit path: one map probe plus a relaxed visited-bit store —
    // no list surgery, so this should undercut lru_touch.
    let mut sieve = SieveCache::new(MICRO_KEYS as usize);
    for i in 0..MICRO_KEYS {
        sieve.insert(mix64(i));
    }
    record(
        "sieve_touch",
        best_ns(reps, MICRO_OPS, || {
            let mut hits = 0u64;
            for i in 0..MICRO_OPS {
                hits += u64::from(sieve.touch(mix64(i & (MICRO_KEYS - 1))));
            }
            black_box(hits);
        }),
    );

    // SIEVE allocation path: distinct keys through a full cache; every
    // insert past warm-up walks the hand and evicts.
    record(
        "sieve_insert",
        best_ns(reps, MICRO_OPS, || {
            let mut sieve = SieveCache::new(MICRO_KEYS as usize);
            let mut evicted = 0u64;
            for i in 0..MICRO_OPS {
                evicted += u64::from(sieve.insert(mix64(i)).is_some());
            }
            black_box(evicted);
        }),
    );

    // Steady-state misses against a bounded tracked set: after the first
    // lap every key resolves to an existing slab counter.
    let mut mct = Mct::new(WindowConfig::paper_default());
    let now = Micros::from_hours(1);
    record(
        "mct_record_miss",
        best_ns(reps, MICRO_OPS, || {
            let mut total = 0u64;
            for i in 0..MICRO_OPS {
                total += u64::from(mct.record_miss(mix64(i & (MICRO_KEYS - 1)), now));
            }
            black_box(total);
        }),
    );

    micro
}

fn print_run(run: &RunReport) {
    println!(
        "  {:<10} {} thread(s): {:>10.0} events/s, {:.2}s wall, imbalance {:.3}",
        run.mode, run.threads, run.events_per_sec, run.wall_secs, run.imbalance
    );
}

/// The differential guarantee the bench rides on: a benchmark of a
/// *wrong* parallel engine is meaningless, so every timed sharded run is
/// also checked for metric equality with the sequential report — both the
/// per-day counters and the exported day-snapshot JSONL bytes.
fn verify_identical(
    sequential: &SimResult,
    sequential_log: &SnapshotLog,
    sharded: &SimResult,
    threads: usize,
) -> Result<(), String> {
    if sequential.days != sharded.days {
        return Err(format!(
            "sharded replay at {threads} threads diverged from the sequential report \
             ({} vs {} days; first differing day: {:?})",
            sharded.days.len(),
            sequential.days.len(),
            sequential
                .days
                .iter()
                .zip(&sharded.days)
                .position(|(a, b)| a != b)
        ));
    }
    let sharded_jsonl = SnapshotLog::from_result(sharded).to_jsonl();
    if sequential_log.to_jsonl() != sharded_jsonl {
        return Err(format!(
            "day-snapshot JSONL at {threads} threads is not byte-identical to the \
             sequential export despite equal day metrics"
        ));
    }
    Ok(())
}
