//! Replay-engine throughput benchmark and CI regression gate.
//!
//! Replays a fixed seeded synthetic trace through the sequential engine
//! and the sharded engine at several thread counts, verifies the sharded
//! per-day metrics are byte-identical to the sequential report, and
//! writes a machine-readable `BENCH_replay.json` (events/sec, wall time,
//! per-shard imbalance).
//!
//! ```text
//! cargo run -p sievestore-bench --release --bin replay_bench -- \
//!     --out results/BENCH_replay.json
//! cargo run -p sievestore-bench --release --bin replay_bench -- \
//!     --check ci/BENCH_replay.json --tolerance 0.2
//! ```
//!
//! With `--check`, the fresh measurement is compared against the
//! committed baseline: any configuration whose events/sec falls more than
//! `--tolerance` below the baseline fails the run (exit code 1). Speedups
//! always pass; re-baseline by committing the fresh artifact.

use std::process::ExitCode;
use std::time::Instant;

use sievestore::PolicySpec;
use sievestore_bench::replay_json::{compare_reports, ReplayReport, RunReport};
use sievestore_sim::{simulate, simulate_sharded, SimConfig, SimResult};
use sievestore_trace::{EnsembleConfig, Scale, SyntheticTrace};

const USAGE: &str = "\
usage: replay_bench [--scale N] [--seed S] [--reps R] [--out FILE]
                    [--check BASELINE] [--tolerance T]

options:
  --scale N       trace scale denominator (default 2048)
  --seed S        trace seed (default 0x51EE5704)
  --reps R        repetitions per configuration; the fastest is reported
                  (default 3 — damps scheduler noise on shared runners)
  --out FILE      where to write the report (default BENCH_replay.json)
  --check FILE    compare against a committed baseline report; exit
                  nonzero if any configuration's events/sec regresses
  --tolerance T   allowed fractional regression for --check (default 0.2)";

/// Thread counts timed in addition to the sequential engine.
const SHARD_COUNTS: [usize; 2] = [2, 4];

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<ExitCode, String> {
    let mut scale: u32 = 2048;
    let mut seed: u64 = 0x51EE_5704;
    let mut reps: usize = 3;
    let mut out = "BENCH_replay.json".to_string();
    let mut check: Option<String> = None;
    let mut tolerance: f64 = 0.2;

    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--scale" => {
                scale = iter
                    .next()
                    .ok_or("--scale needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --scale: {e}"))?;
            }
            "--seed" => {
                seed = iter
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--reps" => {
                reps = iter
                    .next()
                    .ok_or("--reps needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --reps: {e}"))?;
                if reps == 0 {
                    return Err("--reps must be at least 1".into());
                }
            }
            "--out" => out = iter.next().ok_or("--out needs a value")?,
            "--check" => check = Some(iter.next().ok_or("--check needs a value")?),
            "--tolerance" => {
                tolerance = iter
                    .next()
                    .ok_or("--tolerance needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --tolerance: {e}"))?;
                if !(0.0..1.0).contains(&tolerance) {
                    return Err("--tolerance must be in [0, 1)".into());
                }
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(ExitCode::SUCCESS);
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }

    let trace = SyntheticTrace::new(
        EnsembleConfig::msr_like()
            .with_scale(Scale::new(scale).map_err(|e| e.to_string())?)
            .with_seed(seed),
    )
    .map_err(|e| e.to_string())?;
    // SieveStore-D is the paper's headline policy and is bit-identical
    // under sharding at any thread count, so the differential check below
    // can demand exact equality.
    let spec = PolicySpec::SieveStoreD { threshold: 10 };
    let cfg = SimConfig::paper_16gb(scale);
    println!(
        "replay_bench | scale 1/{scale}, seed {seed:#x}, {} days, policy {spec:?}",
        trace.days()
    );

    // Every configuration runs `reps` times; the fastest wall time is
    // reported, which damps transient scheduler noise on shared runners.
    let mut sequential = None;
    let mut seq_secs = f64::INFINITY;
    for _ in 0..reps {
        let started = Instant::now();
        let result = simulate(&trace, spec.clone(), &cfg).map_err(|e| e.to_string())?;
        seq_secs = seq_secs.min(started.elapsed().as_secs_f64());
        sequential = Some(result);
    }
    let sequential = sequential.expect("reps >= 1");
    let events = sequential.total().accesses();
    let mut runs = vec![RunReport {
        mode: "sequential".into(),
        threads: 1,
        wall_secs: seq_secs,
        events_per_sec: events as f64 / seq_secs,
        imbalance: 1.0,
    }];
    print_run(runs.last().expect("just pushed"));

    for &threads in &SHARD_COUNTS {
        let mut best_secs = f64::INFINITY;
        let mut imbalance = 1.0;
        for _ in 0..reps {
            let started = Instant::now();
            let (result, stats) =
                simulate_sharded(&trace, spec.clone(), &cfg, threads).map_err(|e| e.to_string())?;
            best_secs = best_secs.min(started.elapsed().as_secs_f64());
            imbalance = stats.imbalance();
            verify_identical(&sequential, &result, threads)?;
        }
        runs.push(RunReport {
            mode: "sharded".into(),
            threads,
            wall_secs: best_secs,
            events_per_sec: events as f64 / best_secs,
            imbalance,
        });
        print_run(runs.last().expect("just pushed"));
    }

    let report = ReplayReport {
        scale,
        seed,
        events,
        runs,
    };
    let text = report.to_json();
    if let Some(parent) = std::path::Path::new(&out).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(|e| format!("creating {parent:?}: {e}"))?;
        }
    }
    std::fs::write(&out, &text).map_err(|e| format!("writing {out}: {e}"))?;
    println!("report written to {out}");

    if let Some(baseline_path) = check {
        let baseline_text = std::fs::read_to_string(&baseline_path)
            .map_err(|e| format!("reading baseline {baseline_path}: {e}"))?;
        let baseline = ReplayReport::from_json(&baseline_text)
            .map_err(|e| format!("parsing baseline {baseline_path}: {e}"))?;
        match compare_reports(&report, &baseline, tolerance) {
            Ok(lines) => {
                println!(
                    "baseline check passed (tolerance {:.0} %):",
                    tolerance * 100.0
                );
                for line in lines {
                    println!("  {line}");
                }
            }
            Err(failures) => {
                for failure in &failures {
                    eprintln!("  {failure}");
                }
                eprintln!(
                    "performance gate failed: {} configuration(s) regressed beyond {:.0} %",
                    failures.len(),
                    tolerance * 100.0
                );
                return Ok(ExitCode::FAILURE);
            }
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn print_run(run: &RunReport) {
    println!(
        "  {:<10} {} thread(s): {:>10.0} events/s, {:.2}s wall, imbalance {:.3}",
        run.mode, run.threads, run.events_per_sec, run.wall_secs, run.imbalance
    );
}

/// The differential guarantee the bench rides on: a benchmark of a
/// *wrong* parallel engine is meaningless, so every timed sharded run is
/// also checked for metric equality with the sequential report.
fn verify_identical(
    sequential: &SimResult,
    sharded: &SimResult,
    threads: usize,
) -> Result<(), String> {
    if sequential.days != sharded.days {
        return Err(format!(
            "sharded replay at {threads} threads diverged from the sequential report \
             ({} vs {} days; first differing day: {:?})",
            sharded.days.len(),
            sequential.days.len(),
            sequential
                .days
                .iter()
                .zip(&sharded.days)
                .position(|(a, b)| a != b)
        ));
    }
    Ok(())
}
