//! Workload-characterization experiments: Table 1 and Figures 2(a)–3(d).

use sievestore_analysis::{
    composition_by_server, popularity_cdf, BlockCounts, PopularityBins, TextTable,
};
use sievestore_types::{Day, SieveError};

use crate::Harness;

/// Table 1: the ensemble summary (servers, volumes, spindles, sizes).
///
/// # Errors
///
/// Propagates CSV-writing failures.
pub fn table1(h: &Harness) -> Result<String, SieveError> {
    let cfg = h.trace().config();
    let mut table = TextTable::new(vec![
        "key".into(),
        "name".into(),
        "volumes".into(),
        "spindles".into(),
        "size (GB)".into(),
    ]);
    for s in &cfg.servers {
        table.push_row(vec![
            s.key.clone(),
            s.name.clone(),
            s.volumes.len().to_string(),
            s.spindles.to_string(),
            s.size_gb().to_string(),
        ]);
    }
    table.push_row(vec![
        "Total".into(),
        String::new(),
        cfg.total_volumes().to_string(),
        cfg.total_spindles().to_string(),
        cfg.total_size_gb().to_string(),
    ]);
    table.write_csv(h.out_path("table1.csv"))?;
    Ok(format!(
        "Table 1: trace summary (mirrors the paper's ensemble)\n{}",
        table.render()
    ))
}

/// Counts for one ensemble day.
fn ensemble_day_counts(h: &Harness, day: u16) -> BlockCounts {
    BlockCounts::from_requests(h.trace().day_requests(Day::new(day)).iter())
}

/// Figure 2(a): binned block access-count distribution per day.
///
/// # Errors
///
/// Propagates CSV-writing failures.
pub fn fig2a(h: &Harness) -> Result<String, SieveError> {
    let days = h.trace().days();
    let mut csv_rows: Vec<Vec<String>> = Vec::new();
    let mut table = TextTable::new(vec![
        "day".into(),
        "unique blocks".into(),
        "mean@0.01%".into(),
        "mean@1%".into(),
        "mean@3%".into(),
        "max@1%".into(),
        "frac<=10".into(),
        "frac<=4".into(),
        "frac==never-reused".into(),
    ]);
    for d in 0..days {
        let counts = ensemble_day_counts(h, d);
        let bins = PopularityBins::from_counts(&counts, PopularityBins::PAPER_BINS);
        for b in bins.bins() {
            csv_rows.push(vec![
                d.to_string(),
                format!("{:.4}", b.percentile),
                format!("{:.3}", b.mean_count),
                b.max_count.to_string(),
            ]);
        }
        let at = |p: f64| bins.bin_at_percentile(p);
        table.push_row(vec![
            d.to_string(),
            counts.unique_blocks().to_string(),
            at(0.01).map_or("-".into(), |b| format!("{:.1}", b.mean_count)),
            at(1.0).map_or("-".into(), |b| format!("{:.2}", b.mean_count)),
            at(3.0).map_or("-".into(), |b| format!("{:.2}", b.mean_count)),
            at(1.0).map_or("-".into(), |b| b.max_count.to_string()),
            format!("{:.4}", counts.fraction_with_at_most(10)),
            format!("{:.4}", counts.fraction_with_at_most(4)),
            format!("{:.4}", counts.fraction_with_at_most(1)),
        ]);
    }
    sievestore_analysis::write_csv(
        h.out_path("fig2a.csv"),
        &[
            "day".into(),
            "percentile".into(),
            "mean_count".into(),
            "max_count".into(),
        ],
        csv_rows.iter().map(|r| r.as_slice()),
    )?;
    Ok(format!(
        "Figure 2(a): per-day access-count distribution \
         (paper: mean >1000 at 0.01%, <10 at 1%, <4 beyond 3%; 99% of blocks <=10)\n{}",
        table.render()
    ))
}

/// Figures 2(b) and 2(c): popularity CDF per day, plus the top-5 % zoom.
///
/// # Errors
///
/// Propagates CSV-writing failures.
pub fn fig2bc(h: &Harness) -> Result<String, SieveError> {
    let days = h.trace().days();
    let mut csv_rows: Vec<Vec<String>> = Vec::new();
    let mut table = TextTable::new(vec![
        "day".into(),
        "top-0.1% share".into(),
        "top-1% share".into(),
        "top-5% share".into(),
        "accessed (GB, full-scale)".into(),
    ]);
    for d in 0..days {
        let counts = ensemble_day_counts(h, d);
        let cdf = popularity_cdf(&counts, 2000);
        for p in cdf.points() {
            csv_rows.push(vec![
                d.to_string(),
                format!("{:.4}", p.percentile),
                format!("{:.6}", p.cumulative_fraction),
            ]);
        }
        let gb = counts.total_accesses() as f64 * 512.0 / (1u64 << 30) as f64 * h.scale() as f64;
        table.push_row(vec![
            d.to_string(),
            format!("{:.3}", cdf.fraction_at(0.1)),
            format!("{:.3}", cdf.top1_share()),
            format!("{:.3}", cdf.fraction_at(5.0)),
            format!("{gb:.0}"),
        ]);
    }
    sievestore_analysis::write_csv(
        h.out_path("fig2b.csv"),
        &[
            "day".into(),
            "percentile".into(),
            "cumulative_fraction".into(),
        ],
        csv_rows.iter().map(|r| r.as_slice()),
    )?;
    // Figure 2(c) is the same data clipped to the top 5%.
    let zoom: Vec<Vec<String>> = csv_rows
        .iter()
        .filter(|r| r[1].parse::<f64>().unwrap_or(100.0) <= 5.0)
        .cloned()
        .collect();
    sievestore_analysis::write_csv(
        h.out_path("fig2c.csv"),
        &[
            "day".into(),
            "percentile".into(),
            "cumulative_fraction".into(),
        ],
        zoom.iter().map(|r| r.as_slice()),
    )?;
    Ok(format!(
        "Figures 2(b)/2(c): popularity CDFs \
         (paper: knee below the 1st percentile; top-1% share 14-53%)\n{}",
        table.render()
    ))
}

/// CDF top-1 % share for one server on one day.
#[cfg(test)]
fn server_day_top1(h: &Harness, server: usize, day: u16) -> f64 {
    let counts = BlockCounts::from_requests(h.trace().server_day(server, Day::new(day)).iter());
    popularity_cdf(&counts, 500).top1_share()
}

fn server_index(h: &Harness, key: &str) -> usize {
    h.trace()
        .config()
        .servers
        .iter()
        .position(|s| s.key == key)
        .unwrap_or_else(|| panic!("server {key} not in ensemble"))
}

/// Figure 3(a): server-to-server skew variation (Prxy vs Src1).
///
/// # Errors
///
/// Propagates CSV-writing failures.
pub fn fig3a(h: &Harness) -> Result<String, SieveError> {
    let prxy = server_index(h, "Prxy");
    let src1 = server_index(h, "Src1");
    let day = 1u16;
    let mut csv_rows: Vec<Vec<String>> = Vec::new();
    let mut table = TextTable::new(vec![
        "server".into(),
        "top-1% share".into(),
        "top-10% share".into(),
    ]);
    for (label, idx) in [("Prxy", prxy), ("Src1", src1)] {
        let counts = BlockCounts::from_requests(h.trace().server_day(idx, Day::new(day)).iter());
        let cdf = popularity_cdf(&counts, 500);
        for p in cdf.points() {
            csv_rows.push(vec![
                label.to_string(),
                format!("{:.4}", p.percentile),
                format!("{:.6}", p.cumulative_fraction),
            ]);
        }
        table.push_row(vec![
            label.to_string(),
            format!("{:.3}", cdf.top1_share()),
            format!("{:.3}", cdf.fraction_at(10.0)),
        ]);
    }
    sievestore_analysis::write_csv(
        h.out_path("fig3a.csv"),
        &[
            "server".into(),
            "percentile".into(),
            "cumulative_fraction".into(),
        ],
        csv_rows.iter().map(|r| r.as_slice()),
    )?;
    Ok(format!(
        "Figure 3(a): server-to-server variation, day {day} \
         (paper: Prxy extremely skewed, Src1 near-linear)\n{}",
        table.render()
    ))
}

/// Figure 3(b): volume-to-volume variation within the Web server.
///
/// # Errors
///
/// Propagates CSV-writing failures.
pub fn fig3b(h: &Harness) -> Result<String, SieveError> {
    let web = server_index(h, "Web");
    let day = 1u16;
    let requests = h.trace().server_day(web, Day::new(day));
    let mut csv_rows: Vec<Vec<String>> = Vec::new();
    let mut table = TextTable::new(vec!["volume".into(), "top-1% share".into()]);
    for vol in [0u8, 1u8] {
        let counts =
            BlockCounts::from_requests(requests.iter().filter(|r| r.start.volume.index() == vol));
        let cdf = popularity_cdf(&counts, 500);
        for p in cdf.points() {
            csv_rows.push(vec![
                format!("vol{vol}"),
                format!("{:.4}", p.percentile),
                format!("{:.6}", p.cumulative_fraction),
            ]);
        }
        table.push_row(vec![
            format!("Web/vol{vol}"),
            format!("{:.3}", cdf.top1_share()),
        ]);
    }
    sievestore_analysis::write_csv(
        h.out_path("fig3b.csv"),
        &[
            "volume".into(),
            "percentile".into(),
            "cumulative_fraction".into(),
        ],
        csv_rows.iter().map(|r| r.as_slice()),
    )?;
    Ok(format!(
        "Figure 3(b): volume-to-volume variation within Web, day {day} \
         (paper: volume 0 far more skewed than volume 1)\n{}",
        table.render()
    ))
}

/// Figure 3(c): day-to-day variation for the Stg server.
///
/// # Errors
///
/// Propagates CSV-writing failures.
pub fn fig3c(h: &Harness) -> Result<String, SieveError> {
    let stg = server_index(h, "Stg");
    let mut table = TextTable::new(vec!["day".into(), "top-1% share".into()]);
    let mut shares = Vec::new();
    let mut csv_rows: Vec<Vec<String>> = Vec::new();
    for d in 0..h.trace().days() {
        let counts = BlockCounts::from_requests(h.trace().server_day(stg, Day::new(d)).iter());
        let cdf = popularity_cdf(&counts, 500);
        let share = cdf.top1_share();
        shares.push(share);
        for p in cdf.points() {
            csv_rows.push(vec![
                d.to_string(),
                format!("{:.4}", p.percentile),
                format!("{:.6}", p.cumulative_fraction),
            ]);
        }
        table.push_row(vec![d.to_string(), format!("{share:.3}")]);
    }
    sievestore_analysis::write_csv(
        h.out_path("fig3c.csv"),
        &[
            "day".into(),
            "percentile".into(),
            "cumulative_fraction".into(),
        ],
        csv_rows.iter().map(|r| r.as_slice()),
    )?;
    let min = shares.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = shares.iter().cloned().fold(0.0, f64::max);
    Ok(format!(
        "Figure 3(c): day-to-day variation for Stg \
         (paper: one day skewed, another not; here min {min:.3} vs max {max:.3})\n{}",
        table.render()
    ))
}

/// Figure 3(d): per-server composition of the ensemble top-1 % per day.
///
/// # Errors
///
/// Propagates CSV-writing failures.
pub fn fig3d(h: &Harness) -> Result<String, SieveError> {
    let servers = h.trace().config().servers.len();
    let keys: Vec<String> = h
        .trace()
        .config()
        .servers
        .iter()
        .map(|s| s.key.clone())
        .collect();
    let mut headers = vec!["day".into()];
    headers.extend(keys.iter().cloned());
    let mut table = TextTable::new(headers.clone());
    let mut csv_rows: Vec<Vec<String>> = Vec::new();
    let mut max_spread: f64 = 0.0;
    let mut per_server_ranges = vec![(f64::INFINITY, 0.0f64); servers];
    for d in 0..h.trace().days() {
        let counts = ensemble_day_counts(h, d);
        let (selection, _) = counts.top_fraction(0.01);
        let shares = composition_by_server(&selection, servers);
        let mut row = vec![d.to_string()];
        for s in &shares {
            row.push(format!("{:.3}", s.fraction));
            let range = &mut per_server_ranges[s.server];
            range.0 = range.0.min(s.fraction);
            range.1 = range.1.max(s.fraction);
        }
        csv_rows.push(row.clone());
        table.push_row(row);
    }
    for &(lo, hi) in &per_server_ranges {
        if lo.is_finite() {
            max_spread = max_spread.max(hi - lo);
        }
    }
    sievestore_analysis::write_csv(
        h.out_path("fig3d.csv"),
        &headers,
        csv_rows.iter().map(|r| r.as_slice()),
    )?;
    Ok(format!(
        "Figure 3(d): per-server share of the ensemble top-1% blocks per day \
         (paper: time-varying; largest per-server swing here {max_spread:.3})\n{}",
        table.render()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn harness() -> Harness {
        let dir = std::env::temp_dir().join(format!("sievestore-workload-{}", std::process::id()));
        Harness::smoke(dir).unwrap()
    }

    #[test]
    fn table1_lists_thirteen_servers_plus_total() {
        let h = harness();
        let out = table1(&h).unwrap();
        assert!(out.contains("Prxy"));
        assert!(out.contains("6449"));
        assert_eq!(out.lines().count(), 3 + 13 + 1); // title+hdr+rule+13+total
        std::fs::remove_dir_all(h.results_dir()).ok();
    }

    #[test]
    fn fig2_experiments_produce_csv() {
        let h = harness();
        fig2a(&h).unwrap();
        fig2bc(&h).unwrap();
        assert!(h.out_path("fig2a.csv").exists());
        assert!(h.out_path("fig2b.csv").exists());
        assert!(h.out_path("fig2c.csv").exists());
        std::fs::remove_dir_all(h.results_dir()).ok();
    }

    #[test]
    fn fig3a_shows_prxy_more_skewed_than_src1() {
        let h = harness();
        let prxy = server_index(&h, "Prxy");
        let src1 = server_index(&h, "Src1");
        let p = server_day_top1(&h, prxy, 1);
        let s = server_day_top1(&h, src1, 1);
        assert!(p > s, "Prxy {p} must be more skewed than Src1 {s}");
        std::fs::remove_dir_all(h.results_dir()).ok();
    }

    #[test]
    fn fig3_experiments_run() {
        let h = harness();
        for f in [fig3a, fig3b, fig3c, fig3d] {
            let out = f(&h).unwrap();
            assert!(out.contains("Figure 3"));
        }
        std::fs::remove_dir_all(h.results_dir()).ok();
    }

    #[test]
    #[should_panic(expected = "not in ensemble")]
    fn unknown_server_panics() {
        let h = harness();
        let _ = server_index(&h, "Nope");
    }
}
