//! Adversarial-scenario degradation harness and its regression gate.
//!
//! The paper evaluates SieveStore on a steady-state week; the ROADMAP's
//! "scenario diversity" item asks how the policies *degrade* when the
//! workload turns hostile. This module replays the four preset
//! scenarios from [`sievestore_trace::scenario`] — flash crowd, hot-set
//! inversion, mid-run failover, churn burst — through the four
//! figure-relevant policies (AOD, WMNA, SieveStore-D, SieveStore-C)
//! under both eviction policies, and reports each policy's degradation
//! curve against its own steady-state run on the identical trace:
//!
//! * hit-ratio delta (whole-trace and worst single day),
//! * sieve selection churn (blocks batch-installed after the initial
//!   fill — how hard the adversary shakes the discrete selection),
//! * allocation-writes avoided vs. the unsieved AOD baseline (does the
//!   sieve's write-endurance win survive the adversary?).
//!
//! The report (`sievestore-scenario-report/v1`) carries full provenance
//! (trace seed, scale, days, replay threads, eviction matrix, scenario
//! seeds and labels), so a run is reproducible from the artifact alone.
//! [`check_scenarios`] is the CI gate: it fails when any policy's
//! degradation curve falls more than a tolerance below the committed
//! baseline (`ci/SCENARIOS.json`) — improvements always pass.

use std::fmt::Write as _;
use std::path::Path;

use sievestore::PolicySpec;
use sievestore_sieve::TwoTierConfig;
use sievestore_sim::{
    simulate_many, EvictionPolicy, ReplayMode, ScenarioConfig, ScenarioStage, SimConfig, SimResult,
    SnapshotLog,
};
use sievestore_types::{mix64, SieveError};

use crate::replay_json::Json;
use crate::{imct_entries_for_scale, Harness};

/// Schema tag of the scenario degradation report.
pub const SCENARIO_SCHEMA: &str = "sievestore-scenario-report/v1";

/// The preset scenario ids, in report order.
pub const SCENARIO_IDS: [&str; 4] = [
    "flash_crowd",
    "hot_set_inversion",
    "failover",
    "churn_burst",
];

/// The policies whose degradation the report tracks (the Ideal oracle is
/// excluded by design: its per-day selections are computed on the
/// *steady* materialized trace and would be meaningless here).
const SCENARIO_POLICIES: [&str; 4] = ["AOD", "WMNA", "SieveStore-D", "SieveStore-C"];

const EVICTIONS: [EvictionPolicy; 2] = [EvictionPolicy::Lru, EvictionPolicy::Sieve];

/// Builds the preset [`ScenarioConfig`] for one id, parameterized by the
/// trace (the disruption lands mid-trace regardless of day count, and
/// the scenario seed is derived from the trace seed so two harnesses
/// over the same trace agree).
///
/// # Panics
///
/// Panics on an id not in [`SCENARIO_IDS`].
pub fn preset(id: &str, trace_seed: u64, days: u16) -> ScenarioConfig {
    let mid = (days / 2).clamp(1, days.saturating_sub(1).max(1));
    let seed = mix64(trace_seed ^ mix64(id.len() as u64 ^ u64::from(id.as_bytes()[0])));
    let config = ScenarioConfig::new(seed);
    match id {
        // Late-morning spike: 5% of chunks get 6× their traffic for two
        // hours — the crowd set is hot enough to reward fast adaptation.
        "flash_crowd" => config.with_stage(ScenarioStage::FlashCrowd {
            day: mid,
            start_minute: 600,
            duration_minutes: 120,
            amplification: 6,
            crowd_fraction: 0.05,
        }),
        // The learned hot set goes cold overnight: every address mirrors
        // across its volume midpoint from mid-trace on.
        "hot_set_inversion" => config.with_stage(ScenarioStage::HotSetInversion { from_day: mid }),
        // Server 0 dies mid-trace; its load re-shards onto the
        // survivors, polluting their working sets with a foreign one.
        "failover" => config.with_stage(ScenarioStage::Failover {
            from_day: mid,
            server: 0,
        }),
        // Six-hour surge of never-before-seen blocks: 35% of chunks
        // redirected to fresh day-salted addresses.
        "churn_burst" => config.with_stage(ScenarioStage::ChurnBurst {
            day: mid,
            start_minute: 480,
            duration_minutes: 360,
            fraction: 0.35,
        }),
        other => panic!("unknown scenario id '{other}'"),
    }
}

/// One (scenario, policy, eviction) cell of the degradation report.
#[derive(Debug, Clone)]
struct Cell {
    policy: &'static str,
    eviction: EvictionPolicy,
    steady_hit_ratio: f64,
    scenario_hit_ratio: f64,
    worst_day_delta: f64,
    steady_selection_churn: u64,
    scenario_selection_churn: u64,
    allocation_writes: u64,
    allocation_writes_avoided: i64,
    per_day_hit_ratio: Vec<f64>,
}

impl Cell {
    fn hit_ratio_delta(&self) -> f64 {
        self.scenario_hit_ratio - self.steady_hit_ratio
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("policy".into(), Json::Str(self.policy.into())),
            ("eviction".into(), Json::Str(self.eviction.to_string())),
            ("steady_hit_ratio".into(), Json::Num(self.steady_hit_ratio)),
            (
                "scenario_hit_ratio".into(),
                Json::Num(self.scenario_hit_ratio),
            ),
            ("hit_ratio_delta".into(), Json::Num(self.hit_ratio_delta())),
            ("worst_day_delta".into(), Json::Num(self.worst_day_delta)),
            (
                "steady_selection_churn".into(),
                Json::Num(self.steady_selection_churn as f64),
            ),
            (
                "scenario_selection_churn".into(),
                Json::Num(self.scenario_selection_churn as f64),
            ),
            (
                "allocation_writes".into(),
                Json::Num(self.allocation_writes as f64),
            ),
            (
                "allocation_writes_avoided".into(),
                Json::Num(self.allocation_writes_avoided as f64),
            ),
            (
                "per_day_hit_ratio".into(),
                Json::Arr(
                    self.per_day_hit_ratio
                        .iter()
                        .map(|&x| Json::Num(x))
                        .collect(),
                ),
            ),
        ])
    }
}

/// Blocks batch-installed after the initial epoch fill: day 1's boundary
/// installs the first selection from an empty cache (bootstrap, not
/// churn), so churn sums from day 2 on. Zero for continuous policies.
fn selection_churn(result: &SimResult) -> u64 {
    result
        .days
        .iter()
        .skip(2)
        .map(|d| d.batch_allocations)
        .sum()
}

/// Worst single-day capture degradation vs. the steady run, skipping the
/// empty-cache bootstrap day 0 and empty days.
fn worst_day_delta(steady: &SimResult, scenario: &SimResult) -> f64 {
    steady
        .days
        .iter()
        .zip(&scenario.days)
        .skip(1)
        .filter(|(s, c)| s.accesses() > 0 && c.accesses() > 0)
        .map(|(s, c)| c.captured_fraction() - s.captured_fraction())
        .fold(0.0f64, f64::min)
}

/// The four scenario policies under one eviction, simulated against one
/// scenario (or the steady state, with the default empty scenario).
fn run_matrix(
    h: &Harness,
    eviction: EvictionPolicy,
    scenario: &ScenarioConfig,
) -> Result<Vec<SimResult>, SieveError> {
    let scale = h.scale();
    let mut cfg = SimConfig::paper_16gb(scale)
        .with_replay(h.replay_mode())
        .with_eviction(eviction)
        .with_scenario(scenario.clone());
    if let Some(root) = h.spill_dir() {
        cfg.trace_stream = cfg.trace_stream.with_spill_dir(root.join("trace"));
        cfg = cfg.with_counting(sievestore_extsort::CountingConfig::spill(
            root.join("counts"),
        ));
    }
    let two_tier = TwoTierConfig::paper_default().with_imct_entries(imct_entries_for_scale(scale));
    simulate_many(
        h.trace(),
        vec![
            PolicySpec::Aod,
            PolicySpec::Wmna,
            PolicySpec::SieveStoreD { threshold: 10 },
            PolicySpec::SieveStoreC(two_tier),
        ],
        &cfg,
    )
}

/// Runs the scenario suite (the preset ids in `ids`), writing per-policy
/// day-snapshot JSONL under `<out>/scenarios/<id>/` and the degradation
/// report to `<out>/scenario_report.json`. Returns the rendered table.
///
/// # Errors
///
/// Propagates simulation-construction and file-write errors, and rejects
/// unknown ids as [`SieveError::InvalidConfig`].
pub fn run_scenarios(h: &mut Harness, ids: &[&str]) -> Result<String, SieveError> {
    for id in ids {
        if !SCENARIO_IDS.contains(id) {
            return Err(SieveError::InvalidConfig(format!(
                "unknown scenario id '{id}'"
            )));
        }
    }
    let trace_seed = h.trace().config().seed;
    let days = h.trace().days();
    let root = h.results_dir().join("scenarios");
    std::fs::create_dir_all(&root)?;

    // Steady-state reference: one matrix per eviction, shared by every
    // scenario's deltas.
    let steady: Vec<Vec<SimResult>> = EVICTIONS
        .iter()
        .map(|&ev| run_matrix(h, ev, &ScenarioConfig::default()))
        .collect::<Result<_, _>>()?;

    let mut scenario_objs = Vec::new();
    let mut table = String::new();
    let _ = writeln!(
        table,
        "{:<18} {:<13} {:<6} {:>8} {:>8} {:>8} {:>9} {:>12} {:>13}",
        "scenario",
        "policy",
        "evict",
        "steady",
        "scen",
        "delta",
        "worst-day",
        "sel-churn",
        "allocs-avoid"
    );
    for &id in ids {
        let scenario = preset(id, trace_seed, days);
        let dir = root.join(id);
        std::fs::create_dir_all(&dir)?;
        let mut cells = Vec::new();
        for (ei, &eviction) in EVICTIONS.iter().enumerate() {
            let results = run_matrix(h, eviction, &scenario)?;
            let aod_allocs = results[0].total().total_allocation_writes();
            for (pi, result) in results.iter().enumerate() {
                let slug = SCENARIO_POLICIES[pi].to_ascii_lowercase().replace('-', "_");
                let path = dir.join(format!("snapshots_{slug}_{eviction}.jsonl"));
                std::fs::write(&path, SnapshotLog::from_result(result).to_jsonl())?;
                let steady_run = &steady[ei][pi];
                let cell = Cell {
                    policy: SCENARIO_POLICIES[pi],
                    eviction,
                    steady_hit_ratio: steady_run.total().captured_fraction(),
                    scenario_hit_ratio: result.total().captured_fraction(),
                    worst_day_delta: worst_day_delta(steady_run, result),
                    steady_selection_churn: selection_churn(steady_run),
                    scenario_selection_churn: selection_churn(result),
                    allocation_writes: result.total().total_allocation_writes(),
                    allocation_writes_avoided: aod_allocs as i64
                        - result.total().total_allocation_writes() as i64,
                    per_day_hit_ratio: result.days.iter().map(|d| d.captured_fraction()).collect(),
                };
                let _ = writeln!(
                    table,
                    "{:<18} {:<13} {:<6} {:>7.2}% {:>7.2}% {:>+7.2}% {:>+8.2}% {:>12} {:>13}",
                    id,
                    cell.policy,
                    eviction.to_string(),
                    100.0 * cell.steady_hit_ratio,
                    100.0 * cell.scenario_hit_ratio,
                    100.0 * cell.hit_ratio_delta(),
                    100.0 * cell.worst_day_delta,
                    cell.scenario_selection_churn,
                    cell.allocation_writes_avoided,
                );
                cells.push(cell);
            }
        }
        scenario_objs.push(Json::Obj(vec![
            ("id".into(), Json::Str(id.into())),
            ("label".into(), Json::Str(scenario.label())),
            (
                "scenario_seed".into(),
                Json::Str(format!("{:#x}", scenario.seed)),
            ),
            (
                "policies".into(),
                Json::Arr(cells.iter().map(Cell::to_json).collect()),
            ),
        ]));
    }

    let report = Json::Obj(vec![
        ("schema".into(), Json::Str(SCENARIO_SCHEMA.into())),
        ("provenance".into(), provenance(h)),
        ("scenarios".into(), Json::Arr(scenario_objs)),
    ]);
    let report_path = h.results_dir().join("scenario_report.json");
    std::fs::write(&report_path, report.to_pretty())?;
    let _ = writeln!(table, "report: {}", report_path.display());
    let _ = writeln!(
        table,
        "day snapshots: {}/<id>/snapshots_*.jsonl",
        root.display()
    );
    Ok(table)
}

/// Full provenance of a harness run: everything needed to regenerate
/// the report bit-for-bit from a clean checkout.
pub fn provenance(h: &Harness) -> Json {
    let threads = match h.replay_mode() {
        ReplayMode::Sequential => 1,
        ReplayMode::Sharded(n) => n,
    };
    Json::Obj(vec![
        (
            "trace_seed".into(),
            Json::Str(format!("{:#x}", h.trace().config().seed)),
        ),
        ("scale".into(), Json::Num(h.scale() as f64)),
        ("days".into(), Json::Num(h.trace().days() as f64)),
        (
            "servers".into(),
            Json::Num(h.trace().config().servers.len() as f64),
        ),
        ("threads".into(), Json::Num(threads as f64)),
        ("eviction".into(), Json::Str(h.eviction().to_string())),
        ("spill".into(), Json::Bool(h.spill_dir().is_some())),
    ])
}

fn entry_f64(entry: &Json, key: &str) -> Result<f64, String> {
    entry
        .get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing numeric field '{key}'"))
}

/// Iterates a report's (scenario id, policy cell) pairs.
fn cells(report: &Json) -> Result<Vec<(String, String, &Json)>, String> {
    let mut out = Vec::new();
    let scenarios = report
        .get("scenarios")
        .and_then(Json::as_array)
        .ok_or("report has no 'scenarios' array")?;
    for sc in scenarios {
        let id = sc
            .get("id")
            .and_then(Json::as_str)
            .ok_or("scenario entry has no 'id'")?;
        for cell in sc
            .get("policies")
            .and_then(Json::as_array)
            .ok_or("scenario entry has no 'policies' array")?
        {
            let policy = cell
                .get("policy")
                .and_then(Json::as_str)
                .ok_or("policy cell has no 'policy'")?;
            let eviction = cell
                .get("eviction")
                .and_then(Json::as_str)
                .ok_or("policy cell has no 'eviction'")?;
            out.push((id.to_string(), format!("{policy}/{eviction}"), cell));
        }
    }
    Ok(out)
}

/// The CI regression gate: compares a freshly generated report against
/// the committed baseline and fails when any policy's degradation curve
/// fell more than `tolerance` (absolute hit-ratio points) below it.
///
/// Checked per (scenario, policy, eviction), lower-is-worse:
/// `scenario_hit_ratio`, `hit_ratio_delta`, and `worst_day_delta`.
/// Improvements pass; a baseline cell missing from the current report
/// fails; mismatched provenance (seed/scale/days) fails — the reports
/// would not be comparable.
///
/// # Errors
///
/// Returns a message listing every regression found.
pub fn check_scenarios(current: &Json, baseline: &Json, tolerance: f64) -> Result<String, String> {
    for key in ["trace_seed", "scale", "days"] {
        let cur = current.get("provenance").and_then(|p| p.get(key)).cloned();
        let base = baseline.get("provenance").and_then(|p| p.get(key)).cloned();
        if cur != base {
            return Err(format!(
                "provenance mismatch on '{key}': current {cur:?} vs baseline {base:?} — \
                 regenerate the baseline at the same seed/scale"
            ));
        }
    }
    let current_cells = cells(current)?;
    let mut failures = Vec::new();
    let mut checked = 0usize;
    for (id, policy, base_cell) in cells(baseline)? {
        let Some((_, _, cur_cell)) = current_cells
            .iter()
            .find(|(cid, cpol, _)| *cid == id && *cpol == policy)
        else {
            failures.push(format!("{id} {policy}: missing from current report"));
            continue;
        };
        for metric in ["scenario_hit_ratio", "hit_ratio_delta", "worst_day_delta"] {
            let base = entry_f64(base_cell, metric).map_err(|e| format!("{id} {policy}: {e}"))?;
            let cur = entry_f64(cur_cell, metric).map_err(|e| format!("{id} {policy}: {e}"))?;
            if cur < base - tolerance {
                failures.push(format!(
                    "{id} {policy}: {metric} regressed to {cur:.4} (baseline {base:.4}, \
                     tolerance {tolerance})"
                ));
            }
            checked += 1;
        }
    }
    if checked == 0 && failures.is_empty() {
        return Err("baseline contains no policy cells".into());
    }
    if failures.is_empty() {
        Ok(format!(
            "{checked} degradation metrics within tolerance {tolerance}"
        ))
    } else {
        Err(failures.join("\n"))
    }
}

/// Loads and parses a scenario report file.
///
/// # Errors
///
/// Returns a message on I/O or parse failure, or a schema mismatch.
pub fn load_report(path: &Path) -> Result<Json, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    let report = Json::parse(&text).map_err(|e| format!("parsing {}: {e}", path.display()))?;
    match report.get("schema").and_then(Json::as_str) {
        Some(SCENARIO_SCHEMA) => Ok(report),
        other => Err(format!(
            "{}: expected schema {SCENARIO_SCHEMA}, found {other:?}",
            path.display()
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate_against_the_smoke_trace() {
        let dir =
            std::env::temp_dir().join(format!("sievestore-scn-presets-{}", std::process::id()));
        let h = Harness::smoke(&dir).unwrap();
        for id in SCENARIO_IDS {
            let scenario = preset(id, h.trace().config().seed, h.trace().days());
            scenario.validate(h.trace().config()).unwrap();
            assert!(!scenario.is_empty());
        }
        // Distinct ids draw distinct seeds.
        let a = preset("flash_crowd", 1, 8);
        let b = preset("churn_burst", 1, 8);
        assert_ne!(a.seed, b.seed);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failover_scenario_reports_degradation_and_roundtrips() {
        let dir = std::env::temp_dir().join(format!("sievestore-scn-run-{}", std::process::id()));
        let mut h = Harness::smoke(&dir).unwrap();
        let table = run_scenarios(&mut h, &["failover"]).unwrap();
        assert!(table.contains("failover"), "{table}");
        let report = load_report(&dir.join("scenario_report.json")).unwrap();
        // 4 policies × 2 evictions under the one scenario.
        let cells = cells(&report).unwrap();
        assert_eq!(cells.len(), 8);
        for (_, _, cell) in &cells {
            let steady = entry_f64(cell, "steady_hit_ratio").unwrap();
            let scen = entry_f64(cell, "scenario_hit_ratio").unwrap();
            assert!((0.0..=1.0).contains(&steady));
            assert!((0.0..=1.0).contains(&scen));
            // Losing a server's learned working set mid-trace cannot
            // *help* the cache on this trace.
            let delta = entry_f64(cell, "hit_ratio_delta").unwrap();
            assert!(delta <= 0.01, "failover improved the hit ratio? {delta}");
            let worst = entry_f64(cell, "worst_day_delta").unwrap();
            assert!(worst <= 0.0);
        }
        // Provenance is complete.
        let prov = report.get("provenance").unwrap();
        assert_eq!(
            prov.get("trace_seed").and_then(Json::as_str),
            Some("0x51ee5704")
        );
        assert_eq!(prov.get("scale").and_then(Json::as_f64), Some(8192.0));
        // A report checked against itself always passes.
        let summary = check_scenarios(&report, &report, 0.0).unwrap();
        assert!(summary.contains("24 degradation metrics"), "{summary}");
        // Per-policy day snapshots landed.
        for eviction in ["lru", "sieve"] {
            let path = dir
                .join("scenarios/failover")
                .join(format!("snapshots_sievestore_d_{eviction}.jsonl"));
            let text = std::fs::read_to_string(&path).unwrap();
            assert!(text.starts_with("{\"schema\":\"sievestore-day-snapshot/v1\""));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    fn tiny_report(hit_ratio: f64) -> Json {
        Json::Obj(vec![
            ("schema".into(), Json::Str(SCENARIO_SCHEMA.into())),
            (
                "provenance".into(),
                Json::Obj(vec![
                    ("trace_seed".into(), Json::Str("0x1".into())),
                    ("scale".into(), Json::Num(8192.0)),
                    ("days".into(), Json::Num(8.0)),
                ]),
            ),
            (
                "scenarios".into(),
                Json::Arr(vec![Json::Obj(vec![
                    ("id".into(), Json::Str("failover".into())),
                    (
                        "policies".into(),
                        Json::Arr(vec![Json::Obj(vec![
                            ("policy".into(), Json::Str("SieveStore-D".into())),
                            ("eviction".into(), Json::Str("lru".into())),
                            ("scenario_hit_ratio".into(), Json::Num(hit_ratio)),
                            ("hit_ratio_delta".into(), Json::Num(-0.02)),
                            ("worst_day_delta".into(), Json::Num(-0.05)),
                        ])]),
                    ),
                ])]),
            ),
        ])
    }

    #[test]
    fn injected_hit_ratio_degradation_beyond_tolerance_fails_the_gate() {
        let baseline = tiny_report(0.90);
        // Degraded run: hit ratio fell 5 points; tolerance is 2.
        let degraded = tiny_report(0.85);
        let err = check_scenarios(&degraded, &baseline, 0.02).unwrap_err();
        assert!(err.contains("scenario_hit_ratio regressed"), "{err}");
        // Within tolerance passes.
        check_scenarios(&tiny_report(0.89), &baseline, 0.02).unwrap();
        // Improvements always pass, even at zero tolerance.
        check_scenarios(&tiny_report(0.95), &baseline, 0.0).unwrap();
    }

    #[test]
    fn gate_rejects_missing_cells_and_mismatched_provenance() {
        let baseline = tiny_report(0.9);
        let mut empty = tiny_report(0.9);
        if let Json::Obj(entries) = &mut empty {
            for (k, v) in entries.iter_mut() {
                if k == "scenarios" {
                    *v = Json::Arr(vec![]);
                }
            }
        }
        let err = check_scenarios(&empty, &baseline, 0.02).unwrap_err();
        assert!(err.contains("missing from current report"), "{err}");
        // Reversed roles: a baseline with no cells is an error, not a pass.
        let err = check_scenarios(&baseline, &empty, 0.02).unwrap_err();
        assert!(err.contains("no policy cells"), "{err}");
        // Seed mismatch refuses to compare.
        let mut other_seed = tiny_report(0.9);
        if let Json::Obj(entries) = &mut other_seed {
            for (k, v) in entries.iter_mut() {
                if k == "provenance" {
                    *v = Json::Obj(vec![
                        ("trace_seed".into(), Json::Str("0x2".into())),
                        ("scale".into(), Json::Num(8192.0)),
                        ("days".into(), Json::Num(8.0)),
                    ]);
                }
            }
        }
        let err = check_scenarios(&other_seed, &baseline, 0.02).unwrap_err();
        assert!(err.contains("provenance mismatch"), "{err}");
    }
}
