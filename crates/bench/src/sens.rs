//! The §5.1 sensitivity study: SieveStore-D thresholds and SieveStore-C
//! window lengths.

use sievestore_analysis::{pct, thousands, TextTable};
use sievestore_sim::{threshold_sweep, window_sweep, SimConfig};
use sievestore_types::SieveError;

use crate::{imct_entries_for_scale, Harness};

/// Threshold values swept for SieveStore-D (paper: degrades below ~8,
/// flat within 8–20).
pub const THRESHOLDS: [u64; 6] = [4, 6, 8, 10, 14, 20];

/// Window lengths (hours) swept for SieveStore-C (paper: degrades below
/// ~8 hours).
pub const WINDOW_HOURS: [u64; 5] = [2, 4, 8, 16, 24];

/// Runs both sweeps and renders the sensitivity tables.
///
/// # Errors
///
/// Propagates simulation or CSV-writing failures.
pub fn sensitivity(h: &mut Harness) -> Result<String, SieveError> {
    let scale = h.scale();
    let cfg = SimConfig::paper_16gb(scale);
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);

    let mut out = String::new();
    let mut csv_rows: Vec<Vec<String>> = Vec::new();

    let points = threshold_sweep(h.trace(), &THRESHOLDS, &cfg, threads)?;
    let mut table = TextTable::new(vec![
        "SieveStore-D threshold".into(),
        "mean capture (ex. day 0)".into(),
        "allocation-writes".into(),
    ]);
    for p in &points {
        let capture = p.result.mean_captured_fraction(&[0]);
        let writes = p.result.total().total_allocation_writes();
        table.push_row(vec![p.label.clone(), pct(capture), thousands(writes)]);
        csv_rows.push(vec![
            "threshold".into(),
            p.label.clone(),
            capture.to_string(),
            writes.to_string(),
        ]);
    }
    out.push_str(&format!(
        "Sensitivity: SieveStore-D allocation threshold \
         (paper: flat in 8-20, degrades when too low)\n{}\n",
        table.render()
    ));

    let points = window_sweep(
        h.trace(),
        &WINDOW_HOURS,
        imct_entries_for_scale(scale),
        &cfg,
        threads,
    )?;
    let mut table = TextTable::new(vec![
        "SieveStore-C window".into(),
        "mean capture".into(),
        "allocation-writes".into(),
    ]);
    for p in &points {
        let capture = p.result.mean_captured_fraction(&[]);
        let writes = p.result.total().total_allocation_writes();
        table.push_row(vec![p.label.clone(), pct(capture), thousands(writes)]);
        csv_rows.push(vec![
            "window".into(),
            p.label.clone(),
            capture.to_string(),
            writes.to_string(),
        ]);
    }
    out.push_str(&format!(
        "Sensitivity: SieveStore-C window length \
         (paper: shorter than 8h degrades)\n{}\n",
        table.render()
    ));

    sievestore_analysis::write_csv(
        h.out_path("sensitivity.csv"),
        &[
            "sweep".into(),
            "point".into(),
            "mean_capture".into(),
            "allocation_writes".into(),
        ],
        csv_rows.iter().map(|r| r.as_slice()),
    )?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sensitivity_runs_on_smoke_harness() {
        let dir = std::env::temp_dir().join(format!("sievestore-sens-{}", std::process::id()));
        let mut h = Harness::smoke(&dir).unwrap();
        let out = sensitivity(&mut h).unwrap();
        assert!(out.contains("threshold"));
        assert!(out.contains("window"));
        assert!(h.out_path("sensitivity.csv").exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}
