//! The SieveStore experiment harness.
//!
//! One function per table/figure of the paper's evaluation, all driven by
//! the same calibrated synthetic ensemble trace. The `experiments` binary
//! (`cargo run -p sievestore-bench --release --bin experiments -- all`)
//! dispatches to these functions; each prints an aligned text table and
//! writes CSV series under `results/`.
//!
//! Simulation results are computed once per harness instance and shared
//! across the figures that need them (Figures 5–9 and the summary all
//! read the same nine policy runs).

#![warn(missing_docs)]

pub mod cost;
pub mod extensions;
pub mod node_json;
pub mod policies;
pub mod replay_json;
pub mod scenario;
pub mod sens;
pub mod shadow;
pub mod summary;
pub mod workload;

use std::path::{Path, PathBuf};

use sievestore::PolicySpec;
use sievestore_extsort::CountingConfig;
use sievestore_sieve::TwoTierConfig;
use sievestore_sim::{
    ideal_top_selections, simulate_many, EvictionPolicy, ReplayMode, SimConfig, SimResult,
    SnapshotLog,
};
use sievestore_trace::{EnsembleConfig, Scale, SyntheticTrace, TraceStreamConfig};
use sievestore_types::SieveError;

/// Names of the policies simulated for Figures 5–9, in bar order.
pub const POLICY_ORDER: [&str; 9] = [
    "Ideal",
    "RandSieve-BlkD",
    "SieveStore-D",
    "RandSieve-C",
    "SieveStore-C",
    "AOD-16GB",
    "WMNA-16GB",
    "AOD-32GB",
    "WMNA-32GB",
];

/// IMCT sizing rule: the paper's full-scale sieve metastate is ~8 GB; we
/// scale the slot count with the trace.
pub fn imct_entries_for_scale(scale: u32) -> usize {
    (((1u64 << 26) / scale as u64) as usize).max(1 << 14)
}

/// The full set of simulation results behind Figures 5–9.
#[derive(Debug)]
pub struct PolicyRuns {
    /// Results keyed by [`POLICY_ORDER`] position.
    pub results: Vec<SimResult>,
    /// Oracle per-day covered accesses (ideal's analytic bar).
    pub ideal_covered: Vec<u64>,
    /// Per-day total block accesses.
    pub day_totals: Vec<u64>,
}

impl PolicyRuns {
    /// Looks a result up by its [`POLICY_ORDER`] name.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not in [`POLICY_ORDER`].
    pub fn by_name(&self, name: &str) -> &SimResult {
        let idx = POLICY_ORDER
            .iter()
            .position(|&n| n == name)
            .unwrap_or_else(|| panic!("unknown policy {name}"));
        &self.results[idx]
    }

    /// The best unsieved result (highest whole-trace hits) among the
    /// AOD/WMNA variants — the paper's comparison baseline.
    pub fn best_unsieved(&self) -> &SimResult {
        ["AOD-16GB", "WMNA-16GB", "AOD-32GB", "WMNA-32GB"]
            .iter()
            .map(|n| self.by_name(n))
            .max_by_key(|r| r.total().hits())
            .expect("four unsieved runs exist")
    }
}

/// Shared experiment state: the trace, scale and lazily computed runs.
pub struct Harness {
    trace: SyntheticTrace,
    results_dir: PathBuf,
    replay: ReplayMode,
    eviction: EvictionPolicy,
    spill: Option<PathBuf>,
    runs: Option<PolicyRuns>,
}

impl Harness {
    /// Creates a harness over the 13-server ensemble at `scale`,
    /// writing CSVs under `results_dir`.
    ///
    /// # Errors
    ///
    /// Returns [`SieveError::InvalidConfig`] for invalid scale/config.
    pub fn new(scale: u32, seed: u64, results_dir: impl AsRef<Path>) -> Result<Self, SieveError> {
        let config = EnsembleConfig::msr_like()
            .with_scale(Scale::new(scale)?)
            .with_seed(seed);
        Ok(Harness {
            trace: SyntheticTrace::new(config)?,
            results_dir: results_dir.as_ref().to_path_buf(),
            replay: ReplayMode::Sequential,
            eviction: EvictionPolicy::default(),
            spill: None,
            runs: None,
        })
    }

    /// Replays every simulation with `threads` sharded workers (`0`/`1`
    /// select the sequential engine). Discrete-policy figures are
    /// bit-identical at any thread count; continuous policies split the
    /// cache and RNG per shard, so their figures can deviate slightly
    /// under capacity pressure (see `sievestore_sim::replay`). Clears
    /// any cached runs.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.replay = ReplayMode::threads(threads);
        self.runs = None;
        self
    }

    /// The replay mode simulations run with.
    pub fn replay_mode(&self) -> ReplayMode {
        self.replay
    }

    /// Switches the eviction policy the continuous caches replace with
    /// (LRU by default, SIEVE's lock-free hit path as the alternative).
    /// Discrete policies use the epoch-batch cache regardless. Clears
    /// any cached runs.
    #[must_use]
    pub fn with_eviction(mut self, eviction: EvictionPolicy) -> Self {
        self.eviction = eviction;
        self.runs = None;
        self
    }

    /// The eviction policy simulations run with.
    pub fn eviction(&self) -> EvictionPolicy {
        self.eviction
    }

    /// Bounds memory for full-scale runs: trace generation streams through
    /// spill files under `dir` and discrete epoch counting uses the
    /// spill-backed counter, so peak RSS tracks one server-day instead of
    /// the whole trace. Figures are unchanged — the spill path is
    /// bit-identical to in-memory counting. Clears any cached runs.
    #[must_use]
    pub fn with_spill(mut self, dir: impl AsRef<Path>) -> Self {
        self.spill = Some(dir.as_ref().to_path_buf());
        self.runs = None;
        self
    }

    /// The spill directory, when bounded-memory mode is on.
    pub fn spill_dir(&self) -> Option<&Path> {
        self.spill.as_deref()
    }

    /// Creates a fast, small-scale harness (for tests and smoke runs).
    ///
    /// # Errors
    ///
    /// Returns [`SieveError::InvalidConfig`] for invalid scale/config.
    pub fn smoke(results_dir: impl AsRef<Path>) -> Result<Self, SieveError> {
        Self::new(8192, 0x51EE_5704, results_dir)
    }

    /// The trace under experiment.
    pub fn trace(&self) -> &SyntheticTrace {
        &self.trace
    }

    /// Trace scale denominator.
    pub fn scale(&self) -> u32 {
        self.trace.config().scale.denominator()
    }

    /// Directory CSV outputs go to.
    pub fn results_dir(&self) -> &Path {
        &self.results_dir
    }

    /// Absolute path for one output file.
    pub fn out_path(&self, name: &str) -> PathBuf {
        self.results_dir.join(name)
    }

    /// The nine policy simulations (computed on first use, then cached).
    ///
    /// # Errors
    ///
    /// Propagates simulation-construction errors.
    pub fn policy_runs(&mut self) -> Result<&PolicyRuns, SieveError> {
        if self.runs.is_none() {
            self.runs = Some(self.compute_policy_runs()?);
        }
        Ok(self.runs.as_ref().expect("just computed"))
    }

    /// Writes one day-boundary snapshot log (`sievestore-day-snapshot/v1`
    /// JSONL) per policy run under the results dir, returning the paths.
    /// For discrete policies the bytes are identical at any replay thread
    /// count, so these files double as cross-configuration fixtures.
    ///
    /// # Errors
    ///
    /// Propagates simulation-construction and file-write errors.
    pub fn write_day_snapshots(&mut self) -> Result<Vec<PathBuf>, SieveError> {
        let dir = self.results_dir.clone();
        std::fs::create_dir_all(&dir)?;
        let runs = self.policy_runs()?;
        let mut paths = Vec::new();
        for result in &runs.results {
            let slug: String = result
                .policy
                .chars()
                .map(|c| {
                    if c.is_ascii_alphanumeric() {
                        c.to_ascii_lowercase()
                    } else {
                        '_'
                    }
                })
                .collect();
            let path = dir.join(format!("snapshots_{slug}.jsonl"));
            std::fs::write(&path, SnapshotLog::from_result(result).to_jsonl())?;
            paths.push(path);
        }
        Ok(paths)
    }

    fn compute_policy_runs(&self) -> Result<PolicyRuns, SieveError> {
        let scale = self.scale();
        let (selections, ideal_covered, day_totals) = ideal_top_selections(&self.trace, 0.01);
        let imct = imct_entries_for_scale(scale);
        let two_tier = TwoTierConfig::paper_default().with_imct_entries(imct);

        let mut cfg16 = SimConfig::paper_16gb(scale)
            .with_replay(self.replay)
            .with_eviction(self.eviction);
        let mut cfg32 = SimConfig::paper_32gb(scale)
            .with_replay(self.replay)
            .with_eviction(self.eviction);
        if let Some(root) = &self.spill {
            let stream = TraceStreamConfig::default().with_spill_dir(root.join("trace"));
            cfg16 = cfg16
                .with_trace_stream(stream.clone())
                .with_counting(CountingConfig::spill(root.join("counts")));
            cfg32 = cfg32
                .with_trace_stream(stream)
                .with_counting(CountingConfig::spill(root.join("counts")));
        }

        let group16 = simulate_many(
            &self.trace,
            vec![
                PolicySpec::IdealTop1 { selections },
                PolicySpec::RandSieveBlkD {
                    fraction: 0.01,
                    seed: 0xB10C,
                },
                PolicySpec::SieveStoreD { threshold: 10 },
                PolicySpec::RandSieveC {
                    probability: 0.01,
                    seed: 0xC0FE,
                },
                PolicySpec::SieveStoreC(two_tier),
                PolicySpec::Aod,
                PolicySpec::Wmna,
            ],
            &cfg16,
        )?;
        let group32 = simulate_many(&self.trace, vec![PolicySpec::Aod, PolicySpec::Wmna], &cfg32)?;

        let mut results = group16;
        results.extend(group32);
        // Rename to the disambiguated report labels.
        for (result, &name) in results.iter_mut().zip(POLICY_ORDER.iter()) {
            if name.ends_with("GB") {
                result.policy = name.into();
            }
        }
        Ok(PolicyRuns {
            results,
            ideal_covered,
            day_totals,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imct_sizing_scales() {
        assert_eq!(imct_entries_for_scale(1), 1 << 26);
        assert_eq!(imct_entries_for_scale(256), 1 << 18);
        assert_eq!(imct_entries_for_scale(1 << 30), 1 << 14);
    }

    #[test]
    fn smoke_harness_runs_all_policies() {
        let dir = std::env::temp_dir().join(format!("sievestore-harness-{}", std::process::id()));
        let mut h = Harness::smoke(&dir).unwrap();
        let runs = h.policy_runs().unwrap();
        assert_eq!(runs.results.len(), POLICY_ORDER.len());
        // Identical access totals across policies.
        let accesses: Vec<u64> = runs.results.iter().map(|r| r.total().accesses()).collect();
        assert!(accesses.windows(2).all(|w| w[0] == w[1]), "{accesses:?}");
        // Labels are disambiguated.
        assert_eq!(&*runs.by_name("AOD-32GB").policy, "AOD-32GB");
        assert_eq!(&*runs.by_name("Ideal").policy, "Ideal");
        // 32 GB caches are twice as large.
        assert_eq!(
            runs.by_name("AOD-32GB").capacity_blocks,
            2 * runs.by_name("AOD-16GB").capacity_blocks
        );
        let _ = runs.best_unsieved();
        std::fs::remove_dir_all(&dir).ok();
    }
}
