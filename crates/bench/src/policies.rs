//! Policy-comparison experiments: Tables 2–3 and Figures 5–7.

use sievestore::analytical::{table2, AnalyticalPolicy};
use sievestore_analysis::{pct, thousands, TextTable};
use sievestore_types::SieveError;

use crate::{Harness, POLICY_ORDER};

/// Table 2: the analytical allocation-policy comparison, computed both
/// with the paper's canonical parameters (35 % hit rate, 3:1 reads) and
/// with the hit rate our ideal simulation actually measured.
///
/// # Errors
///
/// Propagates CSV-writing failures.
pub fn table2_exp(h: &mut Harness) -> Result<String, SieveError> {
    let measured_hit = {
        let runs = h.policy_runs()?;
        let ideal = runs.by_name("Ideal");
        ideal.mean_captured_fraction(&[])
    };
    let mut out = String::new();
    for (label, hit) in [
        ("paper parameters (35% hits)", 0.35),
        ("measured ideal hit rate", measured_hit),
    ] {
        let mut table = TextTable::new(vec![
            "allocation policy".into(),
            "hits".into(),
            "misses".into(),
            "alloc-writes".into(),
            "ssd reads".into(),
            "ssd writes".into(),
            "ssd ops".into(),
        ]);
        for (policy, row) in table2(hit, 0.75, 0.005) {
            table.push_row(vec![
                policy.label().to_string(),
                pct(row.hits),
                pct(row.misses),
                match policy {
                    AnalyticalPolicy::IdealSelective { .. } => "eps%".to_string(),
                    _ => pct(row.allocation_writes),
                },
                pct(row.ssd_reads),
                pct(row.ssd_writes),
                pct(row.ssd_operations()),
            ]);
        }
        if hit == 0.35 {
            table.write_csv(h.out_path("table2.csv"))?;
        }
        out.push_str(&format!("Table 2 with {label}:\n{}\n", table.render()));
    }
    Ok(out)
}

/// Table 3: allocation-policy definitions (documentation table).
pub fn table3() -> String {
    let mut table = TextTable::new(vec![
        "key".into(),
        "allocation policy".into(),
        "when is a block allocated?".into(),
    ]);
    for (k, p, w) in [
        ("AOD", "Allocate-on-demand", "on a miss"),
        ("WMNA", "Write-no-allocate", "on a read-miss"),
        (
            "SieveStore-D",
            "access-count discrete batch-allocation (t=10)",
            "count >= t in an epoch: enters at the epoch end",
        ),
        (
            "SieveStore-C",
            "lazy allocation (t1=9, t2=4, W=8h)",
            "on the n-th miss in the previous time window",
        ),
        (
            "RandSieve-BlkD",
            "random discrete selection (1%)",
            "random 1% of the epoch's accessed blocks",
        ),
        (
            "RandSieve-C",
            "random continuous selection (1%)",
            "each miss with probability 1%",
        ),
        ("Ideal", "clairvoyant top-1%", "day's top-1% preloaded"),
    ] {
        table.push_row(vec![k.into(), p.into(), w.into()]);
    }
    format!("Table 3: allocation policies\n{}", table.render())
}

/// Figure 5: accesses captured per day per policy, with read/write split.
///
/// # Errors
///
/// Propagates simulation or CSV-writing failures.
pub fn fig5(h: &mut Harness) -> Result<String, SieveError> {
    let out_path = h.out_path("fig5.csv");
    let runs = h.policy_runs()?;
    let days = runs.day_totals.len();

    let mut headers = vec!["day".into(), "total accesses".into()];
    headers.extend(POLICY_ORDER.iter().map(|p| p.to_string()));
    let mut table = TextTable::new(headers);
    let mut csv_rows: Vec<Vec<String>> = Vec::new();
    for d in 0..days {
        let mut row = vec![d.to_string(), thousands(runs.day_totals[d])];
        for name in POLICY_ORDER {
            let m = runs.by_name(name).days.get(d).copied().unwrap_or_default();
            row.push(format!("{:.3}", m.captured_fraction()));
            csv_rows.push(vec![
                d.to_string(),
                name.to_string(),
                m.captured_fraction().to_string(),
                m.read_hits.to_string(),
                m.write_hits.to_string(),
                m.accesses().to_string(),
            ]);
        }
        table.push_row(row);
    }
    sievestore_analysis::write_csv(
        &out_path,
        &[
            "day".into(),
            "policy".into(),
            "captured_fraction".into(),
            "read_hits".into(),
            "write_hits".into(),
            "accesses".into(),
        ],
        csv_rows.iter().map(|r| r.as_slice()),
    )?;

    // Headline comparison: mean capture vs the best unsieved cache.
    // SieveStore-D's bootstrap days (0 and 1: empty then trained on the
    // short partial day) are excluded from its average, as in the paper.
    let best = runs.best_unsieved();
    let best_mean = best.mean_captured_fraction(&[]);
    let d_mean = runs.by_name("SieveStore-D").mean_captured_fraction(&[0]);
    let c_mean = runs.by_name("SieveStore-C").mean_captured_fraction(&[]);
    let ideal_mean = runs.by_name("Ideal").mean_captured_fraction(&[]);
    let summary = format!(
        "mean capture: ideal {} | SieveStore-D {} (ex. day 0) | SieveStore-C {} | \
         best unsieved ({}) {}\nSieveStore-D vs best unsieved: {:+.0}% more hits; \
         SieveStore-C: {:+.0}% more hits (paper: +35% / +50%)",
        pct(ideal_mean),
        pct(d_mean),
        pct(c_mean),
        best.policy,
        pct(best_mean),
        (d_mean / best_mean - 1.0) * 100.0,
        (c_mean / best_mean - 1.0) * 100.0,
    );
    Ok(format!(
        "Figure 5: fraction of accesses captured per day\n{}\n{summary}\n",
        table.render()
    ))
}

/// Figure 6: allocation-writes per day per policy (log-scale in the
/// paper; raw counts here).
///
/// # Errors
///
/// Propagates simulation or CSV-writing failures.
pub fn fig6(h: &mut Harness) -> Result<String, SieveError> {
    let out_path = h.out_path("fig6.csv");
    let runs = h.policy_runs()?;
    let days = runs.day_totals.len();
    let policies: Vec<&str> = POLICY_ORDER
        .iter()
        .copied()
        .filter(|&p| p != "Ideal")
        .collect();

    let mut headers = vec!["day".into()];
    headers.extend(policies.iter().map(|p| p.to_string()));
    let mut table = TextTable::new(headers);
    let mut csv_rows: Vec<Vec<String>> = Vec::new();
    for d in 0..days {
        let mut row = vec![d.to_string()];
        for &name in &policies {
            let m = runs.by_name(name).days.get(d).copied().unwrap_or_default();
            row.push(thousands(m.total_allocation_writes()));
            csv_rows.push(vec![
                d.to_string(),
                name.to_string(),
                m.total_allocation_writes().to_string(),
            ]);
        }
        table.push_row(row);
    }
    sievestore_analysis::write_csv(
        &out_path,
        &["day".into(), "policy".into(), "allocation_writes".into()],
        csv_rows.iter().map(|r| r.as_slice()),
    )?;

    let total = |name: &str| runs.by_name(name).total().total_allocation_writes();
    let unsieved = total("AOD-32GB").min(total("WMNA-32GB"));
    let summary = format!(
        "allocation-write reduction vs best unsieved: SieveStore-D {:.0}x, \
         SieveStore-C {:.0}x (paper: >100x); random sieves allocate \
         {:.1}x / {:.1}x as much as their SieveStore counterparts",
        unsieved as f64 / total("SieveStore-D").max(1) as f64,
        unsieved as f64 / total("SieveStore-C").max(1) as f64,
        total("RandSieve-BlkD") as f64 / total("SieveStore-D").max(1) as f64,
        total("RandSieve-C") as f64 / total("SieveStore-C").max(1) as f64,
    );
    Ok(format!(
        "Figure 6: allocation-writes per day\n{}\n{summary}\n",
        table.render()
    ))
}

/// Figure 7: total SSD block operations per day, split into read hits,
/// write hits and allocation-writes.
///
/// # Errors
///
/// Propagates simulation or CSV-writing failures.
pub fn fig7(h: &mut Harness) -> Result<String, SieveError> {
    let out_path = h.out_path("fig7.csv");
    let runs = h.policy_runs()?;
    let days = runs.day_totals.len();
    let policies: Vec<&str> = POLICY_ORDER
        .iter()
        .copied()
        .filter(|&p| p != "Ideal")
        .collect();

    let mut table = TextTable::new(vec![
        "policy".into(),
        "read hits".into(),
        "write hits".into(),
        "alloc-writes".into(),
        "total SSD ops".into(),
        "alloc share".into(),
    ]);
    let mut csv_rows: Vec<Vec<String>> = Vec::new();
    for &name in &policies {
        let r = runs.by_name(name);
        for d in 0..days {
            let m = r.days.get(d).copied().unwrap_or_default();
            csv_rows.push(vec![
                d.to_string(),
                name.to_string(),
                m.read_hits.to_string(),
                m.write_hits.to_string(),
                m.total_allocation_writes().to_string(),
            ]);
        }
        let t = r.total();
        let ops = t.ssd_block_ops().max(1);
        table.push_row(vec![
            name.to_string(),
            thousands(t.read_hits),
            thousands(t.write_hits),
            thousands(t.total_allocation_writes()),
            thousands(t.ssd_block_ops()),
            pct(t.total_allocation_writes() as f64 / ops as f64),
        ]);
    }
    sievestore_analysis::write_csv(
        &out_path,
        &[
            "day".into(),
            "policy".into(),
            "read_hits".into(),
            "write_hits".into(),
            "allocation_writes".into(),
        ],
        csv_rows.iter().map(|r| r.as_slice()),
    )?;
    Ok(format!(
        "Figure 7: total SSD operations (512-B blocks), whole trace \
         (paper: without sieving, allocation-writes dominate)\n{}",
        table.render()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn harness() -> Harness {
        let dir = std::env::temp_dir().join(format!("sievestore-policies-{}", std::process::id()));
        Harness::smoke(dir).unwrap()
    }

    #[test]
    fn table3_lists_all_policies() {
        let t = table3();
        for key in ["AOD", "WMNA", "SieveStore-D", "SieveStore-C", "RandSieve-C"] {
            assert!(t.contains(key), "missing {key}");
        }
    }

    #[test]
    fn policy_experiments_run_and_write_csv() {
        let mut h = harness();
        table2_exp(&mut h).unwrap();
        let f5 = fig5(&mut h).unwrap();
        let f6 = fig6(&mut h).unwrap();
        let f7 = fig7(&mut h).unwrap();
        assert!(f5.contains("Figure 5"));
        assert!(f6.contains("reduction"));
        assert!(f7.contains("SSD operations"));
        for name in ["table2.csv", "fig5.csv", "fig6.csv", "fig7.csv"] {
            assert!(h.out_path(name).exists(), "{name} missing");
        }
        std::fs::remove_dir_all(h.results_dir()).ok();
    }

    #[test]
    fn sieved_policies_beat_unsieved_on_allocation_writes() {
        let mut h = harness();
        let runs = h.policy_runs().unwrap();
        let sieved = runs
            .by_name("SieveStore-C")
            .total()
            .total_allocation_writes();
        let unsieved = runs.by_name("AOD-16GB").total().total_allocation_writes();
        assert!(
            sieved * 10 < unsieved,
            "sieved {sieved} vs unsieved {unsieved}"
        );
        std::fs::remove_dir_all(h.results_dir()).ok();
    }
}
