//! Extension experiments beyond the paper's figures: the §3.1 Belady
//! demonstration as executable output, a latency/speedup summary, and the
//! simulated (non-oracle) per-server deployment.

use sievestore::PolicySpec;
use sievestore_analysis::{pct, thousands, TextTable};
use sievestore_sieve::TwoTierConfig;
use sievestore_sim::{
    belady_counterexample, belady_min, belady_selective, simulate_per_server, SimConfig,
};
use sievestore_ssd::LatencyModel;
use sievestore_types::{Day, SieveError};

use crate::{imct_entries_for_scale, Harness, POLICY_ORDER};

/// §3.1 as a runnable demonstration: MIN vs selective-MIN vs a pinned set
/// on the paper's counterexample stream, plus MIN-with-AOD on one real
/// trace day.
///
/// # Errors
///
/// Never fails; the `Result` matches the experiment interface.
pub fn belady(h: &Harness) -> Result<String, SieveError> {
    let mut table = TextTable::new(vec![
        "configuration".into(),
        "hit ratio".into(),
        "allocation-writes".into(),
        "alloc fraction".into(),
    ]);
    let (selective, pinned) = belady_counterexample(10_000);
    table.push_row(vec![
        "counterexample: selective Belady (1-entry)".into(),
        pct(selective.hit_ratio()),
        thousands(selective.allocation_writes),
        pct(selective.allocation_fraction()),
    ]);
    table.push_row(vec![
        "counterexample: pinned {a} (1-entry)".into(),
        pct(pinned.hit_ratio()),
        thousands(pinned.allocation_writes),
        pct(pinned.allocation_fraction()),
    ]);

    // One real (synthetic-ensemble) day under clairvoyant replacement:
    // even MIN cannot avoid compulsory allocation-writes under AOD.
    let day = Day::new(2);
    let accesses: Vec<u64> = h
        .trace()
        .day_requests(day)
        .iter()
        .flat_map(|r| r.blocks().map(|b| b.raw()))
        .collect();
    let capacity = SimConfig::paper_16gb(h.scale()).capacity_blocks;
    let min = belady_min(&accesses, capacity);
    let sel = belady_selective(&accesses, capacity);
    table.push_row(vec![
        format!("day {} trace: Belady MIN + AOD", day.index()),
        pct(min.hit_ratio()),
        thousands(min.allocation_writes),
        pct(min.allocation_fraction()),
    ]);
    table.push_row(vec![
        format!("day {} trace: selective Belady", day.index()),
        pct(sel.hit_ratio()),
        thousands(sel.allocation_writes),
        pct(sel.allocation_fraction()),
    ]);
    Ok(format!(
        "Section 3.1: oracle replacement cannot fix allocation-writes \
         (paper: selective allocation that maximizes hits still allocates \
         ~50% of accesses on the counterexample; a fixed set allocates once)\n{}",
        table.render()
    ))
}

/// Latency extension: mean service time and speedup over an HDD-only
/// baseline for every simulated policy (hits at SSD service time, misses
/// at HDD service time, allocation-writes charged as SSD writes).
///
/// # Errors
///
/// Propagates simulation failures.
pub fn latency(h: &mut Harness) -> Result<String, SieveError> {
    let runs = h.policy_runs()?;
    let model = LatencyModel::paper_default();
    let mut table = TextTable::new(vec![
        "policy".into(),
        "mean access (us)".into(),
        "speedup vs HDD-only".into(),
    ]);
    for name in POLICY_ORDER {
        let t = runs.by_name(name).total();
        let total = t.accesses().max(1) as f64;
        let mean = model.mean_access_us(
            t.read_hits as f64 / total,
            t.write_hits as f64 / total,
            t.read_misses as f64 / total,
            t.write_misses as f64 / total,
            t.total_allocation_writes() as f64 / total,
            true,
        );
        let speedup = model.speedup_vs_hdd(
            t.read_hits as f64 / total,
            t.write_hits as f64 / total,
            t.read_misses as f64 / total,
            t.write_misses as f64 / total,
            t.total_allocation_writes() as f64 / total,
            true,
        );
        table.push_row(vec![
            name.to_string(),
            format!("{mean:.0}"),
            format!("{speedup:.2}x"),
        ]);
    }
    Ok(format!(
        "Latency extension (X25-E service times over 15k HDDs; not a paper \
         figure): sieving converts hit-rate and write-avoidance into \
         storage speedup\n{}",
        table.render()
    ))
}

/// Simulated per-server deployment (quadrants III/IV): SieveStore-C and
/// AOD with the 16 GB budget split evenly across the 13 servers, versus
/// the shared ensemble cache.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn per_server_sim(h: &mut Harness) -> Result<String, SieveError> {
    let scale = h.scale();
    let cfg = SimConfig::paper_16gb(scale);
    let imct = imct_entries_for_scale(scale);
    let per_server_imct = (imct / 13).max(1 << 10);

    let c_split = simulate_per_server(
        h.trace(),
        |_| {
            PolicySpec::SieveStoreC(
                TwoTierConfig::paper_default().with_imct_entries(per_server_imct),
            )
        },
        cfg.capacity_blocks,
        &cfg,
    )?;
    let aod_split = simulate_per_server(h.trace(), |_| PolicySpec::Aod, cfg.capacity_blocks, &cfg)?;

    let runs = h.policy_runs()?;
    let mut table = TextTable::new(vec![
        "configuration".into(),
        "mean capture".into(),
        "allocation-writes".into(),
    ]);
    for (label, result) in [
        (
            "ensemble SieveStore-C (shared 16GB)",
            runs.by_name("SieveStore-C"),
        ),
        ("per-server SieveStore-C (16GB split 13 ways)", &c_split),
        ("ensemble AOD (shared 16GB)", runs.by_name("AOD-16GB")),
        ("per-server AOD (16GB split 13 ways)", &aod_split),
    ] {
        table.push_row(vec![
            label.to_string(),
            pct(result.mean_captured_fraction(&[])),
            thousands(result.total().total_allocation_writes()),
        ]);
    }
    Ok(format!(
        "Per-server deployment, simulated (quadrants III/IV of Figure 1; \
         the paper argues ensemble-level sharing wins)\n{}",
        table.render()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn harness() -> Harness {
        let dir = std::env::temp_dir().join(format!("sievestore-ext-{}", std::process::id()));
        Harness::smoke(dir).unwrap()
    }

    #[test]
    fn belady_experiment_reports_counterexample() {
        let h = harness();
        let out = belady(&h).unwrap();
        assert!(out.contains("selective Belady"));
        assert!(out.contains("pinned"));
        std::fs::remove_dir_all(h.results_dir()).ok();
    }

    #[test]
    fn latency_experiment_orders_policies() {
        let mut h = harness();
        let out = latency(&mut h).unwrap();
        assert!(out.contains("speedup"));
        assert!(out.contains("SieveStore-C"));
        std::fs::remove_dir_all(h.results_dir()).ok();
    }

    #[test]
    fn per_server_simulation_runs() {
        let mut h = harness();
        let out = per_server_sim(&mut h).unwrap();
        assert!(out.contains("per-server SieveStore-C"));
        std::fs::remove_dir_all(h.results_dir()).ok();
    }
}
