//! Shadow-mode policy comparison: LRU vs SIEVE eviction, side by side.
//!
//! The continuous policies (AOD, WMNA, RandSieve-C, SieveStore-C) replace
//! frames with the eviction policy the appliance was built with; discrete
//! policies use the epoch-batch cache and are unaffected. This experiment
//! replays the same trace through both eviction policies and prints their
//! whole-trace figures next to each other — the smoke check the CI shadow
//! job uploads, so an eviction-policy change shows its effect on every
//! figure-relevant metric before anything re-baselines.
//!
//! One day-boundary snapshot log (`sievestore-day-snapshot/v1` JSONL) is
//! written per policy *per eviction* under `<results>/shadow/`, giving the
//! artifact reviewer per-day deltas, not just totals.

use std::fmt::Write as _;

use sievestore::PolicySpec;
use sievestore_sieve::TwoTierConfig;
use sievestore_sim::{simulate_many, EvictionPolicy, SimConfig, SimResult, SnapshotLog};
use sievestore_types::SieveError;

use crate::{imct_entries_for_scale, Harness};

/// The policies whose replacement decisions the eviction policy controls.
const SHADOW_POLICIES: [&str; 4] = ["AOD", "WMNA", "RandSieve-C", "SieveStore-C"];

/// Runs the continuous-policy suite under LRU and SIEVE eviction and
/// tabulates both, writing per-policy day-snapshot JSONL under
/// `<results>/shadow/`.
///
/// # Errors
///
/// Propagates simulation-construction and file-write errors.
pub fn shadow(h: &mut Harness) -> Result<String, SieveError> {
    let scale = h.scale();
    let dir = h.results_dir().join("shadow");
    std::fs::create_dir_all(&dir)?;

    let mut per_eviction: Vec<Vec<SimResult>> = Vec::new();
    for eviction in [EvictionPolicy::Lru, EvictionPolicy::Sieve] {
        let cfg = SimConfig::paper_16gb(scale)
            .with_replay(h.replay_mode())
            .with_eviction(eviction);
        let two_tier =
            TwoTierConfig::paper_default().with_imct_entries(imct_entries_for_scale(scale));
        let results = simulate_many(
            h.trace(),
            vec![
                PolicySpec::Aod,
                PolicySpec::Wmna,
                PolicySpec::RandSieveC {
                    probability: 0.01,
                    seed: 0xC0FE,
                },
                PolicySpec::SieveStoreC(two_tier),
            ],
            &cfg,
        )?;
        for (result, name) in results.iter().zip(SHADOW_POLICIES) {
            let slug: String = name
                .chars()
                .map(|c| {
                    if c.is_ascii_alphanumeric() {
                        c.to_ascii_lowercase()
                    } else {
                        '_'
                    }
                })
                .collect();
            let path = dir.join(format!("snapshots_{slug}_{eviction}.jsonl"));
            std::fs::write(&path, SnapshotLog::from_result(result).to_jsonl())?;
        }
        per_eviction.push(results);
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<14} {:>12} {:>12} {:>8}   {:>12} {:>12}",
        "policy", "lru hits", "sieve hits", "delta", "lru allocs", "sieve allocs"
    );
    for (i, name) in SHADOW_POLICIES.iter().enumerate() {
        let lru = per_eviction[0][i].total();
        let sieve = per_eviction[1][i].total();
        let delta = if lru.hits() == 0 {
            0.0
        } else {
            (sieve.hits() as f64 / lru.hits() as f64 - 1.0) * 100.0
        };
        let _ = writeln!(
            out,
            "{:<14} {:>12} {:>12} {:>+7.2}%   {:>12} {:>12}",
            name,
            lru.hits(),
            sieve.hits(),
            delta,
            lru.allocation_writes,
            sieve.allocation_writes
        );
    }
    let _ = writeln!(out, "day snapshots: {}/snapshots_*.jsonl", dir.display());
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shadow_runs_both_evictions_and_writes_snapshots() {
        let dir = std::env::temp_dir().join(format!("sievestore-shadow-{}", std::process::id()));
        let mut h = Harness::smoke(&dir).unwrap();
        let table = shadow(&mut h).unwrap();
        for name in SHADOW_POLICIES {
            assert!(table.contains(name), "missing {name} in:\n{table}");
        }
        for eviction in ["lru", "sieve"] {
            let path = dir
                .join("shadow")
                .join(format!("snapshots_aod_{eviction}.jsonl"));
            let text = std::fs::read_to_string(&path).unwrap();
            assert!(text.starts_with("{\"schema\":\"sievestore-day-snapshot/v1\""));
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
