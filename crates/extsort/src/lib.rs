//! SieveStore-D's offline access-counting substrate.
//!
//! SieveStore-D (§3.2 of the paper) must count accesses for **every** block
//! touched in an epoch — including blocks not resident in the cache — and
//! does so off the critical path by logging each access and periodically
//! running a "map-reduction-like" per-key reduction:
//!
//! 1. each access is logged as an `<address, 1>` tuple into one of `R`
//!    partition files chosen by a hash of the address,
//! 2. each partition file is sorted,
//! 3. runs of the same address are counted and re-emitted as
//!    `<address, n>` tuples.
//!
//! The reduction may run *incrementally* ([`AccessLog::compact`]) to keep
//! log sizes bounded; at the epoch boundary [`AccessLog::finish`] produces
//! the final [`AccessCounts`], from which the blocks above the allocation
//! threshold are selected.
//!
//! [`InMemoryCounter`] is a drop-in hash-map implementation of the same
//! [`AccessCounter`] interface, used by fast simulations and as a test
//! oracle for the external implementation.
//!
//! # Examples
//!
//! ```
//! use sievestore_extsort::{AccessCounter, AccessLog, InMemoryCounter};
//!
//! # fn main() -> Result<(), sievestore_types::SieveError> {
//! let dir = std::env::temp_dir().join("sievestore-doc-extsort");
//! let mut log = AccessLog::create(&dir, 4)?;
//! for key in [7u64, 9, 7, 7, 1] {
//!     log.record(key);
//! }
//! let counts = log.finish()?;
//! assert_eq!(counts.get(7), 3);
//! assert_eq!(counts.get(9), 1);
//! assert_eq!(counts.keys_with_at_least(2), vec![7]);
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

use std::fs::{self, File, OpenOptions};
use std::io::{BufReader, BufWriter, ErrorKind, Read, Write};
use std::path::{Path, PathBuf};

use sievestore_types::{SieveError, U64Map};

/// Common interface over access counters (external log or in-memory map).
pub trait AccessCounter {
    /// Records one access to `key`.
    fn record(&mut self, key: u64);

    /// Finalizes the counter into per-key totals.
    ///
    /// # Errors
    ///
    /// Returns an error if the underlying storage fails (the in-memory
    /// implementation never fails).
    fn finish(self) -> Result<AccessCounts, SieveError>;
}

/// Final per-key access totals for an epoch.
///
/// See the [crate-level documentation](crate) for an end-to-end example.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AccessCounts {
    counts: U64Map<u64>,
}

impl AccessCounts {
    /// Creates an empty count table.
    pub fn new() -> Self {
        AccessCounts::default()
    }

    /// Returns the access count for `key` (0 if never seen).
    pub fn get(&self, key: u64) -> u64 {
        self.counts.get(key).copied().unwrap_or(0)
    }

    /// Number of distinct keys observed.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether no key was observed.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Total number of recorded accesses.
    pub fn total_accesses(&self) -> u64 {
        self.counts.iter().map(|(_, &c)| c).sum()
    }

    /// Keys whose count is at least `threshold`, sorted ascending.
    ///
    /// This is SieveStore-D's allocation rule: blocks with `count >= t`
    /// in epoch *i* are batch-allocated for epoch *i + 1*.
    pub fn keys_with_at_least(&self, threshold: u64) -> Vec<u64> {
        let mut keys: Vec<u64> = self
            .counts
            .iter()
            .filter(|&(_, &c)| c >= threshold)
            .map(|(k, _)| k)
            .collect();
        keys.sort_unstable();
        keys
    }

    /// The `n` most-accessed keys (ties broken by key), descending count.
    pub fn top_n(&self, n: usize) -> Vec<(u64, u64)> {
        let mut all: Vec<(u64, u64)> = self.counts.iter().map(|(k, &c)| (k, c)).collect();
        all.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        all.truncate(n);
        all
    }

    /// Iterates over `(key, count)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts.iter().map(|(k, &c)| (k, c))
    }
}

impl FromIterator<(u64, u64)> for AccessCounts {
    fn from_iter<I: IntoIterator<Item = (u64, u64)>>(iter: I) -> Self {
        let mut counts: U64Map<u64> = U64Map::new();
        for (k, c) in iter {
            *counts.get_or_insert_with(k, || 0) += c;
        }
        AccessCounts { counts }
    }
}

/// Straightforward hash-map counter; the test oracle and fast path.
///
/// # Examples
///
/// ```
/// use sievestore_extsort::{AccessCounter, InMemoryCounter};
/// let mut counter = InMemoryCounter::new();
/// counter.record(5);
/// counter.record(5);
/// let counts = counter.finish().unwrap();
/// assert_eq!(counts.get(5), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct InMemoryCounter {
    counts: U64Map<u64>,
}

impl InMemoryCounter {
    /// Creates an empty counter.
    pub fn new() -> Self {
        InMemoryCounter::default()
    }

    /// Current count for a key (0 if never seen).
    pub fn get(&self, key: u64) -> u64 {
        self.counts.get(key).copied().unwrap_or(0)
    }
}

impl AccessCounter for InMemoryCounter {
    fn record(&mut self, key: u64) {
        *self.counts.get_or_insert_with(key, || 0) += 1;
    }

    fn finish(self) -> Result<AccessCounts, SieveError> {
        Ok(AccessCounts {
            counts: self.counts,
        })
    }
}

/// One `<key, count>` tuple, 16 bytes little-endian on disk.
const TUPLE_BYTES: usize = 16;

/// The external, hash-partitioned access log (the paper's mechanism).
///
/// Tuples are buffered per partition and spilled to `R` files. Calling
/// [`AccessLog::compact`] performs the incremental per-key reduction the
/// paper describes (sort each partition, count runs, rewrite); calling
/// [`AccessLog::finish`] produces the final totals.
///
/// Dropping the log removes its partition files (best-effort).
#[derive(Debug)]
pub struct AccessLog {
    dir: PathBuf,
    partitions: usize,
    writers: Vec<BufWriter<File>>,
    /// Total tuples logged (pre-reduction).
    logged: u64,
}

impl AccessLog {
    /// Creates a log with `partitions` spill files inside `dir`
    /// (the directory is created if needed).
    ///
    /// # Errors
    ///
    /// Returns an error if the directory or spill files cannot be created,
    /// or if `partitions == 0`.
    pub fn create(dir: impl AsRef<Path>, partitions: usize) -> Result<Self, SieveError> {
        if partitions == 0 {
            return Err(SieveError::InvalidConfig(
                "access log needs at least one partition".into(),
            ));
        }
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let mut writers = Vec::with_capacity(partitions);
        for i in 0..partitions {
            let file = OpenOptions::new()
                .create(true)
                .write(true)
                .truncate(true)
                .open(partition_path(&dir, i))?;
            writers.push(BufWriter::new(file));
        }
        Ok(AccessLog {
            dir,
            partitions,
            writers,
            logged: 0,
        })
    }

    /// Number of partition files.
    pub fn partitions(&self) -> usize {
        self.partitions
    }

    /// Total tuples logged since creation (pre-reduction).
    pub fn logged(&self) -> u64 {
        self.logged
    }

    /// Bytes currently on disk across partitions (post last compaction
    /// flush; buffered tuples not yet flushed are excluded).
    ///
    /// # Errors
    ///
    /// Propagates metadata I/O errors.
    pub fn disk_bytes(&self) -> Result<u64, SieveError> {
        let mut total = 0;
        for i in 0..self.partitions {
            total += fs::metadata(partition_path(&self.dir, i))?.len();
        }
        Ok(total)
    }

    fn partition_of(&self, key: u64) -> usize {
        // SplitMix64 finalizer as the partition hash.
        let mut z = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (z ^ (z >> 31)) as usize % self.partitions
    }

    /// Logs one access as an `<address, 1>` tuple.
    ///
    /// I/O errors are deferred: the tuple goes into a buffered writer and
    /// any failure surfaces at the next [`AccessLog::compact`] /
    /// [`AccessLog::finish`] call, keeping this hot path infallible.
    pub fn record_access(&mut self, key: u64) {
        let p = self.partition_of(key);
        let mut tuple = [0u8; TUPLE_BYTES];
        tuple[0..8].copy_from_slice(&key.to_le_bytes());
        tuple[8..16].copy_from_slice(&1u64.to_le_bytes());
        // Errors deferred to compact()/finish(), which flush and re-read.
        let _ = self.writers[p].write_all(&tuple);
        self.logged += 1;
    }

    /// Incrementally reduces every partition: sort by key, merge runs into
    /// `<address, n>` tuples, rewrite. Keeps log size proportional to the
    /// number of *distinct* keys rather than the number of accesses.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from reading or rewriting partitions.
    pub fn compact(&mut self) -> Result<(), SieveError> {
        for i in 0..self.partitions {
            self.writers[i].flush()?;
            let tuples = read_tuples(&partition_path(&self.dir, i))?;
            let reduced = reduce(tuples);
            write_tuples(&partition_path(&self.dir, i), &reduced)?;
            let file = OpenOptions::new()
                .append(true)
                .open(partition_path(&self.dir, i))?;
            self.writers[i] = BufWriter::new(file);
        }
        Ok(())
    }

    /// Finalizes: reduces every partition and merges the totals.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn finish(mut self) -> Result<AccessCounts, SieveError> {
        let mut counts: U64Map<u64> = U64Map::new();
        for i in 0..self.partitions {
            self.writers[i].flush()?;
            let tuples = read_tuples(&partition_path(&self.dir, i))?;
            for (k, c) in reduce(tuples) {
                *counts.get_or_insert_with(k, || 0) += c;
            }
        }
        Ok(AccessCounts { counts })
    }
}

impl AccessCounter for AccessLog {
    fn record(&mut self, key: u64) {
        self.record_access(key);
    }

    fn finish(self) -> Result<AccessCounts, SieveError> {
        AccessLog::finish(self)
    }
}

impl Drop for AccessLog {
    fn drop(&mut self) {
        for i in 0..self.partitions {
            let _ = fs::remove_file(partition_path(&self.dir, i));
        }
    }
}

fn partition_path(dir: &Path, index: usize) -> PathBuf {
    dir.join(format!("part-{index:04}.log"))
}

/// Reads all `<key, count>` tuples of a partition file.
fn read_tuples(path: &Path) -> Result<Vec<(u64, u64)>, SieveError> {
    let file = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e.into()),
    };
    let mut reader = BufReader::new(file);
    let mut tuples = Vec::new();
    let mut buf = [0u8; TUPLE_BYTES];
    loop {
        match reader.read_exact(&mut buf) {
            Ok(()) => {
                let key = u64::from_le_bytes(buf[0..8].try_into().expect("8 bytes"));
                let count = u64::from_le_bytes(buf[8..16].try_into().expect("8 bytes"));
                tuples.push((key, count));
            }
            Err(e) if e.kind() == ErrorKind::UnexpectedEof => break,
            Err(e) => return Err(e.into()),
        }
    }
    Ok(tuples)
}

/// Sorts tuples by key and merges runs: the per-key reduction step.
fn reduce(mut tuples: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    tuples.sort_unstable_by_key(|&(k, _)| k);
    let mut out: Vec<(u64, u64)> = Vec::with_capacity(tuples.len());
    for (k, c) in tuples {
        match out.last_mut() {
            Some((lk, lc)) if *lk == k => *lc += c,
            _ => out.push((k, c)),
        }
    }
    out
}

fn write_tuples(path: &Path, tuples: &[(u64, u64)]) -> Result<(), SieveError> {
    let file = OpenOptions::new()
        .create(true)
        .write(true)
        .truncate(true)
        .open(path)?;
    let mut writer = BufWriter::new(file);
    for &(k, c) in tuples {
        writer.write_all(&k.to_le_bytes())?;
        writer.write_all(&c.to_le_bytes())?;
    }
    writer.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::{RngExt, SeedableRng};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("sievestore-extsort-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn zero_partitions_is_rejected() {
        assert!(AccessLog::create(temp_dir("zero"), 0).is_err());
    }

    #[test]
    fn counts_match_in_memory_oracle() {
        let dir = temp_dir("oracle");
        let mut log = AccessLog::create(&dir, 8).unwrap();
        let mut oracle = InMemoryCounter::new();
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..50_000 {
            let key = rng.random_range(0..5_000u64);
            log.record(key);
            oracle.record(key);
        }
        let external = log.finish().unwrap();
        let expected = oracle.finish().unwrap();
        assert_eq!(external, expected);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compaction_preserves_totals_and_shrinks_disk() {
        let dir = temp_dir("compact");
        let mut log = AccessLog::create(&dir, 4).unwrap();
        // 10_000 accesses to only 50 distinct keys.
        for i in 0..10_000u64 {
            log.record(i % 50);
        }
        log.compact().unwrap();
        let after_first = log.disk_bytes().unwrap();
        assert!(
            after_first <= 50 * TUPLE_BYTES as u64,
            "compacted size {after_first}"
        );
        // Log more, compact again, counts must still be exact.
        for i in 0..5_000u64 {
            log.record(i % 50);
        }
        log.compact().unwrap();
        let counts = log.finish().unwrap();
        assert_eq!(counts.len(), 50);
        for k in 0..50 {
            assert_eq!(counts.get(k), 300, "key {k}");
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn logged_counts_tuples_not_keys() {
        let dir = temp_dir("logged");
        let mut log = AccessLog::create(&dir, 2).unwrap();
        for _ in 0..7 {
            log.record(1);
        }
        assert_eq!(log.logged(), 7);
        assert_eq!(log.partitions(), 2);
        let counts = log.finish().unwrap();
        assert_eq!(counts.total_accesses(), 7);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn threshold_selection_matches_paper_rule() {
        let counts: AccessCounts = [(1u64, 12u64), (2, 10), (3, 9), (4, 1)]
            .into_iter()
            .collect();
        assert_eq!(counts.keys_with_at_least(10), vec![1, 2]);
        assert_eq!(counts.keys_with_at_least(1).len(), 4);
        assert!(counts.keys_with_at_least(13).is_empty());
    }

    #[test]
    fn top_n_orders_by_count_then_key() {
        let counts: AccessCounts = [(5u64, 3u64), (1, 7), (9, 3), (2, 7)].into_iter().collect();
        assert_eq!(counts.top_n(3), vec![(1, 7), (2, 7), (5, 3)]);
        assert_eq!(counts.top_n(0), vec![]);
        assert_eq!(counts.top_n(10).len(), 4);
    }

    #[test]
    fn from_iterator_merges_duplicate_keys() {
        let counts: AccessCounts = [(1u64, 2u64), (1, 3)].into_iter().collect();
        assert_eq!(counts.get(1), 5);
        assert_eq!(counts.len(), 1);
        assert!(!counts.is_empty());
    }

    #[test]
    fn empty_log_finishes_empty() {
        let dir = temp_dir("empty");
        let log = AccessLog::create(&dir, 3).unwrap();
        let counts = log.finish().unwrap();
        assert!(counts.is_empty());
        assert_eq!(counts.total_accesses(), 0);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn drop_removes_partition_files() {
        let dir = temp_dir("drop");
        {
            let mut log = AccessLog::create(&dir, 3).unwrap();
            log.record(1);
            log.compact().unwrap();
            assert!(partition_path(&dir, 0).exists());
        }
        for i in 0..3 {
            assert!(!partition_path(&dir, i).exists(), "partition {i} remains");
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reduce_merges_runs() {
        let reduced = reduce(vec![(3, 1), (1, 1), (3, 2), (1, 1), (2, 1)]);
        assert_eq!(reduced, vec![(1, 2), (2, 1), (3, 3)]);
        assert_eq!(reduce(vec![]), vec![]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn external_equals_oracle_under_random_streams(
            keys in proptest::collection::vec(0u64..200, 0..2000),
            partitions in 1usize..9,
            compact_every in 1usize..500,
        ) {
            let dir = temp_dir(&format!("prop{partitions}-{compact_every}-{}", keys.len()));
            let mut log = AccessLog::create(&dir, partitions).unwrap();
            let mut oracle = InMemoryCounter::new();
            for (i, &k) in keys.iter().enumerate() {
                log.record(k);
                oracle.record(k);
                if (i + 1) % compact_every == 0 {
                    log.compact().unwrap();
                }
            }
            let external = log.finish().unwrap();
            prop_assert_eq!(external, oracle.finish().unwrap());
            fs::remove_dir_all(&dir).ok();
        }
    }
}
