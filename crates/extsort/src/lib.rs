//! SieveStore-D's offline access-counting substrate.
//!
//! SieveStore-D (§3.2 of the paper) must count accesses for **every** block
//! touched in an epoch — including blocks not resident in the cache — and
//! does so off the critical path by logging each access and periodically
//! running a "map-reduction-like" per-key reduction:
//!
//! 1. each access is logged as an `<address, 1>` tuple into one of `R`
//!    partition files chosen by a hash of the address,
//! 2. each partition file is sorted,
//! 3. runs of the same address are counted and re-emitted as
//!    `<address, n>` tuples.
//!
//! The reduction may run *incrementally* ([`AccessLog::compact`]) to keep
//! log sizes bounded; at the epoch boundary [`AccessLog::finish`] produces
//! the final [`AccessCounts`], from which the blocks above the allocation
//! threshold are selected.
//!
//! [`InMemoryCounter`] is a drop-in hash-map implementation of the same
//! [`AccessCounter`] interface, used by fast simulations and as a test
//! oracle for the external implementation.
//!
//! # Examples
//!
//! ```
//! use sievestore_extsort::{AccessCounter, AccessLog, InMemoryCounter};
//!
//! # fn main() -> Result<(), sievestore_types::SieveError> {
//! let dir = std::env::temp_dir().join("sievestore-doc-extsort");
//! let mut log = AccessLog::create(&dir, 4)?;
//! for key in [7u64, 9, 7, 7, 1] {
//!     log.record(key);
//! }
//! let counts = log.finish()?;
//! assert_eq!(counts.get(7), 3);
//! assert_eq!(counts.get(9), 1);
//! assert_eq!(counts.keys_with_at_least(2), vec![7]);
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

use std::fs::{self, File, OpenOptions};
use std::io::{BufReader, BufWriter, ErrorKind, Read, Write};
use std::path::{Path, PathBuf};

use sievestore_types::{SieveError, U64Map};

/// Common interface over access counters (external log or in-memory map).
pub trait AccessCounter {
    /// Records one access to `key`.
    fn record(&mut self, key: u64);

    /// Finalizes the counter into per-key totals.
    ///
    /// # Errors
    ///
    /// Returns an error if the underlying storage fails (the in-memory
    /// implementation never fails).
    fn finish(self) -> Result<AccessCounts, SieveError>;

    /// Finalizes directly into the selected key set: every key accessed at
    /// least `threshold` times, sorted ascending.
    ///
    /// This is the epoch-boundary operation SieveStore-D actually needs —
    /// spill-backed implementations override it to avoid materializing
    /// per-key totals for every distinct key of the epoch at once.
    ///
    /// # Errors
    ///
    /// Returns an error if the underlying storage fails.
    fn finish_selection(self, threshold: u64) -> Result<Vec<u64>, SieveError>
    where
        Self: Sized,
    {
        Ok(self.finish()?.keys_with_at_least(threshold))
    }
}

/// Final per-key access totals for an epoch.
///
/// See the [crate-level documentation](crate) for an end-to-end example.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AccessCounts {
    counts: U64Map<u64>,
}

impl AccessCounts {
    /// Creates an empty count table.
    pub fn new() -> Self {
        AccessCounts::default()
    }

    /// Returns the access count for `key` (0 if never seen).
    pub fn get(&self, key: u64) -> u64 {
        self.counts.get(key).copied().unwrap_or(0)
    }

    /// Number of distinct keys observed.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether no key was observed.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Total number of recorded accesses.
    pub fn total_accesses(&self) -> u64 {
        self.counts.iter().map(|(_, &c)| c).sum()
    }

    /// Keys whose count is at least `threshold`, sorted ascending.
    ///
    /// This is SieveStore-D's allocation rule: blocks with `count >= t`
    /// in epoch *i* are batch-allocated for epoch *i + 1*.
    pub fn keys_with_at_least(&self, threshold: u64) -> Vec<u64> {
        let mut keys: Vec<u64> = self
            .counts
            .iter()
            .filter(|&(_, &c)| c >= threshold)
            .map(|(k, _)| k)
            .collect();
        keys.sort_unstable();
        keys
    }

    /// The `n` most-accessed keys (ties broken by key), descending count.
    pub fn top_n(&self, n: usize) -> Vec<(u64, u64)> {
        let mut all: Vec<(u64, u64)> = self.counts.iter().map(|(k, &c)| (k, c)).collect();
        all.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        all.truncate(n);
        all
    }

    /// Iterates over `(key, count)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts.iter().map(|(k, &c)| (k, c))
    }
}

impl FromIterator<(u64, u64)> for AccessCounts {
    fn from_iter<I: IntoIterator<Item = (u64, u64)>>(iter: I) -> Self {
        let mut counts: U64Map<u64> = U64Map::new();
        for (k, c) in iter {
            *counts.get_or_insert_with(k, || 0) += c;
        }
        AccessCounts { counts }
    }
}

/// Straightforward hash-map counter; the test oracle and fast path.
///
/// # Examples
///
/// ```
/// use sievestore_extsort::{AccessCounter, InMemoryCounter};
/// let mut counter = InMemoryCounter::new();
/// counter.record(5);
/// counter.record(5);
/// let counts = counter.finish().unwrap();
/// assert_eq!(counts.get(5), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct InMemoryCounter {
    counts: U64Map<u64>,
}

impl InMemoryCounter {
    /// Creates an empty counter.
    pub fn new() -> Self {
        InMemoryCounter::default()
    }

    /// Current count for a key (0 if never seen).
    pub fn get(&self, key: u64) -> u64 {
        self.counts.get(key).copied().unwrap_or(0)
    }
}

impl AccessCounter for InMemoryCounter {
    fn record(&mut self, key: u64) {
        *self.counts.get_or_insert_with(key, || 0) += 1;
    }

    fn finish(self) -> Result<AccessCounts, SieveError> {
        Ok(AccessCounts {
            counts: self.counts,
        })
    }
}

/// One `<key, count>` tuple, 16 bytes little-endian on disk.
const TUPLE_BYTES: usize = 16;

/// The external, hash-partitioned access log (the paper's mechanism).
///
/// Tuples are buffered per partition and spilled to `R` files. Calling
/// [`AccessLog::compact`] performs the incremental per-key reduction the
/// paper describes (sort each partition, count runs, rewrite); calling
/// [`AccessLog::finish`] produces the final totals.
///
/// Dropping the log removes its partition files (best-effort).
#[derive(Debug)]
pub struct AccessLog {
    dir: PathBuf,
    partitions: usize,
    writers: Vec<BufWriter<File>>,
    /// Total tuples logged (pre-reduction).
    logged: u64,
}

impl AccessLog {
    /// Creates a log with `partitions` spill files inside `dir`
    /// (the directory is created if needed).
    ///
    /// # Errors
    ///
    /// Returns an error if the directory or spill files cannot be created,
    /// or if `partitions == 0`.
    pub fn create(dir: impl AsRef<Path>, partitions: usize) -> Result<Self, SieveError> {
        if partitions == 0 {
            return Err(SieveError::InvalidConfig(
                "access log needs at least one partition".into(),
            ));
        }
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let mut writers = Vec::with_capacity(partitions);
        for i in 0..partitions {
            let file = OpenOptions::new()
                .create(true)
                .write(true)
                .truncate(true)
                .open(partition_path(&dir, i))?;
            writers.push(BufWriter::new(file));
        }
        Ok(AccessLog {
            dir,
            partitions,
            writers,
            logged: 0,
        })
    }

    /// Number of partition files.
    pub fn partitions(&self) -> usize {
        self.partitions
    }

    /// Total tuples logged since creation (pre-reduction).
    pub fn logged(&self) -> u64 {
        self.logged
    }

    /// Bytes currently on disk across partitions (post last compaction
    /// flush; buffered tuples not yet flushed are excluded).
    ///
    /// # Errors
    ///
    /// Propagates metadata I/O errors.
    pub fn disk_bytes(&self) -> Result<u64, SieveError> {
        let mut total = 0;
        for i in 0..self.partitions {
            total += fs::metadata(partition_path(&self.dir, i))?.len();
        }
        Ok(total)
    }

    fn partition_of(&self, key: u64) -> usize {
        // SplitMix64 finalizer as the partition hash.
        let mut z = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (z ^ (z >> 31)) as usize % self.partitions
    }

    /// Logs one access as an `<address, 1>` tuple.
    ///
    /// I/O errors are deferred: the tuple goes into a buffered writer and
    /// any failure surfaces at the next [`AccessLog::compact`] /
    /// [`AccessLog::finish`] call, keeping this hot path infallible.
    pub fn record_access(&mut self, key: u64) {
        self.record_count(key, 1);
    }

    /// Logs a pre-aggregated `<address, count>` tuple — how a budgeted
    /// in-memory front (see [`SpillCounter`]) drains its hot map into the
    /// log without replaying every individual access.
    ///
    /// I/O errors are deferred exactly as in [`AccessLog::record_access`].
    pub fn record_count(&mut self, key: u64, count: u64) {
        let p = self.partition_of(key);
        let mut tuple = [0u8; TUPLE_BYTES];
        tuple[0..8].copy_from_slice(&key.to_le_bytes());
        tuple[8..16].copy_from_slice(&count.to_le_bytes());
        // Errors deferred to compact()/finish(), which flush and re-read.
        let _ = self.writers[p].write_all(&tuple);
        self.logged += count;
    }

    /// Incrementally reduces every partition: sort by key, merge runs into
    /// `<address, n>` tuples, rewrite. Keeps log size proportional to the
    /// number of *distinct* keys rather than the number of accesses.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from reading or rewriting partitions.
    pub fn compact(&mut self) -> Result<(), SieveError> {
        for i in 0..self.partitions {
            self.writers[i].flush()?;
            let tuples = read_tuples(&partition_path(&self.dir, i))?;
            let reduced = reduce(tuples);
            write_tuples(&partition_path(&self.dir, i), &reduced)?;
            let file = OpenOptions::new()
                .append(true)
                .open(partition_path(&self.dir, i))?;
            self.writers[i] = BufWriter::new(file);
        }
        Ok(())
    }

    /// Finalizes: reduces every partition and merges the totals.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn finish(mut self) -> Result<AccessCounts, SieveError> {
        let mut counts: U64Map<u64> = U64Map::new();
        for i in 0..self.partitions {
            self.writers[i].flush()?;
            let tuples = read_tuples(&partition_path(&self.dir, i))?;
            for (k, c) in reduce(tuples) {
                *counts.get_or_insert_with(k, || 0) += c;
            }
        }
        Ok(AccessCounts { counts })
    }

    /// Finalizes straight into the threshold selection, one partition at a
    /// time: peak memory is the largest partition plus the selected keys,
    /// never the full distinct-key population. Keys come back sorted
    /// ascending — identical to
    /// [`AccessCounts::keys_with_at_least`] over [`AccessLog::finish`].
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn finish_selecting(mut self, threshold: u64) -> Result<Vec<u64>, SieveError> {
        let mut keys = Vec::new();
        for i in 0..self.partitions {
            self.writers[i].flush()?;
            let tuples = read_tuples(&partition_path(&self.dir, i))?;
            keys.extend(
                reduce(tuples)
                    .into_iter()
                    .filter(|&(_, c)| c >= threshold)
                    .map(|(k, _)| k),
            );
        }
        // Partitions are hash-split, so a global sort restores the
        // selection order the in-memory backend produces.
        keys.sort_unstable();
        Ok(keys)
    }
}

impl AccessCounter for AccessLog {
    fn record(&mut self, key: u64) {
        self.record_access(key);
    }

    fn finish(self) -> Result<AccessCounts, SieveError> {
        AccessLog::finish(self)
    }

    fn finish_selection(self, threshold: u64) -> Result<Vec<u64>, SieveError> {
        AccessLog::finish_selecting(self, threshold)
    }
}

impl Drop for AccessLog {
    fn drop(&mut self) {
        for i in 0..self.partitions {
            let _ = fs::remove_file(partition_path(&self.dir, i));
        }
    }
}

/// Default distinct-key budget for [`SpillCounter`]'s hot map
/// (~16 MiB of `U64Map` at 16 bytes/entry before load-factor headroom).
pub const DEFAULT_SPILL_BUDGET: usize = 1 << 20;
/// Default partition count for spill-backed counting.
pub const DEFAULT_SPILL_PARTITIONS: usize = 16;

/// Sequence number making concurrent spill counters in one process use
/// disjoint directories.
static SPILL_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Bounded-memory access counter: an in-memory hot map in front of an
/// [`AccessLog`].
///
/// Counts accumulate in a `U64Map` until it holds `budget` distinct keys,
/// then drain to the log as pre-aggregated `<key, count>` tuples
/// ([`AccessLog::record_count`]) and the map resets — so resident memory
/// is bounded by the budget no matter how many distinct blocks an epoch
/// touches, while the common case (hot keys re-hit before a drain) stays
/// a pure hash-map increment.
///
/// Each counter claims a process-unique subdirectory under the configured
/// spill root, so one [`CountingConfig`] can mint counters for many
/// concurrent policies/epochs without collisions; the subdirectory is
/// removed when the counter finishes (best-effort on abandon).
///
/// # Examples
///
/// ```
/// use sievestore_extsort::{AccessCounter, SpillCounter};
///
/// # fn main() -> Result<(), sievestore_types::SieveError> {
/// let dir = std::env::temp_dir().join("sievestore-doc-spill");
/// let mut counter = SpillCounter::create(&dir, 2, 4)?; // tiny budget: spills often
/// for key in [7u64, 9, 7, 3, 7, 9] {
///     counter.record(key);
/// }
/// assert_eq!(counter.finish_selection(2)?, vec![7, 9]);
/// # std::fs::remove_dir_all(&dir).ok();
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SpillCounter {
    hot: U64Map<u64>,
    budget: usize,
    log: AccessLog,
    dir: PathBuf,
    spills: u64,
}

impl SpillCounter {
    /// Creates a spill counter under `root` holding at most `budget`
    /// distinct keys in memory, spilling into `partitions` log files.
    ///
    /// # Errors
    ///
    /// Returns an error if the spill directory or log cannot be created,
    /// or if `budget` or `partitions` is 0.
    pub fn create(
        root: impl AsRef<Path>,
        budget: usize,
        partitions: usize,
    ) -> Result<Self, SieveError> {
        if budget == 0 {
            return Err(SieveError::InvalidConfig(
                "spill counter needs a non-zero key budget".into(),
            ));
        }
        let seq = SPILL_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir = root
            .as_ref()
            .join(format!("epoch-{}-{seq:04}", std::process::id()));
        let log = AccessLog::create(&dir, partitions)?;
        Ok(SpillCounter {
            hot: U64Map::new(),
            budget,
            log,
            dir,
            spills: 0,
        })
    }

    /// Distinct keys currently resident in the hot map.
    pub fn resident_keys(&self) -> usize {
        self.hot.len()
    }

    /// Times the hot map has drained to disk so far.
    pub fn spills(&self) -> u64 {
        self.spills
    }

    fn drain_hot(&mut self) {
        for (k, &c) in self.hot.iter() {
            self.log.record_count(k, c);
        }
        self.hot.clear();
        self.spills += 1;
    }

    fn into_log(mut self) -> (AccessLog, PathBuf) {
        if !self.hot.is_empty() {
            self.drain_hot();
        }
        (self.log, self.dir)
    }
}

impl AccessCounter for SpillCounter {
    fn record(&mut self, key: u64) {
        *self.hot.get_or_insert_with(key, || 0) += 1;
        if self.hot.len() >= self.budget {
            self.drain_hot();
        }
    }

    fn finish(self) -> Result<AccessCounts, SieveError> {
        let (log, dir) = self.into_log();
        let counts = log.finish()?;
        let _ = fs::remove_dir(&dir);
        Ok(counts)
    }

    fn finish_selection(self, threshold: u64) -> Result<Vec<u64>, SieveError> {
        let (log, dir) = self.into_log();
        let keys = log.finish_selecting(threshold)?;
        let _ = fs::remove_dir(&dir);
        Ok(keys)
    }
}

/// How an epoch's access counting should be backed.
///
/// The selection produced at each epoch boundary is identical across
/// backends (pinned by tests); the choice only trades memory for disk
/// I/O.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum CountingConfig {
    /// Everything in a hash map: fastest, memory proportional to the
    /// epoch's distinct-key population.
    #[default]
    InMemory,
    /// Budgeted hot map spilling to a partitioned on-disk log: memory
    /// bounded by `budget` keys regardless of epoch size.
    Spill {
        /// Root directory spill logs live under.
        dir: PathBuf,
        /// Max distinct keys resident before a drain.
        budget: usize,
        /// Spill log partition count.
        partitions: usize,
    },
}

impl CountingConfig {
    /// Spill-backed counting under `dir` with default budget/partitions.
    pub fn spill(dir: impl Into<PathBuf>) -> Self {
        CountingConfig::Spill {
            dir: dir.into(),
            budget: DEFAULT_SPILL_BUDGET,
            partitions: DEFAULT_SPILL_PARTITIONS,
        }
    }

    /// Overrides the hot-map key budget (spill mode only; no-op for
    /// in-memory).
    #[must_use]
    pub fn with_budget(mut self, keys: usize) -> Self {
        if let CountingConfig::Spill { budget, .. } = &mut self {
            *budget = keys;
        }
        self
    }

    /// Creates a fresh counter for one epoch.
    ///
    /// # Errors
    ///
    /// Returns an error if spill storage cannot be set up.
    pub fn counter(&self) -> Result<EpochCounter, SieveError> {
        match self {
            CountingConfig::InMemory => Ok(EpochCounter::InMemory(InMemoryCounter::new())),
            CountingConfig::Spill {
                dir,
                budget,
                partitions,
            } => Ok(EpochCounter::Spill(SpillCounter::create(
                dir,
                *budget,
                *partitions,
            )?)),
        }
    }
}

/// An access counter minted from a [`CountingConfig`] — the backend the
/// discrete sieve runs each epoch over.
#[derive(Debug)]
pub enum EpochCounter {
    /// Hash-map backend.
    InMemory(InMemoryCounter),
    /// Budgeted spill backend.
    Spill(SpillCounter),
}

impl AccessCounter for EpochCounter {
    fn record(&mut self, key: u64) {
        match self {
            EpochCounter::InMemory(c) => c.record(key),
            EpochCounter::Spill(c) => c.record(key),
        }
    }

    fn finish(self) -> Result<AccessCounts, SieveError> {
        match self {
            EpochCounter::InMemory(c) => c.finish(),
            EpochCounter::Spill(c) => c.finish(),
        }
    }

    fn finish_selection(self, threshold: u64) -> Result<Vec<u64>, SieveError> {
        match self {
            EpochCounter::InMemory(c) => c.finish_selection(threshold),
            EpochCounter::Spill(c) => c.finish_selection(threshold),
        }
    }
}

fn partition_path(dir: &Path, index: usize) -> PathBuf {
    dir.join(format!("part-{index:04}.log"))
}

/// Reads all `<key, count>` tuples of a partition file.
fn read_tuples(path: &Path) -> Result<Vec<(u64, u64)>, SieveError> {
    let file = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e.into()),
    };
    let mut reader = BufReader::new(file);
    let mut tuples = Vec::new();
    let mut buf = [0u8; TUPLE_BYTES];
    loop {
        match reader.read_exact(&mut buf) {
            Ok(()) => {
                let key = u64::from_le_bytes(buf[0..8].try_into().expect("8 bytes"));
                let count = u64::from_le_bytes(buf[8..16].try_into().expect("8 bytes"));
                tuples.push((key, count));
            }
            Err(e) if e.kind() == ErrorKind::UnexpectedEof => break,
            Err(e) => return Err(e.into()),
        }
    }
    Ok(tuples)
}

/// Sorts tuples by key and merges runs: the per-key reduction step.
fn reduce(mut tuples: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    tuples.sort_unstable_by_key(|&(k, _)| k);
    let mut out: Vec<(u64, u64)> = Vec::with_capacity(tuples.len());
    for (k, c) in tuples {
        match out.last_mut() {
            Some((lk, lc)) if *lk == k => *lc += c,
            _ => out.push((k, c)),
        }
    }
    out
}

fn write_tuples(path: &Path, tuples: &[(u64, u64)]) -> Result<(), SieveError> {
    let file = OpenOptions::new()
        .create(true)
        .write(true)
        .truncate(true)
        .open(path)?;
    let mut writer = BufWriter::new(file);
    for &(k, c) in tuples {
        writer.write_all(&k.to_le_bytes())?;
        writer.write_all(&c.to_le_bytes())?;
    }
    writer.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::{RngExt, SeedableRng};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("sievestore-extsort-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn zero_partitions_is_rejected() {
        assert!(AccessLog::create(temp_dir("zero"), 0).is_err());
    }

    #[test]
    fn counts_match_in_memory_oracle() {
        let dir = temp_dir("oracle");
        let mut log = AccessLog::create(&dir, 8).unwrap();
        let mut oracle = InMemoryCounter::new();
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..50_000 {
            let key = rng.random_range(0..5_000u64);
            log.record(key);
            oracle.record(key);
        }
        let external = log.finish().unwrap();
        let expected = oracle.finish().unwrap();
        assert_eq!(external, expected);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compaction_preserves_totals_and_shrinks_disk() {
        let dir = temp_dir("compact");
        let mut log = AccessLog::create(&dir, 4).unwrap();
        // 10_000 accesses to only 50 distinct keys.
        for i in 0..10_000u64 {
            log.record(i % 50);
        }
        log.compact().unwrap();
        let after_first = log.disk_bytes().unwrap();
        assert!(
            after_first <= 50 * TUPLE_BYTES as u64,
            "compacted size {after_first}"
        );
        // Log more, compact again, counts must still be exact.
        for i in 0..5_000u64 {
            log.record(i % 50);
        }
        log.compact().unwrap();
        let counts = log.finish().unwrap();
        assert_eq!(counts.len(), 50);
        for k in 0..50 {
            assert_eq!(counts.get(k), 300, "key {k}");
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn logged_counts_tuples_not_keys() {
        let dir = temp_dir("logged");
        let mut log = AccessLog::create(&dir, 2).unwrap();
        for _ in 0..7 {
            log.record(1);
        }
        assert_eq!(log.logged(), 7);
        assert_eq!(log.partitions(), 2);
        let counts = log.finish().unwrap();
        assert_eq!(counts.total_accesses(), 7);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn threshold_selection_matches_paper_rule() {
        let counts: AccessCounts = [(1u64, 12u64), (2, 10), (3, 9), (4, 1)]
            .into_iter()
            .collect();
        assert_eq!(counts.keys_with_at_least(10), vec![1, 2]);
        assert_eq!(counts.keys_with_at_least(1).len(), 4);
        assert!(counts.keys_with_at_least(13).is_empty());
    }

    #[test]
    fn top_n_orders_by_count_then_key() {
        let counts: AccessCounts = [(5u64, 3u64), (1, 7), (9, 3), (2, 7)].into_iter().collect();
        assert_eq!(counts.top_n(3), vec![(1, 7), (2, 7), (5, 3)]);
        assert_eq!(counts.top_n(0), vec![]);
        assert_eq!(counts.top_n(10).len(), 4);
    }

    #[test]
    fn from_iterator_merges_duplicate_keys() {
        let counts: AccessCounts = [(1u64, 2u64), (1, 3)].into_iter().collect();
        assert_eq!(counts.get(1), 5);
        assert_eq!(counts.len(), 1);
        assert!(!counts.is_empty());
    }

    #[test]
    fn empty_log_finishes_empty() {
        let dir = temp_dir("empty");
        let log = AccessLog::create(&dir, 3).unwrap();
        let counts = log.finish().unwrap();
        assert!(counts.is_empty());
        assert_eq!(counts.total_accesses(), 0);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn drop_removes_partition_files() {
        let dir = temp_dir("drop");
        {
            let mut log = AccessLog::create(&dir, 3).unwrap();
            log.record(1);
            log.compact().unwrap();
            assert!(partition_path(&dir, 0).exists());
        }
        for i in 0..3 {
            assert!(!partition_path(&dir, i).exists(), "partition {i} remains");
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reduce_merges_runs() {
        let reduced = reduce(vec![(3, 1), (1, 1), (3, 2), (1, 1), (2, 1)]);
        assert_eq!(reduced, vec![(1, 2), (2, 1), (3, 3)]);
        assert_eq!(reduce(vec![]), vec![]);
    }

    #[test]
    fn spill_counter_matches_oracle_with_tiny_budget() {
        let dir = temp_dir("spill-oracle");
        let mut spill = SpillCounter::create(&dir, 16, 4).unwrap();
        let mut oracle = InMemoryCounter::new();
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..20_000 {
            let key = rng.random_range(0..3_000u64);
            spill.record(key);
            oracle.record(key);
        }
        assert!(spill.spills() > 0, "tiny budget must force drains");
        assert_eq!(
            spill.finish().unwrap(),
            oracle.finish().unwrap(),
            "spill totals diverge from in-memory"
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn finish_selection_identical_across_all_backends() {
        let dir = temp_dir("select");
        let mut rng = SmallRng::seed_from_u64(3);
        let keys: Vec<u64> = (0..30_000).map(|_| rng.random_range(0..2_000)).collect();
        for threshold in [1u64, 5, 10, 50] {
            let mut mem = InMemoryCounter::new();
            let mut log = AccessLog::create(dir.join("log"), 8).unwrap();
            let mut spill = SpillCounter::create(dir.join("spill"), 64, 8).unwrap();
            for &k in &keys {
                mem.record(k);
                log.record(k);
                spill.record(k);
            }
            let expect = mem.finish_selection(threshold).unwrap();
            assert!(expect.windows(2).all(|w| w[0] < w[1]), "sorted ascending");
            assert_eq!(
                log.finish_selection(threshold).unwrap(),
                expect,
                "log backend, threshold {threshold}"
            );
            assert_eq!(
                spill.finish_selection(threshold).unwrap(),
                expect,
                "spill backend, threshold {threshold}"
            );
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn epoch_counter_dispatches_per_config() {
        let dir = temp_dir("epoch");
        let configs = [
            CountingConfig::InMemory,
            CountingConfig::spill(&dir).with_budget(4),
        ];
        let mut selections = Vec::new();
        for config in &configs {
            let mut counter = config.counter().unwrap();
            for k in [1u64, 2, 1, 3, 1, 2, 9, 9, 9, 9] {
                counter.record(k);
            }
            selections.push(counter.finish_selection(2).unwrap());
        }
        assert_eq!(selections[0], vec![1, 2, 9]);
        assert_eq!(selections[0], selections[1]);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn spill_counter_cleans_its_directory() {
        let root = temp_dir("spill-clean");
        let mut counter = SpillCounter::create(&root, 2, 3).unwrap();
        for k in 0..100u64 {
            counter.record(k);
        }
        counter.finish().unwrap();
        let leftover = fs::read_dir(&root).map(|d| d.count()).unwrap_or(0);
        assert_eq!(leftover, 0, "epoch subdirectory must be removed");
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn zero_budget_is_rejected() {
        assert!(SpillCounter::create(temp_dir("zb"), 0, 4).is_err());
    }

    #[test]
    fn record_count_aggregates_like_repeated_records() {
        let dir = temp_dir("rc");
        let mut log = AccessLog::create(&dir, 2).unwrap();
        log.record_count(5, 7);
        log.record_access(5);
        assert_eq!(log.logged(), 8);
        let counts = log.finish().unwrap();
        assert_eq!(counts.get(5), 8);
        fs::remove_dir_all(&dir).ok();
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn spill_selection_equals_oracle_under_random_streams(
            keys in proptest::collection::vec(0u64..300, 0..2000),
            budget in 1usize..64,
            threshold in 1u64..6,
        ) {
            let dir = temp_dir(&format!("prop-spill{budget}-{threshold}-{}", keys.len()));
            let mut spill = SpillCounter::create(&dir, budget, 4).unwrap();
            let mut oracle = InMemoryCounter::new();
            for &k in &keys {
                spill.record(k);
                oracle.record(k);
            }
            prop_assert_eq!(
                spill.finish_selection(threshold).unwrap(),
                oracle.finish_selection(threshold).unwrap()
            );
            fs::remove_dir_all(&dir).ok();
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn external_equals_oracle_under_random_streams(
            keys in proptest::collection::vec(0u64..200, 0..2000),
            partitions in 1usize..9,
            compact_every in 1usize..500,
        ) {
            let dir = temp_dir(&format!("prop{partitions}-{compact_every}-{}", keys.len()));
            let mut log = AccessLog::create(&dir, partitions).unwrap();
            let mut oracle = InMemoryCounter::new();
            for (i, &k) in keys.iter().enumerate() {
                log.record(k);
                oracle.record(k);
                if (i + 1) % compact_every == 0 {
                    log.compact().unwrap();
                }
            }
            let external = log.finish().unwrap();
            prop_assert_eq!(external, oracle.finish().unwrap());
            fs::remove_dir_all(&dir).ok();
        }
    }
}
