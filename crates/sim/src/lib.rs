//! Trace-driven simulation of SieveStore configurations.
//!
//! This crate reproduces the paper's evaluation methodology (§4):
//! multi-block requests expand into 512-byte block accesses, every policy
//! of Table 3 runs over the same trace, allocation-writes are charged at
//! request-completion time, and per-minute SSD load feeds the drive-IOPS
//! occupancy model.
//!
//! * [`simulate`] / [`simulate_many`] — the engine ([`SimConfig`]);
//! * [`oracle`] — clairvoyant per-day top-fraction pre-passes;
//! * [`per_server`] — the §5.3 ensemble-vs-per-server comparison;
//! * [`sweep`](crate::sweep::sweep) — parallel sensitivity sweeps.
//!
//! # Examples
//!
//! ```
//! use sievestore::PolicySpec;
//! use sievestore_sim::{simulate, SimConfig};
//! use sievestore_trace::{EnsembleConfig, SyntheticTrace};
//!
//! # fn main() -> Result<(), sievestore_types::SieveError> {
//! let trace = SyntheticTrace::new(EnsembleConfig::tiny(1))?;
//! let cfg = SimConfig::paper_16gb(trace.config().scale.denominator())
//!     .with_capacity_blocks(4096);
//! let aod = simulate(&trace, PolicySpec::Aod, &cfg)?;
//! println!("AOD captured {:.1}% of accesses", 100.0 * aod.total().captured_fraction());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod belady;
pub mod engine;
pub mod metrics;
pub mod oracle;
pub mod per_server;
pub mod replay;
pub mod snapshot;
pub mod sweep;

pub use belady::{belady_counterexample, belady_min, belady_selective, pinned_set, OfflineResult};
pub use engine::{simulate, simulate_many, simulate_server, simulate_with_snapshots, SimConfig};
pub use metrics::{DayMetrics, SimResult};
pub use oracle::{day_counts, ideal_top_selections, server_day_counts, DayCounts};
pub use per_server::{
    drive_cost_comparison, ensemble_ideal_capture, per_server_ideal_capture, simulate_per_server,
    CaptureSeries,
};
#[doc(hidden)]
pub use replay::simulate_sharded_with_stall;
pub use replay::{simulate_server_sharded, simulate_sharded, ReplayMode, ReplayStats};
pub use sievestore::EvictionPolicy;
pub use sievestore_trace::{ScenarioConfig, ScenarioStage};
pub use snapshot::{DaySnapshot, SnapshotLog, SNAPSHOT_SCHEMA};
pub use sweep::{threshold_sweep, window_sweep, SweepPoint};
