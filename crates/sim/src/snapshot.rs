//! Deterministic day-boundary snapshot export (JSONL).
//!
//! The paper's evaluation is built on per-day counts — allocation-writes,
//! hit rates, batch installs — so the natural export cadence is the day
//! boundary: after each simulated day, one [`DaySnapshot`] records that
//! day's [`DayMetrics`] plus the running cumulative totals, and a
//! [`SnapshotLog`] serializes the whole run as JSON Lines.
//!
//! # Determinism contract
//!
//! Snapshot lines contain **only** integers derived from `DayMetrics`
//! (plus the policy name), in a fixed key order. `DayMetrics` merging is
//! commutative and associative, and the sharded replay engine produces
//! identical per-day counters for discrete policies at any shard count —
//! so a `SnapshotLog` is **byte-identical** whether it was emitted online
//! by the sequential engine or derived from a sharded run's merged
//! result, at any shard count. (Wall-clock diagnostics such as channel
//! wait or barrier latency live in the separate
//! [`sievestore_types::obs`] registry precisely because they are *not*
//! deterministic and must never leak into these lines.)
//!
//! # Examples
//!
//! ```
//! use sievestore_sim::{DayMetrics, SnapshotLog};
//!
//! let mut log = SnapshotLog::new("AOD".into(), 4096);
//! log.push_day(DayMetrics {
//!     read_hits: 3,
//!     ..DayMetrics::default()
//! });
//! let jsonl = log.to_jsonl();
//! assert_eq!(jsonl.lines().count(), 2); // header + one day
//! assert!(jsonl.contains("\"read_hits\":3"));
//! ```

use std::sync::Arc;

use crate::metrics::{DayMetrics, SimResult};

/// Schema tag on every snapshot-log header line.
pub const SNAPSHOT_SCHEMA: &str = "sievestore-day-snapshot/v1";

/// Escapes the two JSON-significant characters that can appear in a
/// policy name; everything the workspace generates is plain ASCII.
fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// One day's counters plus the cumulative totals through that day.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DaySnapshot {
    /// Calendar day index (0-based).
    pub day: u32,
    /// This day's counters.
    pub metrics: DayMetrics,
    /// Cumulative counters through this day (inclusive).
    pub cumulative: DayMetrics,
}

impl DaySnapshot {
    /// One deterministic JSON line: integers only, fixed key order.
    pub fn to_json_line(&self) -> String {
        let d = &self.metrics;
        let c = &self.cumulative;
        format!(
            "{{\"day\":{},\
             \"read_hits\":{},\"write_hits\":{},\
             \"read_misses\":{},\"write_misses\":{},\
             \"allocation_writes\":{},\"batch_allocations\":{},\
             \"cum_read_hits\":{},\"cum_write_hits\":{},\
             \"cum_read_misses\":{},\"cum_write_misses\":{},\
             \"cum_allocation_writes\":{},\"cum_batch_allocations\":{}}}",
            self.day,
            d.read_hits,
            d.write_hits,
            d.read_misses,
            d.write_misses,
            d.allocation_writes,
            d.batch_allocations,
            c.read_hits,
            c.write_hits,
            c.read_misses,
            c.write_misses,
            c.allocation_writes,
            c.batch_allocations,
        )
    }
}

/// A run's day-boundary snapshots: one header line plus one
/// [`DaySnapshot`] line per simulated day.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotLog {
    /// Policy report name.
    pub policy: Arc<str>,
    /// Cache capacity in 512-B frames.
    pub capacity_blocks: usize,
    /// Per-day snapshots in day order.
    pub days: Vec<DaySnapshot>,
}

impl SnapshotLog {
    /// An empty log for a run of `policy` at `capacity_blocks`.
    pub fn new(policy: Arc<str>, capacity_blocks: usize) -> Self {
        SnapshotLog {
            policy,
            capacity_blocks,
            days: Vec::new(),
        }
    }

    /// Appends the next day's metrics (days must arrive in order; the
    /// cumulative totals are maintained here).
    pub fn push_day(&mut self, metrics: DayMetrics) {
        let mut cumulative = self.days.last().map(|s| s.cumulative).unwrap_or_default();
        cumulative.merge(&metrics);
        let day = self.days.len() as u32;
        self.days.push(DaySnapshot {
            day,
            metrics,
            cumulative,
        });
    }

    /// Derives the full log from a finished result. For discrete policies
    /// this produces bytes identical to online emission at any shard
    /// count (see the module docs for the contract).
    pub fn from_result(result: &SimResult) -> Self {
        let mut log = SnapshotLog::new(result.policy.clone(), result.capacity_blocks);
        for metrics in &result.days {
            log.push_day(*metrics);
        }
        log
    }

    /// The header line carrying run identity.
    pub fn header_line(&self) -> String {
        format!(
            "{{\"schema\":\"{SNAPSHOT_SCHEMA}\",\"policy\":\"{}\",\
             \"capacity_blocks\":{},\"days\":{}}}",
            escape(&self.policy),
            self.capacity_blocks,
            self.days.len(),
        )
    }

    /// The whole log as JSON Lines (header first, trailing newline).
    pub fn to_jsonl(&self) -> String {
        let mut out = self.header_line();
        out.push('\n');
        for day in &self.days {
            out.push_str(&day.to_json_line());
            out.push('\n');
        }
        out
    }

    /// Writes [`Self::to_jsonl`] to `writer`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn write_to(&self, writer: &mut dyn std::io::Write) -> std::io::Result<()> {
        writer.write_all(self.to_jsonl().as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(rh: u64, aw: u64) -> DayMetrics {
        DayMetrics {
            read_hits: rh,
            allocation_writes: aw,
            ..DayMetrics::default()
        }
    }

    #[test]
    fn push_day_accumulates() {
        let mut log = SnapshotLog::new("X".into(), 10);
        log.push_day(metrics(1, 2));
        log.push_day(metrics(10, 20));
        assert_eq!(log.days[0].cumulative, metrics(1, 2));
        assert_eq!(log.days[1].day, 1);
        assert_eq!(log.days[1].cumulative, metrics(11, 22));
    }

    #[test]
    fn jsonl_is_deterministic_and_integer_only() {
        let mut log = SnapshotLog::new("SieveStore-D".into(), 4096);
        log.push_day(metrics(5, 0));
        let text = log.to_jsonl();
        assert!(text.starts_with(
            "{\"schema\":\"sievestore-day-snapshot/v1\",\"policy\":\"SieveStore-D\",\
             \"capacity_blocks\":4096,\"days\":1}\n"
        ));
        assert!(text.ends_with("\"cum_allocation_writes\":0,\"cum_batch_allocations\":0}\n"));
        // Re-serialization is byte-stable.
        assert_eq!(text, log.clone().to_jsonl());
    }

    #[test]
    fn from_result_matches_incremental_push() {
        use sievestore_ssd::{OccupancyTracker, SsdSpec};
        let days = vec![metrics(1, 1), metrics(2, 2), metrics(3, 3)];
        let result = SimResult {
            policy: "AOD".into(),
            capacity_blocks: 7,
            days: days.clone(),
            occupancy: OccupancyTracker::new(SsdSpec::x25e(), 1),
        };
        let derived = SnapshotLog::from_result(&result);
        let mut online = SnapshotLog::new("AOD".into(), 7);
        for d in days {
            online.push_day(d);
        }
        assert_eq!(derived.to_jsonl(), online.to_jsonl());
    }

    #[test]
    fn header_escapes_policy_name() {
        let log = SnapshotLog::new("we\"ird".into(), 1);
        assert!(log.header_line().contains("we\\\"ird"));
    }
}
