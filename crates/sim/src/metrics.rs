//! Per-day simulation metrics and result containers.

use std::sync::Arc;

use sievestore_ssd::OccupancyTracker;
use sievestore_types::{Day, RequestKind};

/// Block-level (512 B) counts for one calendar day of simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DayMetrics {
    /// Read hits (blocks).
    pub read_hits: u64,
    /// Write hits (blocks).
    pub write_hits: u64,
    /// Read misses (blocks).
    pub read_misses: u64,
    /// Write misses (blocks).
    pub write_misses: u64,
    /// Allocation-writes (blocks) — continuous policies.
    pub allocation_writes: u64,
    /// Blocks batch-installed at this day's boundary — discrete policies.
    pub batch_allocations: u64,
}

impl DayMetrics {
    /// Total block accesses this day.
    pub fn accesses(&self) -> u64 {
        self.read_hits + self.write_hits + self.read_misses + self.write_misses
    }

    /// Total hits this day.
    pub fn hits(&self) -> u64 {
        self.read_hits + self.write_hits
    }

    /// Fraction of this day's accesses captured by the cache.
    pub fn captured_fraction(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.hits() as f64 / total as f64
        }
    }

    /// All allocation-writes attributable to this day (continuous ones
    /// plus batch moves performed at the boundary).
    pub fn total_allocation_writes(&self) -> u64 {
        self.allocation_writes + self.batch_allocations
    }

    /// Total SSD block operations this day: hits plus allocation-writes
    /// (the composition of Figure 7's bars).
    pub fn ssd_block_ops(&self) -> u64 {
        self.hits() + self.total_allocation_writes()
    }

    /// SSD write block operations (write hits + allocation-writes).
    pub fn ssd_write_blocks(&self) -> u64 {
        self.write_hits + self.total_allocation_writes()
    }

    /// Folds another day's counters into this one. All fields are integer
    /// sums, so merging is commutative and associative — per-shard metrics
    /// from the parallel replay engine combine into the same totals in any
    /// order, and ratios ([`Self::captured_fraction`]) are only derived at
    /// report time from the merged integers.
    pub fn merge(&mut self, other: &DayMetrics) {
        self.read_hits += other.read_hits;
        self.write_hits += other.write_hits;
        self.read_misses += other.read_misses;
        self.write_misses += other.write_misses;
        self.allocation_writes += other.allocation_writes;
        self.batch_allocations += other.batch_allocations;
    }

    /// Folds one block access outcome in.
    pub fn record_access(&mut self, kind: RequestKind, hit: bool, allocated: bool) {
        match (kind, hit) {
            (RequestKind::Read, true) => self.read_hits += 1,
            (RequestKind::Write, true) => self.write_hits += 1,
            (RequestKind::Read, false) => self.read_misses += 1,
            (RequestKind::Write, false) => self.write_misses += 1,
        }
        if allocated {
            self.allocation_writes += 1;
        }
    }
}

/// The full outcome of simulating one policy over one trace.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Policy report name. `Arc<str>` rather than `String`: names start
    /// as `&'static str` from [`PolicySpec::name`]-style sources and get
    /// copied into every result, sweep point and report row — sharing one
    /// allocation keeps that plumbing clone-free.
    ///
    /// [`PolicySpec::name`]: https://docs.rs/sievestore
    pub policy: Arc<str>,
    /// Cache capacity in 512-B frames.
    pub capacity_blocks: usize,
    /// Per-day metrics, indexed by calendar day.
    pub days: Vec<DayMetrics>,
    /// Per-minute SSD load (occupancy, drives needed, endurance).
    pub occupancy: OccupancyTracker,
}

impl SimResult {
    /// Metrics for one day (zeroes for days beyond the trace).
    pub fn day(&self, day: Day) -> DayMetrics {
        self.days.get(day.as_usize()).copied().unwrap_or_default()
    }

    /// Whole-trace totals.
    pub fn total(&self) -> DayMetrics {
        let mut t = DayMetrics::default();
        for d in &self.days {
            t.merge(d);
        }
        t
    }

    /// Mean per-day captured fraction over `days`, skipping day indices in
    /// `exclude` (the paper excludes day 1 when averaging SieveStore-D,
    /// which bootstraps with an empty cache).
    pub fn mean_captured_fraction(&self, exclude: &[usize]) -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for (i, d) in self.days.iter().enumerate() {
            if exclude.contains(&i) || d.accesses() == 0 {
                continue;
            }
            sum += d.captured_fraction();
            n += 1;
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    /// Mean bytes written to the SSD per day (512 B blocks; full-scale if
    /// the occupancy tracker carries a load multiplier — this figure uses
    /// raw simulated counts).
    pub fn ssd_write_blocks_per_day(&self) -> f64 {
        if self.days.is_empty() {
            return 0.0;
        }
        let total: u64 = self.days.iter().map(|d| d.ssd_write_blocks()).sum();
        total as f64 / self.days.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sievestore_ssd::SsdSpec;

    fn metrics(rh: u64, wh: u64, rm: u64, wm: u64, aw: u64, ba: u64) -> DayMetrics {
        DayMetrics {
            read_hits: rh,
            write_hits: wh,
            read_misses: rm,
            write_misses: wm,
            allocation_writes: aw,
            batch_allocations: ba,
        }
    }

    #[test]
    fn day_metrics_arithmetic() {
        let d = metrics(30, 10, 45, 15, 45, 5);
        assert_eq!(d.accesses(), 100);
        assert_eq!(d.hits(), 40);
        assert!((d.captured_fraction() - 0.4).abs() < 1e-12);
        assert_eq!(d.total_allocation_writes(), 50);
        assert_eq!(d.ssd_block_ops(), 90);
        assert_eq!(d.ssd_write_blocks(), 60);
    }

    #[test]
    fn record_access_routes_counts() {
        let mut d = DayMetrics::default();
        d.record_access(RequestKind::Read, true, false);
        d.record_access(RequestKind::Write, true, false);
        d.record_access(RequestKind::Read, false, true);
        d.record_access(RequestKind::Write, false, false);
        assert_eq!(d, metrics(1, 1, 1, 1, 1, 0));
    }

    #[test]
    fn merge_is_order_independent() {
        let days = [
            metrics(1, 2, 3, 4, 5, 6),
            metrics(7, 0, 1, 0, 9, 0),
            metrics(0, 0, 100, 0, 0, 3),
        ];
        let mut fwd = DayMetrics::default();
        for d in &days {
            fwd.merge(d);
        }
        let mut rev = DayMetrics::default();
        for d in days.iter().rev() {
            rev.merge(d);
        }
        assert_eq!(fwd, rev);
        assert_eq!(fwd, metrics(8, 2, 104, 4, 14, 9));
    }

    #[test]
    fn empty_day_has_zero_fraction() {
        assert_eq!(DayMetrics::default().captured_fraction(), 0.0);
    }

    fn result_with_days(days: Vec<DayMetrics>) -> SimResult {
        SimResult {
            policy: "test".into(),
            capacity_blocks: 100,
            days,
            occupancy: OccupancyTracker::new(SsdSpec::x25e(), 1),
        }
    }

    #[test]
    fn totals_sum_days() {
        let r = result_with_days(vec![
            metrics(1, 2, 3, 4, 5, 6),
            metrics(10, 20, 30, 40, 50, 60),
        ]);
        let t = r.total();
        assert_eq!(t.read_hits, 11);
        assert_eq!(t.batch_allocations, 66);
        assert_eq!(r.day(Day::new(0)).read_hits, 1);
        assert_eq!(r.day(Day::new(9)), DayMetrics::default());
    }

    #[test]
    fn mean_capture_skips_excluded_and_empty_days() {
        let r = result_with_days(vec![
            metrics(0, 0, 0, 0, 0, 0),   // empty: skipped automatically
            metrics(50, 0, 50, 0, 0, 0), // 0.5
            metrics(25, 0, 75, 0, 0, 0), // 0.25
        ]);
        assert!((r.mean_captured_fraction(&[]) - 0.375).abs() < 1e-12);
        assert!((r.mean_captured_fraction(&[1]) - 0.25).abs() < 1e-12);
        assert_eq!(result_with_days(vec![]).mean_captured_fraction(&[]), 0.0);
    }

    #[test]
    fn write_blocks_per_day_averages() {
        let r = result_with_days(vec![
            metrics(0, 10, 0, 0, 20, 0),
            metrics(0, 30, 0, 0, 0, 0),
        ]);
        assert!((r.ssd_write_blocks_per_day() - 30.0).abs() < 1e-12);
    }
}
