//! Belady's MIN and selective-MIN caches (§3.1's thought experiment).
//!
//! The paper argues that *replacement* policy alone — even a clairvoyant
//! one — cannot fix the allocation-write problem:
//!
//! 1. **MIN with allocate-on-demand**: Belady's algorithm evicts the block
//!    whose next use is farthest in the future. Every miss still
//!    allocates, so the ~97 % of blocks with ≤4 accesses force at least
//!    `50% + 47%/4 ≈ 61.75 %` compulsory allocation-writes per unique
//!    block.
//! 2. **Selective MIN**: extending MIN to allocate only when the missing
//!    block's next use precedes some cached block's next use *maximizes
//!    hits* but does **not** minimize allocation-writes. The paper's
//!    counterexample is the stream `a,a,b,b,a,a,c,c,a,a,d,d,...` on a
//!    1-entry cache: selective MIN converges to a 50 % hit ratio with an
//!    allocation on every other miss pair, while simply pinning `a`
//!    achieves (asymptotically) the same hits with exactly one
//!    allocation.
//!
//! Both algorithms here are offline: they take the whole access stream.

use std::collections::{BTreeSet, HashMap};

/// Outcome counts of an offline cache simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OfflineResult {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Misses that allocated a frame (allocation-writes).
    pub allocation_writes: u64,
}

impl OfflineResult {
    /// Hit ratio over all accesses.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Fraction of accesses that caused allocation-writes.
    pub fn allocation_fraction(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.allocation_writes as f64 / total as f64
        }
    }
}

/// Position used for "never accessed again".
const NEVER: u64 = u64::MAX;

/// Precomputes, for each access, the stream position of the *next* access
/// to the same key (`NEVER` if none).
fn next_use_positions(accesses: &[u64]) -> Vec<u64> {
    let mut next = vec![NEVER; accesses.len()];
    let mut last_seen: HashMap<u64, usize> = HashMap::new();
    for (i, &key) in accesses.iter().enumerate().rev() {
        if let Some(&later) = last_seen.get(&key) {
            next[i] = later as u64;
        }
        last_seen.insert(key, i);
    }
    next
}

/// Belady's MIN with allocate-on-demand: every miss allocates; the victim
/// is the cached block with the farthest next use.
///
/// # Panics
///
/// Panics if `capacity == 0`.
///
/// # Examples
///
/// ```
/// use sievestore_sim::belady_min;
///
/// // Two blocks alternating in a 1-entry cache: every access misses.
/// let r = belady_min(&[1, 2, 1, 2], 1);
/// assert_eq!(r.hits, 0);
/// assert_eq!(r.allocation_writes, 4);
/// ```
pub fn belady_min(accesses: &[u64], capacity: usize) -> OfflineResult {
    assert!(capacity > 0, "cache capacity must be nonzero");
    let next = next_use_positions(accesses);
    let mut result = OfflineResult::default();
    // Resident set keyed both ways: key -> next use, and an ordered set of
    // (next_use, key) for O(log n) farthest-victim lookup.
    let mut resident: HashMap<u64, u64> = HashMap::new();
    let mut by_next: BTreeSet<(u64, u64)> = BTreeSet::new();

    for (i, &key) in accesses.iter().enumerate() {
        let this_next = next[i];
        if let Some(&old_next) = resident.get(&key) {
            result.hits += 1;
            by_next.remove(&(old_next, key));
            by_next.insert((this_next, key));
            resident.insert(key, this_next);
            continue;
        }
        result.misses += 1;
        result.allocation_writes += 1;
        if resident.len() >= capacity {
            let &(victim_next, victim) = by_next.iter().next_back().expect("cache nonempty");
            // MIN never helps by evicting a sooner-used block than the
            // incoming one, but AOD allocates regardless; the standard
            // formulation evicts the farthest-next-use block.
            by_next.remove(&(victim_next, victim));
            resident.remove(&victim);
        }
        resident.insert(key, this_next);
        by_next.insert((this_next, key));
    }
    result
}

/// Selective Belady: allocate a missing block only if its next use comes
/// *before* the latest next use among cached blocks (otherwise bypass).
/// This maximizes hits among allocation-selective policies but — the
/// paper's point — does not minimize allocation-writes.
///
/// # Panics
///
/// Panics if `capacity == 0`.
pub fn belady_selective(accesses: &[u64], capacity: usize) -> OfflineResult {
    assert!(capacity > 0, "cache capacity must be nonzero");
    let next = next_use_positions(accesses);
    let mut result = OfflineResult::default();
    let mut resident: HashMap<u64, u64> = HashMap::new();
    let mut by_next: BTreeSet<(u64, u64)> = BTreeSet::new();

    for (i, &key) in accesses.iter().enumerate() {
        let this_next = next[i];
        if let Some(&old_next) = resident.get(&key) {
            result.hits += 1;
            by_next.remove(&(old_next, key));
            by_next.insert((this_next, key));
            resident.insert(key, this_next);
            continue;
        }
        result.misses += 1;
        if resident.len() < capacity {
            if this_next != NEVER {
                result.allocation_writes += 1;
                resident.insert(key, this_next);
                by_next.insert((this_next, key));
            }
            continue;
        }
        let &(victim_next, victim) = by_next.iter().next_back().expect("cache nonempty");
        // Allocate only if the incoming block is used again sooner than
        // the farthest-out cached block.
        if this_next < victim_next {
            result.allocation_writes += 1;
            by_next.remove(&(victim_next, victim));
            resident.remove(&victim);
            resident.insert(key, this_next);
            by_next.insert((this_next, key));
        }
    }
    result
}

/// A fixed pinned set: blocks in `pinned` always hit after their first
/// (allocating) access; everything else always bypasses. The paper's
/// "fixed allocation for address a" comparison point.
pub fn pinned_set(accesses: &[u64], pinned: &[u64]) -> OfflineResult {
    let mut result = OfflineResult::default();
    let mut resident: HashMap<u64, bool> = pinned.iter().map(|&k| (k, false)).collect();
    for &key in accesses {
        match resident.get_mut(&key) {
            Some(loaded @ false) => {
                *loaded = true;
                result.misses += 1;
                result.allocation_writes += 1;
            }
            Some(true) => result.hits += 1,
            None => result.misses += 1,
        }
    }
    result
}

/// The paper's §3.1 counterexample stream on a 1-entry cache:
/// `a,a,b,b,a,a,c,c,a,a,d,d,...` for `pairs` repetitions. Returns
/// (selective-MIN result, pinned-`a` result).
///
/// # Examples
///
/// ```
/// use sievestore_sim::belady_counterexample;
///
/// let (selective, pinned) = belady_counterexample(100);
/// // Both converge to ~50% hits...
/// assert!((selective.hit_ratio() - 0.5).abs() < 0.02);
/// assert!((pinned.hit_ratio() - 0.5).abs() < 0.02);
/// // ...but selective MIN allocates on ~half the accesses, pinning once.
/// assert!(selective.allocation_writes > 50);
/// assert_eq!(pinned.allocation_writes, 1);
/// ```
pub fn belady_counterexample(pairs: u64) -> (OfflineResult, OfflineResult) {
    let a = 0u64;
    let mut stream = Vec::with_capacity(pairs as usize * 4);
    for i in 0..pairs {
        stream.extend_from_slice(&[a, a]);
        let fresh = i + 1; // b, c, d, ... never repeats beyond its pair
        stream.extend_from_slice(&[fresh, fresh]);
    }
    (belady_selective(&stream, 1), pinned_set(&stream, &[a]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use sievestore_cache::LruCache;

    #[test]
    fn next_use_positions_are_correct() {
        let next = next_use_positions(&[1, 2, 1, 1, 3]);
        assert_eq!(next, vec![2, NEVER, 3, NEVER, NEVER]);
        assert!(next_use_positions(&[]).is_empty());
    }

    #[test]
    fn min_classic_example() {
        // The canonical MIN behaviour: with capacity 2 and stream
        // 1,2,3,1,2 MIN keeps 1 and 2 when 3 arrives (3 never recurs...
        // actually MIN evicts the farthest: at access 3, next(1)=3,
        // next(2)=4, next(3)=never, so 3 evicts nothing useful — AOD
        // still brings 3 in, evicting 2 (farthest). Hits: final 1.
        let r = belady_min(&[1, 2, 3, 1, 2], 2);
        assert_eq!(r.hits + r.misses, 5);
        assert_eq!(r.allocation_writes, r.misses);
        // MIN is at least as good as LRU on any stream (checked in the
        // property test below); here LRU also gets 1 hit.
        assert_eq!(r.hits, 1);
    }

    #[test]
    fn min_with_ample_capacity_only_takes_compulsory_misses() {
        let stream = [5u64, 6, 5, 7, 6, 5];
        let r = belady_min(&stream, 10);
        assert_eq!(r.misses, 3); // first touches of 5, 6, 7
        assert_eq!(r.hits, 3);
        assert_eq!(r.allocation_writes, 3);
    }

    #[test]
    fn selective_skips_never_reused_blocks() {
        // A stream of unique blocks: selective MIN allocates nothing.
        let stream: Vec<u64> = (0..100).collect();
        let r = belady_selective(&stream, 4);
        assert_eq!(r.hits, 0);
        assert_eq!(r.allocation_writes, 0);
        // AOD-MIN allocates every time.
        let r = belady_min(&stream, 4);
        assert_eq!(r.allocation_writes, 100);
    }

    #[test]
    fn paper_counterexample_matches_the_papers_numbers() {
        let (selective, pinned) = belady_counterexample(1000);
        // Selective MIN: hit ratio converges to 50%...
        assert!((selective.hit_ratio() - 0.5).abs() < 0.01, "{selective:?}");
        // ...with ~50% of accesses causing allocations ("each miss causes
        // an allocation because the block has an immediate use").
        assert!(
            (selective.allocation_fraction() - 0.5).abs() < 0.01,
            "{selective:?}"
        );
        // Pinning `a`: nearly the same hits, exactly one allocation.
        assert!((pinned.hit_ratio() - 0.5).abs() < 0.01, "{pinned:?}");
        assert_eq!(pinned.allocation_writes, 1);
    }

    #[test]
    fn pinned_set_counts() {
        let r = pinned_set(&[1, 2, 1, 2, 3], &[1]);
        assert_eq!(r.hits, 1); // second access to 1
        assert_eq!(r.misses, 4);
        assert_eq!(r.allocation_writes, 1);
        let r = pinned_set(&[7, 7, 7], &[]);
        assert_eq!(r.hits, 0);
        assert_eq!(r.allocation_writes, 0);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_capacity_panics() {
        let _ = belady_min(&[1], 0);
    }

    fn lru_hits(accesses: &[u64], capacity: usize) -> u64 {
        let mut cache = LruCache::new(capacity);
        let mut hits = 0;
        for &k in accesses {
            if cache.touch(k) {
                hits += 1;
            } else {
                cache.insert(k);
            }
        }
        hits
    }

    proptest! {
        /// MIN's optimality: it never gets fewer hits than LRU.
        #[test]
        fn min_dominates_lru(
            accesses in proptest::collection::vec(0u64..20, 1..300),
            capacity in 1usize..8,
        ) {
            let min = belady_min(&accesses, capacity);
            prop_assert!(min.hits >= lru_hits(&accesses, capacity));
            prop_assert_eq!(min.hits + min.misses, accesses.len() as u64);
            prop_assert_eq!(min.allocation_writes, min.misses);
        }

        /// Selective MIN's claim: at least as many hits as AOD-MIN minus
        /// the bypassed never-reused blocks can't be checked directly, but
        /// two invariants can: it never allocates more than it misses, and
        /// it never allocates a never-reused block.
        #[test]
        fn selective_invariants(
            accesses in proptest::collection::vec(0u64..20, 1..300),
            capacity in 1usize..8,
        ) {
            let sel = belady_selective(&accesses, capacity);
            prop_assert!(sel.allocation_writes <= sel.misses);
            prop_assert_eq!(sel.hits + sel.misses, accesses.len() as u64);
            // Selective MIN maximizes hits among allocation policies with
            // MIN replacement, so it must never trail plain MIN.
            let min = belady_min(&accesses, capacity);
            prop_assert!(sel.hits >= min.hits, "selective {} < min {}", sel.hits, min.hits);
        }
    }
}
