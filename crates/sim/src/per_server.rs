//! Ensemble-level vs per-server caching (§5.3).
//!
//! The paper compares SieveStore against two idealized per-server
//! configurations:
//!
//! 1. **Iso-capacity (elastic SSD)** — each server gets a private cache
//!    holding exactly the top 1 % of *its own* daily blocks, under the
//!    (generous) assumption that arbitrarily small SSDs can be bought at
//!    constant cost-per-byte. Total capacity then equals the ensemble
//!    cache's, so any capture deficit is purely from static partitioning.
//! 2. **Minimum-drive-size** — real SSDs have a minimum capacity, so a
//!    per-server deployment buys one drive *per server* (13 drives)
//!    regardless of how little of each is used.
//!
//! These helpers compute the per-day captured accesses for both
//! configurations from clairvoyant per-server oracles.

use sievestore_trace::SyntheticTrace;
use sievestore_types::Day;

use crate::oracle::{day_counts, server_day_counts};

/// Per-day capture of one caching configuration.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CaptureSeries {
    /// Accesses captured (hit) per day.
    pub captured: Vec<u64>,
    /// Total accesses per day.
    pub total: Vec<u64>,
    /// Blocks of cache capacity the configuration used per day.
    pub capacity_blocks: Vec<u64>,
}

impl CaptureSeries {
    /// Captured fraction for one day (0 if no accesses).
    pub fn fraction(&self, day: usize) -> f64 {
        match (self.captured.get(day), self.total.get(day)) {
            (Some(&c), Some(&t)) if t > 0 => c as f64 / t as f64,
            _ => 0.0,
        }
    }

    /// Mean captured fraction over days with traffic.
    pub fn mean_fraction(&self) -> f64 {
        let mut sum = 0.0;
        let mut n = 0;
        for d in 0..self.total.len() {
            if self.total[d] > 0 {
                sum += self.fraction(d);
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }
}

/// Ideal **ensemble-level** capture: each day, the top `fraction` of the
/// ensemble's distinct blocks (quadrant I/II with a clairvoyant sieve).
pub fn ensemble_ideal_capture(trace: &SyntheticTrace, fraction: f64) -> CaptureSeries {
    let mut series = CaptureSeries::default();
    for d in 0..trace.days() {
        let counts = day_counts(trace, Day::new(d));
        let (selection, covered) = counts.top_fraction(fraction);
        series.captured.push(covered);
        series.total.push(counts.total_accesses());
        series.capacity_blocks.push(selection.len() as u64);
    }
    series
}

/// Ideal **per-server** capture (iso-capacity, elastic drives): each day,
/// every server privately caches the top `fraction` of its own blocks.
pub fn per_server_ideal_capture(trace: &SyntheticTrace, fraction: f64) -> CaptureSeries {
    let servers = trace.config().servers.len();
    let mut series = CaptureSeries::default();
    for d in 0..trace.days() {
        let mut captured = 0;
        let mut total = 0;
        let mut capacity = 0;
        for s in 0..servers {
            let counts = server_day_counts(trace, s, Day::new(d));
            let (selection, covered) = counts.top_fraction(fraction);
            captured += covered;
            total += counts.total_accesses();
            capacity += selection.len() as u64;
        }
        series.captured.push(captured);
        series.total.push(total);
        series.capacity_blocks.push(capacity);
    }
    series
}

/// The §5.3 drive-cost comparison: per-server deployments need at least
/// one minimum-size drive per server; the ensemble cache needs
/// `ensemble_drives` (1–2 in the paper).
///
/// Returns `(per_server_drives, ensemble_drives)`.
pub fn drive_cost_comparison(servers: usize, ensemble_drives: u32) -> (u32, u32) {
    (servers as u32, ensemble_drives)
}

/// Simulates a *per-server* deployment of one policy (quadrants III/IV of
/// the paper's Figure 1): the total cache capacity is split evenly across
/// the servers, each server's requests run against its private cache, and
/// the per-day metrics and per-minute device loads are combined with the
/// commutative merges ([`crate::metrics::DayMetrics::merge`],
/// [`sievestore_ssd::OccupancyTracker::merge`]).
///
/// `spec_for` builds each server's policy (stateful policies must not be
/// shared across servers).
///
/// # Errors
///
/// Propagates policy-construction errors.
pub fn simulate_per_server(
    trace: &SyntheticTrace,
    mut spec_for: impl FnMut(usize) -> sievestore::PolicySpec,
    total_capacity_blocks: usize,
    cfg: &crate::engine::SimConfig,
) -> Result<crate::metrics::SimResult, sievestore_types::SieveError> {
    let servers = trace.config().servers.len();
    let per_server = (total_capacity_blocks / servers).max(1);
    let mut combined: Option<crate::metrics::SimResult> = None;
    for s in 0..servers {
        let sub_cfg = cfg.clone().with_capacity_blocks(per_server);
        let result = crate::engine::simulate_server(trace, s, spec_for(s), &sub_cfg)?;
        combined = Some(match combined {
            None => result,
            Some(mut acc) => {
                if result.days.len() > acc.days.len() {
                    acc.days
                        .resize(result.days.len(), crate::metrics::DayMetrics::default());
                }
                for (a, m) in acc.days.iter_mut().zip(&result.days) {
                    a.merge(m);
                }
                acc.occupancy.merge(&result.occupancy);
                acc
            }
        });
    }
    let mut result = combined.expect("ensemble has at least one server");
    result.policy = format!("per-server {}", result.policy).into();
    result.capacity_blocks = total_capacity_blocks;
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sievestore_trace::EnsembleConfig;

    fn trace() -> SyntheticTrace {
        SyntheticTrace::new(EnsembleConfig::tiny(19)).unwrap()
    }

    #[test]
    fn series_fractions() {
        let s = CaptureSeries {
            captured: vec![50, 0, 30],
            total: vec![100, 0, 60],
            capacity_blocks: vec![1, 0, 1],
        };
        assert!((s.fraction(0) - 0.5).abs() < 1e-12);
        assert_eq!(s.fraction(1), 0.0);
        assert!((s.mean_fraction() - 0.5).abs() < 1e-12);
        assert_eq!(s.fraction(9), 0.0);
        assert_eq!(CaptureSeries::default().mean_fraction(), 0.0);
    }

    #[test]
    fn totals_agree_between_views() {
        let t = trace();
        let ensemble = ensemble_ideal_capture(&t, 0.01);
        let per_server = per_server_ideal_capture(&t, 0.01);
        assert_eq!(ensemble.total, per_server.total);
        assert_eq!(ensemble.total.len(), t.days() as usize);
    }

    #[test]
    fn capacities_are_comparable_at_iso_fraction() {
        // The per-server selections partition the same block universe, so
        // the summed top-1% capacity is within rounding of the ensemble's.
        let t = trace();
        let ensemble = ensemble_ideal_capture(&t, 0.01);
        let per_server = per_server_ideal_capture(&t, 0.01);
        for d in 0..t.days() as usize {
            let e = ensemble.capacity_blocks[d] as f64;
            let p = per_server.capacity_blocks[d] as f64;
            assert!(
                (e - p).abs() <= 0.1 * e.max(p) + 2.0,
                "day {d}: ensemble {e} vs per-server {p}"
            );
        }
    }

    #[test]
    fn ensemble_never_captures_less_at_iso_capacity() {
        // The ensemble's top-k (over the union) dominates any equal-count
        // partitioned selection, modulo per-server rounding of the 1%.
        let t = trace();
        let ensemble = ensemble_ideal_capture(&t, 0.01);
        let per_server = per_server_ideal_capture(&t, 0.01);
        for d in 0..t.days() as usize {
            // Tolerate rounding: per-server may select a couple more
            // blocks than the ensemble did.
            let slack = (per_server.capacity_blocks[d] as i64 - ensemble.capacity_blocks[d] as i64)
                .max(0) as u64;
            assert!(
                ensemble.captured[d] + slack * 50 >= per_server.captured[d],
                "day {d}: ensemble {} vs per-server {}",
                ensemble.captured[d],
                per_server.captured[d]
            );
        }
    }

    #[test]
    fn per_server_simulation_sums_servers() {
        let t = trace();
        let cfg = crate::engine::SimConfig::paper_16gb(t.config().scale.denominator());
        let total_capacity = 8192;
        let per_server =
            simulate_per_server(&t, |_| sievestore::PolicySpec::Aod, total_capacity, &cfg).unwrap();
        assert!(per_server.policy.starts_with("per-server"));
        assert_eq!(per_server.capacity_blocks, total_capacity);
        // Accesses must equal the ensemble's.
        let ensemble = crate::engine::simulate(
            &t,
            sievestore::PolicySpec::Aod,
            &cfg.clone().with_capacity_blocks(total_capacity),
        )
        .unwrap();
        assert_eq!(per_server.total().accesses(), ensemble.total().accesses());
        // With statically partitioned capacity, the per-server deployment
        // cannot beat the shared cache by much; typically it trails.
        assert!(
            per_server.total().hits() <= ensemble.total().hits() * 11 / 10,
            "per-server {} vs ensemble {}",
            per_server.total().hits(),
            ensemble.total().hits()
        );
    }

    #[test]
    fn drive_costs() {
        assert_eq!(drive_cost_comparison(13, 1), (13, 1));
        assert_eq!(drive_cost_comparison(13, 2), (13, 2));
    }
}
