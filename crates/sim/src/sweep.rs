//! Parallel parameter sweeps (the §5.1 sensitivity study).
//!
//! A sweep runs one simulation per parameter point; points are independent
//! so they fan out across threads. (This is parallelism *across* points;
//! to parallelize *within* one simulation instead, set
//! [`crate::ReplayMode::Sharded`] on the [`SimConfig`] — sweeps honour the
//! configured replay mode per point, and sharded metrics merge to the
//! same report.) [`sweep`] is the generic harness;
//! [`threshold_sweep`] and [`window_sweep`] are the two studies the paper
//! summarizes: SieveStore-D is insensitive to thresholds in the 8–20
//! range (but degrades below ~8), and SieveStore-C degrades for windows
//! shorter than ~8 hours.

use crossbeam::thread;
use parking_lot::Mutex;
use sievestore::PolicySpec;
use sievestore_sieve::{TwoTierConfig, WindowConfig};
use sievestore_trace::SyntheticTrace;
use sievestore_types::{Micros, SieveError};

use crate::engine::{simulate, SimConfig};
use crate::metrics::SimResult;

/// Runs `f` over every point, in parallel, preserving input order.
///
/// # Errors
///
/// Returns the first error any point produced (by input order).
pub fn sweep<P, F>(points: Vec<P>, threads: usize, f: F) -> Result<Vec<SimResult>, SieveError>
where
    P: Send,
    F: Fn(P) -> Result<SimResult, SieveError> + Sync,
{
    let threads = threads.max(1);
    let n = points.len();
    let work: Mutex<Vec<(usize, P)>> = Mutex::new(points.into_iter().enumerate().rev().collect());
    let results: Mutex<Vec<Option<Result<SimResult, SieveError>>>> =
        Mutex::new((0..n).map(|_| None).collect());

    thread::scope(|scope| {
        for _ in 0..threads.min(n.max(1)) {
            scope.spawn(|_| loop {
                let item = work.lock().pop();
                match item {
                    Some((idx, point)) => {
                        let outcome = f(point);
                        results.lock()[idx] = Some(outcome);
                    }
                    None => break,
                }
            });
        }
    })
    .map_err(|_| SieveError::InvalidConfig("sweep worker panicked".into()))?;

    results
        .into_inner()
        .into_iter()
        .map(|slot| slot.expect("every point was processed"))
        .collect()
}

/// One point of a sensitivity sweep, with its label.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Human-readable parameter value ("t=10", "W=8h").
    pub label: String,
    /// The simulation outcome at this point.
    pub result: SimResult,
}

/// SieveStore-D threshold sensitivity: one simulation per threshold.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn threshold_sweep(
    trace: &SyntheticTrace,
    thresholds: &[u64],
    cfg: &SimConfig,
    threads: usize,
) -> Result<Vec<SweepPoint>, SieveError> {
    let results = sweep(thresholds.to_vec(), threads, |t| {
        simulate(trace, PolicySpec::SieveStoreD { threshold: t }, cfg)
    })?;
    Ok(thresholds
        .iter()
        .zip(results)
        .map(|(t, result)| SweepPoint {
            label: format!("t={t}"),
            result,
        })
        .collect())
}

/// SieveStore-C window-length sensitivity: one simulation per window (in
/// hours), keeping `k` = 4 subwindows and the paper thresholds.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn window_sweep(
    trace: &SyntheticTrace,
    window_hours: &[u64],
    imct_entries: usize,
    cfg: &SimConfig,
    threads: usize,
) -> Result<Vec<SweepPoint>, SieveError> {
    let results = sweep(window_hours.to_vec(), threads, |hours| {
        let two_tier = TwoTierConfig::paper_default()
            .with_imct_entries(imct_entries)
            .with_window(WindowConfig::new(Micros::from_hours(hours), 4));
        simulate(trace, PolicySpec::SieveStoreC(two_tier), cfg)
    })?;
    Ok(window_hours
        .iter()
        .zip(results)
        .map(|(h, result)| SweepPoint {
            label: format!("W={h}h"),
            result,
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sievestore_trace::EnsembleConfig;

    fn trace() -> SyntheticTrace {
        SyntheticTrace::new(EnsembleConfig::tiny(23)).unwrap()
    }

    fn cfg(trace: &SyntheticTrace) -> SimConfig {
        SimConfig::paper_16gb(trace.config().scale.denominator()).with_capacity_blocks(8192)
    }

    #[test]
    fn sweep_preserves_order_and_runs_all_points() {
        let t = trace();
        let c = cfg(&t);
        let results = sweep(vec![1u64, 5, 20], 3, |threshold| {
            simulate(&t, PolicySpec::SieveStoreD { threshold }, &c)
        })
        .unwrap();
        assert_eq!(results.len(), 3);
        // Lower thresholds admit at least as many batch blocks.
        let batches: Vec<u64> = results
            .iter()
            .map(|r| r.total().batch_allocations)
            .collect();
        assert!(batches[0] >= batches[1]);
        assert!(batches[1] >= batches[2]);
    }

    #[test]
    fn sweep_with_single_thread_matches_parallel() {
        let t = trace();
        let c = cfg(&t);
        let run = |threads| {
            sweep(vec![5u64, 10], threads, |threshold| {
                simulate(&t, PolicySpec::SieveStoreD { threshold }, &c)
            })
            .unwrap()
            .into_iter()
            .map(|r| r.total())
            .collect::<Vec<_>>()
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn threshold_sweep_labels_points() {
        let t = trace();
        let points = threshold_sweep(&t, &[8, 12], &cfg(&t), 2).unwrap();
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].label, "t=8");
        assert_eq!(points[1].label, "t=12");
    }

    #[test]
    fn window_sweep_runs() {
        let t = trace();
        let points = window_sweep(&t, &[2, 8], 1 << 14, &cfg(&t), 2).unwrap();
        assert_eq!(points.len(), 2);
        assert_eq!(points[1].label, "W=8h");
        for p in &points {
            assert!(p.result.total().accesses() > 0);
        }
    }

    #[test]
    fn threshold_sweep_is_replay_mode_invariant() {
        let t = trace();
        let sequential = cfg(&t);
        let sharded = sequential
            .clone()
            .with_replay(crate::replay::ReplayMode::Sharded(4));
        let a = threshold_sweep(&t, &[5, 10], &sequential, 2).unwrap();
        let b = threshold_sweep(&t, &[5, 10], &sharded, 2).unwrap();
        for (pa, pb) in a.iter().zip(&b) {
            assert_eq!(pa.label, pb.label);
            assert_eq!(pa.result.days, pb.result.days);
        }
    }

    #[test]
    fn sweep_surfaces_errors() {
        let t = trace();
        let c = cfg(&t);
        let err = sweep(vec![0u64], 1, |threshold| {
            simulate(&t, PolicySpec::SieveStoreD { threshold }, &c)
        });
        assert!(err.is_err());
    }
}
