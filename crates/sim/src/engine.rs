//! The trace-driven simulation engine.
//!
//! Follows the paper's methodology (§4):
//!
//! * multi-block requests expand into 512-byte block accesses;
//! * hits are served by the SSD at the request's issue minute;
//! * an allocation-write can begin only once the data has been fetched
//!   from the underlying storage, so it is charged at the originating
//!   request's *completion* time (per-block linear interpolation for
//!   multi-block requests);
//! * SSD device cost is accounted at 4 KiB page granularity, charging a
//!   full page for sub-page remainders (the paper's conservative
//!   treatment of unaligned I/O);
//! * SieveStore-D's batch moves are, by default, *not* charged to the
//!   per-minute occupancy — the paper staggers them into slack periods —
//!   but they are counted as allocation-writes in the daily totals.
//!   Set [`SimConfig::charge_batch_moves`] to include them.
//!
//! Every entry point consumes the trace as a *stream*
//! ([`SyntheticTrace::stream`]): a background generator produces day
//! *N + 1* while day *N* replays, and no engine path materializes the
//! whole trace. [`simulate_many`] runs several policies over one trace
//! while generating each day's requests only once, processing the
//! policies in parallel with crossbeam's scoped threads; with a single
//! policy it replays chunk-by-chunk without buffering the day at all.

use std::sync::Arc;

use crossbeam::thread;

use sievestore::{EvictionPolicy, PolicySpec, SieveStore, SieveStoreBuilder};
use sievestore_extsort::CountingConfig;
use sievestore_ssd::{OccupancyTracker, SsdSpec};
use sievestore_trace::{ScenarioConfig, StreamMsg, SyntheticTrace, TraceStreamConfig};
use sievestore_types::{Day, Request, SieveError, BLOCKS_PER_PAGE};

use crate::metrics::{DayMetrics, SimResult};
use crate::replay::{self, ReplayMode};
use crate::snapshot::SnapshotLog;

/// Engine configuration shared by all policies in a run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Cache capacity in 512-byte frames (already scaled).
    pub capacity_blocks: usize,
    /// The cache device.
    pub ssd: SsdSpec,
    /// Factor to re-scale simulated loads to full-scale device terms
    /// (use the trace's scale denominator).
    pub load_multiplier: f64,
    /// Charge discrete batch moves to the per-minute occupancy (spread
    /// over the boundary hour) instead of assuming slack scheduling.
    pub charge_batch_moves: bool,
    /// How the engine walks the trace: the sequential reference path or
    /// hash-partitioned sharded replay (see [`crate::replay`]).
    pub replay: ReplayMode,
    /// Block-cache eviction policy for continuous allocation policies
    /// (LRU by default, SIEVE for the lock-free hit path). Discrete
    /// policies use the epoch-batched cache regardless.
    pub eviction: EvictionPolicy,
    /// Epoch access-counting backend for discrete policies: in-memory
    /// (default) or spill-to-disk for bounded-memory full-scale runs.
    pub counting: CountingConfig,
    /// Trace-streaming knobs (chunk size, pipeline depth, spill-mode
    /// generation).
    pub trace_stream: TraceStreamConfig,
}

impl SimConfig {
    /// A configuration mirroring the paper: 16 GB cache, X25-E device.
    /// `scale_denominator` shrinks capacity and upscales reported loads.
    pub fn paper_16gb(scale_denominator: u32) -> Self {
        SimConfig {
            capacity_blocks: (sievestore_types::gib_to_blocks(16) / scale_denominator as u64).max(1)
                as usize,
            ssd: SsdSpec::x25e(),
            load_multiplier: scale_denominator as f64,
            charge_batch_moves: false,
            replay: ReplayMode::Sequential,
            eviction: EvictionPolicy::default(),
            counting: CountingConfig::InMemory,
            trace_stream: TraceStreamConfig::default(),
        }
    }

    /// Same as [`SimConfig::paper_16gb`] but 32 GB (the unsieved caches'
    /// larger variant in Figure 5).
    pub fn paper_32gb(scale_denominator: u32) -> Self {
        let mut cfg = Self::paper_16gb(scale_denominator);
        cfg.capacity_blocks *= 2;
        cfg
    }

    /// Sets a custom capacity in (already scaled) blocks.
    #[must_use]
    pub fn with_capacity_blocks(mut self, blocks: usize) -> Self {
        self.capacity_blocks = blocks;
        self
    }

    /// Includes discrete batch moves in the occupancy series.
    #[must_use]
    pub fn with_charge_batch_moves(mut self, charge: bool) -> Self {
        self.charge_batch_moves = charge;
        self
    }

    /// Selects the replay mode (sequential or sharded).
    #[must_use]
    pub fn with_replay(mut self, replay: ReplayMode) -> Self {
        self.replay = replay;
        self
    }

    /// Selects the block-cache eviction policy for continuous allocation
    /// policies.
    #[must_use]
    pub fn with_eviction(mut self, eviction: EvictionPolicy) -> Self {
        self.eviction = eviction;
        self
    }

    /// Selects the epoch access-counting backend for discrete policies.
    #[must_use]
    pub fn with_counting(mut self, counting: CountingConfig) -> Self {
        self.counting = counting;
        self
    }

    /// Sets the trace-streaming configuration (chunking, depth, spill).
    #[must_use]
    pub fn with_trace_stream(mut self, trace_stream: TraceStreamConfig) -> Self {
        self.trace_stream = trace_stream;
        self
    }

    /// Applies an adversarial workload scenario to the replayed stream
    /// (see [`sievestore_trace::scenario`]). Every engine entry point —
    /// sequential, sharded, snapshot-exporting — replays the transformed
    /// stream; the scenario is validated against the trace up front.
    #[must_use]
    pub fn with_scenario(mut self, scenario: ScenarioConfig) -> Self {
        self.trace_stream.scenario = scenario;
        self
    }
}

/// Fails fast — with an error instead of the stream's panic — when the
/// configured scenario does not fit the trace's ensemble.
pub(crate) fn validate_scenario(trace: &SyntheticTrace, cfg: &SimConfig) -> Result<(), SieveError> {
    cfg.trace_stream.scenario.validate(trace.config())
}

/// One policy's in-flight simulation state.
struct Run {
    store: SieveStore,
    days: Vec<DayMetrics>,
    occupancy: OccupancyTracker,
    charge_batch_moves: bool,
}

impl Run {
    fn new(spec: PolicySpec, cfg: &SimConfig, total_minutes: usize) -> Result<Self, SieveError> {
        Ok(Run {
            store: SieveStoreBuilder::new()
                .capacity_blocks(cfg.capacity_blocks)
                .policy(spec)
                .eviction(cfg.eviction)
                .counting(cfg.counting.clone())
                .build()?,
            days: Vec::new(),
            occupancy: OccupancyTracker::new(cfg.ssd.clone(), total_minutes)
                .with_load_multiplier(cfg.load_multiplier),
            charge_batch_moves: cfg.charge_batch_moves,
        })
    }

    fn day_mut(&mut self, day: Day) -> &mut DayMetrics {
        let idx = day.as_usize();
        if idx >= self.days.len() {
            self.days.resize(idx + 1, DayMetrics::default());
        }
        &mut self.days[idx]
    }

    fn on_day_boundary(&mut self, day: Day) {
        if let Some(transition) = self.store.day_boundary(day) {
            let moved = transition.allocated.len() as u64;
            self.day_mut(day).batch_allocations = moved;
            if self.charge_batch_moves && moved > 0 {
                // Spread the moves evenly over the first hour of the day.
                let pages = moved.div_ceil(BLOCKS_PER_PAGE as u64);
                let start = day.start().minute();
                let per_minute = pages.div_ceil(60);
                for m in 0..60u32 {
                    let minute = sievestore_types::Minute::new(start.index() + m);
                    let chunk = per_minute.min(pages.saturating_sub(per_minute * m as u64));
                    if chunk == 0 {
                        break;
                    }
                    self.occupancy.record_write_pages(minute, chunk);
                }
            }
        }
    }

    fn process_request(&mut self, req: &Request) {
        let day = req.timestamp.day();
        let minute = req.timestamp.minute();
        let mut read_hit_blocks = 0u64;
        let mut write_hit_blocks = 0u64;
        let mut alloc_blocks = 0u64;
        for (i, key) in req.blocks().enumerate() {
            let t = req.block_completion_time(i as u32);
            let outcome = self.store.access(key.raw(), req.kind, t);
            let hit = outcome.is_hit();
            let allocated = outcome.is_allocation();
            self.day_mut(day).record_access(req.kind, hit, allocated);
            if hit {
                if req.kind.is_read() {
                    read_hit_blocks += 1;
                } else {
                    write_hit_blocks += 1;
                }
            }
            if allocated {
                alloc_blocks += 1;
            }
        }
        // Device accounting at 4 KiB granularity, sub-page remainders
        // charged in full. Hits are served at issue time; allocation
        // fills start once the underlying fetch completed.
        if read_hit_blocks > 0 {
            self.occupancy
                .record_read_pages(minute, read_hit_blocks.div_ceil(BLOCKS_PER_PAGE as u64));
        }
        if write_hit_blocks > 0 {
            self.occupancy
                .record_write_pages(minute, write_hit_blocks.div_ceil(BLOCKS_PER_PAGE as u64));
        }
        if alloc_blocks > 0 {
            let completion_minute = req.completion_time().minute();
            self.occupancy.record_write_pages(
                completion_minute,
                alloc_blocks.div_ceil(BLOCKS_PER_PAGE as u64),
            );
        }
    }

    fn finish(self, policy: Arc<str>, capacity_blocks: usize) -> SimResult {
        SimResult {
            policy,
            capacity_blocks,
            days: self.days,
            occupancy: self.occupancy,
        }
    }
}

/// Simulates one policy over the whole trace.
///
/// # Errors
///
/// Returns [`SieveError::InvalidConfig`] if the policy or capacity is
/// invalid.
///
/// # Examples
///
/// ```
/// use sievestore::PolicySpec;
/// use sievestore_sim::{simulate, SimConfig};
/// use sievestore_trace::{EnsembleConfig, SyntheticTrace};
///
/// # fn main() -> Result<(), sievestore_types::SieveError> {
/// let trace = SyntheticTrace::new(EnsembleConfig::tiny(5))?;
/// let cfg = SimConfig::paper_16gb(trace.config().scale.denominator())
///     .with_capacity_blocks(4096);
/// let result = simulate(&trace, PolicySpec::Aod, &cfg)?;
/// assert_eq!(result.days.len(), trace.days() as usize);
/// # Ok(())
/// # }
/// ```
pub fn simulate(
    trace: &SyntheticTrace,
    spec: PolicySpec,
    cfg: &SimConfig,
) -> Result<SimResult, SieveError> {
    let mut results = simulate_many(trace, vec![spec], cfg)?;
    Ok(results.pop().expect("one spec yields one result"))
}

/// Simulates one policy while exporting a deterministic day-boundary
/// [`SnapshotLog`].
///
/// In sequential mode each day's snapshot is emitted *online*, as soon
/// as the day finishes; in sharded mode the log is derived from the
/// merged result. For discrete policies the two serialize to identical
/// bytes at any shard count — see [`crate::snapshot`] for the contract
/// (and `tests/sharded_replay.rs` for the pin).
///
/// # Errors
///
/// Returns [`SieveError::InvalidConfig`] if the policy or capacity is
/// invalid.
pub fn simulate_with_snapshots(
    trace: &SyntheticTrace,
    spec: PolicySpec,
    cfg: &SimConfig,
) -> Result<(SimResult, SnapshotLog), SieveError> {
    validate_scenario(trace, cfg)?;
    if let ReplayMode::Sharded(n) = cfg.replay {
        let (result, _stats) = replay::simulate_sharded(trace, spec, cfg, n)?;
        let log = SnapshotLog::from_result(&result);
        return Ok((result, log));
    }
    let total_minutes = trace.days() as usize * 24 * 60;
    let name: Arc<str> = Arc::from(spec.name());
    let mut run = Run::new(spec, cfg, total_minutes)?;
    let mut log = SnapshotLog::new(name.clone(), cfg.capacity_blocks);
    let mut stream = trace.stream(cfg.trace_stream.clone());
    let mut current: Option<Day> = None;
    while let Some(msg) = stream.next_msg() {
        match msg {
            StreamMsg::StartDay(day) => {
                // The previous day's counters are final here: accesses
                // land on the issue day and batch installs were charged
                // at that day's boundary.
                if let Some(prev) = current {
                    log.push_day(run.days.get(prev.as_usize()).copied().unwrap_or_default());
                }
                run.on_day_boundary(day);
                current = Some(day);
            }
            StreamMsg::Chunk(chunk) => {
                for req in &chunk {
                    run.process_request(req);
                }
                stream.recycle(chunk);
            }
            StreamMsg::Failed(e) => return Err(e),
        }
    }
    if let Some(prev) = current {
        log.push_day(run.days.get(prev.as_usize()).copied().unwrap_or_default());
    }
    Ok((run.finish(name, cfg.capacity_blocks), log))
}

/// Simulates one policy over a *single server's* slice of the trace
/// (used by the per-server deployment comparison, quadrants III/IV).
///
/// # Errors
///
/// Returns [`SieveError::InvalidConfig`] if the policy or capacity is
/// invalid.
pub fn simulate_server(
    trace: &SyntheticTrace,
    server_idx: usize,
    spec: PolicySpec,
    cfg: &SimConfig,
) -> Result<SimResult, SieveError> {
    validate_scenario(trace, cfg)?;
    if cfg.trace_stream.scenario.moves_across_servers() {
        return Err(SieveError::InvalidConfig(
            "cross-server scenario stages (failover) cannot replay a single server's slice".into(),
        ));
    }
    if let ReplayMode::Sharded(n) = cfg.replay {
        return replay::simulate_server_sharded(trace, server_idx, spec, cfg, n).map(|(r, _)| r);
    }
    let total_minutes = trace.days() as usize * 24 * 60;
    let name: Arc<str> = Arc::from(spec.name());
    let mut run = Run::new(spec, cfg, total_minutes)?;
    let mut stream = trace.stream_server(server_idx, cfg.trace_stream.clone());
    while let Some(msg) = stream.next_msg() {
        match msg {
            StreamMsg::StartDay(day) => run.on_day_boundary(day),
            StreamMsg::Chunk(chunk) => {
                for req in &chunk {
                    run.process_request(req);
                }
                stream.recycle(chunk);
            }
            StreamMsg::Failed(e) => return Err(e),
        }
    }
    Ok(run.finish(name, cfg.capacity_blocks))
}

/// Simulates several policies over one trace, generating each day's
/// requests once and fanning the policies out across threads.
///
/// Results are returned in the order of `specs`.
///
/// # Errors
///
/// Returns the first policy-construction error encountered.
pub fn simulate_many(
    trace: &SyntheticTrace,
    specs: Vec<PolicySpec>,
    cfg: &SimConfig,
) -> Result<Vec<SimResult>, SieveError> {
    validate_scenario(trace, cfg)?;
    if let ReplayMode::Sharded(n) = cfg.replay {
        // Sharded replay parallelizes *within* each policy, so policies
        // run one after another instead of fanning out across threads.
        return specs
            .into_iter()
            .map(|spec| replay::simulate_sharded(trace, spec, cfg, n).map(|(r, _)| r))
            .collect();
    }
    let total_minutes = trace.days() as usize * 24 * 60;
    let names: Vec<Arc<str>> = specs.iter().map(|s| Arc::from(s.name())).collect();
    let mut runs: Vec<Run> = specs
        .into_iter()
        .map(|s| Run::new(s, cfg, total_minutes))
        .collect::<Result<_, _>>()?;

    let mut stream = trace.stream(cfg.trace_stream.clone());
    if let [run] = runs.as_mut_slice() {
        // One policy: replay each chunk as it arrives — the day is
        // never buffered, so peak trace memory is the stream pipeline's
        // few chunks.
        while let Some(msg) = stream.next_msg() {
            match msg {
                StreamMsg::StartDay(day) => run.on_day_boundary(day),
                StreamMsg::Chunk(chunk) => {
                    for req in &chunk {
                        run.process_request(req);
                    }
                    stream.recycle(chunk);
                }
                StreamMsg::Failed(e) => return Err(e),
            }
        }
    } else {
        // Several policies: accumulate one day (requests are generated
        // once) and fan the policies out across threads at each day
        // boundary, as before — but overlapped with generation of the
        // next day.
        let replay_day = |day: Day, requests: &[Request], runs: &mut [Run]| {
            thread::scope(|scope| {
                for run in runs.iter_mut() {
                    scope.spawn(move |_| {
                        run.on_day_boundary(day);
                        for req in requests {
                            run.process_request(req);
                        }
                    });
                }
            })
            .map_err(|_| SieveError::InvalidConfig("simulation worker panicked".into()))
        };
        let mut day_buf: Vec<Request> = Vec::new();
        let mut current: Option<Day> = None;
        while let Some(msg) = stream.next_msg() {
            match msg {
                StreamMsg::StartDay(day) => {
                    if let Some(prev) = current {
                        replay_day(prev, &day_buf, &mut runs)?;
                        day_buf.clear();
                    }
                    current = Some(day);
                }
                StreamMsg::Chunk(chunk) => {
                    day_buf.extend_from_slice(&chunk);
                    stream.recycle(chunk);
                }
                StreamMsg::Failed(e) => return Err(e),
            }
        }
        if let Some(prev) = current {
            replay_day(prev, &day_buf, &mut runs)?;
        }
    }

    Ok(runs
        .into_iter()
        .zip(names)
        .map(|(run, name)| run.finish(name, cfg.capacity_blocks))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::ideal_top_selections;
    use sievestore_sieve::TwoTierConfig;
    use sievestore_trace::EnsembleConfig;

    fn tiny() -> SyntheticTrace {
        SyntheticTrace::new(EnsembleConfig::tiny(11)).unwrap()
    }

    fn cfg(trace: &SyntheticTrace, capacity: usize) -> SimConfig {
        SimConfig::paper_16gb(trace.config().scale.denominator()).with_capacity_blocks(capacity)
    }

    #[test]
    fn aod_has_full_allocation_writes() {
        let trace = tiny();
        let r = simulate(&trace, PolicySpec::Aod, &cfg(&trace, 4096)).unwrap();
        let t = r.total();
        // Every miss allocates.
        assert_eq!(t.allocation_writes, t.read_misses + t.write_misses);
        assert!(t.accesses() > 0);
        assert_eq!(r.days.len(), trace.days() as usize);
    }

    #[test]
    fn wmna_allocates_only_read_misses() {
        let trace = tiny();
        let r = simulate(&trace, PolicySpec::Wmna, &cfg(&trace, 4096)).unwrap();
        let t = r.total();
        assert_eq!(t.allocation_writes, t.read_misses);
    }

    #[test]
    fn accesses_are_identical_across_policies() {
        let trace = tiny();
        let results = simulate_many(
            &trace,
            vec![
                PolicySpec::Aod,
                PolicySpec::Wmna,
                PolicySpec::SieveStoreD { threshold: 10 },
            ],
            &cfg(&trace, 4096),
        )
        .unwrap();
        let accesses: Vec<u64> = results.iter().map(|r| r.total().accesses()).collect();
        assert!(accesses.windows(2).all(|w| w[0] == w[1]));
        assert_eq!(&*results[0].policy, "AOD");
        assert_eq!(&*results[2].policy, "SieveStore-D");
    }

    #[test]
    fn sievestore_c_allocates_orders_of_magnitude_less_than_aod() {
        let trace = tiny();
        let capacity = 16384;
        let results = simulate_many(
            &trace,
            vec![
                PolicySpec::Aod,
                PolicySpec::SieveStoreC(TwoTierConfig::paper_default().with_imct_entries(1 << 16)),
            ],
            &cfg(&trace, capacity),
        )
        .unwrap();
        let aod = results[0].total();
        let sc = results[1].total();
        assert!(
            sc.allocation_writes * 20 < aod.allocation_writes,
            "sieved {} vs unsieved {}",
            sc.allocation_writes,
            aod.allocation_writes
        );
        // And the sieve should still capture a decent share of accesses.
        assert!(sc.hits() > 0);
    }

    #[test]
    fn sievestore_d_bootstraps_with_empty_day_zero() {
        let trace = tiny();
        let r = simulate(
            &trace,
            PolicySpec::SieveStoreD { threshold: 10 },
            &cfg(&trace, 16384),
        )
        .unwrap();
        assert_eq!(r.days[0].hits(), 0, "day 0 must have zero hits");
        assert_eq!(r.days[0].batch_allocations, 0);
        // Later days get batch installs and hits.
        let later_hits: u64 = r.days[1..].iter().map(|d| d.hits()).sum();
        assert!(later_hits > 0);
        let later_batches: u64 = r.days[1..].iter().map(|d| d.batch_allocations).sum();
        assert!(later_batches > 0);
    }

    #[test]
    fn ideal_tracks_oracle_coverage() {
        let trace = tiny();
        let (selections, covered, totals) = ideal_top_selections(&trace, 0.01);
        let r = simulate(
            &trace,
            PolicySpec::IdealTop1 {
                selections: selections.clone(),
            },
            &cfg(&trace, 1 << 20),
        )
        .unwrap();
        for d in 0..trace.days() as usize {
            let hits = r.days[d].hits();
            // The simulated ideal hits exactly the accesses to the top-1%
            // blocks of that day (capacity is ample).
            assert_eq!(
                hits, covered[d],
                "day {d}: simulated {hits} vs oracle {}",
                covered[d]
            );
            assert_eq!(r.days[d].accesses(), totals[d]);
        }
    }

    #[test]
    fn occupancy_is_recorded_for_hits() {
        let trace = tiny();
        let r = simulate(&trace, PolicySpec::Aod, &cfg(&trace, 65536)).unwrap();
        let busy_minutes = r
            .occupancy
            .occupancy_series()
            .iter()
            .filter(|&&o| o > 0.0)
            .count();
        assert!(busy_minutes > 0, "AOD must load the device");
    }

    #[test]
    fn charge_batch_moves_adds_write_load() {
        let trace = tiny();
        let base = cfg(&trace, 16384);
        let uncharged = simulate(&trace, PolicySpec::SieveStoreD { threshold: 5 }, &base).unwrap();
        let charged = simulate(
            &trace,
            PolicySpec::SieveStoreD { threshold: 5 },
            &base.clone().with_charge_batch_moves(true),
        )
        .unwrap();
        assert!(charged.occupancy.total_write_bytes() > uncharged.occupancy.total_write_bytes());
        // Metrics are unaffected by the accounting choice.
        assert_eq!(charged.total(), uncharged.total());
    }

    #[test]
    fn occupancy_pages_are_consistent_with_block_metrics() {
        // Page-granularity device accounting must bracket the block-level
        // metrics: at least ceil(blocks/8) pages (perfect packing), at
        // most one page per block (each block in its own request).
        let trace = tiny();
        let r = simulate(&trace, PolicySpec::Aod, &cfg(&trace, 65536)).unwrap();
        let t = r.total();
        let minutes = r.occupancy.len_minutes();
        let mut read_pages = 0u64;
        let mut write_pages = 0u64;
        for m in 0..minutes {
            let load = r.occupancy.load(sievestore_types::Minute::new(m as u32));
            read_pages += load.read_pages;
            write_pages += load.write_pages;
        }
        let bpp = BLOCKS_PER_PAGE as u64;
        assert!(
            read_pages >= t.read_hits / bpp,
            "{read_pages} vs {}",
            t.read_hits
        );
        assert!(read_pages <= t.read_hits, "{read_pages} vs {}", t.read_hits);
        let write_blocks = t.write_hits + t.allocation_writes;
        assert!(write_pages >= write_blocks / bpp);
        assert!(write_pages <= write_blocks);
    }

    #[test]
    fn simulation_is_deterministic() {
        let trace = tiny();
        let a = simulate(
            &trace,
            PolicySpec::RandSieveC {
                probability: 0.01,
                seed: 3,
            },
            &cfg(&trace, 4096),
        )
        .unwrap();
        let b = simulate(
            &trace,
            PolicySpec::RandSieveC {
                probability: 0.01,
                seed: 3,
            },
            &cfg(&trace, 4096),
        )
        .unwrap();
        assert_eq!(a.total(), b.total());
    }
}
