//! Parallel sharded trace replay with deterministic, merge-identical
//! metrics.
//!
//! The sequential engine ([`crate::simulate`]) processes every block
//! access in trace order on one thread. This module hash-partitions the
//! block-id space across `n` worker shards with
//! [`sievestore_types::shard_of`] — the same partition function
//! [`sievestore_analysis`-style counting](sievestore_types::shard_of)
//! uses — so each worker owns a disjoint slice of the sieve metastate and
//! cache frames and sees its partition's accesses in global trace order
//! (a subsequence of the sequential stream).
//!
//! # Architecture
//!
//! * A **generator thread** ([`SyntheticTrace::stream`]) produces the
//!   trace as bounded request chunks — day *N + 1* generates while day
//!   *N* replays, and the whole pipeline never materializes a full day
//!   (with spill-mode generation, peak trace memory is one server-day).
//! * The **coordinator** (caller thread) consumes the stream, splits
//!   each request's blocks by shard, and pushes per-shard block-group
//!   batches into bounded per-shard work queues (backpressure keeps the
//!   pipeline memory-bounded).
//! * **Work-stealing**: each shard's queue is paired with a mutex over
//!   the shard's replay state. A message is popped *and processed while
//!   holding that state lock*, so the shard's FIFO event order — and
//!   therefore every simulated metric — is independent of which worker
//!   thread executes it. A worker that drains its own queue steals one
//!   message at a time from loaded siblings (`try_lock`, never blocking
//!   behind a busy owner), which attacks day-barrier imbalance without
//!   touching the determinism argument: scheduling chooses *who* runs a
//!   shard's next message, never *what order* the shard's messages run
//!   in.
//! * **Continuous policies** (AOD, WMNA, SieveStore-C, RandSieve-C) are
//!   built per shard via [`sievestore::SieveStoreBuilder::shard`]: the
//!   IMCT is slot-sliced so per-key sieve state is bit-identical to the
//!   whole sieve's, and the LRU capacity is split evenly. Day boundaries
//!   are no-ops for these policies, so workers run barrier-free.
//! * **Discrete policies** (SieveStore-D, RandSieve-BlkD, Ideal) keep
//!   per-shard bookkeeping (epoch access counts / accessed sets) *and* a
//!   per-shard epoch cache: each worker owns a [`BatchCache`] holding
//!   exactly its shard's slice of the global resident set. At each day
//!   boundary the coordinator gathers every shard's contribution,
//!   computes the selection the sequential policy would produce, and
//!   hands each worker its hash-partition of it to install locally —
//!   for SieveStore-D within capacity this is the contribution vectors
//!   handed straight back, with no merge at all. Workers report their
//!   install sizes on a side channel the coordinator drains after the
//!   replay, so the boundary's only blocking step is the contribution
//!   gather; there is no global cache, no global install, and no
//!   per-day resident-set clone/broadcast. Because the per-shard
//!   resident sets partition the global one, the summed
//!   allocated/retained/evicted counts equal the sequential install's
//!   exactly, and epoch rotation stays globally ordered.
//!
//! # Adaptive batching
//!
//! The coordinator streams groups in batches whose size adapts at run
//! time (`BatchTuner`): each hot-path send samples the destination
//! channel's occupancy — mostly-empty channels mean starving workers
//! (the coordinator is the bottleneck), so batches grow to amortize the
//! per-send overhead; mostly-full channels mean backpressure, so batches
//! shrink toward the floor to keep day-boundary drains short. When the
//! `obs` layer is live, day boundaries additionally consult the
//! [`ReplayChannelWaitNanos`](sievestore_types::obs::HistId) and
//! [`ReplayDayBarrierNanos`](sievestore_types::obs::HistId) histogram
//! deltas for the same decision with real latency medians. Batch size
//! never affects results — it only changes message granularity, never
//! per-shard event order.
//!
//! # Determinism
//!
//! Per-day [`DayMetrics`] merge with commutative integer sums
//! ([`DayMetrics::merge`]), so the merged report does not depend on
//! worker scheduling — replaying the same trace at any shard count is
//! reproducible, and [`ReplayMode::Sharded`]`(1)` is byte-identical to
//! the sequential engine for every policy. For `n > 1` the per-key
//! policy decisions are exact (hash-sliced metastate, global batch
//! state), which makes discrete policies byte-identical at any shard
//! count and continuous policies byte-identical whenever capacity is
//! ample (no evictions); a global LRU's eviction order is inherently
//! sequential, so under capacity pressure per-shard LRUs are an
//! approximation. RandSieve-C reseeds per shard (its RNG is consumed in
//! global miss order, which sharding cannot reproduce). Device
//! *occupancy* rounds sub-page remainders per request-shard fragment
//! rather than per request, so sharded page counts are an upper bound of
//! sequential ones (equal at one shard); all block-level metrics are
//! unaffected. See DESIGN.md §"Sharded replay" for the full argument.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, TryLockError};
use std::time::Duration;

use crossbeam::channel::{self, Receiver, Sender, TryRecvError};
use crossbeam::thread;

use sievestore::policy::RandSieveBlkD;
use sievestore::{PolicySpec, SieveStore, SieveStoreBuilder};
use sievestore_cache::BatchCache;
use sievestore_extsort::{CountingConfig, InMemoryCounter};
use sievestore_sieve::{random_block_selection, DiscreteSieve};
use sievestore_ssd::OccupancyTracker;
use sievestore_trace::{StreamMsg, SyntheticTrace};
use sievestore_types::{
    obs_count, obs_enabled, obs_observe, shard_of, Day, Micros, Minute, Request, RequestKind,
    SieveError, U64Set, BLOCKS_PER_PAGE,
};

use crate::engine::SimConfig;
use crate::metrics::{DayMetrics, SimResult};

/// How the engine walks the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReplayMode {
    /// One thread, strict trace order (the reference engine).
    #[default]
    Sequential,
    /// Hash-partitioned replay across this many worker shards.
    Sharded(usize),
}

impl ReplayMode {
    /// The mode for a requested thread count: `0` or `1` select the
    /// sequential engine, anything larger shards across that many
    /// workers.
    pub fn threads(n: usize) -> Self {
        if n <= 1 {
            ReplayMode::Sequential
        } else {
            ReplayMode::Sharded(n)
        }
    }

    /// Number of replay worker threads this mode uses.
    pub fn worker_count(self) -> usize {
        match self {
            ReplayMode::Sequential => 1,
            ReplayMode::Sharded(n) => n,
        }
    }
}

/// Execution statistics of one sharded replay.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// Block accesses routed to each shard.
    pub per_shard_blocks: Vec<u64>,
    /// Queue messages executed by a worker other than the shard's owner
    /// (work-stealing; 0 when the load stayed balanced).
    pub steals: u64,
}

impl ReplayStats {
    /// Total block accesses replayed.
    pub fn total_blocks(&self) -> u64 {
        self.per_shard_blocks.iter().sum()
    }

    /// Load imbalance: the busiest shard's share of blocks divided by the
    /// mean share (1.0 is perfectly balanced). Returns 1.0 when nothing
    /// was replayed.
    pub fn imbalance(&self) -> f64 {
        let total = self.total_blocks();
        if total == 0 || self.per_shard_blocks.is_empty() {
            return 1.0;
        }
        let max = *self.per_shard_blocks.iter().max().expect("nonempty") as f64;
        let mean = total as f64 / self.per_shard_blocks.len() as f64;
        max / mean
    }
}

/// One request's blocks restricted to a single shard, with everything a
/// worker needs to mirror the sequential engine's accounting.
struct Group {
    day: Day,
    minute: Minute,
    completion_minute: Minute,
    kind: RequestKind,
    /// `(block key, per-block access time)` in request order.
    blocks: Vec<(u64, Micros)>,
}

enum ToWorker {
    /// Replay these groups in order.
    Batch(Vec<Group>),
    /// Day boundary: send the shard's epoch contribution (discrete
    /// policies only).
    Boundary,
    /// Install this shard's partition of the day's epoch selection into
    /// the worker's local cache and report the install size (discrete
    /// only).
    Install(Day, Vec<u64>),
}

/// Starting batch size: groups buffered per shard before a channel send.
/// Large enough that the channel round-trip amortizes to noise per
/// event, small enough that a batch (~56 bytes/group header plus
/// recycled block buffers) stays cheap to shuttle and the consumer
/// pipeline stays busy. [`BatchTuner`] adapts from here at run time.
const START_GROUPS: usize = 1024;
/// Smallest batch the tuner will shrink to.
const MIN_GROUPS: usize = 128;
/// Largest batch the tuner will grow to.
const MAX_GROUPS: usize = 8192;
/// Hot-path sends between occupancy-based retunes.
const TUNE_WINDOW: u64 = 64;
/// In-flight batches per worker channel (backpressure bound).
const CHANNEL_DEPTH: usize = 8;

/// A channel-wait median above this (100 µs) reads as "workers starve
/// between batches" — grow the batch.
const HIGH_WAIT_NS: u64 = 100_000;
/// A day-barrier median above this (10 ms) with cheap channel waits
/// reads as "boundary drains dominate" — shrink the batch.
const HIGH_BARRIER_NS: u64 = 10_000_000;

/// Run-time batch sizing off live backpressure signals.
///
/// Two inputs drive one knob (the group count per channel send):
///
/// * **Channel occupancy** (always on): each hot-path send samples how
///   many batches sit unconsumed in the destination channel. A window
///   of mostly-empty observations means the workers outrun the
///   coordinator — per-send routing overhead is the bottleneck, so the
///   batch doubles (up to [`MAX_GROUPS`]). Mostly-full means the
///   channel is pushing back — halving (down to [`MIN_GROUPS`]) keeps
///   less replay in flight and day-boundary drains short.
/// * **Latency histograms** (when the obs layer records): at each day
///   boundary the tuner takes the delta of the global
///   `ReplayChannelWaitNanos` / `ReplayDayBarrierNanos` histograms since
///   the previous boundary and applies the same policy to their
///   medians: expensive channel waits grow the batch, expensive
///   barriers with cheap waits shrink it.
///
/// Batch size only changes message granularity — per-shard event order,
/// and therefore every simulated metric, is independent of it.
#[derive(Debug)]
struct BatchTuner {
    groups: usize,
    sends: u64,
    empty: u64,
    full: u64,
    wait_seen: sievestore_types::obs::HistogramSnapshot,
    barrier_seen: sievestore_types::obs::HistogramSnapshot,
}

impl BatchTuner {
    fn new() -> Self {
        use sievestore_types::obs;
        // Baseline the global histograms so deltas cover this run only.
        let (wait_seen, barrier_seen) = if obs_enabled!() {
            let reg = obs::global();
            (
                reg.histogram(obs::HistId::ReplayChannelWaitNanos)
                    .snapshot(),
                reg.histogram(obs::HistId::ReplayDayBarrierNanos).snapshot(),
            )
        } else {
            (
                obs::HistogramSnapshot::empty(),
                obs::HistogramSnapshot::empty(),
            )
        };
        BatchTuner {
            groups: START_GROUPS,
            sends: 0,
            empty: 0,
            full: 0,
            wait_seen,
            barrier_seen,
        }
    }

    /// The current batch size target.
    fn target(&self) -> usize {
        self.groups
    }

    /// Samples one hot-path send: `queued` is the destination channel's
    /// occupancy just before the send.
    fn observe_send(&mut self, queued: usize) {
        self.sends += 1;
        if queued == 0 {
            self.empty += 1;
        } else if queued >= CHANNEL_DEPTH - 1 {
            self.full += 1;
        }
        if self.sends >= TUNE_WINDOW {
            if self.empty * 2 >= self.sends {
                self.grow();
            } else if self.full * 2 >= self.sends {
                self.shrink();
            }
            self.sends = 0;
            self.empty = 0;
            self.full = 0;
        }
    }

    /// Consults the obs layer's latency histograms at a day boundary
    /// (no-op unless recording is live).
    fn observe_day_boundary(&mut self) {
        use sievestore_types::obs;
        if !obs_enabled!() {
            return;
        }
        let reg = obs::global();
        let wait = reg
            .histogram(obs::HistId::ReplayChannelWaitNanos)
            .snapshot();
        let barrier = reg.histogram(obs::HistId::ReplayDayBarrierNanos).snapshot();
        let wait_delta = Self::delta(&wait, &self.wait_seen);
        let barrier_delta = Self::delta(&barrier, &self.barrier_seen);
        self.wait_seen = wait;
        self.barrier_seen = barrier;
        self.retune_from_latency(&wait_delta, &barrier_delta);
    }

    /// The decision core, separated from the global registry for direct
    /// testing: medians of the *per-day* latency deltas pick a direction.
    fn retune_from_latency(
        &mut self,
        wait: &sievestore_types::obs::HistogramSnapshot,
        barrier: &sievestore_types::obs::HistogramSnapshot,
    ) {
        let wait_median = wait.quantile_floor(0.5);
        match wait_median {
            Some(w) if w >= HIGH_WAIT_NS => self.grow(),
            _ => {
                if barrier.quantile_floor(0.5) >= Some(HIGH_BARRIER_NS)
                    && wait_median.unwrap_or(0) < HIGH_WAIT_NS
                {
                    self.shrink();
                }
            }
        }
    }

    fn grow(&mut self) {
        self.groups = (self.groups * 2).min(MAX_GROUPS);
    }

    fn shrink(&mut self) {
        self.groups = (self.groups / 2).max(MIN_GROUPS);
    }

    fn delta(
        current: &sievestore_types::obs::HistogramSnapshot,
        previous: &sievestore_types::obs::HistogramSnapshot,
    ) -> sievestore_types::obs::HistogramSnapshot {
        let mut d = sievestore_types::obs::HistogramSnapshot::empty();
        for (out, (cur, prev)) in d
            .buckets
            .iter_mut()
            .zip(current.buckets.iter().zip(&previous.buckets))
        {
            *out = cur.saturating_sub(*prev);
        }
        d
    }
}

/// Buffer-recycling protocol: workers return every processed batch here
/// (groups cleared, `Vec` capacities intact) and the coordinator reuses
/// them for subsequent sends, so steady-state replay allocates no group
/// or batch buffers at all — only the warmup builds them.
struct BufferPool {
    groups: Vec<Group>,
    batches: Vec<Vec<Group>>,
    returns: Receiver<Vec<Group>>,
}

impl BufferPool {
    fn new(returns: Receiver<Vec<Group>>) -> Self {
        BufferPool {
            groups: Vec::new(),
            batches: Vec::new(),
            returns,
        }
    }

    /// Harvests every batch the workers have returned so far.
    fn reclaim(&mut self) {
        while let Ok(mut batch) = self.returns.try_recv() {
            debug_assert!(batch.iter().all(|g| g.blocks.is_empty()));
            obs_count!(ReplayBatchesRecycled, 1);
            self.groups.append(&mut batch);
            self.batches.push(batch);
        }
    }

    /// A group with empty (possibly pre-sized) `blocks`, recycled when
    /// available.
    fn group(&mut self, day: Day, req: &Request) -> Group {
        let mut g = self.groups.pop().unwrap_or_else(|| Group {
            day,
            minute: req.timestamp.minute(),
            completion_minute: req.completion_time().minute(),
            kind: req.kind,
            blocks: Vec::new(),
        });
        g.day = day;
        g.minute = req.timestamp.minute();
        g.completion_minute = req.completion_time().minute();
        g.kind = req.kind;
        g
    }

    /// An empty batch `Vec`, recycled when available.
    fn batch(&mut self) -> Vec<Group> {
        self.batches.pop().unwrap_or_default()
    }
}

/// Per-shard bookkeeping for discrete policies. Only the *counting* side
/// lives on the shard; the epoch cache is global at the coordinator.
enum DiscreteBook {
    SieveD {
        sieve: DiscreteSieve<sievestore_extsort::EpochCounter>,
        /// Mints the next epoch's counter (each shard's spill counter
        /// claims its own subdirectory, so one config serves them all).
        counting: CountingConfig,
    },
    BlkD(U64Set),
    Ideal,
}

impl DiscreteBook {
    fn record(&mut self, key: u64) {
        match self {
            DiscreteBook::SieveD { sieve, .. } => sieve.record_access(key),
            DiscreteBook::BlkD(accessed) => {
                accessed.insert(key);
            }
            DiscreteBook::Ideal => {}
        }
    }

    /// The shard's epoch contribution, sorted ascending — for disjoint
    /// key partitions, sorting the concatenation of these reproduces the
    /// sequential policy's selection input exactly.
    fn contribution(&mut self) -> Vec<u64> {
        match self {
            DiscreteBook::SieveD { sieve, counting } => {
                let next = counting
                    .counter()
                    .expect("epoch counting backend failed to restart");
                sieve.end_epoch(next).expect("access counting failed")
            }
            DiscreteBook::BlkD(accessed) => {
                let mut v: Vec<u64> = accessed.iter().collect();
                v.sort_unstable();
                accessed.clear(); // keeps the table allocation for the next epoch
                v
            }
            DiscreteBook::Ideal => Vec::new(),
        }
    }
}

/// Coordinator-side epoch selection logic, mirroring each discrete
/// policy's `on_day_boundary` over the merged shard contributions.
enum BatchPlan {
    SieveD,
    BlkD {
        fraction: f64,
        seed: u64,
        epoch: u64,
    },
    Ideal {
        selections: Vec<Vec<u64>>,
    },
}

impl BatchPlan {
    /// The day's epoch selection, already split into per-shard installs.
    ///
    /// `contributions[s]` is shard `s`'s (sorted, duplicate-free, hash-
    /// disjoint) epoch contribution. The returned partition is exactly
    /// what the sequential policy's global `install_epoch` would keep —
    /// same dedupe, same in-order truncation at `capacity` — restricted
    /// to each shard's key ownership, so per-shard installs sum to the
    /// global transition (see module docs).
    fn select_sharded(
        &mut self,
        day: Day,
        contributions: Vec<Vec<u64>>,
        shards: usize,
        capacity: usize,
    ) -> Vec<Vec<u64>> {
        match self {
            BatchPlan::SieveD => {
                let total: usize = contributions.iter().map(Vec::len).sum();
                if total <= capacity {
                    // The sequential sieve would select the full sorted
                    // concatenation and nothing would be truncated, so
                    // the contributions are already the partition — the
                    // common case costs no merge at all.
                    contributions
                } else {
                    let mut all: Vec<u64> = contributions.into_iter().flatten().collect();
                    all.sort_unstable();
                    partition_selection(all, shards, capacity)
                }
            }
            BatchPlan::BlkD {
                fraction,
                seed,
                epoch,
            } => {
                let mut accessed: Vec<u64> = contributions.into_iter().flatten().collect();
                accessed.sort_unstable();
                *epoch += 1;
                let selection =
                    random_block_selection(accessed.into_iter(), *fraction, *seed ^ *epoch);
                partition_selection(selection, shards, capacity)
            }
            BatchPlan::Ideal { selections } => partition_selection(
                selections.get(day.as_usize()).cloned().unwrap_or_default(),
                shards,
                capacity,
            ),
        }
    }
}

/// Splits a global epoch selection into per-shard install lists,
/// replicating [`BatchCache::install_epoch`]'s semantics: duplicates are
/// kept once, and selection beyond `capacity` distinct keys is dropped
/// in iteration order. Installing `parts[s]` into shard `s`'s cache is
/// then exactly the global install restricted to that shard.
fn partition_selection(
    keys: impl IntoIterator<Item = u64>,
    shards: usize,
    capacity: usize,
) -> Vec<Vec<u64>> {
    let mut parts: Vec<Vec<u64>> = (0..shards).map(|_| Vec::new()).collect();
    let mut seen = U64Set::new();
    for key in keys {
        if seen.len() >= capacity {
            break;
        }
        if !seen.insert(key) {
            continue;
        }
        parts[shard_of(key, shards)].push(key);
    }
    parts
}

enum WorkerKind {
    Continuous(SieveStore),
    Discrete {
        shard: usize,
        book: DiscreteBook,
        /// This shard's slice of the global resident set. Sized to the
        /// full logical capacity so a partitioned install (≤ capacity
        /// keys in total across all shards) can never locally truncate.
        resident: BatchCache,
        contribute: Sender<(usize, Vec<u64>)>,
        /// `(day, blocks installed)` reports, drained by the coordinator
        /// after the replay — it never blocks on them.
        moved: Sender<(Day, u64)>,
    },
}

/// One shard's replay state: its policy slice plus its private metrics.
/// Lives behind [`ShardRig::state`]; whichever worker holds that lock
/// processes the shard's next message.
struct ShardState {
    kind: WorkerKind,
    days: Vec<DayMetrics>,
    occupancy: OccupancyTracker,
    /// Processed batches go back to the coordinator for reuse.
    recycle: Sender<Vec<Group>>,
}

fn day_slot(days: &mut Vec<DayMetrics>, day: Day) -> &mut DayMetrics {
    let idx = day.as_usize();
    if idx >= days.len() {
        days.resize(idx + 1, DayMetrics::default());
    }
    &mut days[idx]
}

impl ShardState {
    /// Executes one queue message. The caller holds the shard's state
    /// lock, so messages of one shard always run serialized and in FIFO
    /// order — the whole determinism argument rests on this.
    fn process(&mut self, msg: ToWorker) {
        match msg {
            ToWorker::Batch(mut groups) => {
                for g in &mut groups {
                    self.process_group(g);
                    g.blocks.clear();
                }
                // Return the batch for reuse; the coordinator may
                // already be gone during the final drain.
                let _ = self.recycle.send(groups);
            }
            ToWorker::Boundary => {
                if let WorkerKind::Discrete {
                    shard,
                    book,
                    contribute,
                    ..
                } = &mut self.kind
                {
                    contribute
                        .send((*shard, book.contribution()))
                        .expect("coordinator outlives workers");
                }
            }
            ToWorker::Install(day, selection) => {
                if let WorkerKind::Discrete {
                    resident, moved, ..
                } = &mut self.kind
                {
                    let transition = resident.install_epoch(selection);
                    // The coordinator drains these after the replay;
                    // it may already have stopped listening if a
                    // sibling worker panicked.
                    let _ = moved.send((day, transition.allocated.len() as u64));
                }
            }
        }
    }

    /// Mirrors `Run::process_request` for the shard's slice of one
    /// request. Page accounting rounds per fragment (see module docs).
    fn process_group(&mut self, g: &Group) {
        let mut read_hit_blocks = 0u64;
        let mut write_hit_blocks = 0u64;
        let mut alloc_blocks = 0u64;
        for &(key, t) in &g.blocks {
            let (hit, allocated) = match &mut self.kind {
                WorkerKind::Continuous(store) => {
                    let outcome = store.access(key, g.kind, t);
                    (outcome.is_hit(), outcome.is_allocation())
                }
                WorkerKind::Discrete { book, resident, .. } => {
                    book.record(key);
                    // Discrete misses never allocate mid-epoch.
                    (resident.contains(key), false)
                }
            };
            day_slot(&mut self.days, g.day).record_access(g.kind, hit, allocated);
            if hit {
                if g.kind.is_read() {
                    read_hit_blocks += 1;
                } else {
                    write_hit_blocks += 1;
                }
            }
            if allocated {
                alloc_blocks += 1;
            }
        }
        let bpp = BLOCKS_PER_PAGE as u64;
        if read_hit_blocks > 0 {
            self.occupancy
                .record_read_pages(g.minute, read_hit_blocks.div_ceil(bpp));
        }
        if write_hit_blocks > 0 {
            self.occupancy
                .record_write_pages(g.minute, write_hit_blocks.div_ceil(bpp));
        }
        if alloc_blocks > 0 {
            self.occupancy
                .record_write_pages(g.completion_minute, alloc_blocks.div_ceil(bpp));
        }
    }
}

/// Pending messages for one shard; `closed` once the coordinator has
/// pushed the trace's last message.
struct ShardQueue {
    items: VecDeque<ToWorker>,
    closed: bool,
}

/// One shard's bounded work queue paired with its replay state. Any
/// worker may execute the shard's next message, but only while holding
/// `state` — and the pop happens under that same lock, so per-shard
/// FIFO order is independent of which thread runs it (see module docs).
struct ShardRig {
    queue: Mutex<ShardQueue>,
    /// Signals both directions on `queue`: workers wait here for work,
    /// the coordinator waits here for queue space.
    cond: Condvar,
    state: Mutex<ShardState>,
}

/// How long an idle worker parks before rescanning every queue for
/// stealable work.
const IDLE_WAIT: Duration = Duration::from_millis(1);
/// How long a backpressured push waits between worker-health checks.
const PUSH_WAIT: Duration = Duration::from_millis(50);

impl ShardRig {
    fn new(state: ShardState) -> Self {
        ShardRig {
            queue: Mutex::new(ShardQueue {
                items: VecDeque::new(),
                closed: false,
            }),
            cond: Condvar::new(),
            state: Mutex::new(state),
        }
    }

    /// Enqueues one message, blocking while the queue holds
    /// [`CHANNEL_DEPTH`] messages (the backpressure bound that keeps
    /// replay memory fixed).
    ///
    /// # Errors
    ///
    /// Fails if a worker panicked mid-replay (poisoned shard state):
    /// with no worker left to drain, a full queue would otherwise block
    /// the coordinator forever.
    fn push(&self, msg: ToWorker) -> Result<(), SieveError> {
        let mut q = self.queue.lock().expect("queue lock");
        while q.items.len() >= CHANNEL_DEPTH {
            if self.state.is_poisoned() {
                return Err(SieveError::InvalidConfig("replay worker panicked".into()));
            }
            q = self.cond.wait_timeout(q, PUSH_WAIT).expect("queue lock").0;
        }
        q.items.push_back(msg);
        self.cond.notify_all();
        Ok(())
    }

    /// Marks the queue complete; workers exit once every queue is both
    /// closed and empty.
    fn close(&self) {
        self.queue.lock().expect("queue lock").closed = true;
        self.cond.notify_all();
    }

    /// Messages currently queued (the batch tuner's occupancy sample).
    fn queued(&self) -> usize {
        self.queue.lock().expect("queue lock").items.len()
    }

    /// Whether this shard can never produce work again.
    fn drained(&self) -> bool {
        let q = self.queue.lock().expect("queue lock");
        q.closed && q.items.is_empty()
    }
}

/// Outcome of one attempt to run a shard's next message.
enum Take {
    /// One message was executed under the shard's state lock.
    Processed,
    /// The queue had nothing to run.
    Empty,
    /// Another worker holds the shard's state (steal attempts only).
    Busy,
}

/// Pops and executes at most one message from `rig`. The state lock is
/// taken *first* and held across both the pop and the processing — that
/// is the whole determinism argument — and exactly one message runs per
/// acquisition, so a stalled owner's stealers (or a stealing owner's
/// returns) interleave at message granularity instead of waiting out a
/// whole batch backlog.
fn try_process_one(rig: &ShardRig, steal: bool) -> Take {
    let mut state = if steal {
        match rig.state.try_lock() {
            Ok(guard) => guard,
            Err(TryLockError::WouldBlock) => return Take::Busy,
            Err(TryLockError::Poisoned(e)) => panic!("shard state poisoned: {e}"),
        }
    } else {
        rig.state.lock().expect("shard state poisoned")
    };
    let msg = {
        let mut q = rig.queue.lock().expect("queue lock");
        match q.items.pop_front() {
            Some(msg) => {
                // Wake the coordinator (queue space freed) before the
                // potentially long processing step.
                rig.cond.notify_all();
                msg
            }
            None => return Take::Empty,
        }
    };
    state.process(msg);
    Take::Processed
}

/// One replay worker: drains its own shard's queue, then steals single
/// messages from loaded siblings, and exits once every queue is closed
/// and empty. `stall` is the imbalance test hook — it sleeps before
/// each own-queue attempt, outside all locks, so the worker's queue
/// backs up and siblings must steal to keep the replay moving.
fn worker_loop(id: usize, rigs: &[ShardRig], steals: &AtomicU64, stall: Option<Duration>) {
    let own = &rigs[id];
    loop {
        // Own queue first: in the balanced case this is the whole loop
        // and the state lock is uncontended.
        loop {
            if let Some(nap) = stall {
                std::thread::sleep(nap);
            }
            match try_process_one(own, false) {
                Take::Processed => continue,
                Take::Empty | Take::Busy => break,
            }
        }
        // Steal sweep: at most one message from the first available
        // sibling, then back to the own queue (its backlog, if one
        // appeared meanwhile, has priority).
        let mut stole = false;
        for offset in 1..rigs.len() {
            let victim = &rigs[(id + offset) % rigs.len()];
            if matches!(try_process_one(victim, true), Take::Processed) {
                steals.fetch_add(1, Ordering::Relaxed);
                stole = true;
                break;
            }
        }
        if stole {
            continue;
        }
        if rigs.iter().all(ShardRig::drained) {
            return;
        }
        // Nothing runnable anywhere right now: park briefly on the own
        // queue's condvar (pushes notify it) and rescan.
        let waited = obs_enabled!().then(std::time::Instant::now);
        let q = own.queue.lock().expect("queue lock");
        if q.items.is_empty() && !q.closed {
            let _ = own.cond.wait_timeout(q, IDLE_WAIT).expect("queue lock");
        }
        if let Some(started) = waited {
            obs_observe!(ReplayChannelWaitNanos, started.elapsed().as_nanos() as u64);
        }
    }
}

/// Receives one epoch contribution during the day-boundary gather,
/// watching for worker panics: the shard states live in coordinator-
/// owned rigs, so a dead worker no longer disconnects the channel and a
/// plain `recv` could block forever.
fn recv_contribution(
    rx: &Receiver<(usize, Vec<u64>)>,
    rigs: &[ShardRig],
) -> Result<(usize, Vec<u64>), SieveError> {
    loop {
        match rx.try_recv() {
            Ok(pair) => return Ok(pair),
            Err(TryRecvError::Disconnected) => {
                return Err(SieveError::InvalidConfig("replay worker panicked".into()));
            }
            Err(TryRecvError::Empty) => {
                if rigs.iter().any(|r| r.state.is_poisoned()) {
                    return Err(SieveError::InvalidConfig("replay worker panicked".into()));
                }
                std::thread::sleep(Duration::from_micros(100));
            }
        }
    }
}

/// Simulates one policy over the whole trace with `shards` parallel
/// workers, returning the merged result and the replay statistics.
///
/// # Errors
///
/// Returns [`SieveError::InvalidConfig`] for a zero shard count, an
/// invalid policy configuration, an unsatisfiable metastate split (e.g.
/// `shards` not dividing SieveStore-C's IMCT), or a worker panic.
pub fn simulate_sharded(
    trace: &SyntheticTrace,
    spec: PolicySpec,
    cfg: &SimConfig,
    shards: usize,
) -> Result<(SimResult, ReplayStats), SieveError> {
    run_sharded(trace, None, spec, cfg, shards, None)
}

/// Sharded variant of [`crate::simulate_server`]: replays a single
/// server's slice of the trace.
///
/// # Errors
///
/// As [`simulate_sharded`].
pub fn simulate_server_sharded(
    trace: &SyntheticTrace,
    server_idx: usize,
    spec: PolicySpec,
    cfg: &SimConfig,
    shards: usize,
) -> Result<(SimResult, ReplayStats), SieveError> {
    run_sharded(trace, Some(server_idx), spec, cfg, shards, None)
}

/// Test hook: as [`simulate_sharded`], but worker `stall_worker` sleeps
/// `stall` before each of its own-queue messages, forcing the queue
/// imbalance that work-stealing exists to fix. Metrics must stay
/// byte-identical to the unstalled replay; only [`ReplayStats::steals`]
/// changes.
#[doc(hidden)]
pub fn simulate_sharded_with_stall(
    trace: &SyntheticTrace,
    spec: PolicySpec,
    cfg: &SimConfig,
    shards: usize,
    stall_worker: usize,
    stall: Duration,
) -> Result<(SimResult, ReplayStats), SieveError> {
    run_sharded(trace, None, spec, cfg, shards, Some((stall_worker, stall)))
}

fn run_sharded(
    trace: &SyntheticTrace,
    server: Option<usize>,
    spec: PolicySpec,
    cfg: &SimConfig,
    shards: usize,
    stall: Option<(usize, Duration)>,
) -> Result<(SimResult, ReplayStats), SieveError> {
    if shards == 0 {
        return Err(SieveError::InvalidConfig(
            "replay shard count must be > 0".into(),
        ));
    }
    if cfg.capacity_blocks == 0 {
        return Err(SieveError::InvalidConfig(
            "cache capacity must be nonzero".into(),
        ));
    }
    crate::engine::validate_scenario(trace, cfg)?;
    if server.is_some() && cfg.trace_stream.scenario.moves_across_servers() {
        return Err(SieveError::InvalidConfig(
            "cross-server scenario stages (failover) cannot replay a single server's slice".into(),
        ));
    }
    let total_minutes = trace.days() as usize * 24 * 60;
    let name: Arc<str> = Arc::from(spec.name());
    let fresh_tracker = || {
        OccupancyTracker::new(cfg.ssd.clone(), total_minutes)
            .with_load_multiplier(cfg.load_multiplier)
    };

    // Coordinator-side discrete state: the epoch selection plan. The
    // epoch caches themselves live on the workers, one hash-partition
    // each. `None` for continuous policies.
    let mut plan: Option<BatchPlan> = match &spec {
        PolicySpec::SieveStoreD { threshold } => {
            // Validate exactly as the sequential builder would.
            DiscreteSieve::new(InMemoryCounter::new(), *threshold)?;
            Some(BatchPlan::SieveD)
        }
        PolicySpec::RandSieveBlkD { fraction, seed } => {
            RandSieveBlkD::new(*fraction, *seed)?;
            Some(BatchPlan::BlkD {
                fraction: *fraction,
                seed: *seed,
                epoch: 0,
            })
        }
        PolicySpec::IdealTop1 { selections } => Some(BatchPlan::Ideal {
            selections: selections.clone(),
        }),
        _ => None,
    };

    let (contrib_tx, contrib_rx) = channel::unbounded::<(usize, Vec<u64>)>();
    let (moved_tx, moved_rx) = channel::unbounded::<(Day, u64)>();
    let (recycle_tx, recycle_rx) = channel::unbounded::<Vec<Group>>();
    let mut rigs = Vec::with_capacity(shards);
    for s in 0..shards {
        let kind = if plan.is_none() {
            WorkerKind::Continuous(
                SieveStoreBuilder::new()
                    .capacity_blocks(cfg.capacity_blocks)
                    .policy(spec.clone())
                    .eviction(cfg.eviction)
                    .shard(s, shards)
                    .build()?,
            )
        } else {
            let book = match &spec {
                PolicySpec::SieveStoreD { threshold } => DiscreteBook::SieveD {
                    sieve: DiscreteSieve::new(cfg.counting.counter()?, *threshold)?,
                    counting: cfg.counting.clone(),
                },
                PolicySpec::RandSieveBlkD { .. } => DiscreteBook::BlkD(U64Set::new()),
                _ => DiscreteBook::Ideal,
            };
            WorkerKind::Discrete {
                shard: s,
                book,
                resident: BatchCache::new(cfg.capacity_blocks),
                contribute: contrib_tx.clone(),
                moved: moved_tx.clone(),
            }
        };
        rigs.push(ShardRig::new(ShardState {
            kind,
            days: Vec::new(),
            occupancy: fresh_tracker(),
            recycle: recycle_tx.clone(),
        }));
    }
    drop(contrib_tx);
    drop(moved_tx);
    drop(recycle_tx);

    let steals = AtomicU64::new(0);
    let mut per_shard_blocks = vec![0u64; shards];

    let scope_result = thread::scope(|scope| {
        for id in 0..shards {
            let rigs = &rigs;
            let steals = &steals;
            let nap = match stall {
                Some((worker, nap)) if worker == id => Some(nap),
                _ => None,
            };
            scope.spawn(move |_| worker_loop(id, rigs, steals, nap));
        }

        // The coordinator body runs on this thread; its error (stream
        // failure or worker panic) is captured so the queues still
        // close and the scope still joins before it propagates.
        let coordinate = || -> Result<(), SieveError> {
            let mut stream = match server {
                Some(idx) => trace.stream_server(idx, cfg.trace_stream.clone()),
                None => trace.stream(cfg.trace_stream.clone()),
            };
            let mut pending: Vec<Vec<Group>> = (0..shards).map(|_| Vec::new()).collect();
            let mut scratch: Vec<Vec<(u64, Micros)>> = (0..shards).map(|_| Vec::new()).collect();
            let mut pool = BufferPool::new(recycle_rx);
            let mut tuner = BatchTuner::new();
            // Chunks always follow their day's `StartDay`, so this
            // placeholder is overwritten before any group is built.
            let mut day = Day::new(0);
            while let Some(msg) = stream.next_msg() {
                match msg {
                    StreamMsg::StartDay(d) => {
                        day = d;
                        obs_count!(ReplayDayBoundaries, 1);
                        tuner.observe_day_boundary();
                        if let Some(plan) = plan.as_mut() {
                            let barrier_started = obs_enabled!().then(std::time::Instant::now);
                            // Boundary barrier: drain in-flight work and
                            // gather every shard's epoch contribution —
                            // the gather is the only blocking step. Each
                            // shard then installs its partition of the
                            // merged selection into its local epoch
                            // cache and reports the install size
                            // asynchronously.
                            for (rig, groups) in rigs.iter().zip(&mut pending) {
                                if !groups.is_empty() {
                                    obs_count!(ReplayBatchesSent, 1);
                                    rig.push(ToWorker::Batch(std::mem::take(groups)))?;
                                }
                                rig.push(ToWorker::Boundary)?;
                            }
                            let mut contributions: Vec<Vec<u64>> =
                                (0..shards).map(|_| Vec::new()).collect();
                            for _ in 0..shards {
                                let (shard, contribution) = recv_contribution(&contrib_rx, &rigs)?;
                                contributions[shard] = contribution;
                            }
                            let parts = plan.select_sharded(
                                day,
                                contributions,
                                shards,
                                cfg.capacity_blocks,
                            );
                            for (rig, part) in rigs.iter().zip(parts) {
                                rig.push(ToWorker::Install(day, part))?;
                            }
                            if let Some(started) = barrier_started {
                                obs_observe!(
                                    ReplayDayBarrierNanos,
                                    started.elapsed().as_nanos() as u64
                                );
                            }
                        }
                    }
                    StreamMsg::Chunk(requests) => {
                        for req in &requests {
                            pool.reclaim();
                            route_request(req, shards, &mut scratch);
                            for s in 0..shards {
                                if scratch[s].is_empty() {
                                    continue;
                                }
                                per_shard_blocks[s] += scratch[s].len() as u64;
                                obs_count!(ReplayEventsRouted, scratch[s].len() as u64);
                                // Swap the routed blocks into a recycled
                                // group: the group's cleared buffer
                                // becomes the next request's scratch, so
                                // neither side ever reallocates.
                                let mut group = pool.group(day, req);
                                std::mem::swap(&mut group.blocks, &mut scratch[s]);
                                pending[s].push(group);
                                if pending[s].len() >= tuner.target() {
                                    let replacement = pool.batch();
                                    obs_count!(ReplayBatchesSent, 1);
                                    tuner.observe_send(rigs[s].queued());
                                    rigs[s].push(ToWorker::Batch(std::mem::replace(
                                        &mut pending[s],
                                        replacement,
                                    )))?;
                                }
                            }
                        }
                        stream.recycle(requests);
                    }
                    StreamMsg::Failed(e) => return Err(e),
                }
            }
            for (rig, groups) in rigs.iter().zip(&mut pending) {
                if !groups.is_empty() {
                    obs_count!(ReplayBatchesSent, 1);
                    rig.push(ToWorker::Batch(std::mem::take(groups)))?;
                }
            }
            Ok(())
        };
        let result = coordinate();
        // Close every queue — on success *and* on error — so the
        // workers drain and exit and the scope can join.
        for rig in &rigs {
            rig.close();
        }
        result
    });
    match scope_result {
        Ok(result) => result?,
        // A worker panic unwinds through the scope (its queue state is
        // unrecoverable); surface it as a replay error.
        Err(_) => {
            return Err(SieveError::InvalidConfig("replay worker panicked".into()));
        }
    }

    let mut shard_results = Vec::with_capacity(shards);
    for rig in rigs {
        let state = rig
            .state
            .into_inner()
            .map_err(|_| SieveError::InvalidConfig("replay worker panicked".into()))?;
        shard_results.push((state.days, state.occupancy));
    }

    let mut days: Vec<DayMetrics> = Vec::new();
    let mut occupancy = fresh_tracker();
    // Workers have joined, so every per-shard install report is queued.
    // Sum them per day and account exactly as the sequential engine
    // does: the day's batch_allocations plus (optionally) the moved
    // pages spread over the boundary hour — total first, then one
    // page-rounding, so the occupancy series matches the sequential
    // charge at any shard count.
    let mut moved_by_day: Vec<u64> = Vec::new();
    while let Ok((day, moved)) = moved_rx.try_recv() {
        let idx = day.as_usize();
        if idx >= moved_by_day.len() {
            moved_by_day.resize(idx + 1, 0);
        }
        moved_by_day[idx] += moved;
    }
    for (idx, &moved) in moved_by_day.iter().enumerate() {
        let day = Day::new(idx as u16);
        day_slot(&mut days, day).batch_allocations = moved;
        if cfg.charge_batch_moves && moved > 0 {
            // Spread the moves evenly over the first hour of the day,
            // exactly as the sequential engine does.
            let pages = moved.div_ceil(BLOCKS_PER_PAGE as u64);
            let start = day.start().minute();
            let per_minute = pages.div_ceil(60);
            for m in 0..60u32 {
                let minute = Minute::new(start.index() + m);
                let chunk = per_minute.min(pages.saturating_sub(per_minute * m as u64));
                if chunk == 0 {
                    break;
                }
                occupancy.record_write_pages(minute, chunk);
            }
        }
    }
    for (shard_days, shard_occ) in shard_results {
        if shard_days.len() > days.len() {
            days.resize(shard_days.len(), DayMetrics::default());
        }
        for (total, d) in days.iter_mut().zip(&shard_days) {
            total.merge(d);
        }
        occupancy.merge(&shard_occ);
    }
    Ok((
        SimResult {
            policy: name,
            capacity_blocks: cfg.capacity_blocks,
            days,
            occupancy,
        },
        ReplayStats {
            per_shard_blocks,
            steals: steals.load(Ordering::Relaxed),
        },
    ))
}

/// Splits one request's blocks into per-shard `(key, access time)` runs,
/// preserving request order within each shard.
fn route_request(req: &Request, shards: usize, scratch: &mut [Vec<(u64, Micros)>]) {
    for (i, key) in req.blocks().enumerate() {
        let raw = key.raw();
        scratch[shard_of(raw, shards)].push((raw, req.block_completion_time(i as u32)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate;
    use sievestore_sieve::TwoTierConfig;
    use sievestore_trace::EnsembleConfig;

    fn tiny() -> SyntheticTrace {
        SyntheticTrace::new(EnsembleConfig::tiny(11)).unwrap()
    }

    fn cfg(trace: &SyntheticTrace, capacity: usize) -> SimConfig {
        SimConfig::paper_16gb(trace.config().scale.denominator()).with_capacity_blocks(capacity)
    }

    #[test]
    fn threads_helper_picks_mode() {
        assert_eq!(ReplayMode::threads(0), ReplayMode::Sequential);
        assert_eq!(ReplayMode::threads(1), ReplayMode::Sequential);
        assert_eq!(ReplayMode::threads(4), ReplayMode::Sharded(4));
        assert_eq!(ReplayMode::Sharded(4).worker_count(), 4);
        assert_eq!(ReplayMode::default(), ReplayMode::Sequential);
    }

    #[test]
    fn zero_shards_is_rejected() {
        let trace = tiny();
        let err = simulate_sharded(&trace, PolicySpec::Aod, &cfg(&trace, 1024), 0);
        assert!(err.is_err());
    }

    #[test]
    fn one_shard_matches_sequential_exactly_including_occupancy() {
        let trace = tiny();
        let c = cfg(&trace, 4096);
        for spec in [
            PolicySpec::Aod,
            PolicySpec::SieveStoreD { threshold: 5 },
            PolicySpec::RandSieveC {
                probability: 0.01,
                seed: 3,
            },
        ] {
            let seq = simulate(&trace, spec.clone(), &c).unwrap();
            let (sharded, stats) = simulate_sharded(&trace, spec, &c, 1).unwrap();
            assert_eq!(seq.days, sharded.days);
            assert_eq!(stats.per_shard_blocks.len(), 1);
            for m in 0..seq
                .occupancy
                .len_minutes()
                .max(sharded.occupancy.len_minutes())
            {
                let minute = Minute::new(m as u32);
                assert_eq!(
                    seq.occupancy.load(minute),
                    sharded.occupancy.load(minute),
                    "minute {m}"
                );
            }
        }
    }

    #[test]
    fn discrete_metrics_are_identical_at_any_shard_count() {
        let trace = tiny();
        let c = cfg(&trace, 16384).with_charge_batch_moves(true);
        let seq = simulate(&trace, PolicySpec::SieveStoreD { threshold: 5 }, &c).unwrap();
        for shards in [2usize, 4, 8] {
            let (sharded, stats) =
                simulate_sharded(&trace, PolicySpec::SieveStoreD { threshold: 5 }, &c, shards)
                    .unwrap();
            assert_eq!(seq.days, sharded.days, "{shards} shards");
            assert_eq!(stats.per_shard_blocks.len(), shards);
            assert_eq!(stats.total_blocks(), seq.total().accesses());
            assert!(stats.imbalance() >= 1.0);
        }
    }

    #[test]
    fn continuous_sieve_matches_with_ample_capacity() {
        let trace = tiny();
        let c = cfg(&trace, 1 << 20);
        let spec =
            PolicySpec::SieveStoreC(TwoTierConfig::paper_default().with_imct_entries(1 << 12));
        let seq = simulate(&trace, spec.clone(), &c).unwrap();
        for shards in [2usize, 4] {
            let (sharded, _) = simulate_sharded(&trace, spec.clone(), &c, shards).unwrap();
            assert_eq!(seq.days, sharded.days, "{shards} shards");
        }
    }

    #[test]
    fn server_slice_replays_shard_identically() {
        let trace = tiny();
        // Ample capacity: continuous-policy equality needs the
        // no-eviction regime (see module docs).
        let c = cfg(&trace, 1 << 20);
        let seq = crate::engine::simulate_server(&trace, 0, PolicySpec::Wmna, &c).unwrap();
        let (sharded, _) = simulate_server_sharded(&trace, 0, PolicySpec::Wmna, &c, 4).unwrap();
        assert_eq!(seq.days, sharded.days);
    }

    #[test]
    fn partition_selection_matches_a_global_install() {
        // Duplicates plus more distinct keys than capacity: the
        // partition must keep exactly what one global `install_epoch`
        // would — same dedupe, same in-order truncation.
        let capacity = 8;
        let shards = 3;
        let selection: Vec<u64> = vec![5, 9, 5, 1, 14, 2, 2, 7, 21, 33, 8, 40, 41, 42];
        let mut global = BatchCache::new(capacity);
        let global_install = global.install_epoch(selection.clone());

        let parts = partition_selection(selection, shards, capacity);
        assert_eq!(parts.len(), shards);
        let mut installed: Vec<u64> = Vec::new();
        for (s, part) in parts.into_iter().enumerate() {
            for &key in &part {
                assert_eq!(shard_of(key, shards), s, "key {key} routed wrong");
            }
            // Full logical capacity, as in the sharded engine: local
            // installs never truncate.
            let mut local = BatchCache::new(capacity);
            installed.extend(local.install_epoch(part).allocated);
        }
        installed.sort_unstable();
        let mut expected = global_install.allocated.clone();
        expected.sort_unstable();
        assert_eq!(installed, expected);
        assert_eq!(installed.len(), capacity);
    }

    #[test]
    fn tuner_grows_on_empty_channels_and_clamps_at_max() {
        let mut tuner = BatchTuner::new();
        assert_eq!(tuner.target(), START_GROUPS);
        for _ in 0..TUNE_WINDOW {
            tuner.observe_send(0);
        }
        assert_eq!(tuner.target(), START_GROUPS * 2);
        for _ in 0..10 * TUNE_WINDOW {
            tuner.observe_send(0);
        }
        assert_eq!(tuner.target(), MAX_GROUPS);
    }

    #[test]
    fn tuner_shrinks_on_full_channels_and_clamps_at_min() {
        let mut tuner = BatchTuner::new();
        for _ in 0..10 * TUNE_WINDOW {
            tuner.observe_send(CHANNEL_DEPTH - 1);
        }
        assert_eq!(tuner.target(), MIN_GROUPS);
    }

    #[test]
    fn tuner_holds_steady_on_mixed_occupancy() {
        let mut tuner = BatchTuner::new();
        for i in 0..TUNE_WINDOW {
            // Neither mostly-empty nor mostly-full.
            tuner.observe_send(if i % 4 == 0 { 0 } else { 2 });
        }
        assert_eq!(tuner.target(), START_GROUPS);
    }

    #[test]
    fn tuner_latency_deltas_steer_batch_size() {
        use sievestore_types::obs::HistogramSnapshot;
        let mut tuner = BatchTuner::new();
        let quiet = HistogramSnapshot::empty();

        // Expensive channel waits (median 2^17 ns ≥ HIGH_WAIT_NS):
        // workers starve between batches, so the batch grows.
        let mut slow_wait = HistogramSnapshot::empty();
        slow_wait.buckets[18] = 100;
        tuner.retune_from_latency(&slow_wait, &quiet);
        assert_eq!(tuner.target(), START_GROUPS * 2);

        // Expensive barriers (median 2^24 ns ≥ HIGH_BARRIER_NS) while
        // waits stay cheap: boundary drains dominate, so it shrinks.
        let mut cheap_wait = HistogramSnapshot::empty();
        cheap_wait.buckets[4] = 100;
        let mut slow_barrier = HistogramSnapshot::empty();
        slow_barrier.buckets[25] = 10;
        tuner.retune_from_latency(&cheap_wait, &slow_barrier);
        assert_eq!(tuner.target(), START_GROUPS);

        // No samples this day: hold position.
        tuner.retune_from_latency(&quiet, &quiet);
        assert_eq!(tuner.target(), START_GROUPS);
    }

    #[test]
    fn imbalance_of_empty_stats_is_one() {
        assert_eq!(ReplayStats::default().imbalance(), 1.0);
        let stats = ReplayStats {
            per_shard_blocks: vec![30, 10],
            steals: 0,
        };
        assert_eq!(stats.total_blocks(), 40);
        assert!((stats.imbalance() - 1.5).abs() < 1e-12);
    }
}
