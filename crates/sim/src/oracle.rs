//! Oracle pre-passes over the trace.
//!
//! The ideal configurations in the paper are clairvoyant: they know each
//! day's most-accessed blocks in advance. These helpers scan the trace
//! once per day and produce the per-day top-fraction selections used by
//! the `Ideal` policy and the §5.3 per-server comparison.

use std::collections::HashMap;

use sievestore_trace::SyntheticTrace;
use sievestore_types::Day;

/// Per-day block access counts plus derived top-fraction selections.
#[derive(Debug, Clone, Default)]
pub struct DayCounts {
    counts: HashMap<u64, u64>,
    total_accesses: u64,
}

impl DayCounts {
    /// Builds counts from an iterator of `(block, n)` increments.
    pub fn from_blocks(blocks: impl Iterator<Item = u64>) -> Self {
        let mut counts: HashMap<u64, u64> = HashMap::new();
        let mut total = 0;
        for b in blocks {
            *counts.entry(b).or_insert(0) += 1;
            total += 1;
        }
        DayCounts {
            counts,
            total_accesses: total,
        }
    }

    /// Number of distinct blocks accessed.
    pub fn unique_blocks(&self) -> usize {
        self.counts.len()
    }

    /// Total block accesses.
    pub fn total_accesses(&self) -> u64 {
        self.total_accesses
    }

    /// The most-accessed `fraction` of distinct blocks (ties broken by
    /// key), plus the number of accesses they cover.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not in `[0, 1]`.
    pub fn top_fraction(&self, fraction: f64) -> (Vec<u64>, u64) {
        assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0,1]");
        let n = (self.counts.len() as f64 * fraction).round() as usize;
        let mut all: Vec<(u64, u64)> = self.counts.iter().map(|(&k, &c)| (k, c)).collect();
        all.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        all.truncate(n);
        let covered = all.iter().map(|&(_, c)| c).sum();
        (all.into_iter().map(|(k, _)| k).collect(), covered)
    }

    /// Access count for a block (0 if untouched).
    pub fn get(&self, key: u64) -> u64 {
        self.counts.get(&key).copied().unwrap_or(0)
    }
}

/// One day's worth of per-block counting over the whole ensemble.
pub fn day_counts(trace: &SyntheticTrace, day: Day) -> DayCounts {
    DayCounts::from_blocks(
        trace
            .day_requests(day)
            .iter()
            .flat_map(|r| r.blocks().map(|b| b.raw())),
    )
}

/// One day's counting restricted to a single server.
pub fn server_day_counts(trace: &SyntheticTrace, server_idx: usize, day: Day) -> DayCounts {
    DayCounts::from_blocks(
        trace
            .server_day(server_idx, day)
            .iter()
            .flat_map(|r| r.blocks().map(|b| b.raw())),
    )
}

/// The clairvoyant per-day selections for the `Ideal` policy: each day's
/// top `fraction` (paper: 1 %) most-accessed blocks across the ensemble.
///
/// Returns `(selections, covered_accesses, total_accesses)` — the latter
/// two per day, for normalizing Figure 5's ideal bar.
pub fn ideal_top_selections(
    trace: &SyntheticTrace,
    fraction: f64,
) -> (Vec<Vec<u64>>, Vec<u64>, Vec<u64>) {
    let mut selections = Vec::with_capacity(trace.days() as usize);
    let mut covered = Vec::with_capacity(trace.days() as usize);
    let mut totals = Vec::with_capacity(trace.days() as usize);
    for d in 0..trace.days() {
        let counts = day_counts(trace, Day::new(d));
        let (sel, cov) = counts.top_fraction(fraction);
        totals.push(counts.total_accesses());
        covered.push(cov);
        selections.push(sel);
    }
    (selections, covered, totals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sievestore_trace::EnsembleConfig;

    #[test]
    fn counts_and_top_fraction() {
        let blocks = [1u64, 1, 1, 2, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11];
        let counts = DayCounts::from_blocks(blocks.iter().copied());
        assert_eq!(counts.unique_blocks(), 11);
        assert_eq!(counts.total_accesses(), 14);
        assert_eq!(counts.get(1), 3);
        assert_eq!(counts.get(99), 0);
        // Top ~18% of 11 blocks = 2 blocks: 1 (3 accesses) and 2 (2).
        let (top, covered) = counts.top_fraction(0.18);
        assert_eq!(top, vec![1, 2]);
        assert_eq!(covered, 5);
    }

    #[test]
    fn top_fraction_edges() {
        let counts = DayCounts::from_blocks([1u64, 2, 3].into_iter());
        let (none, c0) = counts.top_fraction(0.0);
        assert!(none.is_empty());
        assert_eq!(c0, 0);
        let (all, call) = counts.top_fraction(1.0);
        assert_eq!(all.len(), 3);
        assert_eq!(call, 3);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn bad_fraction_panics() {
        let counts = DayCounts::from_blocks([1u64].into_iter());
        let _ = counts.top_fraction(1.5);
    }

    #[test]
    fn ideal_selections_cover_all_days_and_are_consistent() {
        let trace = SyntheticTrace::new(EnsembleConfig::tiny(3)).unwrap();
        let (sel, covered, totals) = ideal_top_selections(&trace, 0.01);
        assert_eq!(sel.len(), trace.days() as usize);
        assert_eq!(covered.len(), totals.len());
        for d in 0..sel.len() {
            assert!(covered[d] <= totals[d]);
            assert!(!sel[d].is_empty(), "day {d} selection empty");
            // The skew means the top 1% covers far more than 1% of accesses.
            let share = covered[d] as f64 / totals[d] as f64;
            assert!(share > 0.02, "day {d} top-1% share {share}");
        }
    }

    #[test]
    fn server_counts_partition_ensemble_counts() {
        let trace = SyntheticTrace::new(EnsembleConfig::tiny(3)).unwrap();
        let day = Day::new(1);
        let ensemble = day_counts(&trace, day);
        let per_server: u64 = (0..trace.config().servers.len())
            .map(|s| server_day_counts(&trace, s, day).total_accesses())
            .sum();
        assert_eq!(ensemble.total_accesses(), per_server);
    }
}
