//! Backing storage for the appliance: the "storage ensemble" behind the
//! cache.
//!
//! In deployment the SieveStore node forwards cache misses to the
//! ensemble's real block devices (iSCSI targets in the paper's Figure 4).
//! Here the ensemble is abstracted as [`BackingStore`], with two
//! implementations: an in-memory map for tests and demos, and a
//! sparse-file store that persists blocks on local disk.
//!
//! Unwritten blocks read as zeroes, like a fresh disk.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;

use parking_lot::Mutex;
use sievestore_types::BLOCK_SIZE;

/// One 512-byte block payload.
pub type Block = [u8; BLOCK_SIZE];

/// The storage behind the cache; implementations must be thread-safe.
pub trait BackingStore: Send + Sync {
    /// Reads one block (zeroes if never written).
    ///
    /// # Errors
    ///
    /// Propagates underlying storage failures.
    fn read_block(&self, key: u64) -> io::Result<Block>;

    /// Writes one block.
    ///
    /// # Errors
    ///
    /// Propagates underlying storage failures.
    fn write_block(&self, key: u64, data: &Block) -> io::Result<()>;
}

/// Shared handles to a store are stores themselves: the sharded node
/// server hands each shard worker an `Arc` of the one ensemble.
impl<B: BackingStore + ?Sized> BackingStore for std::sync::Arc<B> {
    fn read_block(&self, key: u64) -> io::Result<Block> {
        (**self).read_block(key)
    }

    fn write_block(&self, key: u64, data: &Block) -> io::Result<()> {
        (**self).write_block(key, data)
    }
}

/// A purely in-memory ensemble (tests, examples, simulations).
///
/// # Examples
///
/// ```
/// use sievestore_node::{BackingStore, MemBacking};
///
/// let backing = MemBacking::new();
/// assert_eq!(backing.read_block(9).unwrap(), [0u8; 512]);
/// backing.write_block(9, &[7u8; 512]).unwrap();
/// assert_eq!(backing.read_block(9).unwrap(), [7u8; 512]);
/// ```
#[derive(Debug, Default)]
pub struct MemBacking {
    blocks: Mutex<HashMap<u64, Box<Block>>>,
}

impl MemBacking {
    /// Creates an empty (all-zero) store.
    pub fn new() -> Self {
        MemBacking::default()
    }

    /// Number of blocks ever written.
    pub fn len(&self) -> usize {
        self.blocks.lock().len()
    }

    /// Whether no block was ever written.
    pub fn is_empty(&self) -> bool {
        self.blocks.lock().is_empty()
    }
}

impl BackingStore for MemBacking {
    fn read_block(&self, key: u64) -> io::Result<Block> {
        Ok(self
            .blocks
            .lock()
            .get(&key)
            .map(|b| **b)
            .unwrap_or([0u8; BLOCK_SIZE]))
    }

    fn write_block(&self, key: u64, data: &Block) -> io::Result<()> {
        self.blocks.lock().insert(key, Box::new(*data));
        Ok(())
    }
}

/// A single sparse file holding blocks at `key * 512` offsets.
///
/// Keys are masked to 32 bits to bound file offsets (a 2 TiB address
/// space), which suffices for demos and tests; a production node would
/// route per-volume.
#[derive(Debug)]
pub struct FileBacking {
    file: Mutex<File>,
}

/// Keys are reduced to this many low bits for file placement.
const FILE_KEY_BITS: u32 = 32;

impl FileBacking {
    /// Opens (or creates) the backing file.
    ///
    /// # Errors
    ///
    /// Propagates file-creation failures.
    pub fn open(path: impl AsRef<Path>) -> io::Result<Self> {
        let file = OpenOptions::new()
            .create(true)
            .read(true)
            .write(true)
            .truncate(false)
            .open(path)?;
        Ok(FileBacking {
            file: Mutex::new(file),
        })
    }

    fn offset(key: u64) -> u64 {
        (key & ((1 << FILE_KEY_BITS) - 1)) * BLOCK_SIZE as u64
    }
}

impl BackingStore for FileBacking {
    fn read_block(&self, key: u64) -> io::Result<Block> {
        let mut file = self.file.lock();
        let len = file.metadata()?.len();
        let offset = Self::offset(key);
        let mut block = [0u8; BLOCK_SIZE];
        if offset >= len {
            return Ok(block); // beyond EOF: never written
        }
        file.seek(SeekFrom::Start(offset))?;
        // A partially-written tail still reads as zero-padded.
        let available = ((len - offset) as usize).min(BLOCK_SIZE);
        file.read_exact(&mut block[..available])?;
        Ok(block)
    }

    fn write_block(&self, key: u64, data: &Block) -> io::Result<()> {
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(Self::offset(key)))?;
        file.write_all(data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(fill: u8) -> Block {
        [fill; BLOCK_SIZE]
    }

    #[test]
    fn mem_backing_read_your_writes() {
        let b = MemBacking::new();
        assert!(b.is_empty());
        assert_eq!(b.read_block(1).unwrap(), block(0));
        b.write_block(1, &block(0xEE)).unwrap();
        b.write_block(2, &block(0x11)).unwrap();
        assert_eq!(b.read_block(1).unwrap(), block(0xEE));
        assert_eq!(b.read_block(2).unwrap(), block(0x11));
        assert_eq!(b.len(), 2);
        // Overwrite.
        b.write_block(1, &block(0x22)).unwrap();
        assert_eq!(b.read_block(1).unwrap(), block(0x22));
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn file_backing_round_trips_and_persists() {
        let dir = std::env::temp_dir().join(format!("sievestore-node-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("backing.img");
        {
            let b = FileBacking::open(&path).unwrap();
            assert_eq!(b.read_block(5).unwrap(), block(0));
            b.write_block(5, &block(0xAD)).unwrap();
            b.write_block(0, &block(0x01)).unwrap();
            assert_eq!(b.read_block(5).unwrap(), block(0xAD));
        }
        // Reopen: data persists; untouched keys still read zero.
        let b = FileBacking::open(&path).unwrap();
        assert_eq!(b.read_block(5).unwrap(), block(0xAD));
        assert_eq!(b.read_block(0).unwrap(), block(0x01));
        assert_eq!(b.read_block(3).unwrap(), block(0));
        // Keys are masked to 32 bits for file placement, so 1 << 40
        // aliases block 0 (documented behaviour of the demo store).
        assert_eq!(b.read_block(1 << 40).unwrap(), block(0x01));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_backing_sparse_reads_beyond_eof() {
        let dir = std::env::temp_dir().join(format!("sievestore-node2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let b = FileBacking::open(dir.join("sparse.img")).unwrap();
        // Reading far past any write returns zeroes, not an error.
        assert_eq!(b.read_block(1_000_000).unwrap(), block(0));
        b.write_block(10, &block(9)).unwrap();
        assert_eq!(b.read_block(11).unwrap(), block(0));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stores_are_shareable_across_threads() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MemBacking>();
        assert_send_sync::<FileBacking>();
    }
}
