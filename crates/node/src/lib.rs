//! SieveStore as a deployable appliance.
//!
//! The paper (Figure 4) envisions SieveStore as a transparent box on the
//! storage network: servers send block I/O to the node; hits are served
//! from its SSD, misses are forwarded to the underlying ensemble, and the
//! sieve decides which blocks earn a cache frame. This crate realizes
//! that physical organization, with TCP standing in for iSCSI:
//!
//! * [`protocol`] — the length-prefixed wire protocol, with typed
//!   [`ErrorCode`] replies and a [`NodeMode`] health indicator;
//! * [`BackingStore`] / [`MemBacking`] / [`FileBacking`] — the ensemble
//!   behind the cache;
//! * [`FaultInjectingBacking`] / [`FaultPlan`] — deterministic fault
//!   injection for exercising every failure path;
//! * [`DataCache`] — policy decisions wired to actual 512-byte payloads
//!   (write-through; the cache never holds the only copy);
//! * [`NodeServer`] / [`NodeClient`] — the TCP front end, one thread per
//!   connection, with per-request deadlines, a circuit breaker into
//!   degraded pass-through mode ([`NodeConfig`]) and client-side
//!   retries with reconnection ([`ClientConfig`], [`RetryPolicy`]).
//!
//! # Examples
//!
//! ```
//! use sievestore::PolicySpec;
//! use sievestore_node::{DataCache, MemBacking, NodeClient, NodeServerBuilder};
//!
//! # fn main() -> std::io::Result<()> {
//! let cache = DataCache::new(MemBacking::new(), PolicySpec::Aod, 1024)
//!     .expect("valid appliance");
//! let server = NodeServerBuilder::new("127.0.0.1:0").serve(cache)?;
//! let mut client = NodeClient::connect(server.addr())?;
//!
//! client.write_block(42, &[7u8; 512])?;
//! let (data, _hit) = client.read_block(42)?;
//! assert_eq!(data, [7u8; 512]);
//!
//! client.quit()?;
//! server.shutdown();
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod backing;
pub mod client;
pub mod durable;
mod engine;
pub mod faults;
pub mod protocol;
pub mod server;
pub mod sharded;
pub mod store;

pub use backing::{BackingStore, Block, FileBacking, MemBacking};
pub use client::{
    ClientConfig, Completion, NodeClient, NodeStats, OpResult, PipelinedClient, RetryPolicy,
};
pub use durable::{
    crc64, DurableMediaSet, DurableStore, FileMedia, Media, MemMedia, Recovery, RecoveryReport,
    ScrubPass,
};
pub use faults::{
    CrashHandle, CrashPlan, CrashPointMedia, FaultHandle, FaultInjectingBacking, FaultPlan,
    MediaImage,
};
pub use protocol::{ErrorCode, Incoming, NodeMode, PipedReply, PipedRequest, Reply, Request};
pub use server::{NodeConfig, NodeServer, NodeServerBuilder};
pub use sharded::ShardedNodeServer;
pub use store::{DataCache, DataOutcome, WritePolicy};
