//! A blocking client for the appliance's wire protocol.

use std::io::{self, BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};

use sievestore_types::BLOCK_SIZE;

use crate::protocol::{Reply, Request};

/// Appliance statistics as reported over the wire.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Read hits.
    pub read_hits: u64,
    /// Write hits.
    pub write_hits: u64,
    /// Read misses.
    pub read_misses: u64,
    /// Write misses.
    pub write_misses: u64,
    /// Allocation-writes performed.
    pub allocation_writes: u64,
    /// Blocks currently resident in the cache.
    pub resident_blocks: u64,
}

impl NodeStats {
    /// Hit ratio over all accesses (0 when idle).
    pub fn hit_ratio(&self) -> f64 {
        let hits = self.read_hits + self.write_hits;
        let total = hits + self.read_misses + self.write_misses;
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }
}

/// A blocking connection to a [`NodeServer`](crate::NodeServer).
///
/// See [`NodeServer`](crate::NodeServer) for an end-to-end example.
#[derive(Debug)]
pub struct NodeClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

fn unexpected(reply: Reply) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        match reply {
            Reply::Error { message } => format!("node error: {message}"),
            other => format!("unexpected reply {other:?}"),
        },
    )
}

impl NodeClient {
    /// Connects to a node.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(NodeClient {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
        })
    }

    /// Reads one block; returns the payload and whether the cache hit.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures and node-side errors.
    pub fn read_block(&mut self, key: u64) -> io::Result<([u8; BLOCK_SIZE], bool)> {
        Request::Read { key }.encode(&mut self.writer)?;
        match Reply::decode(&mut self.reader)? {
            Reply::Read { hit, data } => Ok((*data, hit)),
            other => Err(unexpected(other)),
        }
    }

    /// Writes one block (the node applies its configured write policy);
    /// returns whether the cache held the block.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures and node-side errors.
    pub fn write_block(&mut self, key: u64, data: &[u8; BLOCK_SIZE]) -> io::Result<bool> {
        Request::Write {
            key,
            data: Box::new(*data),
        }
        .encode(&mut self.writer)?;
        match Reply::decode(&mut self.reader)? {
            Reply::Write { hit } => Ok(hit),
            other => Err(unexpected(other)),
        }
    }

    /// Fetches appliance statistics.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures and node-side errors.
    pub fn stats(&mut self) -> io::Result<NodeStats> {
        Request::Stats.encode(&mut self.writer)?;
        match Reply::decode(&mut self.reader)? {
            Reply::Stats {
                read_hits,
                write_hits,
                read_misses,
                write_misses,
                allocation_writes,
                resident_blocks,
            } => Ok(NodeStats {
                read_hits,
                write_hits,
                read_misses,
                write_misses,
                allocation_writes,
                resident_blocks,
            }),
            other => Err(unexpected(other)),
        }
    }

    /// Flushes the node's dirty frames (write-back nodes); returns how
    /// many blocks were written to the backing store.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures and node-side errors.
    pub fn flush(&mut self) -> io::Result<u64> {
        Request::Flush.encode(&mut self.writer)?;
        match Reply::decode(&mut self.reader)? {
            Reply::Flush { flushed } => Ok(flushed),
            other => Err(unexpected(other)),
        }
    }

    /// Closes the connection politely.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from the final flush.
    pub fn quit(mut self) -> io::Result<()> {
        Request::Quit.encode(&mut self.writer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_hit_ratio() {
        let s = NodeStats {
            read_hits: 3,
            write_hits: 1,
            read_misses: 4,
            write_misses: 0,
            allocation_writes: 2,
            resident_blocks: 5,
        };
        assert!((s.hit_ratio() - 0.5).abs() < 1e-12);
        assert_eq!(NodeStats::default().hit_ratio(), 0.0);
    }
}
