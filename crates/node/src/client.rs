//! A blocking, fault-tolerant client for the appliance's wire protocol.
//!
//! [`NodeClient`] owns a lazily-(re)established TCP connection and wraps
//! every request in a bounded retry loop:
//!
//! * **connect/read/write timeouts** ([`ClientConfig`]) so a hung node
//!   cannot stall the caller forever;
//! * **typed errors** ([`NodeError`]) so callers can tell transient
//!   failures from fatal ones;
//! * **bounded retries with exponential backoff and deterministic
//!   jitter** ([`RetryPolicy`]) for transient server errors;
//! * **transparent reconnects**: a transport failure drops the
//!   connection, and the next attempt re-dials and re-frames the
//!   request — block reads and writes are idempotent, so a retried
//!   request is always safe.

use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use sievestore_types::{obs_count, NodeError, BLOCK_SIZE};

use crate::protocol::{ErrorCode, NodeMode, PipedReply, PipedRequest, Reply, Request};

/// Appliance statistics as reported over the wire.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Read hits.
    pub read_hits: u64,
    /// Write hits.
    pub write_hits: u64,
    /// Read misses.
    pub read_misses: u64,
    /// Write misses.
    pub write_misses: u64,
    /// Allocation-writes performed.
    pub allocation_writes: u64,
    /// Blocks currently resident in the cache.
    pub resident_blocks: u64,
    /// Reads served in degraded pass-through mode.
    pub degraded_reads: u64,
    /// Writes served in degraded pass-through mode.
    pub degraded_writes: u64,
    /// The node's current health mode.
    pub mode: NodeMode,
}

impl NodeStats {
    /// Hit ratio over all accesses (0 when idle).
    pub fn hit_ratio(&self) -> f64 {
        let hits = self.read_hits + self.write_hits;
        let total = hits + self.read_misses + self.write_misses;
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }
}

/// Bounded-retry schedule for transient failures.
///
/// Backoff is exponential from [`RetryPolicy::base_backoff`], capped at
/// [`RetryPolicy::max_backoff`], with deterministic jitter derived from
/// the attempt counter so runs are reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum attempts per request (1 = no retries).
    pub attempts: u32,
    /// Backoff before the first retry.
    pub base_backoff: Duration,
    /// Upper bound on any single backoff.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 4,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(200),
        }
    }
}

impl RetryPolicy {
    /// No retries at all: one attempt, surface the first failure.
    pub fn none() -> Self {
        RetryPolicy {
            attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// The pause before retry number `attempt` (1-based), with
    /// deterministic jitter from `salt`.
    fn backoff(&self, attempt: u32, salt: u64) -> Duration {
        let exp = self
            .base_backoff
            .saturating_mul(1u32 << attempt.min(16).saturating_sub(1))
            .min(self.max_backoff);
        if exp.is_zero() {
            return exp;
        }
        // SplitMix64 of (salt, attempt): full-strength jitter in
        // [exp/2, exp), decorrelating concurrent clients without any
        // global randomness source.
        let mut z = salt
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(u64::from(attempt));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let half = exp / 2;
        let span_nanos = half.as_nanos() as u64;
        let jitter = if span_nanos == 0 {
            Duration::ZERO
        } else {
            Duration::from_nanos(z % span_nanos)
        };
        half + jitter
    }
}

/// Connection and retry configuration for a [`NodeClient`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientConfig {
    /// Budget for establishing (or re-establishing) the TCP connection;
    /// `None` blocks until the OS gives up.
    pub connect_timeout: Option<Duration>,
    /// Per-read socket timeout; `None` blocks indefinitely.
    pub read_timeout: Option<Duration>,
    /// Per-write socket timeout; `None` blocks indefinitely.
    pub write_timeout: Option<Duration>,
    /// Retry schedule for transient failures.
    pub retry: RetryPolicy,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Some(Duration::from_secs(1)),
            read_timeout: Some(Duration::from_secs(5)),
            write_timeout: Some(Duration::from_secs(5)),
            retry: RetryPolicy::default(),
        }
    }
}

/// One live framed connection.
#[derive(Debug)]
struct Conn {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

/// A blocking connection to a [`NodeServer`](crate::NodeServer), with
/// retries, timeouts and transparent reconnection.
///
/// See [`NodeServer`](crate::NodeServer) for an end-to-end example.
#[derive(Debug)]
pub struct NodeClient {
    addr: SocketAddr,
    config: ClientConfig,
    conn: Option<Conn>,
    /// Salt for deterministic backoff jitter, advanced per retry.
    jitter_salt: u64,
    retries: u64,
    reconnects: u64,
}

impl NodeClient {
    /// Connects to a node with the default [`ClientConfig`].
    ///
    /// # Errors
    ///
    /// Returns [`NodeError::Connect`] when the address does not resolve
    /// or the connection cannot be established within the configured
    /// timeout.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, NodeError> {
        Self::connect_with(addr, ClientConfig::default())
    }

    /// Connects to a node with an explicit configuration.
    ///
    /// # Errors
    ///
    /// Returns [`NodeError::Connect`] when the address does not resolve
    /// or the connection cannot be established within
    /// [`ClientConfig::connect_timeout`].
    pub fn connect_with(addr: impl ToSocketAddrs, config: ClientConfig) -> Result<Self, NodeError> {
        let addr = addr
            .to_socket_addrs()
            .map_err(NodeError::Connect)?
            .next()
            .ok_or_else(|| {
                NodeError::Connect(io::Error::new(
                    io::ErrorKind::AddrNotAvailable,
                    "address resolved to nothing",
                ))
            })?;
        let mut client = NodeClient {
            addr,
            config,
            conn: None,
            jitter_salt: addr.port() as u64 ^ 0xD6E8_FEB8_6659_FD93,
            retries: 0,
            reconnects: 0,
        };
        client.ensure_connected()?;
        Ok(client)
    }

    /// The resolved address this client (re)connects to.
    pub fn peer_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Transient-failure retries performed so far.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Reconnections performed after transport failures (not counting
    /// the initial connect).
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    fn dial(&mut self) -> Result<Conn, NodeError> {
        let stream = match self.config.connect_timeout {
            Some(timeout) => TcpStream::connect_timeout(&self.addr, timeout),
            None => TcpStream::connect(self.addr),
        }
        .map_err(NodeError::Connect)?;
        stream.set_nodelay(true).ok();
        stream
            .set_read_timeout(self.config.read_timeout)
            .map_err(NodeError::Connect)?;
        stream
            .set_write_timeout(self.config.write_timeout)
            .map_err(NodeError::Connect)?;
        let reader = BufReader::new(stream.try_clone().map_err(NodeError::Connect)?);
        Ok(Conn {
            reader,
            writer: BufWriter::new(stream),
        })
    }

    fn ensure_connected(&mut self) -> Result<&mut Conn, NodeError> {
        if self.conn.is_none() {
            let conn = self.dial()?;
            self.conn = Some(conn);
        }
        Ok(self.conn.as_mut().expect("connection was just installed"))
    }

    /// One request/reply exchange on the current connection. Transport
    /// failures poison the connection so the caller reconnects.
    fn try_once(&mut self, request: &Request) -> Result<Reply, NodeError> {
        let conn = self.ensure_connected()?;
        let sent = request
            .encode(&mut conn.writer)
            .map_err(NodeError::from_transport);
        if let Err(e) = sent {
            self.conn = None;
            return Err(e);
        }
        match Reply::decode(&mut conn.reader).map_err(NodeError::from_transport) {
            Ok(reply) => Ok(reply),
            Err(e) => {
                // The stream is mid-frame or closed; it cannot be reused.
                self.conn = None;
                Err(e)
            }
        }
    }

    /// Sends `request` with bounded retries; transient server errors are
    /// retried on the same connection, transport failures force a
    /// reconnect before the next attempt.
    fn call(&mut self, request: &Request) -> Result<Reply, NodeError> {
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            let had_conn = self.conn.is_some();
            let error = match self.try_once(request) {
                Ok(Reply::Error { code, message }) => match code {
                    ErrorCode::Transient => NodeError::NodeTransient(message),
                    ErrorCode::Deadline => NodeError::Deadline(message),
                    ErrorCode::Fatal => return Err(NodeError::NodeFatal(message)),
                    ErrorCode::Protocol => return Err(NodeError::Protocol(message)),
                },
                Ok(reply) => {
                    if !had_conn && attempt > 1 {
                        self.reconnects += 1;
                        obs_count!(ClientReconnects, 1);
                    }
                    return Ok(reply);
                }
                Err(e) if e.is_transient() => e,
                Err(e) => return Err(e),
            };
            if attempt >= self.config.retry.attempts.max(1) {
                // A single-attempt policy surfaces the raw error; only
                // actual retry exhaustion gets the wrapper.
                return Err(if attempt == 1 {
                    error
                } else {
                    NodeError::RetriesExhausted {
                        attempts: attempt,
                        last: Box::new(error),
                    }
                });
            }
            self.retries += 1;
            obs_count!(ClientRetries, 1);
            self.jitter_salt = self.jitter_salt.wrapping_add(1);
            let pause = self.config.retry.backoff(attempt, self.jitter_salt);
            if !pause.is_zero() {
                std::thread::sleep(pause);
            }
        }
    }

    /// Reads one block; returns the payload and whether the cache hit.
    ///
    /// # Errors
    ///
    /// Returns a typed [`NodeError`]; transient failures have already
    /// been retried per the [`RetryPolicy`].
    pub fn read_block(&mut self, key: u64) -> Result<([u8; BLOCK_SIZE], bool), NodeError> {
        match self.call(&Request::Read { key })? {
            Reply::Read { hit, data } => Ok((*data, hit)),
            other => Err(unexpected(other)),
        }
    }

    /// Writes one block (the node applies its configured write policy);
    /// returns whether the cache held the block.
    ///
    /// # Errors
    ///
    /// Returns a typed [`NodeError`]; transient failures have already
    /// been retried per the [`RetryPolicy`].
    pub fn write_block(&mut self, key: u64, data: &[u8; BLOCK_SIZE]) -> Result<bool, NodeError> {
        let request = Request::Write {
            key,
            data: Box::new(*data),
        };
        match self.call(&request)? {
            Reply::Write { hit } => Ok(hit),
            other => Err(unexpected(other)),
        }
    }

    /// Fetches appliance statistics.
    ///
    /// # Errors
    ///
    /// Returns a typed [`NodeError`]; transient failures have already
    /// been retried per the [`RetryPolicy`].
    pub fn stats(&mut self) -> Result<NodeStats, NodeError> {
        match self.call(&Request::Stats)? {
            Reply::Stats {
                read_hits,
                write_hits,
                read_misses,
                write_misses,
                allocation_writes,
                resident_blocks,
                degraded_reads,
                degraded_writes,
                mode,
            } => Ok(NodeStats {
                read_hits,
                write_hits,
                read_misses,
                write_misses,
                allocation_writes,
                resident_blocks,
                degraded_reads,
                degraded_writes,
                mode,
            }),
            other => Err(unexpected(other)),
        }
    }

    /// Flushes the node's dirty frames (write-back nodes); returns how
    /// many blocks were written to the backing store.
    ///
    /// # Errors
    ///
    /// Returns a typed [`NodeError`]; transient failures have already
    /// been retried per the [`RetryPolicy`].
    pub fn flush(&mut self) -> Result<u64, NodeError> {
        match self.call(&Request::Flush)? {
            Reply::Flush { flushed } => Ok(flushed),
            other => Err(unexpected(other)),
        }
    }

    /// Closes the connection politely (best effort, never retried).
    ///
    /// # Errors
    ///
    /// Returns [`NodeError::Transport`] if the goodbye cannot be sent.
    pub fn quit(mut self) -> Result<(), NodeError> {
        if let Some(conn) = self.conn.as_mut() {
            Request::Quit
                .encode(&mut conn.writer)
                .map_err(NodeError::from_transport)?;
        }
        Ok(())
    }
}

fn unexpected(reply: Reply) -> NodeError {
    NodeError::Protocol(format!("unexpected reply {reply:?}"))
}

/// The payload of one successfully completed pipelined operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpResult {
    /// A read completed; `hit` is whether the cache served it.
    Read {
        /// Whether the cache held the block.
        hit: bool,
        /// The block payload.
        data: Box<[u8; BLOCK_SIZE]>,
    },
    /// A write completed; `hit` is whether the cache held the block.
    Write {
        /// Whether the cache held the block.
        hit: bool,
    },
}

/// One finished pipelined operation, successful or not.
#[derive(Debug)]
pub struct Completion {
    /// The block key the operation targeted.
    pub key: u64,
    /// The outcome; errors have already been retried per the
    /// [`RetryPolicy`].
    pub result: Result<OpResult, NodeError>,
    /// Wall-clock time from first submission to completion (including
    /// any retries).
    pub latency: Duration,
}

/// One request awaiting its correlated reply.
struct InflightOp {
    corr: u32,
    request: Request,
    key: u64,
    attempts: u32,
    started: Instant,
}

/// A pipelined connection: up to `window` requests in flight at once
/// over correlation-id envelopes, with the same bounded-retry, timeout
/// and transparent-reconnect semantics as [`NodeClient`].
///
/// Requests are submitted with [`PipelinedClient::read`] /
/// [`PipelinedClient::write`]; completed operations come back as
/// [`Completion`]s, possibly out of submission order. Encoded requests
/// are buffered and written in batches — the flush syscall is only paid
/// when the window fills or [`PipelinedClient::drain`] is called.
///
/// # Examples
///
/// ```
/// use sievestore::PolicySpec;
/// use sievestore_node::{MemBacking, NodeServerBuilder, PipelinedClient, WritePolicy};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let server = NodeServerBuilder::new("127.0.0.1:0")
///     .workers(2)
///     .serve_sharded(MemBacking::new(), PolicySpec::Aod, 64, WritePolicy::WriteThrough)?;
///
/// let mut client = PipelinedClient::connect(server.addr(), 32)?;
/// for key in 0..16 {
///     client.write(key, &[key as u8; 512])?;
/// }
/// let done = client.drain()?;
/// assert_eq!(done.len(), 16);
/// assert!(done.iter().all(|c| c.result.is_ok()));
/// server.shutdown();
/// # Ok(())
/// # }
/// ```
pub struct PipelinedClient {
    addr: SocketAddr,
    config: ClientConfig,
    window: usize,
    conn: Option<Conn>,
    next_corr: u32,
    inflight: Vec<InflightOp>,
    done: Vec<Completion>,
    scratch: Vec<u8>,
    jitter_salt: u64,
    retries: u64,
    reconnects: u64,
    stale_replies: u64,
}

impl PipelinedClient {
    /// Connects with the default [`ClientConfig`] and the given window
    /// (maximum requests in flight; clamped to at least 1).
    ///
    /// # Errors
    ///
    /// Returns [`NodeError::Connect`] when the address does not resolve
    /// or the connection cannot be established.
    pub fn connect(addr: impl ToSocketAddrs, window: usize) -> Result<Self, NodeError> {
        Self::connect_with(addr, ClientConfig::default(), window)
    }

    /// Connects with an explicit configuration.
    ///
    /// # Errors
    ///
    /// Returns [`NodeError::Connect`] when the address does not resolve
    /// or the connection cannot be established.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        config: ClientConfig,
        window: usize,
    ) -> Result<Self, NodeError> {
        let addr = addr
            .to_socket_addrs()
            .map_err(NodeError::Connect)?
            .next()
            .ok_or_else(|| {
                NodeError::Connect(io::Error::new(
                    io::ErrorKind::AddrNotAvailable,
                    "address resolved to nothing",
                ))
            })?;
        let mut client = PipelinedClient {
            addr,
            config,
            window: window.max(1),
            conn: None,
            next_corr: 0,
            inflight: Vec::new(),
            done: Vec::new(),
            scratch: Vec::new(),
            jitter_salt: addr.port() as u64 ^ 0xA076_1D64_78BD_642F,
            retries: 0,
            reconnects: 0,
            stale_replies: 0,
        };
        client.conn = Some(client.dial()?);
        Ok(client)
    }

    fn dial(&self) -> Result<Conn, NodeError> {
        let stream = match self.config.connect_timeout {
            Some(timeout) => TcpStream::connect_timeout(&self.addr, timeout),
            None => TcpStream::connect(self.addr),
        }
        .map_err(NodeError::Connect)?;
        stream.set_nodelay(true).ok();
        stream
            .set_read_timeout(self.config.read_timeout)
            .map_err(NodeError::Connect)?;
        stream
            .set_write_timeout(self.config.write_timeout)
            .map_err(NodeError::Connect)?;
        let reader = BufReader::new(stream.try_clone().map_err(NodeError::Connect)?);
        Ok(Conn {
            reader,
            writer: BufWriter::new(stream),
        })
    }

    /// The resolved address this client (re)connects to.
    pub fn peer_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests currently awaiting completion.
    pub fn in_flight(&self) -> usize {
        self.inflight.len()
    }

    /// Transient-failure retries performed so far.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Reconnections performed after transport failures (not counting
    /// the initial connect).
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// Replies that matched no in-flight operation and were discarded
    /// (their operation had already completed, e.g. with a transport
    /// error during a reconnect).
    pub fn stale_replies(&self) -> u64 {
        self.stale_replies
    }

    /// Submits a pipelined read; returns any operations that completed
    /// while making room in the window.
    ///
    /// # Errors
    ///
    /// Client-level failures only (reconnect budget exhausted, protocol
    /// violations); per-operation failures surface in [`Completion`]s.
    pub fn read(&mut self, key: u64) -> Result<Vec<Completion>, NodeError> {
        self.submit(key, Request::Read { key })
    }

    /// Submits a pipelined write; returns any operations that completed
    /// while making room in the window.
    ///
    /// # Errors
    ///
    /// Client-level failures only (reconnect budget exhausted, protocol
    /// violations); per-operation failures surface in [`Completion`]s.
    pub fn write(
        &mut self,
        key: u64,
        data: &[u8; BLOCK_SIZE],
    ) -> Result<Vec<Completion>, NodeError> {
        self.submit(
            key,
            Request::Write {
                key,
                data: Box::new(*data),
            },
        )
    }

    /// Waits for every in-flight operation and returns all completions.
    ///
    /// # Errors
    ///
    /// Client-level failures only; per-operation failures surface in
    /// [`Completion`]s.
    pub fn drain(&mut self) -> Result<Vec<Completion>, NodeError> {
        while !self.inflight.is_empty() {
            self.step_blocking()?;
        }
        if let Some(conn) = self.conn.as_mut() {
            let _ = conn.writer.flush();
        }
        Ok(std::mem::take(&mut self.done))
    }

    /// Drains outstanding work, then closes the connection politely.
    ///
    /// # Errors
    ///
    /// Client-level failures from the final drain.
    pub fn quit(mut self) -> Result<Vec<Completion>, NodeError> {
        let done = self.drain()?;
        if let Some(conn) = self.conn.as_mut() {
            let _ = Request::Quit.encode(&mut conn.writer);
        }
        Ok(done)
    }

    fn submit(&mut self, key: u64, request: Request) -> Result<Vec<Completion>, NodeError> {
        while self.inflight.len() >= self.window {
            self.step_blocking()?;
        }
        let corr = self.next_corr;
        self.next_corr = self.next_corr.wrapping_add(1);
        let op = InflightOp {
            corr,
            request,
            key,
            attempts: 1,
            started: Instant::now(),
        };
        self.encode_op(&op)?;
        self.inflight.push(op);
        Ok(std::mem::take(&mut self.done))
    }

    /// Buffers one enveloped request; a transport failure on the way
    /// out reconnects and resubmits the whole window.
    fn encode_op(&mut self, op: &InflightOp) -> Result<(), NodeError> {
        loop {
            if self.conn.is_none() {
                self.reestablish()?;
            }
            // Encode fresh on every attempt: reestablish() reuses
            // `scratch` to resubmit the in-flight window, so a frame
            // built before a reconnect would be clobbered (sending the
            // window twice and dropping this op).
            self.scratch.clear();
            PipedRequest {
                corr: op.corr,
                request: op.request.clone(),
            }
            .encode_into(&mut self.scratch);
            let conn = self.conn.as_mut().expect("reestablish installs a conn");
            match conn.writer.write_all(&self.scratch) {
                Ok(()) => return Ok(()),
                Err(_) => self.on_transport_failure()?,
            }
        }
    }

    /// Blocks for one reply (flushing buffered requests first) and
    /// settles the operation it correlates with.
    fn step_blocking(&mut self) -> Result<(), NodeError> {
        loop {
            if self.conn.is_none() {
                self.reestablish()?;
                if self.inflight.is_empty() {
                    // Every pending op was dropped by retry exhaustion.
                    return Ok(());
                }
            }
            let conn = self.conn.as_mut().expect("reestablish installs a conn");
            if conn.writer.flush().is_err() {
                self.on_transport_failure()?;
                continue;
            }
            match PipedReply::decode(&mut conn.reader) {
                Ok(piped) => {
                    if self.settle(piped)? {
                        return Ok(());
                    }
                    // Stale reply discarded: keep reading for a live one.
                }
                Err(_) => self.on_transport_failure()?,
            }
        }
    }

    /// Routes one decoded reply to its in-flight operation. Returns
    /// `false` for a stale reply — one whose operation is no longer in
    /// flight (e.g. it already completed with a transport error during
    /// a reconnect) — which is discarded rather than failing the whole
    /// client.
    fn settle(&mut self, piped: PipedReply) -> Result<bool, NodeError> {
        let Some(pos) = self.inflight.iter().position(|op| op.corr == piped.corr) else {
            self.stale_replies += 1;
            return Ok(false);
        };
        let op = self.inflight.swap_remove(pos);
        let settled = match (&op.request, piped.reply) {
            (Request::Read { .. }, Reply::Read { hit, data }) => Ok(OpResult::Read { hit, data }),
            (Request::Write { .. }, Reply::Write { hit }) => Ok(OpResult::Write { hit }),
            (_, Reply::Error { code, message }) => match code {
                ErrorCode::Transient => Err(NodeError::NodeTransient(message)),
                ErrorCode::Deadline => Err(NodeError::Deadline(message)),
                ErrorCode::Fatal => Err(NodeError::NodeFatal(message)),
                ErrorCode::Protocol => Err(NodeError::Protocol(message)),
            },
            (_, other) => Err(unexpected(other)),
        };
        match settled {
            Ok(result) => {
                self.done.push(Completion {
                    key: op.key,
                    result: Ok(result),
                    latency: op.started.elapsed(),
                });
                Ok(true)
            }
            Err(error) if error.is_transient() => {
                self.retry_or_complete(op, error)?;
                Ok(true)
            }
            Err(error) => {
                self.done.push(Completion {
                    key: op.key,
                    result: Err(error),
                    latency: op.started.elapsed(),
                });
                Ok(true)
            }
        }
    }

    /// Resubmits a transiently-failed operation (with backoff) until
    /// its retry budget runs out, then completes it with the error.
    fn retry_or_complete(&mut self, mut op: InflightOp, error: NodeError) -> Result<(), NodeError> {
        if op.attempts >= self.config.retry.attempts.max(1) {
            let result = if op.attempts == 1 {
                error
            } else {
                NodeError::RetriesExhausted {
                    attempts: op.attempts,
                    last: Box::new(error),
                }
            };
            self.done.push(Completion {
                key: op.key,
                result: Err(result),
                latency: op.started.elapsed(),
            });
            return Ok(());
        }
        op.attempts += 1;
        self.retries += 1;
        obs_count!(ClientRetries, 1);
        self.jitter_salt = self.jitter_salt.wrapping_add(1);
        let pause = self.config.retry.backoff(op.attempts - 1, self.jitter_salt);
        if !pause.is_zero() {
            std::thread::sleep(pause);
        }
        self.encode_op(&op)?;
        self.inflight.push(op);
        Ok(())
    }

    /// Handles a dead connection: every in-flight operation is charged
    /// one attempt (replies it may have had in transit are lost),
    /// exhausted ones complete with the transport error, and the rest
    /// await resubmission by [`Self::reestablish`].
    fn on_transport_failure(&mut self) -> Result<(), NodeError> {
        self.conn = None;
        let budget = self.config.retry.attempts.max(1);
        let mut kept = Vec::with_capacity(self.inflight.len());
        for mut op in self.inflight.drain(..) {
            op.attempts += 1;
            if op.attempts > budget {
                self.done.push(Completion {
                    key: op.key,
                    result: Err(NodeError::RetriesExhausted {
                        attempts: op.attempts - 1,
                        last: Box::new(NodeError::Transport(io::Error::new(
                            io::ErrorKind::BrokenPipe,
                            "connection lost mid-pipeline",
                        ))),
                    }),
                    latency: op.started.elapsed(),
                });
            } else {
                self.retries += 1;
                obs_count!(ClientRetries, 1);
                kept.push(op);
            }
        }
        self.inflight = kept;
        self.jitter_salt = self.jitter_salt.wrapping_add(1);
        let pause = self.config.retry.backoff(1, self.jitter_salt);
        if !pause.is_zero() {
            std::thread::sleep(pause);
        }
        Ok(())
    }

    /// Re-dials and resubmits every surviving in-flight operation.
    /// Connect failures are bounded by the retry budget.
    fn reestablish(&mut self) -> Result<(), NodeError> {
        let budget = self.config.retry.attempts.max(1);
        let mut rounds = 0u32;
        let conn = loop {
            match self.dial() {
                Ok(conn) => break conn,
                Err(e) => {
                    rounds += 1;
                    if rounds >= budget {
                        return Err(e);
                    }
                    self.jitter_salt = self.jitter_salt.wrapping_add(1);
                    let pause = self.config.retry.backoff(rounds, self.jitter_salt);
                    if !pause.is_zero() {
                        std::thread::sleep(pause);
                    }
                }
            }
        };
        self.reconnects += 1;
        obs_count!(ClientReconnects, 1);
        self.conn = Some(conn);
        // Resubmit the window on the fresh connection, keeping the
        // original correlation ids (they are unique while in flight).
        self.scratch.clear();
        for op in &self.inflight {
            PipedRequest {
                corr: op.corr,
                request: op.request.clone(),
            }
            .encode_into(&mut self.scratch);
        }
        let conn = self.conn.as_mut().expect("just installed");
        if conn.writer.write_all(&self.scratch).is_err() {
            // The fresh connection died instantly; charge a round and
            // let the caller's loop try again.
            self.on_transport_failure()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_hit_ratio() {
        let s = NodeStats {
            read_hits: 3,
            write_hits: 1,
            read_misses: 4,
            write_misses: 0,
            allocation_writes: 2,
            resident_blocks: 5,
            ..NodeStats::default()
        };
        assert!((s.hit_ratio() - 0.5).abs() < 1e-12);
        assert_eq!(NodeStats::default().hit_ratio(), 0.0);
        assert_eq!(NodeStats::default().mode, NodeMode::Healthy);
    }

    #[test]
    fn backoff_is_exponential_capped_and_deterministic() {
        let policy = RetryPolicy::default();
        // Jitter keeps each pause within [exp/2, exp).
        for attempt in 1..=6 {
            let exp = policy
                .base_backoff
                .saturating_mul(1 << (attempt - 1))
                .min(policy.max_backoff);
            let pause = policy.backoff(attempt, 42);
            assert!(
                pause >= exp / 2,
                "attempt {attempt}: {pause:?} < {:?}",
                exp / 2
            );
            assert!(pause < exp, "attempt {attempt}: {pause:?} >= {exp:?}");
        }
        // Same salt, same jitter: reproducible schedules.
        assert_eq!(policy.backoff(3, 7), policy.backoff(3, 7));
        // Zero base means zero pause (no panics on empty ranges).
        let zero = RetryPolicy {
            base_backoff: Duration::ZERO,
            ..RetryPolicy::default()
        };
        assert_eq!(zero.backoff(1, 1), Duration::ZERO);
    }

    #[test]
    fn retry_policy_none_is_single_attempt() {
        assert_eq!(RetryPolicy::none().attempts, 1);
    }

    #[test]
    fn connect_fails_cleanly_when_nothing_listens() {
        // Port 1 on localhost is essentially never bound; expect a typed
        // connect error, not a panic or a hang.
        let err = NodeClient::connect_with(
            "127.0.0.1:1",
            ClientConfig {
                connect_timeout: Some(Duration::from_millis(500)),
                ..ClientConfig::default()
            },
        )
        .expect_err("nothing listens on port 1");
        assert!(matches!(err, NodeError::Connect(_)));
    }
}
