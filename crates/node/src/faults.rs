//! Deterministic fault injection for backing stores.
//!
//! Every resilience feature of the node — client retries, the server's
//! circuit breaker, degraded pass-through mode — needs a backing store
//! that can be *made to fail on demand* to be testable at all.
//! [`FaultInjectingBacking`] wraps any [`BackingStore`] and injects
//! failures according to a seeded, deterministic [`FaultPlan`]:
//!
//! * **probabilistic errors** — each read/write fails independently with
//!   a configured probability, driven by a seeded generator so a given
//!   seed always produces the same failure sequence;
//! * **fixed schedules** — fail the next *k* operations, or every
//!   operation in an absolute op-index window;
//! * **keyed schedules** — fail every access to specific block keys
//!   (a "bad region" of the device);
//! * **injected latency** — sleep before serving, to exercise deadlines;
//! * **torn writes** — persist only a prefix of the block, then fail,
//!   modelling a power-cut mid-write.
//!
//! The wrapper is shared-state: [`FaultInjectingBacking::handle`] returns
//! a [`FaultHandle`] that can reprogram the plan and read injection
//! counters while a server owns the store, which is how integration
//! tests steer a live node through failure and recovery.
//!
//! # Examples
//!
//! ```
//! use sievestore_node::{BackingStore, FaultInjectingBacking, FaultPlan, MemBacking};
//!
//! let faulty = FaultInjectingBacking::new(MemBacking::new(), FaultPlan::new(42));
//! let handle = faulty.handle();
//!
//! faulty.write_block(1, &[7u8; 512]).unwrap();
//! handle.fail_next(1);
//! assert!(faulty.read_block(1).is_err());
//! assert_eq!(faulty.read_block(1).unwrap(), [7u8; 512]);
//! assert_eq!(handle.injected_errors(), 1);
//! ```

use std::collections::HashSet;
use std::io;
use std::ops::Range;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use sievestore_types::BLOCK_SIZE;

use crate::backing::{BackingStore, Block};

/// A deterministic schedule of injected faults.
///
/// The default plan (any seed, everything else off) injects nothing;
/// builders switch individual fault classes on.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    /// Probability that any single read fails.
    read_error_prob: f64,
    /// Probability that any single write fails.
    write_error_prob: f64,
    /// Fail every op whose global index falls in this window.
    fail_window: Option<Range<u64>>,
    /// Fail the next `n` ops regardless of index (decremented live).
    fail_next: u64,
    /// Fail every access to these keys.
    bad_keys: HashSet<u64>,
    /// Sleep this long before serving any op.
    latency: Duration,
    /// Torn writes: persist only this many bytes, then fail. `None`
    /// disables tearing.
    torn_write_prefix: Option<usize>,
}

impl FaultPlan {
    /// A no-fault plan with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            read_error_prob: 0.0,
            write_error_prob: 0.0,
            fail_window: None,
            fail_next: 0,
            bad_keys: HashSet::new(),
            latency: Duration::ZERO,
            torn_write_prefix: None,
        }
    }

    /// Fails each read independently with probability `p`.
    #[must_use]
    pub fn with_read_error_prob(mut self, p: f64) -> Self {
        self.read_error_prob = p.clamp(0.0, 1.0);
        self
    }

    /// Fails each write independently with probability `p`.
    #[must_use]
    pub fn with_write_error_prob(mut self, p: f64) -> Self {
        self.write_error_prob = p.clamp(0.0, 1.0);
        self
    }

    /// Fails every op whose zero-based global index is in `window`.
    #[must_use]
    pub fn with_fail_window(mut self, window: Range<u64>) -> Self {
        self.fail_window = Some(window);
        self
    }

    /// Fails every access to `key` (a bad device region).
    #[must_use]
    pub fn with_bad_key(mut self, key: u64) -> Self {
        self.bad_keys.insert(key);
        self
    }

    /// Sleeps `latency` before serving each op.
    #[must_use]
    pub fn with_latency(mut self, latency: Duration) -> Self {
        self.latency = latency;
        self
    }

    /// Makes every *failing* write a torn write that persists only the
    /// first `prefix` bytes before erroring.
    #[must_use]
    pub fn with_torn_writes(mut self, prefix: usize) -> Self {
        self.torn_write_prefix = Some(prefix.min(BLOCK_SIZE));
        self
    }
}

/// Which half of the [`BackingStore`] interface an op used.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpKind {
    Read,
    Write,
}

/// Mutable injection state behind the shared handle.
#[derive(Debug)]
struct FaultState {
    plan: FaultPlan,
    rng_state: u64,
    /// Global op counter (reads + writes), pre-increment.
    ops: u64,
    injected_errors: u64,
}

impl FaultState {
    /// SplitMix64: deterministic stream derived from the plan seed.
    fn next_unit(&mut self) -> f64 {
        self.rng_state = self.rng_state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Decides this op's fate; advances counters and the RNG stream.
    fn decide(&mut self, kind: OpKind, key: u64) -> Decision {
        let index = self.ops;
        self.ops += 1;
        let latency = self.plan.latency;
        let prob = match kind {
            OpKind::Read => self.plan.read_error_prob,
            OpKind::Write => self.plan.write_error_prob,
        };
        // One RNG draw per op (even when prob is 0) keeps the stream —
        // and therefore every downstream decision — aligned with the op
        // index for a given seed, no matter which knobs are on.
        let coin = self.next_unit();
        let scheduled = self.fail_next_hit()
            || self
                .plan
                .fail_window
                .as_ref()
                .is_some_and(|w| w.contains(&index))
            || self.plan.bad_keys.contains(&key);
        let fail = scheduled || coin < prob;
        if fail {
            self.injected_errors += 1;
        }
        Decision {
            fail,
            latency,
            torn_prefix: self.plan.torn_write_prefix,
        }
    }

    fn fail_next_hit(&mut self) -> bool {
        if self.plan.fail_next > 0 {
            self.plan.fail_next -= 1;
            true
        } else {
            false
        }
    }
}

/// Outcome of the fault decision for one op.
struct Decision {
    fail: bool,
    latency: Duration,
    torn_prefix: Option<usize>,
}

/// A control handle over a live [`FaultInjectingBacking`].
///
/// Cloneable and thread-safe; integration tests keep one while the
/// server owns the wrapped store.
#[derive(Debug, Clone)]
pub struct FaultHandle {
    state: Arc<Mutex<FaultState>>,
}

impl FaultHandle {
    /// Replaces the whole plan (op and error counters are preserved,
    /// the deterministic RNG stream restarts from the new seed).
    pub fn set_plan(&self, plan: FaultPlan) {
        let mut state = self.state.lock();
        state.rng_state = plan.seed;
        state.plan = plan;
    }

    /// Fails the next `n` backing ops, then resumes normal service.
    pub fn fail_next(&self, n: u64) {
        self.state.lock().plan.fail_next = n;
    }

    /// Injects `latency` before every subsequent op.
    pub fn set_latency(&self, latency: Duration) {
        self.state.lock().plan.latency = latency;
    }

    /// Stops injecting anything (schedules, probabilities, latency).
    pub fn heal(&self) {
        let mut state = self.state.lock();
        let seed = state.plan.seed;
        state.plan = FaultPlan::new(seed);
    }

    /// Total backing ops observed (reads + writes).
    pub fn ops(&self) -> u64 {
        self.state.lock().ops
    }

    /// Total errors injected so far.
    pub fn injected_errors(&self) -> u64 {
        self.state.lock().injected_errors
    }
}

/// A [`BackingStore`] wrapper that injects deterministic faults.
///
/// See the [module docs](self) for the fault model.
#[derive(Debug)]
pub struct FaultInjectingBacking<B> {
    inner: B,
    state: Arc<Mutex<FaultState>>,
}

impl<B: BackingStore> FaultInjectingBacking<B> {
    /// Wraps `inner` under the given plan.
    pub fn new(inner: B, plan: FaultPlan) -> Self {
        let state = FaultState {
            rng_state: plan.seed,
            plan,
            ops: 0,
            injected_errors: 0,
        };
        FaultInjectingBacking {
            inner,
            state: Arc::new(Mutex::new(state)),
        }
    }

    /// A shared control handle for reprogramming faults at runtime.
    pub fn handle(&self) -> FaultHandle {
        FaultHandle {
            state: Arc::clone(&self.state),
        }
    }

    /// The wrapped store.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    fn injected(kind: OpKind, key: u64) -> io::Error {
        let op = match kind {
            OpKind::Read => "read",
            OpKind::Write => "write",
        };
        io::Error::other(format!("injected fault: {op} of block {key} failed"))
    }
}

impl<B: BackingStore> BackingStore for FaultInjectingBacking<B> {
    fn read_block(&self, key: u64) -> io::Result<Block> {
        let decision = self.state.lock().decide(OpKind::Read, key);
        if !decision.latency.is_zero() {
            std::thread::sleep(decision.latency);
        }
        if decision.fail {
            return Err(Self::injected(OpKind::Read, key));
        }
        self.inner.read_block(key)
    }

    fn write_block(&self, key: u64, data: &Block) -> io::Result<()> {
        let decision = self.state.lock().decide(OpKind::Write, key);
        if !decision.latency.is_zero() {
            std::thread::sleep(decision.latency);
        }
        if decision.fail {
            if let Some(prefix) = decision.torn_prefix {
                // A torn write persists a corrupt block: the new prefix
                // over whatever the store held before.
                let mut torn = self.inner.read_block(key).unwrap_or([0u8; BLOCK_SIZE]);
                torn[..prefix].copy_from_slice(&data[..prefix]);
                let _ = self.inner.write_block(key, &torn);
            }
            return Err(Self::injected(OpKind::Write, key));
        }
        self.inner.write_block(key, data)
    }
}

// ---------------------------------------------------------------------------
// Crash-point harness for durable media
// ---------------------------------------------------------------------------

/// SplitMix64 step shared by the fault and crash harnesses.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic power-cut schedule for [`Media`](crate::durable::Media) devices.
///
/// Steps are counted globally across every device sharing one
/// [`CrashHandle`]: each `write_at`, `truncate` and `sync` is one step,
/// so `crash_at_step(k)` places the cut at the *k*-th media mutation of
/// the whole durable store — sweeping `k` exercises every write/fsync
/// point of a workload.
///
/// At the cut, writes not yet made durable by a `sync` survive only per
/// a seeded coin (the page cache lost the rest), the in-flight write may
/// be torn to a seeded prefix, and a configurable number of bits rot in
/// the surviving bytes. Every subsequent operation fails with a
/// "simulated power cut" error until the device is rebooted from its
/// surviving image.
#[derive(Debug, Clone)]
pub struct CrashPlan {
    seed: u64,
    crash_at_step: Option<u64>,
    torn_tail: bool,
    bit_rot_flips: u32,
}

impl CrashPlan {
    /// A plan that never crashes (baseline runs).
    pub fn no_crash(seed: u64) -> Self {
        CrashPlan {
            seed,
            crash_at_step: None,
            torn_tail: false,
            bit_rot_flips: 0,
        }
    }

    /// Cuts power at the zero-based global mutation step `step`.
    #[must_use]
    pub fn crash_at_step(mut self, step: u64) -> Self {
        self.crash_at_step = Some(step);
        self
    }

    /// Tears the in-flight write at the cut to a seeded prefix instead
    /// of dropping or keeping it whole.
    #[must_use]
    pub fn with_torn_tail(mut self) -> Self {
        self.torn_tail = true;
        self
    }

    /// Flips `flips` seeded bits in the crashing device's surviving
    /// bytes at the cut (bit rot discovered on the next boot).
    #[must_use]
    pub fn with_bit_rot(mut self, flips: u32) -> Self {
        self.bit_rot_flips = flips;
        self
    }
}

#[derive(Debug)]
struct CrashState {
    plan: CrashPlan,
    rng: u64,
    steps: u64,
    crashed: bool,
}

/// Shared crash clock for the devices of one durable store.
#[derive(Debug, Clone)]
pub struct CrashHandle {
    state: Arc<Mutex<CrashState>>,
}

impl CrashHandle {
    /// Creates the shared clock for `plan`.
    pub fn new(plan: CrashPlan) -> Self {
        CrashHandle {
            state: Arc::new(Mutex::new(CrashState {
                rng: plan.seed,
                plan,
                steps: 0,
                crashed: false,
            })),
        }
    }

    /// Whether the power cut has fired.
    pub fn crashed(&self) -> bool {
        self.state.lock().crashed
    }

    /// Media mutation steps observed so far (the sweep bound: a full
    /// no-crash run's step count is the number of distinct crash points).
    pub fn steps(&self) -> u64 {
        self.state.lock().steps
    }
}

/// A snapshot handle onto a [`CrashPointMedia`]'s *durable* bytes — what
/// a reboot would find. Stays valid after the store owning the media is
/// dropped.
#[derive(Debug, Clone)]
pub struct MediaImage {
    durable: Arc<Mutex<Vec<u8>>>,
}

impl MediaImage {
    /// The bytes that survived (copy).
    pub fn bytes(&self) -> Vec<u8> {
        self.durable.lock().clone()
    }

    /// Flips one bit in the surviving image — targeted bit-rot injection
    /// for scrub tests.
    pub fn flip_bit(&self, offset: usize, bit: u8) {
        let mut bytes = self.durable.lock();
        if offset < bytes.len() {
            bytes[offset] ^= 1 << (bit & 7);
        }
    }
}

/// One not-yet-durable mutation.
#[derive(Debug)]
enum PendingOp {
    Write { offset: u64, data: Vec<u8> },
    Truncate { len: u64 },
}

fn apply_op(bytes: &mut Vec<u8>, op: &PendingOp) {
    match op {
        PendingOp::Write { offset, data } => {
            let end = *offset as usize + data.len();
            if bytes.len() < end {
                bytes.resize(end, 0);
            }
            bytes[*offset as usize..end].copy_from_slice(data);
        }
        PendingOp::Truncate { len } => bytes.resize(*len as usize, 0),
    }
}

/// In-memory [`Media`](crate::durable::Media) with page-cache semantics and a deterministic
/// power cut — the durable-tier counterpart of
/// [`FaultInjectingBacking`]. See [`CrashPlan`] for the fault model.
#[derive(Debug)]
pub struct CrashPointMedia {
    /// What reads observe (the page cache view).
    visible: Vec<u8>,
    /// What survives the cut; shared with [`MediaImage`].
    durable: Arc<Mutex<Vec<u8>>>,
    pending: Vec<PendingOp>,
    handle: CrashHandle,
}

impl CrashPointMedia {
    /// An empty device on the shared crash clock.
    pub fn new(handle: CrashHandle) -> Self {
        Self::with_initial(Vec::new(), handle)
    }

    /// A device booted from `bytes` (a previous cut's surviving image).
    pub fn with_initial(bytes: Vec<u8>, handle: CrashHandle) -> Self {
        CrashPointMedia {
            visible: bytes.clone(),
            durable: Arc::new(Mutex::new(bytes)),
            pending: Vec::new(),
            handle,
        }
    }

    /// The reboot-surviving image handle.
    pub fn image(&self) -> MediaImage {
        MediaImage {
            durable: Arc::clone(&self.durable),
        }
    }

    fn power_cut_err() -> io::Error {
        io::Error::other("simulated power cut")
    }

    /// Counts one mutation step; fires the power cut when scheduled.
    /// `in_flight` is the write being attempted at the cut (torn per the
    /// plan), `None` for sync/truncate steps.
    fn step(&mut self, in_flight: Option<&PendingOp>) -> io::Result<()> {
        let mut state = self.handle.state.lock();
        if state.crashed {
            return Err(Self::power_cut_err());
        }
        let step = state.steps;
        state.steps += 1;
        if state.plan.crash_at_step != Some(step) {
            return Ok(());
        }
        state.crashed = true;
        // The cut: unsynced writes survive per a seeded coin, in order.
        let mut durable = self.durable.lock();
        for op in &self.pending {
            if splitmix(&mut state.rng) & 1 == 0 {
                apply_op(&mut durable, op);
            }
        }
        self.pending.clear();
        // The in-flight write survives torn (seeded prefix) or not at all.
        if let Some(PendingOp::Write { offset, data }) = in_flight {
            if state.plan.torn_tail && !data.is_empty() {
                let keep = (splitmix(&mut state.rng) as usize) % data.len();
                if keep > 0 {
                    apply_op(
                        &mut durable,
                        &PendingOp::Write {
                            offset: *offset,
                            data: data[..keep].to_vec(),
                        },
                    );
                }
            }
        }
        // Bit rot in whatever survived.
        if !durable.is_empty() {
            for _ in 0..state.plan.bit_rot_flips {
                let pos = (splitmix(&mut state.rng) as usize) % durable.len();
                let bit = (splitmix(&mut state.rng) & 7) as u8;
                durable[pos] ^= 1 << bit;
            }
        }
        Err(Self::power_cut_err())
    }
}

impl crate::durable::Media for CrashPointMedia {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        if self.handle.crashed() {
            return Err(Self::power_cut_err());
        }
        buf.fill(0);
        let offset = offset as usize;
        if offset < self.visible.len() {
            let available = (self.visible.len() - offset).min(buf.len());
            buf[..available].copy_from_slice(&self.visible[offset..offset + available]);
        }
        Ok(())
    }

    fn write_at(&mut self, offset: u64, data: &[u8]) -> io::Result<()> {
        let op = PendingOp::Write {
            offset,
            data: data.to_vec(),
        };
        self.step(Some(&op))?;
        apply_op(&mut self.visible, &op);
        self.pending.push(op);
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        self.step(None)?;
        let mut durable = self.durable.lock();
        for op in self.pending.drain(..) {
            apply_op(&mut durable, &op);
        }
        Ok(())
    }

    fn len(&self) -> io::Result<u64> {
        if self.handle.crashed() {
            return Err(Self::power_cut_err());
        }
        Ok(self.visible.len() as u64)
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        let op = PendingOp::Truncate { len };
        self.step(None)?;
        apply_op(&mut self.visible, &op);
        self.pending.push(op);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backing::MemBacking;
    use crate::durable::Media;

    fn block(fill: u8) -> Block {
        [fill; BLOCK_SIZE]
    }

    #[test]
    fn no_fault_plan_is_transparent() {
        let faulty = FaultInjectingBacking::new(MemBacking::new(), FaultPlan::new(1));
        faulty.write_block(3, &block(0x33)).unwrap();
        assert_eq!(faulty.read_block(3).unwrap(), block(0x33));
        assert_eq!(faulty.handle().injected_errors(), 0);
        assert_eq!(faulty.handle().ops(), 2);
    }

    #[test]
    fn error_probability_is_deterministic_per_seed() {
        let run = |seed: u64| -> Vec<bool> {
            let faulty = FaultInjectingBacking::new(
                MemBacking::new(),
                FaultPlan::new(seed).with_read_error_prob(0.5),
            );
            (0..64).map(|k| faulty.read_block(k).is_err()).collect()
        };
        assert_eq!(run(9), run(9), "same seed, same failure sequence");
        assert_ne!(run(9), run(10), "different seeds diverge");
        let failures = run(9).iter().filter(|&&f| f).count();
        assert!((16..=48).contains(&failures), "got {failures}/64 failures");
    }

    #[test]
    fn fail_window_hits_exactly_the_scheduled_ops() {
        let faulty =
            FaultInjectingBacking::new(MemBacking::new(), FaultPlan::new(0).with_fail_window(2..5));
        let results: Vec<bool> = (0..8).map(|k| faulty.read_block(k).is_err()).collect();
        assert_eq!(
            results,
            vec![false, false, true, true, true, false, false, false]
        );
        assert_eq!(faulty.handle().injected_errors(), 3);
    }

    #[test]
    fn fail_next_counts_down_and_heals() {
        let faulty = FaultInjectingBacking::new(MemBacking::new(), FaultPlan::new(0));
        let handle = faulty.handle();
        handle.fail_next(2);
        assert!(faulty.read_block(1).is_err());
        assert!(faulty.write_block(1, &block(1)).is_err());
        assert!(faulty.read_block(1).is_ok());
        assert_eq!(handle.injected_errors(), 2);
    }

    #[test]
    fn bad_keys_fail_every_access_but_spare_others() {
        let faulty =
            FaultInjectingBacking::new(MemBacking::new(), FaultPlan::new(0).with_bad_key(7));
        assert!(faulty.read_block(7).is_err());
        assert!(faulty.write_block(7, &block(1)).is_err());
        assert!(faulty.write_block(8, &block(8)).is_ok());
        assert_eq!(faulty.read_block(8).unwrap(), block(8));
        faulty.handle().heal();
        assert!(faulty.read_block(7).is_ok());
    }

    #[test]
    fn torn_writes_persist_a_corrupt_prefix() {
        let faulty =
            FaultInjectingBacking::new(MemBacking::new(), FaultPlan::new(0).with_torn_writes(16));
        faulty.write_block(5, &block(0xAA)).unwrap();
        faulty.handle().fail_next(1);
        let err = faulty.write_block(5, &block(0xBB)).unwrap_err();
        assert!(err.to_string().contains("injected"));
        // The store now holds a torn block: 16 new bytes, old tail.
        let torn = faulty.read_block(5).unwrap();
        assert_eq!(&torn[..16], &[0xBB; 16]);
        assert_eq!(&torn[16..], &[0xAA; BLOCK_SIZE - 16]);
    }

    #[test]
    fn latency_is_injected_before_serving() {
        let faulty = FaultInjectingBacking::new(
            MemBacking::new(),
            FaultPlan::new(0).with_latency(Duration::from_millis(30)),
        );
        let start = std::time::Instant::now();
        faulty.read_block(0).unwrap();
        assert!(start.elapsed() >= Duration::from_millis(25));
        faulty.handle().set_latency(Duration::ZERO);
        let start = std::time::Instant::now();
        faulty.read_block(0).unwrap();
        assert!(start.elapsed() < Duration::from_millis(25));
    }

    #[test]
    fn file_backing_errors_propagate_through_the_injector() {
        // The injector composes with the real file-backed store, which is
        // how FileBacking's error paths become unit-testable.
        let dir = std::env::temp_dir().join(format!("sievestore-faults-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let inner = crate::backing::FileBacking::open(dir.join("faulty.img")).unwrap();
        let faulty = FaultInjectingBacking::new(inner, FaultPlan::new(3));
        let handle = faulty.handle();

        faulty.write_block(2, &block(0x22)).unwrap();
        handle.fail_next(1);
        let err = faulty.read_block(2).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Other);
        // After the schedule drains, the file data is intact.
        assert_eq!(faulty.read_block(2).unwrap(), block(0x22));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn handles_are_shareable_across_threads() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FaultHandle>();
        assert_send_sync::<FaultInjectingBacking<MemBacking>>();
    }

    #[test]
    fn crash_media_synced_writes_survive_unsynced_may_not() {
        let handle = CrashHandle::new(CrashPlan::no_crash(7).crash_at_step(3));
        let mut media = CrashPointMedia::new(handle.clone());
        let image = media.image();

        media.write_at(0, b"durable!").unwrap(); // step 0
        media.sync().unwrap(); // step 1
        media.write_at(8, b"maybe").unwrap(); // step 2 (never synced)
        let err = media.write_at(16, b"never").unwrap_err(); // step 3: cut
        assert_eq!(err.to_string(), "simulated power cut");
        assert!(handle.crashed());

        // Everything fails after the cut.
        let mut buf = [0u8; 8];
        assert!(media.read_at(0, &mut buf).is_err());
        assert!(media.sync().is_err());

        // The synced write is in the surviving image; the in-flight write
        // at the cut is not (no torn tail configured).
        let bytes = image.bytes();
        assert_eq!(&bytes[..8.min(bytes.len())], b"durable!");
        assert!(bytes.len() <= 16, "in-flight write must not survive whole");
    }

    #[test]
    fn crash_media_reads_see_pending_writes_before_cut() {
        let handle = CrashHandle::new(CrashPlan::no_crash(1));
        let mut media = CrashPointMedia::new(handle);
        media.write_at(0, b"page cache").unwrap();
        let mut buf = [0u8; 10];
        media.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"page cache");
        // Past-EOF reads zero-fill.
        let mut tail = [0xFFu8; 4];
        media.read_at(100, &mut tail).unwrap();
        assert_eq!(tail, [0u8; 4]);
    }

    #[test]
    fn crash_media_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let handle =
                CrashHandle::new(CrashPlan::no_crash(seed).crash_at_step(4).with_torn_tail());
            let mut media = CrashPointMedia::new(handle);
            let image = media.image();
            for i in 0..4u64 {
                media.write_at(i * 64, &[i as u8 + 1; 64]).unwrap();
            }
            let _ = media.write_at(256, &[9u8; 64]);
            image.bytes()
        };
        assert_eq!(run(11), run(11));
        assert_eq!(run(12), run(12));
    }

    #[test]
    fn crash_steps_count_across_shared_devices() {
        let handle = CrashHandle::new(CrashPlan::no_crash(5));
        let mut a = CrashPointMedia::new(handle.clone());
        let mut b = CrashPointMedia::new(handle.clone());
        a.write_at(0, &[1]).unwrap();
        b.write_at(0, &[2]).unwrap();
        a.sync().unwrap();
        b.truncate(0).unwrap();
        assert_eq!(handle.steps(), 4);
    }

    #[test]
    fn crash_media_image_bit_flip_is_targeted() {
        let handle = CrashHandle::new(CrashPlan::no_crash(5));
        let mut media = CrashPointMedia::new(handle);
        let image = media.image();
        media.write_at(0, &[0u8; 8]).unwrap();
        media.sync().unwrap();
        image.flip_bit(3, 2);
        assert_eq!(image.bytes()[3], 0b100);
    }
}
