//! The appliance's wire protocol.
//!
//! A deliberately small, length-prefixed binary protocol for block I/O
//! through the SieveStore node (the paper assumes iSCSI; any block
//! protocol works, and this one keeps the repository self-contained):
//!
//! ```text
//! frame   :=  u32 length (LE, payload bytes) | payload
//! request :=  0x01 'R' | u64 key                      read one block
//!          |  0x02 'W' | u64 key | 512 B data         write one block
//!          |  0x03 'S'                                 fetch statistics
//!          |  0x04 'Q'                                 close connection
//!          |  0x05 'F'                                 flush dirty frames
//!          |  0x10 | u32 corr | request payload        pipelined envelope
//! reply   :=  0x81 | u8 hit | 512 B data               read reply
//!          |  0x82 | u8 hit                            write reply
//!          |  0x83 | 8 x u64 stats | u8 mode           stats reply
//!          |  0x84 | u64 flushed                       flush reply
//!          |  0xFF | u8 code | utf-8 message           error
//!          |  0x90 | u32 corr | reply payload          pipelined envelope
//! ```
//!
//! Error replies carry an [`ErrorCode`] so clients can distinguish
//! retryable conditions (a backing-store hiccup, an overrun deadline)
//! from permanent ones without parsing prose.
//!
//! # Pipelining
//!
//! A pipelined envelope ([`PipedRequest`] / [`PipedReply`]) wraps the
//! ordinary request/reply payload in a 32-bit **correlation id** chosen
//! by the client. Many enveloped requests may be in flight on one
//! connection, and the server may answer them **in any order** — each
//! reply carries its request's correlation id back, including `0xFF`
//! error replies, which ride inside the envelope like any other reply.
//! Plain (un-enveloped) requests keep their strict one-at-a-time,
//! in-order semantics, and both framings may share a connection.
//!
//! Encoding and decoding are symmetric and fully covered by round-trip
//! tests, including property tests over arbitrary payloads and
//! interleaved envelopes.

use std::io::{self, Read, Write};

use sievestore_types::{ErrorClass, BLOCK_SIZE};

/// Maximum accepted frame payload (guards against corrupt lengths).
pub const MAX_FRAME: u32 = 4096;

/// A client-to-node request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Read one 512-byte block.
    Read {
        /// Packed global block key.
        key: u64,
    },
    /// Write one 512-byte block (the node applies its write policy).
    Write {
        /// Packed global block key.
        key: u64,
        /// Block payload.
        data: Box<[u8; BLOCK_SIZE]>,
    },
    /// Fetch appliance statistics.
    Stats,
    /// Close the connection.
    Quit,
    /// Flush dirty frames to the backing store (write-back nodes).
    Flush,
}

/// Why the node rejected a request, as carried on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// A momentary failure (backing hiccup); the client should retry.
    Transient,
    /// A permanent failure; retrying will not help.
    Fatal,
    /// The client violated the wire protocol.
    Protocol,
    /// The request overran its server-side deadline.
    Deadline,
}

impl ErrorCode {
    fn to_u8(self) -> u8 {
        match self {
            ErrorCode::Transient => 0x01,
            ErrorCode::Fatal => 0x02,
            ErrorCode::Protocol => 0x03,
            ErrorCode::Deadline => 0x04,
        }
    }

    fn from_u8(byte: u8) -> io::Result<Self> {
        match byte {
            0x01 => Ok(ErrorCode::Transient),
            0x02 => Ok(ErrorCode::Fatal),
            0x03 => Ok(ErrorCode::Protocol),
            0x04 => Ok(ErrorCode::Deadline),
            other => Err(bad(format!("unknown error code {other:#x}"))),
        }
    }

    /// How a client should treat this error.
    pub fn class(self) -> ErrorClass {
        match self {
            ErrorCode::Transient | ErrorCode::Deadline => ErrorClass::Transient,
            ErrorCode::Fatal => ErrorClass::Fatal,
            ErrorCode::Protocol => ErrorClass::Protocol,
        }
    }
}

/// The node's health as reported in stats replies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NodeMode {
    /// Normal operation: the cache allocates and serves hits.
    #[default]
    Healthy,
    /// Circuit breaker open: requests pass through to the ensemble and
    /// no frames are allocated.
    Degraded,
    /// The breaker is about to probe the cache path with a live request.
    Probing,
}

impl NodeMode {
    fn to_u8(self) -> u8 {
        match self {
            NodeMode::Healthy => 0,
            NodeMode::Degraded => 1,
            NodeMode::Probing => 2,
        }
    }

    fn from_u8(byte: u8) -> io::Result<Self> {
        match byte {
            0 => Ok(NodeMode::Healthy),
            1 => Ok(NodeMode::Degraded),
            2 => Ok(NodeMode::Probing),
            other => Err(bad(format!("unknown node mode {other:#x}"))),
        }
    }
}

/// A node-to-client reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// Data for a read; `hit` tells whether the cache served it.
    Read {
        /// Whether the SSD cache served the block.
        hit: bool,
        /// Block payload.
        data: Box<[u8; BLOCK_SIZE]>,
    },
    /// Acknowledgement of a write; `hit` tells whether the cache held it.
    Write {
        /// Whether the block was resident in the cache.
        hit: bool,
    },
    /// Aggregate appliance counters.
    Stats {
        /// Read hits.
        read_hits: u64,
        /// Write hits.
        write_hits: u64,
        /// Read misses.
        read_misses: u64,
        /// Write misses.
        write_misses: u64,
        /// Allocation-writes performed.
        allocation_writes: u64,
        /// Blocks currently resident.
        resident_blocks: u64,
        /// Requests served in degraded pass-through mode (reads).
        degraded_reads: u64,
        /// Requests served in degraded pass-through mode (writes).
        degraded_writes: u64,
        /// The node's current health mode.
        mode: NodeMode,
    },
    /// Acknowledgement of a flush with the number of blocks written back.
    Flush {
        /// Dirty frames written to the backing store.
        flushed: u64,
    },
    /// The node rejected the request.
    Error {
        /// Machine-readable classification.
        code: ErrorCode,
        /// Human-readable reason.
        message: String,
    },
}

/// Tag opening a pipelined request envelope (`0x10 | u32 corr | payload`).
const PIPED_REQUEST_TAG: u8 = 0x10;
/// Tag opening a pipelined reply envelope (`0x90 | u32 corr | payload`).
const PIPED_REPLY_TAG: u8 = 0x90;

fn write_frame<W: Write>(out: &mut W, payload: &[u8]) -> io::Result<()> {
    let len = payload.len() as u32;
    out.write_all(&len.to_le_bytes())?;
    out.write_all(payload)?;
    out.flush()
}

/// Appends one length-prefixed frame to `buf` without touching I/O —
/// the batched (pipelined) paths build many frames and issue a single
/// `write_all`, amortizing syscalls.
fn frame_into(buf: &mut Vec<u8>, payload: &[u8]) {
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(payload);
}

fn read_frame<R: Read>(input: &mut R) -> io::Result<Vec<u8>> {
    let mut len_bytes = [0u8; 4];
    input.read_exact(&mut len_bytes)?;
    let len = u32::from_le_bytes(len_bytes);
    if len == 0 || len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} outside 1..={MAX_FRAME}"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    input.read_exact(&mut payload)?;
    Ok(payload)
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

impl Request {
    /// The request's frame payload (tag byte onward, no length prefix).
    fn payload(&self) -> Vec<u8> {
        match self {
            Request::Read { key } => {
                let mut p = Vec::with_capacity(9);
                p.push(0x01);
                p.extend_from_slice(&key.to_le_bytes());
                p
            }
            Request::Write { key, data } => {
                let mut p = Vec::with_capacity(9 + BLOCK_SIZE);
                p.push(0x02);
                p.extend_from_slice(&key.to_le_bytes());
                p.extend_from_slice(&data[..]);
                p
            }
            Request::Stats => vec![0x03],
            Request::Quit => vec![0x04],
            Request::Flush => vec![0x05],
        }
    }

    /// Parses a request frame payload (tag byte onward).
    fn parse(p: &[u8]) -> io::Result<Self> {
        if p.is_empty() {
            return Err(bad("empty request payload"));
        }
        match p[0] {
            0x01 => {
                if p.len() != 9 {
                    return Err(bad("read frame must be 9 bytes"));
                }
                Ok(Request::Read {
                    key: u64::from_le_bytes(p[1..9].try_into().expect("8 bytes")),
                })
            }
            0x02 => {
                if p.len() != 9 + BLOCK_SIZE {
                    return Err(bad("write frame must carry one block"));
                }
                let mut data = Box::new([0u8; BLOCK_SIZE]);
                data.copy_from_slice(&p[9..]);
                Ok(Request::Write {
                    key: u64::from_le_bytes(p[1..9].try_into().expect("8 bytes")),
                    data,
                })
            }
            0x03 => Ok(Request::Stats),
            0x04 => Ok(Request::Quit),
            0x05 => Ok(Request::Flush),
            tag => Err(bad(format!("unknown request tag {tag:#x}"))),
        }
    }

    /// Serializes the request as one frame.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn encode<W: Write>(&self, out: &mut W) -> io::Result<()> {
        write_frame(out, &self.payload())
    }

    /// Appends the request's frame to `buf` (no I/O, no flush) for
    /// batched pipelined writes.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        frame_into(buf, &self.payload());
    }

    /// Reads and parses one request frame.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` for malformed frames; propagates I/O errors
    /// (including `UnexpectedEof` when the peer disconnects).
    pub fn decode<R: Read>(input: &mut R) -> io::Result<Self> {
        let p = read_frame(input)?;
        Self::parse(&p)
    }
}

/// A request wrapped in a pipelined envelope: the client-chosen
/// correlation id rides with the request and comes back on its reply,
/// so many requests can be in flight per connection and complete out of
/// order. See the [module docs](self) for the framing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipedRequest {
    /// Client-chosen correlation id echoed on the matching reply.
    pub corr: u32,
    /// The wrapped request.
    pub request: Request,
}

impl PipedRequest {
    fn payload(&self) -> Vec<u8> {
        let inner = self.request.payload();
        let mut p = Vec::with_capacity(5 + inner.len());
        p.push(PIPED_REQUEST_TAG);
        p.extend_from_slice(&self.corr.to_le_bytes());
        p.extend_from_slice(&inner);
        p
    }

    fn parse(p: &[u8]) -> io::Result<Self> {
        if p.len() < 6 || p[0] != PIPED_REQUEST_TAG {
            return Err(bad("piped request envelope must carry corr + payload"));
        }
        Ok(PipedRequest {
            corr: u32::from_le_bytes(p[1..5].try_into().expect("4 bytes")),
            request: Request::parse(&p[5..])?,
        })
    }

    /// Serializes the envelope as one frame.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn encode<W: Write>(&self, out: &mut W) -> io::Result<()> {
        write_frame(out, &self.payload())
    }

    /// Appends the envelope's frame to `buf` (no I/O, no flush).
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        frame_into(buf, &self.payload());
    }
}

/// One decoded inbound frame on a server connection: either a plain
/// in-order request or a pipelined envelope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Incoming {
    /// A plain request with strict in-order reply semantics.
    Plain(Request),
    /// An enveloped request that may complete out of order.
    Piped(PipedRequest),
}

impl Incoming {
    /// Parses a frame payload as either framing.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` for malformed frames of either kind.
    pub fn parse(p: &[u8]) -> io::Result<Self> {
        if p.first() == Some(&PIPED_REQUEST_TAG) {
            Ok(Incoming::Piped(PipedRequest::parse(p)?))
        } else {
            Ok(Incoming::Plain(Request::parse(p)?))
        }
    }

    /// Reads and parses one frame of either framing.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` for malformed frames; propagates I/O errors
    /// (including `UnexpectedEof` when the peer disconnects).
    pub fn decode<R: Read>(input: &mut R) -> io::Result<Self> {
        let p = read_frame(input)?;
        Self::parse(&p)
    }
}

/// Attempts to split one complete frame off the front of `buf`.
///
/// Returns `Ok(None)` when the buffer does not yet hold a full frame,
/// or `Some((consumed, payload_range))` where `consumed` counts the
/// length prefix plus payload and `payload_range` indexes the payload
/// bytes inside `buf`. The nonblocking sharded server feeds its read
/// buffers through this.
///
/// # Errors
///
/// Returns `InvalidData` for out-of-bounds frame lengths.
pub fn split_frame(buf: &[u8]) -> io::Result<Option<(usize, std::ops::Range<usize>)>> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_le_bytes(buf[..4].try_into().expect("4 bytes"));
    if len == 0 || len > MAX_FRAME {
        return Err(bad(format!("frame length {len} outside 1..={MAX_FRAME}")));
    }
    let total = 4 + len as usize;
    if buf.len() < total {
        return Ok(None);
    }
    Ok(Some((total, 4..total)))
}

impl Reply {
    /// The reply's frame payload (tag byte onward, no length prefix).
    fn payload(&self) -> Vec<u8> {
        match self {
            Reply::Read { hit, data } => {
                let mut p = Vec::with_capacity(2 + BLOCK_SIZE);
                p.push(0x81);
                p.push(*hit as u8);
                p.extend_from_slice(&data[..]);
                p
            }
            Reply::Write { hit } => vec![0x82, *hit as u8],
            Reply::Stats {
                read_hits,
                write_hits,
                read_misses,
                write_misses,
                allocation_writes,
                resident_blocks,
                degraded_reads,
                degraded_writes,
                mode,
            } => {
                let mut p = Vec::with_capacity(2 + 64);
                p.push(0x83);
                for v in [
                    read_hits,
                    write_hits,
                    read_misses,
                    write_misses,
                    allocation_writes,
                    resident_blocks,
                    degraded_reads,
                    degraded_writes,
                ] {
                    p.extend_from_slice(&v.to_le_bytes());
                }
                p.push(mode.to_u8());
                p
            }
            Reply::Flush { flushed } => {
                let mut p = Vec::with_capacity(9);
                p.push(0x84);
                p.extend_from_slice(&flushed.to_le_bytes());
                p
            }
            Reply::Error { code, message } => {
                // Error messages must never themselves overflow a frame
                // (pipelined envelopes add 5 bytes of header on top).
                let message = &message.as_bytes()[..message.len().min(MAX_FRAME as usize - 7)];
                let mut p = Vec::with_capacity(2 + message.len());
                p.push(0xFF);
                p.push(code.to_u8());
                p.extend_from_slice(message);
                p
            }
        }
    }

    /// Parses a reply frame payload (tag byte onward).
    fn parse(p: &[u8]) -> io::Result<Self> {
        if p.is_empty() {
            return Err(bad("empty reply payload"));
        }
        match p[0] {
            0x81 => {
                if p.len() != 2 + BLOCK_SIZE {
                    return Err(bad("read reply must carry one block"));
                }
                let mut data = Box::new([0u8; BLOCK_SIZE]);
                data.copy_from_slice(&p[2..]);
                Ok(Reply::Read {
                    hit: p[1] != 0,
                    data,
                })
            }
            0x82 => {
                if p.len() != 2 {
                    return Err(bad("write reply must be 2 bytes"));
                }
                Ok(Reply::Write { hit: p[1] != 0 })
            }
            0x83 => {
                if p.len() != 66 {
                    return Err(bad("stats reply must be 66 bytes"));
                }
                let field = |i: usize| {
                    u64::from_le_bytes(p[1 + i * 8..9 + i * 8].try_into().expect("8 bytes"))
                };
                Ok(Reply::Stats {
                    read_hits: field(0),
                    write_hits: field(1),
                    read_misses: field(2),
                    write_misses: field(3),
                    allocation_writes: field(4),
                    resident_blocks: field(5),
                    degraded_reads: field(6),
                    degraded_writes: field(7),
                    mode: NodeMode::from_u8(p[65])?,
                })
            }
            0x84 => {
                if p.len() != 9 {
                    return Err(bad("flush reply must be 9 bytes"));
                }
                Ok(Reply::Flush {
                    flushed: u64::from_le_bytes(p[1..9].try_into().expect("8 bytes")),
                })
            }
            0xFF => {
                if p.len() < 2 {
                    return Err(bad("error reply must carry a code"));
                }
                Ok(Reply::Error {
                    code: ErrorCode::from_u8(p[1])?,
                    message: String::from_utf8_lossy(&p[2..]).into_owned(),
                })
            }
            tag => Err(bad(format!("unknown reply tag {tag:#x}"))),
        }
    }

    /// Serializes the reply as one frame.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn encode<W: Write>(&self, out: &mut W) -> io::Result<()> {
        write_frame(out, &self.payload())
    }

    /// Appends the reply's frame to `buf` (no I/O, no flush) for
    /// batched pipelined writes.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        frame_into(buf, &self.payload());
    }

    /// Reads and parses one reply frame.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` for malformed frames; propagates I/O errors.
    pub fn decode<R: Read>(input: &mut R) -> io::Result<Self> {
        let p = read_frame(input)?;
        Self::parse(&p)
    }
}

/// A reply wrapped in a pipelined envelope, carrying its request's
/// correlation id back to the client. Error replies (`0xFF`) ride the
/// envelope like any other reply, so a failed pipelined request fails
/// only its own correlation id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipedReply {
    /// The correlation id of the request this reply answers.
    pub corr: u32,
    /// The wrapped reply.
    pub reply: Reply,
}

impl PipedReply {
    fn payload(&self) -> Vec<u8> {
        let inner = self.reply.payload();
        let mut p = Vec::with_capacity(5 + inner.len());
        p.push(PIPED_REPLY_TAG);
        p.extend_from_slice(&self.corr.to_le_bytes());
        p.extend_from_slice(&inner);
        p
    }

    /// Parses a reply-envelope frame payload.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` unless the payload is a well-formed
    /// envelope wrapping a well-formed reply.
    pub fn parse(p: &[u8]) -> io::Result<Self> {
        if p.len() < 6 || p[0] != PIPED_REPLY_TAG {
            return Err(bad("piped reply envelope must carry corr + payload"));
        }
        Ok(PipedReply {
            corr: u32::from_le_bytes(p[1..5].try_into().expect("4 bytes")),
            reply: Reply::parse(&p[5..])?,
        })
    }

    /// Serializes the envelope as one frame.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn encode<W: Write>(&self, out: &mut W) -> io::Result<()> {
        write_frame(out, &self.payload())
    }

    /// Appends the envelope's frame to `buf` (no I/O, no flush).
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        frame_into(buf, &self.payload());
    }

    /// Reads and parses one reply-envelope frame.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` for malformed frames; propagates I/O errors.
    pub fn decode<R: Read>(input: &mut R) -> io::Result<Self> {
        let p = read_frame(input)?;
        Self::parse(&p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip_request(req: &Request) -> Request {
        let mut bytes = Vec::new();
        req.encode(&mut bytes).expect("vec write");
        Request::decode(&mut bytes.as_slice()).expect("own encoding decodes")
    }

    fn roundtrip_reply(reply: &Reply) -> Reply {
        let mut bytes = Vec::new();
        reply.encode(&mut bytes).expect("vec write");
        Reply::decode(&mut bytes.as_slice()).expect("own encoding decodes")
    }

    #[test]
    fn request_roundtrips() {
        let data = Box::new([0xAB; BLOCK_SIZE]);
        for req in [
            Request::Read { key: 42 },
            Request::Write { key: 7, data },
            Request::Stats,
            Request::Quit,
            Request::Flush,
        ] {
            assert_eq!(roundtrip_request(&req), req);
        }
    }

    #[test]
    fn reply_roundtrips() {
        let data = Box::new([0x5A; BLOCK_SIZE]);
        for reply in [
            Reply::Read { hit: true, data },
            Reply::Write { hit: false },
            Reply::Stats {
                read_hits: 1,
                write_hits: 2,
                read_misses: 3,
                write_misses: 4,
                allocation_writes: 5,
                resident_blocks: 6,
                degraded_reads: 7,
                degraded_writes: 8,
                mode: NodeMode::Degraded,
            },
            Reply::Flush { flushed: 12 },
            Reply::Error {
                code: ErrorCode::Transient,
                message: "no".into(),
            },
            Reply::Error {
                code: ErrorCode::Deadline,
                message: String::new(),
            },
        ] {
            assert_eq!(roundtrip_reply(&reply), reply);
        }
    }

    #[test]
    fn error_codes_classify_for_retry() {
        use sievestore_types::ErrorClass;
        assert_eq!(ErrorCode::Transient.class(), ErrorClass::Transient);
        assert_eq!(ErrorCode::Deadline.class(), ErrorClass::Transient);
        assert_eq!(ErrorCode::Fatal.class(), ErrorClass::Fatal);
        assert_eq!(ErrorCode::Protocol.class(), ErrorClass::Protocol);
    }

    #[test]
    fn oversized_error_messages_are_truncated_to_fit() {
        let reply = Reply::Error {
            code: ErrorCode::Fatal,
            message: "x".repeat(2 * MAX_FRAME as usize),
        };
        let mut bytes = Vec::new();
        reply.encode(&mut bytes).expect("encode truncates");
        match Reply::decode(&mut bytes.as_slice()).expect("decodes") {
            Reply::Error { code, message } => {
                assert_eq!(code, ErrorCode::Fatal);
                // Truncated so that even the 5-byte pipelined envelope
                // header cannot push the frame past MAX_FRAME.
                assert_eq!(message.len(), MAX_FRAME as usize - 7);
            }
            other => panic!("unexpected {other:?}"),
        }
        let piped = PipedReply {
            corr: u32::MAX,
            reply: Reply::Error {
                code: ErrorCode::Fatal,
                message: "x".repeat(2 * MAX_FRAME as usize),
            },
        };
        let mut bytes = Vec::new();
        piped.encode(&mut bytes).expect("enveloped error encodes");
        assert!(bytes.len() <= 4 + MAX_FRAME as usize);
        PipedReply::decode(&mut bytes.as_slice()).expect("enveloped error decodes");
    }

    #[test]
    fn piped_envelopes_roundtrip() {
        let data = Box::new([0x5A; BLOCK_SIZE]);
        for (corr, request) in [
            (0u32, Request::Read { key: 42 }),
            (
                u32::MAX,
                Request::Write {
                    key: 7,
                    data: data.clone(),
                },
            ),
            (7, Request::Stats),
            (8, Request::Flush),
        ] {
            let piped = PipedRequest { corr, request };
            let mut bytes = Vec::new();
            piped.encode(&mut bytes).expect("vec write");
            assert_eq!(
                PipedRequest::parse(&bytes[4..]).expect("own encoding parses"),
                piped
            );
            match Incoming::decode(&mut bytes.as_slice()).expect("incoming decodes") {
                Incoming::Piped(got) => assert_eq!(got, piped),
                other => panic!("unexpected {other:?}"),
            }
        }
        for (corr, reply) in [
            (3u32, Reply::Read { hit: true, data }),
            (4, Reply::Write { hit: false }),
            (
                5,
                Reply::Error {
                    code: ErrorCode::Deadline,
                    message: "late".into(),
                },
            ),
        ] {
            let piped = PipedReply { corr, reply };
            let mut bytes = Vec::new();
            piped.encode(&mut bytes).expect("vec write");
            assert_eq!(
                PipedReply::decode(&mut bytes.as_slice()).expect("decodes"),
                piped
            );
        }
    }

    #[test]
    fn plain_frames_decode_as_incoming_plain() {
        let mut bytes = Vec::new();
        Request::Read { key: 9 }.encode(&mut bytes).unwrap();
        assert_eq!(
            Incoming::decode(&mut bytes.as_slice()).unwrap(),
            Incoming::Plain(Request::Read { key: 9 })
        );
    }

    #[test]
    fn split_frame_handles_partial_and_complete_buffers() {
        let mut bytes = Vec::new();
        Request::Read { key: 5 }.encode_into(&mut bytes);
        Request::Stats.encode_into(&mut bytes);
        // Every strict prefix of the first frame wants more bytes.
        for cut in 0..13 {
            assert!(split_frame(&bytes[..cut])
                .expect("prefix is clean")
                .is_none());
        }
        let (consumed, range) = split_frame(&bytes).expect("complete").expect("frame");
        assert_eq!(consumed, 13);
        assert_eq!(
            Request::parse(&bytes[range]).expect("parses"),
            Request::Read { key: 5 }
        );
        let rest = &bytes[consumed..];
        let (consumed, range) = split_frame(rest).expect("complete").expect("frame");
        assert_eq!(
            Request::parse(&rest[range]).expect("parses"),
            Request::Stats
        );
        assert_eq!(consumed, rest.len());
        // Corrupt lengths are rejected, not buffered forever.
        assert!(split_frame(&0u32.to_le_bytes()).is_err());
        assert!(split_frame(&(MAX_FRAME + 1).to_le_bytes()).is_err());
    }

    #[test]
    fn bad_frames_are_rejected() {
        // Zero length.
        let z = 0u32.to_le_bytes();
        assert!(Request::decode(&mut z.as_slice()).is_err());
        // Oversized length.
        let huge = (MAX_FRAME + 1).to_le_bytes();
        assert!(Request::decode(&mut huge.as_slice()).is_err());
        // Unknown tag.
        let mut bytes = Vec::new();
        write_frame(&mut bytes, &[0x7E]).unwrap();
        assert!(Request::decode(&mut bytes.as_slice()).is_err());
        // Truncated read request.
        let mut bytes = Vec::new();
        write_frame(&mut bytes, &[0x01, 1, 2]).unwrap();
        assert!(Request::decode(&mut bytes.as_slice()).is_err());
        // Write without a full block.
        let mut bytes = Vec::new();
        write_frame(&mut bytes, &[0x02; 20]).unwrap();
        assert!(Request::decode(&mut bytes.as_slice()).is_err());
    }

    #[test]
    fn eof_surfaces_as_io_error() {
        let empty: &[u8] = &[];
        let err = Request::decode(&mut &*empty).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn pipelined_frames_decode_in_order() {
        let mut bytes = Vec::new();
        Request::Read { key: 1 }.encode(&mut bytes).unwrap();
        Request::Stats.encode(&mut bytes).unwrap();
        Request::Quit.encode(&mut bytes).unwrap();
        let mut cursor = bytes.as_slice();
        assert_eq!(
            Request::decode(&mut cursor).unwrap(),
            Request::Read { key: 1 }
        );
        assert_eq!(Request::decode(&mut cursor).unwrap(), Request::Stats);
        assert_eq!(Request::decode(&mut cursor).unwrap(), Request::Quit);
    }

    proptest! {
        #[test]
        fn arbitrary_writes_roundtrip(key in any::<u64>(), bytes in proptest::collection::vec(any::<u8>(), BLOCK_SIZE)) {
            let mut data = Box::new([0u8; BLOCK_SIZE]);
            data.copy_from_slice(&bytes);
            let req = Request::Write { key, data };
            prop_assert_eq!(roundtrip_request(&req), req);
        }

        #[test]
        fn error_messages_roundtrip(message in "[a-zA-Z0-9 .!?]{0,200}") {
            let reply = Reply::Error { code: ErrorCode::Transient, message: message.clone() };
            prop_assert_eq!(
                roundtrip_reply(&reply),
                Reply::Error { code: ErrorCode::Transient, message }
            );
        }

        /// Arbitrary bytes must never panic the request decoder: every
        /// outcome is a clean `Ok` or `Err`.
        #[test]
        fn request_decoder_survives_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..600)) {
            let _ = Request::decode(&mut bytes.as_slice());
        }

        /// Same for the reply decoder (the client's exposure).
        #[test]
        fn reply_decoder_survives_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..600)) {
            let _ = Reply::decode(&mut bytes.as_slice());
        }

        /// Length-prefixed garbage within frame bounds decodes to an
        /// error or a request, never a panic; lengths beyond MAX_FRAME
        /// are always rejected.
        #[test]
        fn framed_garbage_never_panics(
            len in 0u32..(MAX_FRAME * 2),
            payload in proptest::collection::vec(any::<u8>(), 0..64),
        ) {
            let mut bytes = Vec::new();
            bytes.extend_from_slice(&len.to_le_bytes());
            bytes.extend_from_slice(&payload);
            let result = Request::decode(&mut bytes.as_slice());
            if len == 0 || len > MAX_FRAME {
                prop_assert!(result.is_err(), "out-of-bounds length must be rejected");
            }
        }

        /// Correlation ids survive the envelope round trip for every
        /// request kind and arbitrary payloads.
        #[test]
        fn piped_requests_roundtrip(
            corr in any::<u32>(),
            key in any::<u64>(),
            bytes in proptest::collection::vec(any::<u8>(), BLOCK_SIZE),
            kind in 0u8..4,
        ) {
            let mut data = Box::new([0u8; BLOCK_SIZE]);
            data.copy_from_slice(&bytes);
            let request = match kind {
                0 => Request::Read { key },
                1 => Request::Write { key, data },
                2 => Request::Stats,
                _ => Request::Flush,
            };
            let piped = PipedRequest { corr, request };
            let mut encoded = Vec::new();
            piped.encode(&mut encoded).expect("vec write");
            match Incoming::decode(&mut encoded.as_slice()).expect("decodes") {
                Incoming::Piped(got) => prop_assert_eq!(got, piped),
                other => prop_assert!(false, "decoded as plain: {:?}", other),
            }
        }

        /// A batch of enveloped replies completed in ANY order decodes
        /// back to exactly the sent (corr, reply) pairs — including 0xFF
        /// error replies — so out-of-order pipelined completion loses
        /// nothing.
        #[test]
        fn interleaved_piped_replies_roundtrip_out_of_order(
            corrs in proptest::collection::vec(any::<u32>(), 1..20),
            rot in any::<usize>(),
        ) {
            let replies: Vec<PipedReply> = corrs
                .iter()
                .enumerate()
                .map(|(i, &corr)| PipedReply {
                    corr,
                    reply: match i % 3 {
                        0 => Reply::Write { hit: i % 2 == 0 },
                        1 => Reply::Read {
                            hit: false,
                            data: Box::new([i as u8; BLOCK_SIZE]),
                        },
                        _ => Reply::Error {
                            code: ErrorCode::Transient,
                            message: format!("injected {i}"),
                        },
                    },
                })
                .collect();
            // Complete in rotated (out-of-order) sequence.
            let rot = rot % replies.len();
            let mut buf = Vec::new();
            for r in replies[rot..].iter().chain(&replies[..rot]) {
                r.encode_into(&mut buf);
            }
            let mut cursor = buf.as_slice();
            let mut seen = Vec::new();
            while !cursor.is_empty() {
                seen.push(PipedReply::decode(&mut cursor).expect("decodes"));
            }
            let mut expect: Vec<PipedReply> =
                replies[rot..].iter().chain(&replies[..rot]).cloned().collect();
            prop_assert_eq!(seen.len(), expect.len());
            for (got, want) in seen.iter().zip(expect.drain(..)) {
                prop_assert_eq!(got, &want);
            }
        }

        /// `split_frame` over an arbitrary concatenation of frames plus a
        /// truncated tail yields exactly the whole frames, then `None`.
        #[test]
        fn split_frame_recovers_concatenated_frames(
            keys in proptest::collection::vec(any::<u64>(), 0..8),
            tail in 0usize..13,
        ) {
            let mut buf = Vec::new();
            for &key in &keys {
                PipedRequest { corr: key as u32, request: Request::Read { key } }
                    .encode_into(&mut buf);
            }
            let mut partial = Vec::new();
            Request::Read { key: 1 }.encode_into(&mut partial);
            buf.extend_from_slice(&partial[..tail]);
            let mut off = 0;
            let mut frames = 0;
            while let Some((consumed, range)) = split_frame(&buf[off..]).expect("clean") {
                let payload = &buf[off..][range];
                match Incoming::parse(payload).expect("parses") {
                    Incoming::Piped(p) => prop_assert_eq!(p.request, Request::Read { key: keys[frames] }),
                    Incoming::Plain(_) => prop_assert!(frames == keys.len()),
                }
                off += consumed;
                frames += 1;
                if frames > keys.len() { break; }
            }
            prop_assert!(frames >= keys.len());
        }

        /// Truncating a valid frame at any point yields an error (EOF or
        /// invalid data), never a panic or a bogus success.
        #[test]
        fn truncated_frames_error_cleanly(key in any::<u64>(), cut in 0usize..12) {
            let mut bytes = Vec::new();
            Request::Read { key }.encode(&mut bytes).expect("vec write");
            let cut = cut.min(bytes.len().saturating_sub(1));
            let truncated = &bytes[..cut];
            prop_assert!(Request::decode(&mut &*truncated).is_err());
        }
    }
}
