//! The data-holding cache: policy decisions plus actual block payloads.
//!
//! [`DataCache`] wires a [`SieveStore`] appliance (which decides hits,
//! bypasses and allocations) to real 512-byte payloads: hits are served
//! from cached frames (the SSD stand-in), misses are fetched from the
//! [`BackingStore`] (the ensemble), and allocation decisions copy the
//! fetched block into a frame.
//!
//! Two write policies ([`WritePolicy`]):
//!
//! * **Write-through** (default): every write also updates the backing
//!   store; the cache never holds the only copy.
//! * **Write-back** — the paper's accounting: write *hits* land on the
//!   SSD only (that is exactly the ensemble-offload benefit of caching
//!   write-hot blocks), with the frame marked dirty and flushed to the
//!   backing store on eviction, on epoch replacement or on an explicit
//!   [`DataCache::flush`].

use std::collections::HashMap;
use std::io;

use sievestore::{AccessOutcome, ApplianceStats, PolicySpec, SieveStore, SieveStoreBuilder};
use sievestore_types::{Day, Micros, RequestKind, SieveError};

use crate::backing::{BackingStore, Block};

/// When writes reach the backing store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WritePolicy {
    /// Every write also updates the backing store immediately.
    #[default]
    WriteThrough,
    /// Write hits stay on the cached frame (dirty) until eviction or an
    /// explicit flush — the paper's SSD-absorbs-write-hits accounting.
    WriteBack,
}

/// Outcome of one data access through the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataOutcome {
    /// Whether the cache served (or absorbed) the access.
    pub hit: bool,
    /// Whether the access triggered an allocation-write.
    pub allocated: bool,
}

/// A block cache with payloads, fronting a backing store.
///
/// # Examples
///
/// ```
/// use sievestore::PolicySpec;
/// use sievestore_node::{DataCache, MemBacking};
/// use sievestore_types::Micros;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut cache = DataCache::new(MemBacking::new(), PolicySpec::Aod, 128)?;
/// cache.write(7, &[9u8; 512], Micros::from_secs(1))?;
/// let (data, outcome) = cache.read(7, Micros::from_secs(2))?;
/// assert_eq!(data, [9u8; 512]);
/// assert!(outcome.hit);
/// # Ok(())
/// # }
/// ```
pub struct DataCache<B: BackingStore> {
    store: SieveStore,
    frames: HashMap<u64, Box<Block>>,
    dirty: std::collections::HashSet<u64>,
    write_policy: WritePolicy,
    backing: B,
}

impl<B: BackingStore> std::fmt::Debug for DataCache<B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DataCache")
            .field("policy", &self.store.policy_name())
            .field("frames", &self.frames.len())
            .field("dirty", &self.dirty.len())
            .field("write_policy", &self.write_policy)
            .field("capacity", &self.store.capacity_blocks())
            .finish()
    }
}

impl<B: BackingStore> DataCache<B> {
    /// Creates a cache over `backing` with the given policy and frame
    /// capacity.
    ///
    /// # Errors
    ///
    /// Returns [`SieveError::InvalidConfig`] for an invalid policy or
    /// zero capacity.
    pub fn new(backing: B, policy: PolicySpec, capacity_blocks: usize) -> Result<Self, SieveError> {
        Ok(DataCache {
            store: SieveStoreBuilder::new()
                .capacity_blocks(capacity_blocks)
                .policy(policy)
                .build()?,
            frames: HashMap::new(),
            dirty: std::collections::HashSet::new(),
            write_policy: WritePolicy::WriteThrough,
            backing,
        })
    }

    /// Selects the write policy (default: write-through).
    #[must_use]
    pub fn with_write_policy(mut self, policy: WritePolicy) -> Self {
        self.write_policy = policy;
        self
    }

    /// The active write policy.
    pub fn write_policy(&self) -> WritePolicy {
        self.write_policy
    }

    /// Number of dirty (unflushed) frames.
    pub fn dirty_blocks(&self) -> usize {
        self.dirty.len()
    }

    /// Writes one dirty victim back to the backing store.
    ///
    /// On failure the key is re-marked dirty so the data is not lost —
    /// a later flush (or shutdown retry) will try again.
    fn flush_one(&mut self, key: u64) -> io::Result<()> {
        if self.dirty.remove(&key) {
            // A dirty key without a frame would be an internal
            // inconsistency; treat it as already-flushed rather than
            // panicking on a degraded node.
            let Some(data) = self.frames.get(&key).map(|b| **b) else {
                return Ok(());
            };
            if let Err(e) = self.backing.write_block(key, &data) {
                self.dirty.insert(key);
                return Err(e);
            }
        }
        Ok(())
    }

    /// Writes every dirty frame back to the backing store; returns how
    /// many blocks were flushed.
    ///
    /// # Errors
    ///
    /// Propagates the first backing-store failure; already-flushed
    /// blocks stay clean, the failed key stays dirty.
    pub fn flush(&mut self) -> io::Result<u64> {
        let keys: Vec<u64> = self.dirty.iter().copied().collect();
        let mut flushed = 0;
        for key in keys {
            self.flush_one(key)?;
            flushed += 1;
        }
        Ok(flushed)
    }

    /// Best-effort flush: keeps going past individual failures instead
    /// of aborting on the first one. Returns `(flushed, still_dirty)`.
    pub fn flush_best_effort(&mut self) -> (u64, u64) {
        let keys: Vec<u64> = self.dirty.iter().copied().collect();
        let mut flushed = 0;
        for key in keys {
            if self.flush_one(key).is_ok() {
                flushed += 1;
            }
        }
        (flushed, self.dirty.len() as u64)
    }

    /// Applies a policy outcome to the frame map, fetching `fresh` on
    /// allocation; dirty victims are flushed before their frame drops.
    fn apply_outcome(
        &mut self,
        key: u64,
        outcome: AccessOutcome,
        fresh: Option<&Block>,
    ) -> io::Result<DataOutcome> {
        Ok(match outcome {
            AccessOutcome::Hit => DataOutcome {
                hit: true,
                allocated: false,
            },
            AccessOutcome::BypassMiss => DataOutcome {
                hit: false,
                allocated: false,
            },
            AccessOutcome::AllocatedMiss { evicted } => {
                if let Some(victim) = evicted {
                    self.flush_one(victim)?;
                    self.frames.remove(&victim);
                }
                if let Some(data) = fresh {
                    self.frames.insert(key, Box::new(*data));
                }
                DataOutcome {
                    hit: false,
                    allocated: true,
                }
            }
        })
    }

    /// Reads one block through the cache.
    ///
    /// # Errors
    ///
    /// Propagates backing-store failures (cache state stays consistent:
    /// policy metadata may register the miss, but no frame is installed).
    pub fn read(&mut self, key: u64, now: Micros) -> io::Result<(Block, DataOutcome)> {
        let outcome = self.store.access(key, RequestKind::Read, now);
        if outcome.is_hit() {
            // A hit without a frame would be an internal inconsistency;
            // fall back to the backing store instead of panicking.
            if let Some(data) = self.frames.get(&key).map(|b| **b) {
                return Ok((
                    data,
                    DataOutcome {
                        hit: true,
                        allocated: false,
                    },
                ));
            }
            let data = self.backing.read_block(key)?;
            return Ok((
                data,
                DataOutcome {
                    hit: false,
                    allocated: false,
                },
            ));
        }
        let data = self.backing.read_block(key)?;
        let result = self.apply_outcome(key, outcome, Some(&data))?;
        Ok((data, result))
    }

    /// Writes one block through the cache, honouring the write policy.
    ///
    /// # Errors
    ///
    /// Propagates backing-store failures.
    pub fn write(&mut self, key: u64, data: &Block, now: Micros) -> io::Result<DataOutcome> {
        let outcome = self.store.access(key, RequestKind::Write, now);
        if outcome.is_hit() {
            match self.write_policy {
                WritePolicy::WriteThrough => {
                    self.backing.write_block(key, data)?;
                }
                WritePolicy::WriteBack => {
                    self.dirty.insert(key);
                }
            }
            self.frames.insert(key, Box::new(*data));
            return Ok(DataOutcome {
                hit: true,
                allocated: false,
            });
        }
        // Misses: a bypass goes straight to the ensemble; an allocation
        // installs the fresh data (dirty under write-back — the backing
        // store has never seen it).
        match (self.write_policy, outcome.is_allocation()) {
            (WritePolicy::WriteBack, true) => {
                self.dirty.insert(key);
            }
            _ => self.backing.write_block(key, data)?,
        }
        self.apply_outcome(key, outcome, Some(data))
    }

    /// Serves a read without consulting the policy or allocating frames
    /// — the degraded pass-through path.
    ///
    /// Dirty frames are authoritative (the backing store holds stale
    /// data for them), so they are served from memory; everything else
    /// goes straight to the backing store.
    ///
    /// # Errors
    ///
    /// Propagates backing-store failures.
    pub fn read_bypass(&mut self, key: u64) -> io::Result<Block> {
        if self.dirty.contains(&key) {
            if let Some(data) = self.frames.get(&key).map(|b| **b) {
                return Ok(data);
            }
        }
        self.backing.read_block(key)
    }

    /// Applies a write without consulting the policy or allocating
    /// frames — the degraded pass-through path.
    ///
    /// The backing store is updated first; if the block also has a
    /// cached frame, the frame is refreshed and its dirty bit cleared so
    /// later reads (degraded or healthy) cannot see stale data.
    ///
    /// # Errors
    ///
    /// Propagates backing-store failures; on failure neither the frame
    /// nor the dirty bit changes.
    pub fn write_bypass(&mut self, key: u64, data: &Block) -> io::Result<()> {
        self.backing.write_block(key, data)?;
        if let Some(frame) = self.frames.get_mut(&key) {
            **frame = *data;
        }
        self.dirty.remove(&key);
        Ok(())
    }

    /// Signals a day boundary; discrete policies batch-install, and the
    /// newly selected blocks' payloads are staged from the backing store
    /// (the paper's staggered bulk moves).
    ///
    /// # Errors
    ///
    /// Propagates backing-store failures while staging payloads.
    pub fn day_boundary(&mut self, day: Day) -> io::Result<u64> {
        let Some(transition) = self.store.day_boundary(day) else {
            return Ok(0);
        };
        // Flush dirty frames leaving residency, drop evicted frames, keep
        // retained ones, stage the newly selected blocks' payloads.
        let evicted: Vec<u64> = self
            .frames
            .keys()
            .copied()
            .filter(|key| !self.store.contains(*key))
            .collect();
        for key in evicted {
            self.flush_one(key)?;
            self.frames.remove(&key);
        }
        for key in &transition.allocated {
            let data = self.backing.read_block(*key)?;
            self.frames.insert(*key, Box::new(data));
        }
        Ok(transition.allocated.len() as u64)
    }

    /// Running policy statistics.
    pub fn stats(&self) -> &ApplianceStats {
        self.store.stats()
    }

    /// Number of frames currently holding data.
    pub fn resident_blocks(&self) -> usize {
        self.frames.len()
    }

    /// The underlying backing store.
    pub fn backing(&self) -> &B {
        &self.backing
    }

    /// The policy's report name.
    pub fn policy_name(&self) -> &str {
        self.store.policy_name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backing::MemBacking;
    use rand::rngs::SmallRng;
    use rand::{RngExt, SeedableRng};

    fn block(fill: u8) -> Block {
        [fill; 512]
    }

    fn t(secs: u64) -> Micros {
        Micros::from_secs(secs)
    }

    #[test]
    fn read_allocates_and_then_hits_under_aod() {
        let mut c = DataCache::new(MemBacking::new(), PolicySpec::Aod, 16).unwrap();
        c.backing().write_block(1, &block(0x42)).unwrap();
        let (data, o) = c.read(1, t(0)).unwrap();
        assert_eq!(data, block(0x42));
        assert!(!o.hit);
        assert!(o.allocated);
        let (data, o) = c.read(1, t(1)).unwrap();
        assert_eq!(data, block(0x42));
        assert!(o.hit);
        assert_eq!(c.resident_blocks(), 1);
    }

    #[test]
    fn write_through_updates_backing_and_frame() {
        let mut c = DataCache::new(MemBacking::new(), PolicySpec::Aod, 16).unwrap();
        c.write(5, &block(0xAA), t(0)).unwrap();
        assert_eq!(c.backing().read_block(5).unwrap(), block(0xAA));
        // The write allocated (AOD): the frame holds the fresh data.
        let (data, o) = c.read(5, t(1)).unwrap();
        assert!(o.hit);
        assert_eq!(data, block(0xAA));
        // A write hit refreshes the frame.
        c.write(5, &block(0xBB), t(2)).unwrap();
        let (data, _) = c.read(5, t(3)).unwrap();
        assert_eq!(data, block(0xBB));
        assert_eq!(c.backing().read_block(5).unwrap(), block(0xBB));
    }

    #[test]
    fn eviction_drops_the_victims_frame() {
        let mut c = DataCache::new(MemBacking::new(), PolicySpec::Aod, 2).unwrap();
        c.write(1, &block(1), t(0)).unwrap();
        c.write(2, &block(2), t(1)).unwrap();
        c.write(3, &block(3), t(2)).unwrap(); // evicts 1
        assert_eq!(c.resident_blocks(), 2);
        // Block 1 now misses but still reads correctly from backing.
        let (data, o) = c.read(1, t(3)).unwrap();
        assert!(!o.hit);
        assert_eq!(data, block(1));
    }

    #[test]
    fn sieved_cache_bypasses_cold_blocks_with_correct_data() {
        let cfg = sievestore_sieve::TwoTierConfig::paper_default()
            .with_imct_entries(1 << 12)
            .with_thresholds(2, 2);
        let mut c = DataCache::new(MemBacking::new(), PolicySpec::SieveStoreC(cfg), 64).unwrap();
        c.backing().write_block(9, &block(0x99)).unwrap();
        // First misses bypass but still serve correct data.
        for i in 0..3 {
            let (data, o) = c.read(9, t(i)).unwrap();
            assert_eq!(data, block(0x99));
            assert!(!o.hit, "miss {i}");
        }
        // Fourth access allocates (t1=2 + t2=2), fifth hits.
        let (_, o) = c.read(9, t(3)).unwrap();
        assert!(o.allocated);
        let (data, o) = c.read(9, t(4)).unwrap();
        assert!(o.hit);
        assert_eq!(data, block(0x99));
    }

    #[test]
    fn discrete_day_boundary_stages_payloads() {
        let mut c = DataCache::new(
            MemBacking::new(),
            PolicySpec::SieveStoreD { threshold: 2 },
            16,
        )
        .unwrap();
        c.backing().write_block(4, &block(0x44)).unwrap();
        for i in 0..3 {
            let (_, o) = c.read(4, t(i)).unwrap();
            assert!(!o.hit);
            assert!(!o.allocated);
        }
        let staged = c.day_boundary(Day::new(1)).unwrap();
        assert_eq!(staged, 1);
        let (data, o) = c.read(4, Micros::from_days(1)).unwrap();
        assert!(o.hit);
        assert_eq!(data, block(0x44));
    }

    #[test]
    fn write_back_defers_backing_updates_until_flush() {
        let mut c = DataCache::new(MemBacking::new(), PolicySpec::Aod, 16)
            .unwrap()
            .with_write_policy(WritePolicy::WriteBack);
        assert_eq!(c.write_policy(), WritePolicy::WriteBack);
        // The allocating write-miss installs a dirty frame; the backing
        // store has never seen the data.
        c.write(1, &block(0xD1), t(0)).unwrap();
        assert_eq!(c.dirty_blocks(), 1);
        assert_eq!(c.backing().read_block(1).unwrap(), block(0));
        // Reads still serve the fresh data from the frame.
        let (data, o) = c.read(1, t(1)).unwrap();
        assert!(o.hit);
        assert_eq!(data, block(0xD1));
        // Flush persists it.
        assert_eq!(c.flush().unwrap(), 1);
        assert_eq!(c.dirty_blocks(), 0);
        assert_eq!(c.backing().read_block(1).unwrap(), block(0xD1));
        // Flushing again is a no-op.
        assert_eq!(c.flush().unwrap(), 0);
    }

    #[test]
    fn write_back_flushes_dirty_victims_on_eviction() {
        let mut c = DataCache::new(MemBacking::new(), PolicySpec::Aod, 2)
            .unwrap()
            .with_write_policy(WritePolicy::WriteBack);
        c.write(1, &block(0x11), t(0)).unwrap();
        c.write(2, &block(0x22), t(1)).unwrap();
        // Block 3 evicts block 1, whose dirty data must reach the backing
        // store before the frame drops.
        c.write(3, &block(0x33), t(2)).unwrap();
        assert_eq!(c.backing().read_block(1).unwrap(), block(0x11));
        // Block 2 is still dirty and cached only.
        assert_eq!(c.backing().read_block(2).unwrap(), block(0));
        let (data, _) = c.read(2, t(3)).unwrap();
        assert_eq!(data, block(0x22));
    }

    #[test]
    fn write_back_bypassed_writes_go_straight_to_backing() {
        // A sieved cache refuses cold writes; under write-back they must
        // still land on the ensemble immediately.
        let cfg = sievestore_sieve::TwoTierConfig::paper_default()
            .with_imct_entries(1 << 12)
            .with_thresholds(9, 4);
        let mut c = DataCache::new(MemBacking::new(), PolicySpec::SieveStoreC(cfg), 16)
            .unwrap()
            .with_write_policy(WritePolicy::WriteBack);
        let o = c.write(7, &block(0x77), t(0)).unwrap();
        assert!(!o.hit && !o.allocated);
        assert_eq!(c.backing().read_block(7).unwrap(), block(0x77));
        assert_eq!(c.dirty_blocks(), 0);
    }

    #[test]
    fn write_back_day_boundary_flushes_departing_blocks() {
        let mut c = DataCache::new(
            MemBacking::new(),
            PolicySpec::SieveStoreD { threshold: 2 },
            16,
        )
        .unwrap()
        .with_write_policy(WritePolicy::WriteBack);
        // Day 0: block 8 earns residency for day 1.
        for i in 0..3 {
            c.read(8, t(i)).unwrap();
        }
        c.day_boundary(Day::new(1)).unwrap();
        // Day 1: dirty the resident block via a write hit.
        let o = c.write(8, &block(0x88), Micros::from_days(1)).unwrap();
        assert!(o.hit);
        assert_eq!(c.backing().read_block(8).unwrap(), block(0));
        // Day 2: block 8 was not re-qualified, so the boundary evicts and
        // flushes it.
        c.day_boundary(Day::new(2)).unwrap();
        assert_eq!(c.backing().read_block(8).unwrap(), block(0x88));
        assert_eq!(c.dirty_blocks(), 0);
    }

    #[test]
    fn bypass_reads_serve_dirty_frames_and_skip_the_policy() {
        let mut c = DataCache::new(MemBacking::new(), PolicySpec::Aod, 16)
            .unwrap()
            .with_write_policy(WritePolicy::WriteBack);
        // Dirty frame: the cache holds the only copy.
        c.write(1, &block(0xD1), t(0)).unwrap();
        assert_eq!(c.backing().read_block(1).unwrap(), block(0));
        let hits_before = c.stats().hits();
        // Bypass reads serve the dirty frame, not the stale backing data,
        // and leave policy counters untouched.
        assert_eq!(c.read_bypass(1).unwrap(), block(0xD1));
        assert_eq!(c.stats().hits(), hits_before);
        // Clean keys come straight from backing.
        c.backing().write_block(9, &block(0x99)).unwrap();
        assert_eq!(c.read_bypass(9).unwrap(), block(0x99));
        assert_eq!(c.resident_blocks(), 1, "bypass reads never allocate");
    }

    #[test]
    fn bypass_writes_update_backing_and_refresh_frames() {
        let mut c = DataCache::new(MemBacking::new(), PolicySpec::Aod, 16)
            .unwrap()
            .with_write_policy(WritePolicy::WriteBack);
        c.write(2, &block(0x22), t(0)).unwrap();
        assert_eq!(c.dirty_blocks(), 1);
        // The bypass write lands on backing, refreshes the frame and
        // clears the dirty bit — no stale copy anywhere.
        c.write_bypass(2, &block(0x33)).unwrap();
        assert_eq!(c.dirty_blocks(), 0);
        assert_eq!(c.backing().read_block(2).unwrap(), block(0x33));
        let (data, o) = c.read(2, t(1)).unwrap();
        assert!(o.hit);
        assert_eq!(data, block(0x33));
        // Non-resident keys go straight through without allocating.
        c.write_bypass(8, &block(0x88)).unwrap();
        assert_eq!(c.backing().read_block(8).unwrap(), block(0x88));
        assert_eq!(c.resident_blocks(), 1);
    }

    #[test]
    fn best_effort_flush_continues_past_failures() {
        use crate::faults::{FaultInjectingBacking, FaultPlan};
        let faulty = FaultInjectingBacking::new(MemBacking::new(), FaultPlan::new(0));
        let handle = faulty.handle();
        let mut c = DataCache::new(faulty, PolicySpec::Aod, 16)
            .unwrap()
            .with_write_policy(WritePolicy::WriteBack);
        for key in 0..4 {
            c.write(key, &block(key as u8 + 1), t(key)).unwrap();
        }
        assert_eq!(c.dirty_blocks(), 4);
        // Two of the four flush writes fail; the other two land.
        handle.fail_next(2);
        let (flushed, still_dirty) = c.flush_best_effort();
        assert_eq!(flushed, 2);
        assert_eq!(still_dirty, 2);
        assert_eq!(c.dirty_blocks(), 2);
        // A retry after healing drains the rest.
        let (flushed, still_dirty) = c.flush_best_effort();
        assert_eq!(flushed, 2);
        assert_eq!(still_dirty, 0);
        for key in 0..4u64 {
            assert_eq!(
                c.backing().inner().read_block(key).unwrap(),
                block(key as u8 + 1)
            );
        }
    }

    #[test]
    fn write_back_random_workload_reads_own_writes() {
        let mut c = DataCache::new(MemBacking::new(), PolicySpec::Aod, 8)
            .unwrap()
            .with_write_policy(WritePolicy::WriteBack);
        let mut shadow: HashMap<u64, Block> = HashMap::new();
        let mut rng = SmallRng::seed_from_u64(78);
        for i in 0..5_000u64 {
            let key = rng.random_range(0..32u64);
            if rng.random::<bool>() {
                let fill = rng.random::<u8>();
                c.write(key, &block(fill), t(i)).unwrap();
                shadow.insert(key, block(fill));
            } else {
                let (data, _) = c.read(key, t(i)).unwrap();
                let expect = shadow.get(&key).copied().unwrap_or(block(0));
                assert_eq!(data, expect, "stale data for key {key} at step {i}");
            }
        }
        // After a full flush the backing store agrees with the shadow.
        c.flush().unwrap();
        for (key, expect) in &shadow {
            assert_eq!(c.backing().read_block(*key).unwrap(), *expect);
        }
    }

    #[test]
    fn random_mixed_workload_always_returns_backing_truth() {
        // The cache must never serve stale data, whatever the policy does.
        let mut c = DataCache::new(MemBacking::new(), PolicySpec::Aod, 8).unwrap();
        let mut shadow: HashMap<u64, Block> = HashMap::new();
        let mut rng = SmallRng::seed_from_u64(77);
        for i in 0..5_000u64 {
            let key = rng.random_range(0..32u64);
            if rng.random::<bool>() {
                let fill = rng.random::<u8>();
                c.write(key, &block(fill), t(i)).unwrap();
                shadow.insert(key, block(fill));
            } else {
                let (data, _) = c.read(key, t(i)).unwrap();
                let expect = shadow.get(&key).copied().unwrap_or(block(0));
                assert_eq!(data, expect, "stale data for key {key} at step {i}");
            }
        }
        assert!(c.stats().hits() > 0);
    }
}
