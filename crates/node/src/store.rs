//! The data-holding cache: policy decisions plus actual block payloads.
//!
//! [`DataCache`] wires a [`SieveStore`] appliance (which decides hits,
//! bypasses and allocations) to real 512-byte payloads: hits are served
//! from cached frames (the SSD stand-in), misses are fetched from the
//! [`BackingStore`] (the ensemble), and allocation decisions copy the
//! fetched block into a frame.
//!
//! Two write policies ([`WritePolicy`]):
//!
//! * **Write-through** (default): every write also updates the backing
//!   store; the cache never holds the only copy.
//! * **Write-back** — the paper's accounting: write *hits* land on the
//!   SSD only (that is exactly the ensemble-offload benefit of caching
//!   write-hot blocks), with the frame marked dirty and flushed to the
//!   backing store on eviction, on epoch replacement or on an explicit
//!   [`DataCache::flush`].
//!
//! # Durability
//!
//! [`DataCache::new_durable`] attaches a [`DurableStore`] — the
//! checksummed on-disk frame store of [`crate::durable`] — and the cache
//! then mirrors every frame mutation onto it. Restart recovery
//! ([`DurableStore::open`]) replays the metadata journal, verifies every
//! frame checksum and hands the survivors back; `new_durable` warms the
//! policy with them so the node resumes with its working set intact.
//!
//! The mirroring discipline follows the data's exposure:
//!
//! * **dirty frames** (write-back: the cache holds the only copy) are
//!   made durable *before* the write is acknowledged — a put failure
//!   fails the write;
//! * **clean frames** (a second copy exists on the backing store) are
//!   mirrored best-effort — a media failure is counted
//!   (`durable_media_errors`) and the frame simply will not survive a
//!   restart.

use std::io;
use std::time::Instant;

use sievestore::{AccessOutcome, ApplianceStats, PolicySpec, SieveStore, SieveStoreBuilder};
use sievestore_types::{
    obs_count, obs_enabled, obs_observe, Day, Micros, RequestKind, SieveError, U64Map, U64Set,
};

use crate::backing::{BackingStore, Block};
use crate::durable::{DurableMediaSet, DurableStore, Recovery, RecoveryReport, ScrubPass};

/// When writes reach the backing store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WritePolicy {
    /// Every write also updates the backing store immediately.
    #[default]
    WriteThrough,
    /// Write hits stay on the cached frame (dirty) until eviction or an
    /// explicit flush — the paper's SSD-absorbs-write-hits accounting.
    WriteBack,
}

/// Outcome of one data access through the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataOutcome {
    /// Whether the cache served (or absorbed) the access.
    pub hit: bool,
    /// Whether the access triggered an allocation-write.
    pub allocated: bool,
}

/// A block cache with payloads, fronting a backing store.
///
/// # Examples
///
/// ```
/// use sievestore::PolicySpec;
/// use sievestore_node::{DataCache, MemBacking};
/// use sievestore_types::Micros;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut cache = DataCache::new(MemBacking::new(), PolicySpec::Aod, 128)?;
/// cache.write(7, &[9u8; 512], Micros::from_secs(1))?;
/// let (data, outcome) = cache.read(7, Micros::from_secs(2))?;
/// assert_eq!(data, [9u8; 512]);
/// assert!(outcome.hit);
/// # Ok(())
/// # }
/// ```
pub struct DataCache<B: BackingStore> {
    store: SieveStore,
    /// Resident payloads. `U64Map` needs `V: Default` for vacant slots,
    /// so the boxed frame rides inside an `Option` (a vacant slot costs
    /// a null pointer, not a 512-byte allocation).
    frames: U64Map<Option<Box<Block>>>,
    dirty: U64Set,
    write_policy: WritePolicy,
    backing: B,
    /// The crash-consistent on-disk mirror, when attached.
    durable: Option<DurableStore>,
    /// Where the next scrub pass resumes.
    scrub_cursor: u32,
}

impl<B: BackingStore> std::fmt::Debug for DataCache<B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DataCache")
            .field("policy", &self.store.policy_name())
            .field("frames", &self.frames.len())
            .field("dirty", &self.dirty.len())
            .field("write_policy", &self.write_policy)
            .field("capacity", &self.store.capacity_blocks())
            .field("durable", &self.durable.is_some())
            .finish()
    }
}

impl<B: BackingStore> DataCache<B> {
    /// Creates a cache over `backing` with the given policy and frame
    /// capacity.
    ///
    /// # Errors
    ///
    /// Returns [`SieveError::InvalidConfig`] for an invalid policy or
    /// zero capacity.
    pub fn new(backing: B, policy: PolicySpec, capacity_blocks: usize) -> Result<Self, SieveError> {
        Ok(DataCache {
            store: SieveStoreBuilder::new()
                .capacity_blocks(capacity_blocks)
                .policy(policy)
                .build()?,
            frames: U64Map::new(),
            dirty: U64Set::new(),
            write_policy: WritePolicy::WriteThrough,
            backing,
            durable: None,
            scrub_cursor: 0,
        })
    }

    /// Creates a cache backed by a durable frame store, recovering
    /// whatever a previous incarnation persisted.
    ///
    /// Recovery replays the metadata journal against the checksummed
    /// segment, quarantines torn or rotted frames, then warms the policy
    /// with the survivors (oldest sequence first, so recency order
    /// approximates the pre-crash state). Recovered dirty frames — data
    /// the backing store has never seen — re-enter the dirty set and are
    /// flushed through the normal write-back paths.
    ///
    /// # Errors
    ///
    /// Returns [`SieveError::InvalidConfig`] for an invalid policy, or
    /// [`SieveError::Durable`] when the media is unrecoverable (wrong
    /// magic, mismatched geometry, I/O failure). Callers that can serve
    /// without durability should fall back to [`DataCache::new`].
    pub fn new_durable(
        backing: B,
        policy: PolicySpec,
        capacity_blocks: usize,
        media: DurableMediaSet,
    ) -> Result<(Self, RecoveryReport), SieveError> {
        let mut cache = Self::new(backing, policy, capacity_blocks)?;
        let started = obs_enabled!().then(Instant::now);
        let recovery = DurableStore::open(media, capacity_blocks)?;
        let report = cache.attach_recovery(recovery);
        if let Some(t) = started {
            obs_observe!(DurableRecoveryNanos, t.elapsed().as_nanos() as u64);
        }
        Ok((cache, report))
    }

    /// Installs a completed [`Recovery`]: adopts the durable store, warms
    /// the policy with the recovered frames and rebuilds the dirty set.
    pub(crate) fn attach_recovery(&mut self, recovery: Recovery) -> RecoveryReport {
        let Recovery {
            store: durable,
            frames,
            report,
        } = recovery;
        self.durable = Some(durable);
        self.store.warm(frames.iter().map(|f| f.key));
        for frame in frames {
            if self.store.contains(frame.key) {
                if frame.dirty {
                    self.dirty.insert(frame.key);
                }
                self.frames.insert(frame.key, Some(frame.data));
            } else if frame.dirty {
                // The policy would not take the frame back (epoch
                // overflow); its data exists nowhere else, so it keeps
                // its frame and dirty bit — reads serve it over the
                // stale backing copy and flushes drain it normally.
                self.dirty.insert(frame.key);
                self.frames.insert(frame.key, Some(frame.data));
            } else if let Some(d) = self.durable.as_mut() {
                // Clean and not re-admitted: retire the durable copy.
                if d.evict(frame.key).is_err() {
                    obs_count!(DurableMediaErrors, 1);
                }
            }
        }
        obs_count!(DurableRecoveredFrames, report.recovered);
        obs_count!(DurableQuarantinedFrames, report.quarantined);
        obs_count!(DurableLostDirtyFrames, report.lost_dirty);
        report
    }

    /// Selects the write policy (default: write-through).
    #[must_use]
    pub fn with_write_policy(mut self, policy: WritePolicy) -> Self {
        self.write_policy = policy;
        self
    }

    /// The active write policy.
    pub fn write_policy(&self) -> WritePolicy {
        self.write_policy
    }

    /// Number of dirty (unflushed) frames.
    pub fn dirty_blocks(&self) -> usize {
        self.dirty.len()
    }

    /// The attached durable store, if any.
    pub fn durable(&self) -> Option<&DurableStore> {
        self.durable.as_ref()
    }

    /// Writes a clean-shutdown marker to the durable journal (if one is
    /// attached), letting the next open trust recovered clean frames.
    /// Idempotent; also invoked best-effort on drop.
    ///
    /// # Errors
    ///
    /// Propagates media failures; the next recovery then treats the
    /// shutdown as unclean, which is safe (merely colder).
    pub fn shutdown_durable(&mut self) -> io::Result<()> {
        match self.durable.as_mut() {
            Some(d) => d.shutdown(),
            None => Ok(()),
        }
    }

    /// A copy of `key`'s resident payload.
    fn frame_copy(&self, key: u64) -> Option<Block> {
        self.frames.get(key).and_then(|f| f.as_deref()).copied()
    }

    /// Mirrors a frame onto the durable tier.
    ///
    /// `dirty` data (the only copy) propagates failures so callers never
    /// acknowledge an un-persisted write; clean mirrors are best-effort.
    fn durable_put(&mut self, key: u64, data: &Block, dirty: bool) -> io::Result<()> {
        let Some(d) = self.durable.as_mut() else {
            return Ok(());
        };
        match d.put(key, data, dirty) {
            Ok(()) => Ok(()),
            Err(e) => {
                obs_count!(DurableMediaErrors, 1);
                if dirty {
                    Err(e)
                } else {
                    Ok(())
                }
            }
        }
    }

    /// Retires `key` from the durable tier, best-effort.
    ///
    /// On failure the stale durable copy survives a restart as a clean
    /// extra frame — recovery re-admits or quarantines it; it can never
    /// shadow newer data because recovery's journal replay orders by
    /// sequence.
    fn durable_evict(&mut self, key: u64) {
        if let Some(d) = self.durable.as_mut() {
            if d.evict(key).is_err() {
                obs_count!(DurableMediaErrors, 1);
            }
        }
    }

    /// Records on the durable tier that `key` reached the backing store,
    /// best-effort: if the record fails, a restart re-flushes the frame —
    /// an idempotent extra write, never data loss.
    fn durable_mark_clean(&mut self, key: u64) {
        if let Some(d) = self.durable.as_mut() {
            if d.mark_clean(key).is_err() {
                obs_count!(DurableMediaErrors, 1);
            }
        }
    }

    /// Writes one dirty victim back to the backing store.
    ///
    /// On failure the key is re-marked dirty so the data is not lost —
    /// a later flush (or shutdown retry) will try again.
    fn flush_one(&mut self, key: u64) -> io::Result<()> {
        if self.dirty.remove(key) {
            // A dirty key without a frame would be an internal
            // inconsistency; treat it as already-flushed rather than
            // panicking on a degraded node.
            let Some(data) = self.frame_copy(key) else {
                return Ok(());
            };
            if let Err(e) = self.backing.write_block(key, &data) {
                self.dirty.insert(key);
                return Err(e);
            }
            self.durable_mark_clean(key);
        }
        Ok(())
    }

    /// Writes every dirty frame back to the backing store; returns how
    /// many blocks were flushed.
    ///
    /// # Errors
    ///
    /// Propagates the first backing-store failure; already-flushed
    /// blocks stay clean, the failed key stays dirty.
    pub fn flush(&mut self) -> io::Result<u64> {
        let keys: Vec<u64> = self.dirty.iter().collect();
        let mut flushed = 0;
        for key in keys {
            self.flush_one(key)?;
            flushed += 1;
        }
        Ok(flushed)
    }

    /// Best-effort flush: keeps going past individual failures instead
    /// of aborting on the first one. Returns `(flushed, still_dirty)`.
    pub fn flush_best_effort(&mut self) -> (u64, u64) {
        let keys: Vec<u64> = self.dirty.iter().collect();
        let mut flushed = 0;
        for key in keys {
            if self.flush_one(key).is_ok() {
                flushed += 1;
            }
        }
        (flushed, self.dirty.len() as u64)
    }

    /// Runs one bounded scrub pass over the durable segment, verifying
    /// frame checksums. Quarantined frames whose payload is still
    /// resident in memory are healed (re-written to a fresh slot); the
    /// rest will be re-fetched from the backing store on next access.
    ///
    /// Returns an empty pass when no durable store is attached or the
    /// media fails entirely (the failure is counted).
    pub fn scrub(&mut self, max_slots: u32) -> ScrubPass {
        let cursor = self.scrub_cursor;
        let pass = match self.durable.as_mut() {
            Some(d) => match d.scrub(cursor, max_slots) {
                Ok(pass) => pass,
                Err(_) => {
                    obs_count!(DurableMediaErrors, 1);
                    return ScrubPass::default();
                }
            },
            None => return ScrubPass::default(),
        };
        self.scrub_cursor = pass.next_slot;
        obs_count!(DurableScrubbedFrames, pass.verified);
        obs_count!(DurableQuarantinedFrames, pass.quarantined.len() as u64);
        for &key in &pass.quarantined {
            if let Some(data) = self.frame_copy(key) {
                let dirty = self.dirty.contains(key);
                // Best-effort even for dirty frames: the in-memory copy
                // and dirty bit still protect the data if this fails.
                let _ = self.durable_put(key, &data, dirty);
            }
        }
        pass
    }

    /// Applies a policy outcome to the frame map, fetching `fresh` on
    /// allocation; dirty victims are flushed before their frame drops.
    ///
    /// `dirty_alloc` marks the allocation's payload as existing nowhere
    /// else (a write-back allocating write): it is made durable before
    /// the frame installs and joins the dirty set.
    fn apply_outcome(
        &mut self,
        key: u64,
        outcome: AccessOutcome,
        fresh: Option<&Block>,
        dirty_alloc: bool,
    ) -> io::Result<DataOutcome> {
        Ok(match outcome {
            AccessOutcome::Hit => DataOutcome {
                hit: true,
                allocated: false,
            },
            AccessOutcome::BypassMiss => DataOutcome {
                hit: false,
                allocated: false,
            },
            AccessOutcome::AllocatedMiss { evicted } => {
                if let Some(victim) = evicted {
                    self.flush_one(victim)?;
                    self.frames.remove(victim);
                    self.durable_evict(victim);
                }
                if let Some(data) = fresh {
                    self.durable_put(key, data, dirty_alloc)?;
                    if dirty_alloc {
                        self.dirty.insert(key);
                    }
                    self.frames.insert(key, Some(Box::new(*data)));
                }
                DataOutcome {
                    hit: false,
                    allocated: true,
                }
            }
        })
    }

    /// Reads one block through the cache.
    ///
    /// # Errors
    ///
    /// Propagates backing-store failures (cache state stays consistent:
    /// policy metadata may register the miss, but no frame is installed).
    pub fn read(&mut self, key: u64, now: Micros) -> io::Result<(Block, DataOutcome)> {
        let outcome = self.store.access(key, RequestKind::Read, now);
        if outcome.is_hit() {
            // A hit without a frame would be an internal inconsistency;
            // fall back to the backing store instead of panicking.
            if let Some(data) = self.frame_copy(key) {
                return Ok((
                    data,
                    DataOutcome {
                        hit: true,
                        allocated: false,
                    },
                ));
            }
            let data = self.backing.read_block(key)?;
            return Ok((
                data,
                DataOutcome {
                    hit: false,
                    allocated: false,
                },
            ));
        }
        // A dirty frame is authoritative even when the policy calls the
        // access a miss (recovery can leave a dirty frame the policy did
        // not re-admit): never serve the stale backing copy over it, and
        // if the read re-allocates, the frame must stay labelled dirty —
        // journalling it AllocClean would let the next power cut drop
        // the only copy of acked write-back data.
        let mut still_dirty = false;
        let data = match self.frame_copy(key) {
            Some(data) if self.dirty.contains(key) => {
                still_dirty = true;
                data
            }
            _ => self.backing.read_block(key)?,
        };
        let result = self.apply_outcome(key, outcome, Some(&data), still_dirty)?;
        Ok((data, result))
    }

    /// Writes one block through the cache, honouring the write policy.
    ///
    /// Under write-back, dirty data is made durable (when a durable
    /// store is attached) *before* this method returns — the
    /// acknowledgement never precedes persistence.
    ///
    /// # Errors
    ///
    /// Propagates backing-store and durable-store failures.
    pub fn write(&mut self, key: u64, data: &Block, now: Micros) -> io::Result<DataOutcome> {
        let outcome = self.store.access(key, RequestKind::Write, now);
        if outcome.is_hit() {
            match self.write_policy {
                WritePolicy::WriteThrough => {
                    self.backing.write_block(key, data)?;
                    self.durable_put(key, data, false)?;
                }
                WritePolicy::WriteBack => {
                    self.durable_put(key, data, true)?;
                    self.dirty.insert(key);
                }
            }
            self.frames.insert(key, Some(Box::new(*data)));
            return Ok(DataOutcome {
                hit: true,
                allocated: false,
            });
        }
        // Misses: a bypass goes straight to the ensemble; an allocation
        // installs the fresh data (dirty under write-back — the backing
        // store has never seen it).
        let dirty_alloc = self.write_policy == WritePolicy::WriteBack && outcome.is_allocation();
        if !dirty_alloc {
            self.backing.write_block(key, data)?;
            // A lingering frame (e.g. a recovered dirty frame the policy
            // no longer admits) must not go stale behind this write.
            if let Some(frame) = self.frames.get_mut(key).and_then(|f| f.as_deref_mut()) {
                *frame = *data;
                self.dirty.remove(key);
                self.durable_put(key, data, false)?;
            }
        }
        self.apply_outcome(key, outcome, Some(data), dirty_alloc)
    }

    /// Serves a read without consulting the policy or allocating frames
    /// — the degraded pass-through path.
    ///
    /// Dirty frames are authoritative (the backing store holds stale
    /// data for them), so they are served from memory; everything else
    /// goes straight to the backing store.
    ///
    /// # Errors
    ///
    /// Propagates backing-store failures.
    pub fn read_bypass(&mut self, key: u64) -> io::Result<Block> {
        if self.dirty.contains(key) {
            if let Some(data) = self.frame_copy(key) {
                return Ok(data);
            }
        }
        self.backing.read_block(key)
    }

    /// Applies a write without consulting the policy or allocating
    /// frames — the degraded pass-through path.
    ///
    /// The backing store is updated first; if the block also has a
    /// cached frame, the frame is refreshed and its dirty bit cleared so
    /// later reads (degraded or healthy) cannot see stale data.
    ///
    /// # Errors
    ///
    /// Propagates backing-store failures; on failure neither the frame
    /// nor the dirty bit changes.
    pub fn write_bypass(&mut self, key: u64, data: &Block) -> io::Result<()> {
        self.backing.write_block(key, data)?;
        let had_frame = match self.frames.get_mut(key).and_then(|f| f.as_deref_mut()) {
            Some(frame) => {
                *frame = *data;
                true
            }
            None => false,
        };
        self.dirty.remove(key);
        if had_frame {
            // Refresh the durable copy too (and clear its dirty flag);
            // best-effort — the backing store already holds the data.
            let _ = self.durable_put(key, data, false);
        }
        Ok(())
    }

    /// Signals a day boundary; discrete policies batch-install, and the
    /// newly selected blocks' payloads are staged from the backing store
    /// (the paper's staggered bulk moves).
    ///
    /// # Errors
    ///
    /// Propagates backing-store failures while staging payloads.
    pub fn day_boundary(&mut self, day: Day) -> io::Result<u64> {
        let Some(transition) = self.store.day_boundary(day) else {
            return Ok(0);
        };
        // Flush dirty frames leaving residency, drop evicted frames, keep
        // retained ones, stage the newly selected blocks' payloads.
        let evicted: Vec<u64> = self
            .frames
            .keys()
            .filter(|key| !self.store.contains(*key))
            .collect();
        for key in evicted {
            self.flush_one(key)?;
            self.frames.remove(key);
            self.durable_evict(key);
        }
        for key in &transition.allocated {
            let data = self.backing.read_block(*key)?;
            self.durable_put(*key, &data, false)?;
            self.frames.insert(*key, Some(Box::new(data)));
        }
        Ok(transition.allocated.len() as u64)
    }

    /// Running policy statistics.
    pub fn stats(&self) -> &ApplianceStats {
        self.store.stats()
    }

    /// Number of frames currently holding data.
    pub fn resident_blocks(&self) -> usize {
        self.frames.len()
    }

    /// The underlying backing store.
    pub fn backing(&self) -> &B {
        &self.backing
    }

    /// The policy's report name.
    pub fn policy_name(&self) -> &str {
        self.store.policy_name()
    }
}

impl<B: BackingStore> Drop for DataCache<B> {
    /// Marks the durable journal cleanly shut down, best-effort: if the
    /// marker cannot be written (media already failed), the next open
    /// recovers as an unclean shutdown — colder, never incorrect.
    fn drop(&mut self) {
        let _ = self.shutdown_durable();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backing::MemBacking;
    use crate::durable::MemMedia;
    use rand::rngs::SmallRng;
    use rand::{RngExt, SeedableRng};
    use std::collections::HashMap;

    fn block(fill: u8) -> Block {
        [fill; 512]
    }

    fn t(secs: u64) -> Micros {
        Micros::from_secs(secs)
    }

    #[test]
    fn read_allocates_and_then_hits_under_aod() {
        let mut c = DataCache::new(MemBacking::new(), PolicySpec::Aod, 16).unwrap();
        c.backing().write_block(1, &block(0x42)).unwrap();
        let (data, o) = c.read(1, t(0)).unwrap();
        assert_eq!(data, block(0x42));
        assert!(!o.hit);
        assert!(o.allocated);
        let (data, o) = c.read(1, t(1)).unwrap();
        assert_eq!(data, block(0x42));
        assert!(o.hit);
        assert_eq!(c.resident_blocks(), 1);
    }

    #[test]
    fn write_through_updates_backing_and_frame() {
        let mut c = DataCache::new(MemBacking::new(), PolicySpec::Aod, 16).unwrap();
        c.write(5, &block(0xAA), t(0)).unwrap();
        assert_eq!(c.backing().read_block(5).unwrap(), block(0xAA));
        // The write allocated (AOD): the frame holds the fresh data.
        let (data, o) = c.read(5, t(1)).unwrap();
        assert!(o.hit);
        assert_eq!(data, block(0xAA));
        // A write hit refreshes the frame.
        c.write(5, &block(0xBB), t(2)).unwrap();
        let (data, _) = c.read(5, t(3)).unwrap();
        assert_eq!(data, block(0xBB));
        assert_eq!(c.backing().read_block(5).unwrap(), block(0xBB));
    }

    #[test]
    fn eviction_drops_the_victims_frame() {
        let mut c = DataCache::new(MemBacking::new(), PolicySpec::Aod, 2).unwrap();
        c.write(1, &block(1), t(0)).unwrap();
        c.write(2, &block(2), t(1)).unwrap();
        c.write(3, &block(3), t(2)).unwrap(); // evicts 1
        assert_eq!(c.resident_blocks(), 2);
        // Block 1 now misses but still reads correctly from backing.
        let (data, o) = c.read(1, t(3)).unwrap();
        assert!(!o.hit);
        assert_eq!(data, block(1));
    }

    #[test]
    fn sieved_cache_bypasses_cold_blocks_with_correct_data() {
        let cfg = sievestore_sieve::TwoTierConfig::paper_default()
            .with_imct_entries(1 << 12)
            .with_thresholds(2, 2);
        let mut c = DataCache::new(MemBacking::new(), PolicySpec::SieveStoreC(cfg), 64).unwrap();
        c.backing().write_block(9, &block(0x99)).unwrap();
        // First misses bypass but still serve correct data.
        for i in 0..3 {
            let (data, o) = c.read(9, t(i)).unwrap();
            assert_eq!(data, block(0x99));
            assert!(!o.hit, "miss {i}");
        }
        // Fourth access allocates (t1=2 + t2=2), fifth hits.
        let (_, o) = c.read(9, t(3)).unwrap();
        assert!(o.allocated);
        let (data, o) = c.read(9, t(4)).unwrap();
        assert!(o.hit);
        assert_eq!(data, block(0x99));
    }

    #[test]
    fn discrete_day_boundary_stages_payloads() {
        let mut c = DataCache::new(
            MemBacking::new(),
            PolicySpec::SieveStoreD { threshold: 2 },
            16,
        )
        .unwrap();
        c.backing().write_block(4, &block(0x44)).unwrap();
        for i in 0..3 {
            let (_, o) = c.read(4, t(i)).unwrap();
            assert!(!o.hit);
            assert!(!o.allocated);
        }
        let staged = c.day_boundary(Day::new(1)).unwrap();
        assert_eq!(staged, 1);
        let (data, o) = c.read(4, Micros::from_days(1)).unwrap();
        assert!(o.hit);
        assert_eq!(data, block(0x44));
    }

    #[test]
    fn write_back_defers_backing_updates_until_flush() {
        let mut c = DataCache::new(MemBacking::new(), PolicySpec::Aod, 16)
            .unwrap()
            .with_write_policy(WritePolicy::WriteBack);
        assert_eq!(c.write_policy(), WritePolicy::WriteBack);
        // The allocating write-miss installs a dirty frame; the backing
        // store has never seen the data.
        c.write(1, &block(0xD1), t(0)).unwrap();
        assert_eq!(c.dirty_blocks(), 1);
        assert_eq!(c.backing().read_block(1).unwrap(), block(0));
        // Reads still serve the fresh data from the frame.
        let (data, o) = c.read(1, t(1)).unwrap();
        assert!(o.hit);
        assert_eq!(data, block(0xD1));
        // Flush persists it.
        assert_eq!(c.flush().unwrap(), 1);
        assert_eq!(c.dirty_blocks(), 0);
        assert_eq!(c.backing().read_block(1).unwrap(), block(0xD1));
        // Flushing again is a no-op.
        assert_eq!(c.flush().unwrap(), 0);
    }

    #[test]
    fn write_back_flushes_dirty_victims_on_eviction() {
        let mut c = DataCache::new(MemBacking::new(), PolicySpec::Aod, 2)
            .unwrap()
            .with_write_policy(WritePolicy::WriteBack);
        c.write(1, &block(0x11), t(0)).unwrap();
        c.write(2, &block(0x22), t(1)).unwrap();
        // Block 3 evicts block 1, whose dirty data must reach the backing
        // store before the frame drops.
        c.write(3, &block(0x33), t(2)).unwrap();
        assert_eq!(c.backing().read_block(1).unwrap(), block(0x11));
        // Block 2 is still dirty and cached only.
        assert_eq!(c.backing().read_block(2).unwrap(), block(0));
        let (data, _) = c.read(2, t(3)).unwrap();
        assert_eq!(data, block(0x22));
    }

    #[test]
    fn write_back_bypassed_writes_go_straight_to_backing() {
        // A sieved cache refuses cold writes; under write-back they must
        // still land on the ensemble immediately.
        let cfg = sievestore_sieve::TwoTierConfig::paper_default()
            .with_imct_entries(1 << 12)
            .with_thresholds(9, 4);
        let mut c = DataCache::new(MemBacking::new(), PolicySpec::SieveStoreC(cfg), 16)
            .unwrap()
            .with_write_policy(WritePolicy::WriteBack);
        let o = c.write(7, &block(0x77), t(0)).unwrap();
        assert!(!o.hit && !o.allocated);
        assert_eq!(c.backing().read_block(7).unwrap(), block(0x77));
        assert_eq!(c.dirty_blocks(), 0);
    }

    #[test]
    fn write_back_day_boundary_flushes_departing_blocks() {
        let mut c = DataCache::new(
            MemBacking::new(),
            PolicySpec::SieveStoreD { threshold: 2 },
            16,
        )
        .unwrap()
        .with_write_policy(WritePolicy::WriteBack);
        // Day 0: block 8 earns residency for day 1.
        for i in 0..3 {
            c.read(8, t(i)).unwrap();
        }
        c.day_boundary(Day::new(1)).unwrap();
        // Day 1: dirty the resident block via a write hit.
        let o = c.write(8, &block(0x88), Micros::from_days(1)).unwrap();
        assert!(o.hit);
        assert_eq!(c.backing().read_block(8).unwrap(), block(0));
        // Day 2: block 8 was not re-qualified, so the boundary evicts and
        // flushes it.
        c.day_boundary(Day::new(2)).unwrap();
        assert_eq!(c.backing().read_block(8).unwrap(), block(0x88));
        assert_eq!(c.dirty_blocks(), 0);
    }

    #[test]
    fn bypass_reads_serve_dirty_frames_and_skip_the_policy() {
        let mut c = DataCache::new(MemBacking::new(), PolicySpec::Aod, 16)
            .unwrap()
            .with_write_policy(WritePolicy::WriteBack);
        // Dirty frame: the cache holds the only copy.
        c.write(1, &block(0xD1), t(0)).unwrap();
        assert_eq!(c.backing().read_block(1).unwrap(), block(0));
        let hits_before = c.stats().hits();
        // Bypass reads serve the dirty frame, not the stale backing data,
        // and leave policy counters untouched.
        assert_eq!(c.read_bypass(1).unwrap(), block(0xD1));
        assert_eq!(c.stats().hits(), hits_before);
        // Clean keys come straight from backing.
        c.backing().write_block(9, &block(0x99)).unwrap();
        assert_eq!(c.read_bypass(9).unwrap(), block(0x99));
        assert_eq!(c.resident_blocks(), 1, "bypass reads never allocate");
    }

    #[test]
    fn bypass_writes_update_backing_and_refresh_frames() {
        let mut c = DataCache::new(MemBacking::new(), PolicySpec::Aod, 16)
            .unwrap()
            .with_write_policy(WritePolicy::WriteBack);
        c.write(2, &block(0x22), t(0)).unwrap();
        assert_eq!(c.dirty_blocks(), 1);
        // The bypass write lands on backing, refreshes the frame and
        // clears the dirty bit — no stale copy anywhere.
        c.write_bypass(2, &block(0x33)).unwrap();
        assert_eq!(c.dirty_blocks(), 0);
        assert_eq!(c.backing().read_block(2).unwrap(), block(0x33));
        let (data, o) = c.read(2, t(1)).unwrap();
        assert!(o.hit);
        assert_eq!(data, block(0x33));
        // Non-resident keys go straight through without allocating.
        c.write_bypass(8, &block(0x88)).unwrap();
        assert_eq!(c.backing().read_block(8).unwrap(), block(0x88));
        assert_eq!(c.resident_blocks(), 1);
    }

    #[test]
    fn best_effort_flush_continues_past_failures() {
        use crate::faults::{FaultInjectingBacking, FaultPlan};
        let faulty = FaultInjectingBacking::new(MemBacking::new(), FaultPlan::new(0));
        let handle = faulty.handle();
        let mut c = DataCache::new(faulty, PolicySpec::Aod, 16)
            .unwrap()
            .with_write_policy(WritePolicy::WriteBack);
        for key in 0..4 {
            c.write(key, &block(key as u8 + 1), t(key)).unwrap();
        }
        assert_eq!(c.dirty_blocks(), 4);
        // Two of the four flush writes fail; the other two land.
        handle.fail_next(2);
        let (flushed, still_dirty) = c.flush_best_effort();
        assert_eq!(flushed, 2);
        assert_eq!(still_dirty, 2);
        assert_eq!(c.dirty_blocks(), 2);
        // A retry after healing drains the rest.
        let (flushed, still_dirty) = c.flush_best_effort();
        assert_eq!(flushed, 2);
        assert_eq!(still_dirty, 0);
        for key in 0..4u64 {
            assert_eq!(
                c.backing().inner().read_block(key).unwrap(),
                block(key as u8 + 1)
            );
        }
    }

    #[test]
    fn write_back_random_workload_reads_own_writes() {
        let mut c = DataCache::new(MemBacking::new(), PolicySpec::Aod, 8)
            .unwrap()
            .with_write_policy(WritePolicy::WriteBack);
        let mut shadow: HashMap<u64, Block> = HashMap::new();
        let mut rng = SmallRng::seed_from_u64(78);
        for i in 0..5_000u64 {
            let key = rng.random_range(0..32u64);
            if rng.random::<bool>() {
                let fill = rng.random::<u8>();
                c.write(key, &block(fill), t(i)).unwrap();
                shadow.insert(key, block(fill));
            } else {
                let (data, _) = c.read(key, t(i)).unwrap();
                let expect = shadow.get(&key).copied().unwrap_or(block(0));
                assert_eq!(data, expect, "stale data for key {key} at step {i}");
            }
        }
        // After a full flush the backing store agrees with the shadow.
        c.flush().unwrap();
        for (key, expect) in &shadow {
            assert_eq!(c.backing().read_block(*key).unwrap(), *expect);
        }
    }

    #[test]
    fn random_mixed_workload_always_returns_backing_truth() {
        // The cache must never serve stale data, whatever the policy does.
        let mut c = DataCache::new(MemBacking::new(), PolicySpec::Aod, 8).unwrap();
        let mut shadow: HashMap<u64, Block> = HashMap::new();
        let mut rng = SmallRng::seed_from_u64(77);
        for i in 0..5_000u64 {
            let key = rng.random_range(0..32u64);
            if rng.random::<bool>() {
                let fill = rng.random::<u8>();
                c.write(key, &block(fill), t(i)).unwrap();
                shadow.insert(key, block(fill));
            } else {
                let (data, _) = c.read(key, t(i)).unwrap();
                let expect = shadow.get(&key).copied().unwrap_or(block(0));
                assert_eq!(data, expect, "stale data for key {key} at step {i}");
            }
        }
        assert!(c.stats().hits() > 0);
    }

    // -- durable tier wiring ------------------------------------------------

    /// Runs a workload against a durable cache, then "restarts" by
    /// re-opening a cache over the surviving media bytes (orderly
    /// shutdown: the clean-shutdown marker is written first).
    fn reopen(
        mut cache: DataCache<MemBacking>,
        policy: PolicySpec,
        capacity: usize,
        write_policy: WritePolicy,
    ) -> (DataCache<MemBacking>, RecoveryReport) {
        cache.shutdown_durable().unwrap();
        let backing = {
            // Clone the backing contents into a fresh MemBacking.
            let old = cache.backing();
            let fresh = MemBacking::new();
            for key in 0..64u64 {
                let data = old.read_block(key).unwrap();
                if data != [0u8; 512] {
                    fresh.write_block(key, &data).unwrap();
                }
            }
            fresh
        };
        let media = cache
            .durable()
            .expect("durable attached")
            .clone_media_bytes()
            .unwrap();
        let set = DurableMediaSet {
            frames: Box::new(MemMedia::from_bytes(media.0)),
            journal_a: Box::new(MemMedia::from_bytes(media.1)),
            journal_b: Box::new(MemMedia::from_bytes(media.2)),
        };
        let (cache, report) = DataCache::new_durable(backing, policy, capacity, set).unwrap();
        (cache.with_write_policy(write_policy), report)
    }

    #[test]
    fn durable_cache_round_trips_and_recovers_warm() {
        let (mut c, report) = DataCache::new_durable(
            MemBacking::new(),
            PolicySpec::Aod,
            8,
            DurableMediaSet::in_memory(),
        )
        .unwrap();
        assert_eq!(report.recovered, 0);
        assert_eq!(report.journal_records, 0);
        for key in 0..5u64 {
            c.write(key, &block(key as u8 + 1), t(key)).unwrap();
        }
        let resident_before = c.resident_blocks();

        let (mut c2, report) = reopen(c, PolicySpec::Aod, 8, WritePolicy::WriteThrough);
        assert_eq!(report.recovered, resident_before as u64);
        assert_eq!(report.quarantined, 0);
        assert_eq!(c2.resident_blocks(), resident_before);
        // Recovered frames serve hits with the right payloads.
        for key in 0..5u64 {
            let (data, o) = c2.read(key, t(100 + key)).unwrap();
            assert!(o.hit, "key {key} should be warm");
            assert_eq!(data, block(key as u8 + 1));
        }
    }

    #[test]
    fn durable_write_back_dirty_data_survives_restart() {
        let (c, _) = DataCache::new_durable(
            MemBacking::new(),
            PolicySpec::Aod,
            8,
            DurableMediaSet::in_memory(),
        )
        .unwrap();
        let mut c = c.with_write_policy(WritePolicy::WriteBack);
        c.write(3, &block(0xD3), t(0)).unwrap();
        assert_eq!(c.dirty_blocks(), 1);
        // The backing store has never seen the data...
        assert_eq!(c.backing().read_block(3).unwrap(), block(0));

        // ...yet after a restart the dirty frame is back, and a flush
        // lands it.
        let (mut c2, report) = reopen(c, PolicySpec::Aod, 8, WritePolicy::WriteBack);
        assert_eq!(report.recovered, 1);
        assert_eq!(c2.dirty_blocks(), 1);
        let (data, _) = c2.read(3, t(1)).unwrap();
        assert_eq!(data, block(0xD3));
        c2.flush().unwrap();
        assert_eq!(c2.backing().read_block(3).unwrap(), block(0xD3));
    }

    #[test]
    fn durable_flush_marks_clean_so_restart_does_not_reflush() {
        let (c, _) = DataCache::new_durable(
            MemBacking::new(),
            PolicySpec::Aod,
            8,
            DurableMediaSet::in_memory(),
        )
        .unwrap();
        let mut c = c.with_write_policy(WritePolicy::WriteBack);
        c.write(1, &block(0x11), t(0)).unwrap();
        c.flush().unwrap();
        let (c2, _) = reopen(c, PolicySpec::Aod, 8, WritePolicy::WriteBack);
        assert_eq!(c2.dirty_blocks(), 0, "flushed frame must recover clean");
        assert_eq!(c2.resident_blocks(), 1);
    }

    #[test]
    fn durable_eviction_retires_the_victims_durable_copy() {
        let (mut c, _) = DataCache::new_durable(
            MemBacking::new(),
            PolicySpec::Aod,
            2,
            DurableMediaSet::in_memory(),
        )
        .unwrap();
        c.write(1, &block(1), t(0)).unwrap();
        c.write(2, &block(2), t(1)).unwrap();
        c.write(3, &block(3), t(2)).unwrap(); // evicts 1
        let d = c.durable().unwrap();
        assert!(!d.contains(1), "evicted key must leave the durable store");
        assert!(d.contains(2) && d.contains(3));
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn durable_scrub_heals_from_resident_frames() {
        let (mut c, _) = DataCache::new_durable(
            MemBacking::new(),
            PolicySpec::Aod,
            8,
            DurableMediaSet::in_memory(),
        )
        .unwrap();
        for key in 0..4u64 {
            c.write(key, &block(key as u8 + 1), t(key)).unwrap();
        }
        // A clean pass verifies everything.
        let pass = c.scrub(64);
        assert_eq!(pass.verified, 4);
        assert!(pass.quarantined.is_empty());
        // Cursor wraps: a second pass scans again.
        let pass = c.scrub(64);
        assert_eq!(pass.verified, 4);
    }

    #[test]
    fn durable_mixed_workload_restart_agrees_with_shadow() {
        let (c, _) = DataCache::new_durable(
            MemBacking::new(),
            PolicySpec::Aod,
            8,
            DurableMediaSet::in_memory(),
        )
        .unwrap();
        let mut c = c.with_write_policy(WritePolicy::WriteBack);
        let mut shadow: HashMap<u64, Block> = HashMap::new();
        let mut rng = SmallRng::seed_from_u64(99);
        for i in 0..2_000u64 {
            let key = rng.random_range(0..24u64);
            if rng.random::<bool>() {
                let fill = rng.random::<u8>();
                c.write(key, &block(fill), t(i)).unwrap();
                shadow.insert(key, block(fill));
            } else {
                let (data, _) = c.read(key, t(i)).unwrap();
                let expect = shadow.get(&key).copied().unwrap_or(block(0));
                assert_eq!(data, expect, "stale data for key {key} at step {i}");
            }
        }
        let resident = c.resident_blocks();
        let (mut c2, report) = reopen(c, PolicySpec::Aod, 8, WritePolicy::WriteBack);
        assert_eq!(report.recovered as usize, resident);
        // Every read after restart still agrees with the shadow.
        for i in 0..200u64 {
            let key = i % 24;
            let (data, _) = c2.read(key, t(10_000 + i)).unwrap();
            let expect = shadow.get(&key).copied().unwrap_or(block(0));
            assert_eq!(data, expect, "stale data for key {key} after restart");
        }
    }
}
