//! The appliance's TCP front end (single-lock flavor).
//!
//! One [`NodeServer`] owns a [`DataCache`] behind a mutex and serves the
//! wire protocol over TCP, one thread per connection — the physical
//! organization of the paper's Figure 4(c), with TCP standing in for
//! iSCSI. A background clock maps wall-clock time onto trace time so the
//! sieving windows advance. For the shared-nothing, thread-per-core
//! engine that removes the mutex from the hot path, see
//! [`crate::sharded::ShardedNodeServer`]; both are built with
//! [`NodeServerBuilder`].
//!
//! # Fault handling
//!
//! The server never tears down a connection because the *backing store*
//! failed: backing errors become `0xFF` error replies carrying an
//! [`ErrorCode`], and a circuit breaker tracks consecutive failures.
//! After [`NodeConfig::breaker_threshold`] consecutive cache-path
//! failures the node flips into **degraded pass-through mode**: requests
//! are served directly against the ensemble (dirty frames stay
//! authoritative), no frames are allocated, and dirty data is flushed
//! best-effort. After [`NodeConfig::breaker_cooldown`] degraded requests
//! the breaker half-opens and the next request probes the cache path;
//! success closes the breaker, failure re-opens it. Requests that
//! overrun [`NodeConfig::request_deadline`] are answered with a
//! `Deadline` error instead of stalling the reply stream.
//!
//! # Pipelining
//!
//! Connections accept both plain frames (strictly in-order replies) and
//! correlation-id envelopes (`0x10` requests answered with `0x90`
//! replies); enveloped replies are batched into one `write_all` when the
//! client has more requests already buffered, amortizing syscalls.

use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;
use sievestore_types::obs::{Event, EventSink, FieldValue, NoopSink};
use sievestore_types::{obs_count, obs_enabled, obs_gauge_adjust, obs_observe, Micros};

use crate::backing::BackingStore;
use crate::engine::{Breaker, CacheEngine};
use crate::protocol::{ErrorCode, Incoming, NodeMode, PipedReply, Reply, Request};
use crate::store::DataCache;

/// Resilience tuning for a [`NodeServer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeConfig {
    /// Budget per read/write request; overruns are answered with a
    /// `Deadline` error reply (and count as cache-path failures).
    pub request_deadline: Duration,
    /// Close connections idle longer than this between frames; `None`
    /// keeps idle connections forever. Clients reconnect transparently.
    pub idle_timeout: Option<Duration>,
    /// Consecutive cache-path failures before the breaker opens.
    pub breaker_threshold: u32,
    /// Degraded requests served before the breaker half-opens and
    /// probes the cache path again.
    pub breaker_cooldown: u32,
    /// Extra best-effort flush rounds for dirty frames on shutdown.
    pub shutdown_flush_retries: u32,
    /// Interval between background scrub passes over the durable
    /// segment; `None` disables the scrubber. Only meaningful for nodes
    /// with a durable store attached (see
    /// [`NodeServerBuilder::serve_durable`]).
    pub scrub_interval: Option<Duration>,
    /// Slots verified per scrub pass.
    pub scrub_batch: u32,
}

impl Default for NodeConfig {
    fn default() -> Self {
        NodeConfig {
            request_deadline: Duration::from_millis(250),
            idle_timeout: None,
            breaker_threshold: 3,
            breaker_cooldown: 8,
            shutdown_flush_retries: 3,
            scrub_interval: None,
            scrub_batch: 256,
        }
    }
}

/// Worker-panic bookkeeping shared by both server flavors: shutdown
/// must never hang (or silently succeed) because a thread died mid-work.
pub(crate) struct PanicLedger {
    count: AtomicU64,
    first: Mutex<Option<String>>,
}

impl PanicLedger {
    pub(crate) fn new() -> Self {
        PanicLedger {
            count: AtomicU64::new(0),
            first: Mutex::new(None),
        }
    }

    /// Records one panic, keeping the first payload message so
    /// post-mortems (and `Debug` prints) can say *what* died, not just
    /// how many times.
    pub(crate) fn record(&self, payload: &(dyn std::any::Any + Send)) {
        self.count.fetch_add(1, Ordering::SeqCst);
        let message = payload
            .downcast_ref::<&'static str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        let mut first = self.first.lock();
        if first.is_none() {
            *first = Some(message);
        }
    }

    /// The first recorded panic message, if any.
    pub(crate) fn first_message(&self) -> Option<String> {
        self.first.lock().clone()
    }

    pub(crate) fn count(&self) -> u64 {
        self.count.load(Ordering::SeqCst)
    }

    /// Emits one `node.worker.panic` event if any panic was recorded.
    pub(crate) fn report(&self, sink: &dyn EventSink) {
        let count = self.count();
        if count == 0 {
            return;
        }
        sink.record(&Event::new("node.worker.panic").with("count", FieldValue::U64(count)));
    }
}

/// Shared server state.
struct Shared<B: BackingStore> {
    engine: Mutex<CacheEngine<B>>,
    config: NodeConfig,
    /// Microseconds of "trace time" per real microsecond can't be known
    /// here, so the server simply timestamps requests with an atomic
    /// logical clock advanced per request plus the caller-supplied base.
    clock_us: AtomicU64,
    live_conns: AtomicU64,
    panics: PanicLedger,
    stop: AtomicBool,
}

/// Builds either server flavor from one fluent configuration.
///
/// # Examples
///
/// ```
/// use sievestore::PolicySpec;
/// use sievestore_node::{DataCache, MemBacking, NodeClient, NodeServerBuilder};
///
/// # fn main() -> std::io::Result<()> {
/// let cache = DataCache::new(MemBacking::new(), PolicySpec::Aod, 64)
///     .expect("valid appliance");
/// let server = NodeServerBuilder::new("127.0.0.1:0").serve(cache)?;
///
/// let mut client = NodeClient::connect(server.addr())?;
/// client.write_block(3, &[1u8; 512])?;
/// let (data, hit) = client.read_block(3)?;
/// assert_eq!(data[0], 1);
/// assert!(hit);
///
/// client.quit()?;
/// server.shutdown();
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct NodeServerBuilder {
    addr: String,
    config: NodeConfig,
    sink: Arc<dyn EventSink>,
    workers: usize,
}

impl NodeServerBuilder {
    /// Starts a builder binding `addr` (use port 0 for an ephemeral
    /// port) with the default [`NodeConfig`] and no event sink.
    pub fn new(addr: impl Into<String>) -> Self {
        NodeServerBuilder {
            addr: addr.into(),
            config: NodeConfig::default(),
            sink: Arc::new(NoopSink),
            workers: 0,
        }
    }

    /// Overrides the resilience configuration.
    #[must_use]
    pub fn config(mut self, config: NodeConfig) -> Self {
        self.config = config;
        self
    }

    /// Attaches a structured event sink receiving every circuit-breaker
    /// mode transition (`node.breaker.transition` events with
    /// `from`/`to` fields), flush failures and worker panics.
    ///
    /// The sink runs inline on request threads, so it must be cheap and
    /// non-blocking (see [`sievestore_types::obs::EventSink`]).
    #[must_use]
    pub fn sink(mut self, sink: Arc<dyn EventSink>) -> Self {
        self.sink = sink;
        self
    }

    /// Sets the shard-worker count for [`Self::serve_sharded`]; `0`
    /// (the default) sizes to the machine's available parallelism.
    /// Ignored by the single-lock flavors.
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Spawns the single-lock, thread-per-connection server over an
    /// already-built cache.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn serve<B: BackingStore + 'static>(
        self,
        cache: DataCache<B>,
    ) -> io::Result<NodeServer<B>> {
        NodeServer::start(&self.addr, cache, self.config, self.sink, Breaker::closed())
    }

    /// Spawns the single-lock server over a durable frame store: opens
    /// (or formats) the media, runs crash recovery, warms the cache with
    /// the survivors and starts serving. Emits a
    /// `node.recovery.complete` event with the recovery counters.
    ///
    /// If the media is unrecoverable (wrong magic, bad geometry, dead
    /// device), the node does **not** refuse to start: it falls back to
    /// a memory-only cache, emits `node.recovery.failed`, and begins
    /// life with the breaker open — serving degraded pass-through
    /// against the backing store until the normal probe path closes the
    /// breaker. Returns `None` in place of the report in that case.
    ///
    /// When [`NodeConfig::scrub_interval`] is set, a background scrubber
    /// thread sweeps [`NodeConfig::scrub_batch`] slots per interval,
    /// quarantining rotted frames before they are ever served.
    ///
    /// # Errors
    ///
    /// Propagates bind failures and invalid cache configuration.
    pub fn serve_durable<B: BackingStore + 'static>(
        self,
        backing: B,
        policy: sievestore::PolicySpec,
        capacity_blocks: usize,
        write_policy: crate::store::WritePolicy,
        media: crate::durable::DurableMediaSet,
    ) -> io::Result<(NodeServer<B>, Option<crate::durable::RecoveryReport>)> {
        let NodeServerBuilder {
            addr, config, sink, ..
        } = self;
        let mut cache = DataCache::new(backing, policy, capacity_blocks)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?
            .with_write_policy(write_policy);
        let started = obs_enabled!().then(std::time::Instant::now);
        match crate::durable::DurableStore::open(media, capacity_blocks) {
            Ok(recovery) => {
                let report = cache.attach_recovery(recovery);
                if let Some(t) = started {
                    obs_observe!(DurableRecoveryNanos, t.elapsed().as_nanos() as u64);
                }
                sink.record(
                    &Event::new("node.recovery.complete")
                        .with("recovered", FieldValue::U64(report.recovered))
                        .with("quarantined", FieldValue::U64(report.quarantined))
                        .with("lost_dirty", FieldValue::U64(report.lost_dirty))
                        .with("journal_records", FieldValue::U64(report.journal_records))
                        .with("generation", FieldValue::U64(report.generation as u64)),
                );
                let server = NodeServer::start(&addr, cache, config, sink, Breaker::closed())?;
                Ok((server, Some(report)))
            }
            Err(err) => {
                obs_count!(DurableMediaErrors, 1);
                sink.record(
                    &Event::new("node.recovery.failed")
                        .with("error", FieldValue::Str(err.kind_name())),
                );
                // Unrecoverable media: serve memory-only, starting in
                // degraded pass-through; the probe path restores
                // healthy mode on its own.
                let breaker = Breaker::open(&config);
                let server = NodeServer::start(&addr, cache, config, sink, breaker)?;
                Ok((server, None))
            }
        }
    }

    /// Spawns the shared-nothing, thread-per-core server: each worker
    /// owns a disjoint cache slice keyed by
    /// [`sievestore_types::shard_of`], cross-shard requests hop over
    /// bounded SPSC rings, and no lock sits on the request path. See
    /// [`crate::sharded::ShardedNodeServer`].
    ///
    /// # Errors
    ///
    /// Propagates bind failures and invalid cache configuration.
    pub fn serve_sharded<B: BackingStore + 'static>(
        self,
        backing: B,
        policy: sievestore::PolicySpec,
        capacity_blocks: usize,
        write_policy: crate::store::WritePolicy,
    ) -> io::Result<crate::sharded::ShardedNodeServer<B>> {
        let workers = if self.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(8)
        } else {
            self.workers
        };
        crate::sharded::ShardedNodeServer::start(
            &self.addr,
            backing,
            policy,
            capacity_blocks,
            write_policy,
            workers,
            self.config,
            self.sink,
        )
    }
}

/// A running SieveStore node (single-lock flavor).
///
/// # Examples
///
/// ```
/// use sievestore::PolicySpec;
/// use sievestore_node::{DataCache, MemBacking, NodeClient, NodeServerBuilder};
///
/// # fn main() -> std::io::Result<()> {
/// let cache = DataCache::new(MemBacking::new(), PolicySpec::Aod, 64)
///     .expect("valid appliance");
/// let server = NodeServerBuilder::new("127.0.0.1:0").serve(cache)?;
///
/// let mut client = NodeClient::connect(server.addr())?;
/// client.write_block(3, &[1u8; 512])?;
/// let (data, hit) = client.read_block(3)?;
/// assert_eq!(data[0], 1);
/// assert!(hit);
///
/// client.quit()?;
/// server.shutdown();
/// # Ok(())
/// # }
/// ```
pub struct NodeServer<B: BackingStore + 'static> {
    shared: Arc<Shared<B>>,
    addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
    scrub_thread: Option<JoinHandle<()>>,
    /// Shutdown flush already ran (explicit `shutdown()`), so the
    /// `Drop` fallback must not repeat the rounds.
    flushed: bool,
}

impl<B: BackingStore + 'static> NodeServer<B> {
    fn start(
        addr: &str,
        cache: DataCache<B>,
        config: NodeConfig,
        sink: Arc<dyn EventSink>,
        breaker: Breaker,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            engine: Mutex::new(CacheEngine::new(cache, config, sink, breaker)),
            config,
            clock_us: AtomicU64::new(0),
            live_conns: AtomicU64::new(0),
            panics: PanicLedger::new(),
            stop: AtomicBool::new(false),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::spawn(move || {
            accept_loop(listener, accept_shared);
        });
        let scrub_thread = config.scrub_interval.map(|interval| {
            let scrub_shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                scrub_loop(scrub_shared, interval);
            })
        });
        Ok(NodeServer {
            shared,
            addr,
            accept_thread: Some(accept_thread),
            scrub_thread,
            flushed: false,
        })
    }

    /// The bound address (with the resolved port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Aggregate appliance statistics.
    pub fn stats(&self) -> sievestore::ApplianceStats {
        *self.shared.engine.lock().cache.stats()
    }

    /// The node's current health mode.
    pub fn mode(&self) -> NodeMode {
        self.shared.engine.lock().mode()
    }

    /// Connections currently being served.
    pub fn live_connections(&self) -> u64 {
        self.shared.live_conns.load(Ordering::Relaxed)
    }

    /// Connection-thread panics caught so far. Panics never wedge
    /// shutdown: they are recorded here and reported as one
    /// `node.worker.panic` event when the server stops.
    pub fn worker_panics(&self) -> u64 {
        self.shared.panics.count()
    }

    /// The first caught panic's message, for diagnostics.
    pub fn first_panic_message(&self) -> Option<String> {
        self.shared.panics.first_message()
    }

    /// Stops accepting connections, joins the accept thread and flushes
    /// dirty frames best-effort (with retries) so a write-back node does
    /// not strand the only copy of dirty data. In-flight connections
    /// finish their current request and then close.
    pub fn shutdown(mut self) {
        self.stop_accepting();
        self.flush_on_shutdown();
    }

    fn stop_accepting(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with one last connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.scrub_thread.take() {
            let _ = handle.join();
        }
    }

    /// Best-effort dirty-frame flush with bounded retries; failures must
    /// not panic or hang shutdown on a dead backing, but neither may
    /// they vanish silently — each failed round is counted
    /// (`node_flush_failures`) and emits one `node.flush.failed` event,
    /// and frames that never land remain journaled on the durable store
    /// (when attached) for the next incarnation to recover.
    fn flush_on_shutdown(&mut self) {
        if self.flushed {
            return;
        }
        self.flushed = true;
        let retries = self.shared.config.shutdown_flush_retries;
        // A panicking backing store mid-flush must not escape: this
        // runs from Drop, where an unwinding panic would abort.
        let result = catch_unwind(AssertUnwindSafe(|| {
            self.shared.engine.lock().shutdown_flush(retries);
        }));
        if let Err(payload) = result {
            self.shared.panics.record(payload.as_ref());
        }
        self.shared
            .panics
            .report(self.shared.engine.lock().sink().as_ref());
    }
}

impl<B: BackingStore + 'static> Drop for NodeServer<B> {
    fn drop(&mut self) {
        // Best effort if shutdown() wasn't called: stop accepting and
        // still try to land dirty frames on the backing store.
        self.stop_accepting();
        self.flush_on_shutdown();
    }
}

/// Background scrubber: sweeps the durable segment in bounded passes so
/// bit rot is quarantined before a request can ever be served from it.
/// Sleeps in short ticks so shutdown is never delayed a full interval.
fn scrub_loop<B: BackingStore + 'static>(shared: Arc<Shared<B>>, interval: Duration) {
    let tick = Duration::from_millis(10).min(interval);
    let mut elapsed = Duration::ZERO;
    while !shared.stop.load(Ordering::SeqCst) {
        std::thread::sleep(tick);
        elapsed += tick;
        if elapsed < interval {
            continue;
        }
        elapsed = Duration::ZERO;
        let batch = shared.config.scrub_batch;
        let pass = catch_unwind(AssertUnwindSafe(|| {
            shared.engine.lock().scrub_pass(batch);
        }));
        if let Err(payload) = pass {
            shared.panics.record(payload.as_ref());
            break;
        }
    }
}

fn accept_loop<B: BackingStore + 'static>(listener: TcpListener, shared: Arc<Shared<B>>) {
    for stream in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        match stream {
            Ok(stream) => {
                let conn_shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    // A panic anywhere in the connection path is
                    // recorded (it kills only this connection) so
                    // shutdown can surface it instead of hanging or
                    // hiding it.
                    let result = catch_unwind(AssertUnwindSafe(|| {
                        let _ = serve_connection(stream, &conn_shared);
                    }));
                    if let Err(payload) = result {
                        conn_shared.panics.record(payload.as_ref());
                    }
                });
            }
            Err(_) => continue,
        }
    }
}

/// Whether a decode failure is the idle timeout firing between frames.
fn is_idle_timeout(err: &io::Error) -> bool {
    matches!(
        err.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Decrements the live-connection gauge even if the connection path
/// unwinds.
struct ConnGuard<'a>(&'a AtomicU64);

impl Drop for ConnGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
        obs_gauge_adjust!(NodeLiveConnections, -1);
    }
}

fn serve_connection<B: BackingStore + 'static>(
    stream: TcpStream,
    shared: &Arc<Shared<B>>,
) -> io::Result<()> {
    shared.live_conns.fetch_add(1, Ordering::Relaxed);
    obs_gauge_adjust!(NodeLiveConnections, 1);
    let _guard = ConnGuard(&shared.live_conns);
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(shared.config.idle_timeout).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut out = Vec::new();
    loop {
        let incoming = match Incoming::decode(&mut reader) {
            Ok(req) => req,
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(()),
            // Idle timeout between frames: close quietly. The client
            // reconnects transparently on its next request.
            Err(e) if is_idle_timeout(&e) => return Ok(()),
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                Reply::Error {
                    code: ErrorCode::Protocol,
                    message: e.to_string(),
                }
                .encode(&mut writer)?;
                return Ok(());
            }
            Err(e) => return Err(e),
        };
        let (corr, request) = match incoming {
            Incoming::Plain(request) => (None, request),
            Incoming::Piped(piped) => (Some(piped.corr), piped.request),
        };
        // Logical per-request clock: one millisecond of trace time per
        // request keeps sieving windows moving deterministically.
        let now = Micros::new(shared.clock_us.fetch_add(1_000, Ordering::Relaxed));
        let reply = match request {
            Request::Read { key } => shared.engine.lock().handle_read(key, now),
            Request::Write { key, data } => shared.engine.lock().handle_write(key, &data, now),
            Request::Stats => {
                let engine = shared.engine.lock();
                let snap = engine.snapshot();
                Reply::Stats {
                    read_hits: snap.stats.read_hits,
                    write_hits: snap.stats.write_hits,
                    read_misses: snap.stats.read_misses,
                    write_misses: snap.stats.write_misses,
                    allocation_writes: snap.stats.allocation_writes,
                    resident_blocks: snap.resident_blocks,
                    degraded_reads: snap.degraded_reads,
                    degraded_writes: snap.degraded_writes,
                    mode: engine.mode(),
                }
            }
            Request::Flush => shared.engine.lock().handle_flush(),
            Request::Quit => return writer.flush(),
        };
        out.clear();
        match corr {
            None => reply.encode_into(&mut out),
            Some(corr) => PipedReply { corr, reply }.encode_into(&mut out),
        }
        writer.write_all(&out)?;
        // Batch: only pay the flush syscall when no further request is
        // already buffered (a pipelining client keeps the buffer full).
        if reader.buffer().is_empty() {
            writer.flush()?;
        }
    }
}
