//! The appliance's TCP front end.
//!
//! One [`NodeServer`] owns a [`DataCache`] behind a mutex and serves the
//! wire protocol over TCP, one thread per connection — the physical
//! organization of the paper's Figure 4(c), with TCP standing in for
//! iSCSI. A background clock maps wall-clock time onto trace time so the
//! sieving windows advance.
//!
//! # Fault handling
//!
//! The server never tears down a connection because the *backing store*
//! failed: backing errors become `0xFF` error replies carrying an
//! [`ErrorCode`], and a circuit breaker tracks consecutive failures.
//! After [`NodeConfig::breaker_threshold`] consecutive cache-path
//! failures the node flips into **degraded pass-through mode**: requests
//! are served directly against the ensemble (dirty frames stay
//! authoritative), no frames are allocated, and dirty data is flushed
//! best-effort. After [`NodeConfig::breaker_cooldown`] degraded requests
//! the breaker half-opens and the next request probes the cache path;
//! success closes the breaker, failure re-opens it. Requests that
//! overrun [`NodeConfig::request_deadline`] are answered with a
//! `Deadline` error instead of stalling the reply stream.

use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use sievestore_types::obs::{Event, EventSink, FieldValue, NoopSink};
use sievestore_types::{obs_count, obs_enabled, obs_observe, Micros};

use crate::backing::BackingStore;
use crate::protocol::{ErrorCode, NodeMode, Reply, Request};
use crate::store::DataCache;

/// Resilience tuning for a [`NodeServer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeConfig {
    /// Budget per read/write request; overruns are answered with a
    /// `Deadline` error reply (and count as cache-path failures).
    pub request_deadline: Duration,
    /// Close connections idle longer than this between frames; `None`
    /// keeps idle connections forever. Clients reconnect transparently.
    pub idle_timeout: Option<Duration>,
    /// Consecutive cache-path failures before the breaker opens.
    pub breaker_threshold: u32,
    /// Degraded requests served before the breaker half-opens and
    /// probes the cache path again.
    pub breaker_cooldown: u32,
    /// Extra best-effort flush rounds for dirty frames on shutdown.
    pub shutdown_flush_retries: u32,
    /// Interval between background scrub passes over the durable
    /// segment; `None` disables the scrubber. Only meaningful for nodes
    /// with a durable store attached (see [`NodeServer::spawn_durable`]).
    pub scrub_interval: Option<Duration>,
    /// Slots verified per scrub pass.
    pub scrub_batch: u32,
}

impl Default for NodeConfig {
    fn default() -> Self {
        NodeConfig {
            request_deadline: Duration::from_millis(250),
            idle_timeout: None,
            breaker_threshold: 3,
            breaker_cooldown: 8,
            shutdown_flush_retries: 3,
            scrub_interval: None,
            scrub_batch: 256,
        }
    }
}

/// Circuit-breaker state machine.
///
/// `Closed` (healthy) counts consecutive failures; at the threshold it
/// trips to `Open` (degraded pass-through) for a fixed number of
/// requests, then `HalfOpen` lets exactly one request probe the cache
/// path: success closes the breaker, failure re-opens it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Breaker {
    Closed { failures: u32 },
    Open { remaining: u32 },
    HalfOpen,
}

impl Breaker {
    fn mode(self) -> NodeMode {
        match self {
            Breaker::Closed { .. } => NodeMode::Healthy,
            Breaker::Open { .. } => NodeMode::Degraded,
            Breaker::HalfOpen => NodeMode::Probing,
        }
    }
}

/// Stable lowercase state names for structured breaker events.
fn mode_name(mode: NodeMode) -> &'static str {
    match mode {
        NodeMode::Healthy => "healthy",
        NodeMode::Degraded => "degraded",
        NodeMode::Probing => "probing",
    }
}

/// The cache plus breaker, guarded by one mutex so breaker transitions
/// are atomic with the cache operations they judge.
struct Guarded<B: BackingStore> {
    cache: DataCache<B>,
    breaker: Breaker,
    /// Destination for structured breaker-transition events. Sinks run
    /// under the guarded mutex, so they must be cheap and non-blocking.
    sink: Arc<dyn EventSink>,
}

impl<B: BackingStore> Guarded<B> {
    /// Records a cache-path success; a successful probe (or a healthy
    /// request) closes the breaker.
    fn record_success(&mut self) {
        let from = self.breaker;
        self.breaker = Breaker::Closed { failures: 0 };
        self.on_transition(from);
    }

    /// Records a cache-path failure; at the threshold the breaker opens
    /// and dirty frames are flushed best-effort while the backing store
    /// may still be reachable.
    fn record_failure(&mut self, config: &NodeConfig) {
        let from = self.breaker;
        let failures = match self.breaker {
            Breaker::Closed { failures } => failures + 1,
            // A failed probe re-opens immediately.
            Breaker::HalfOpen => config.breaker_threshold,
            Breaker::Open { remaining } => {
                self.breaker = Breaker::Open { remaining };
                return;
            }
        };
        if failures >= config.breaker_threshold.max(1) {
            self.breaker = Breaker::Open {
                remaining: config.breaker_cooldown.max(1),
            };
            // Entering degraded mode: try to get dirty data to safety
            // while (or in case) the backing store still responds.
            self.flush_round("breaker_open");
        } else {
            self.breaker = Breaker::Closed { failures };
        }
        self.on_transition(from);
    }

    /// Consumes one degraded-mode request; at zero the breaker
    /// half-opens so the next request probes the cache path.
    fn tick_degraded(&mut self) {
        if let Breaker::Open { remaining } = self.breaker {
            let from = self.breaker;
            let remaining = remaining.saturating_sub(1);
            self.breaker = if remaining == 0 {
                Breaker::HalfOpen
            } else {
                Breaker::Open { remaining }
            };
            self.on_transition(from);
        }
    }

    /// Runs one best-effort flush round, surfacing what a silent swallow
    /// would hide: frames still dirty after the round are counted
    /// (`node_flush_failures`) and reported as one structured
    /// `node.flush.failed` event per round. Returns how many frames
    /// remain dirty.
    fn flush_round(&mut self, context: &'static str) -> u64 {
        let (flushed, still_dirty) = self.cache.flush_best_effort();
        if still_dirty > 0 {
            obs_count!(NodeFlushFailures, still_dirty);
            self.sink.record(
                &Event::new("node.flush.failed")
                    .with("context", FieldValue::Str(context))
                    .with("flushed", FieldValue::U64(flushed))
                    .with("still_dirty", FieldValue::U64(still_dirty)),
            );
        }
        still_dirty
    }

    /// Emits exactly one structured event per *mode* change (internal
    /// state updates that keep the mode, like a failure streak growing
    /// under threshold or the cooldown counting down, stay silent).
    fn on_transition(&self, from: Breaker) {
        let to = self.breaker;
        if from.mode() == to.mode() {
            return;
        }
        if to.mode() == NodeMode::Degraded {
            obs_count!(NodeBreakerTrips, 1);
        }
        if to.mode() == NodeMode::Healthy {
            obs_count!(NodeBreakerRecoveries, 1);
        }
        self.sink.record(
            &Event::new("node.breaker.transition")
                .with("from", FieldValue::Str(mode_name(from.mode())))
                .with("to", FieldValue::Str(mode_name(to.mode()))),
        );
    }
}

/// Shared server state.
struct Shared<B: BackingStore> {
    guarded: Mutex<Guarded<B>>,
    config: NodeConfig,
    /// Microseconds of "trace time" per real microsecond can't be known
    /// here, so the server simply timestamps requests with an atomic
    /// logical clock advanced per request plus the caller-supplied base.
    clock_us: AtomicU64,
    degraded_reads: AtomicU64,
    degraded_writes: AtomicU64,
    stop: AtomicBool,
}

/// A running SieveStore node.
///
/// # Examples
///
/// ```
/// use sievestore::PolicySpec;
/// use sievestore_node::{DataCache, MemBacking, NodeClient, NodeServer};
///
/// # fn main() -> std::io::Result<()> {
/// let cache = DataCache::new(MemBacking::new(), PolicySpec::Aod, 64)
///     .expect("valid appliance");
/// let server = NodeServer::spawn("127.0.0.1:0", cache)?;
///
/// let mut client = NodeClient::connect(server.addr())?;
/// client.write_block(3, &[1u8; 512])?;
/// let (data, hit) = client.read_block(3)?;
/// assert_eq!(data[0], 1);
/// assert!(hit);
///
/// client.quit()?;
/// server.shutdown();
/// # Ok(())
/// # }
/// ```
pub struct NodeServer<B: BackingStore + 'static> {
    shared: Arc<Shared<B>>,
    addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
    scrub_thread: Option<JoinHandle<()>>,
    /// Shutdown flush already ran (explicit `shutdown()`), so the
    /// `Drop` fallback must not repeat the rounds.
    flushed: bool,
}

impl<B: BackingStore + 'static> NodeServer<B> {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// accepting connections with the default [`NodeConfig`].
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn spawn(addr: &str, cache: DataCache<B>) -> io::Result<Self> {
        Self::spawn_with_config(addr, cache, NodeConfig::default())
    }

    /// Binds `addr` and starts accepting connections with an explicit
    /// resilience configuration.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn spawn_with_config(
        addr: &str,
        cache: DataCache<B>,
        config: NodeConfig,
    ) -> io::Result<Self> {
        Self::spawn_observed(addr, cache, config, Arc::new(NoopSink))
    }

    /// Binds `addr` with an explicit configuration *and* a structured
    /// event sink receiving every circuit-breaker mode transition
    /// (`node.breaker.transition` events with `from`/`to` fields).
    ///
    /// The sink runs inline on request threads while the cache mutex is
    /// held, so it must be cheap and non-blocking (see
    /// [`sievestore_types::obs::EventSink`]).
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn spawn_observed(
        addr: &str,
        cache: DataCache<B>,
        config: NodeConfig,
        sink: Arc<dyn EventSink>,
    ) -> io::Result<Self> {
        Self::spawn_inner(addr, cache, config, sink, Breaker::Closed { failures: 0 })
    }

    /// Binds `addr` over a durable frame store: opens (or formats) the
    /// media, runs crash recovery, warms the cache with the survivors
    /// and starts serving. Emits a `node.recovery.complete` event with
    /// the recovery counters.
    ///
    /// If the media is unrecoverable (wrong magic, bad geometry, dead
    /// device), the node does **not** refuse to start: it falls back to
    /// a memory-only cache, emits `node.recovery.failed`, and begins
    /// life with the breaker open — serving degraded pass-through
    /// against the backing store until the normal probe path closes the
    /// breaker. Returns `None` in place of the report in that case.
    ///
    /// When [`NodeConfig::scrub_interval`] is set, a background scrubber
    /// thread sweeps [`NodeConfig::scrub_batch`] slots per interval,
    /// quarantining rotted frames before they are ever served.
    ///
    /// # Errors
    ///
    /// Propagates bind failures and invalid cache configuration.
    #[allow(clippy::too_many_arguments)] // one positional knob per spawn concern; a builder would hide the contract
    pub fn spawn_durable(
        addr: &str,
        backing: B,
        policy: sievestore::PolicySpec,
        capacity_blocks: usize,
        write_policy: crate::store::WritePolicy,
        media: crate::durable::DurableMediaSet,
        config: NodeConfig,
        sink: Arc<dyn EventSink>,
    ) -> io::Result<(Self, Option<crate::durable::RecoveryReport>)> {
        let mut cache = DataCache::new(backing, policy, capacity_blocks)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?
            .with_write_policy(write_policy);
        let started = obs_enabled!().then(Instant::now);
        match crate::durable::DurableStore::open(media, capacity_blocks) {
            Ok(recovery) => {
                let report = cache.attach_recovery(recovery);
                if let Some(t) = started {
                    obs_observe!(DurableRecoveryNanos, t.elapsed().as_nanos() as u64);
                }
                sink.record(
                    &Event::new("node.recovery.complete")
                        .with("recovered", FieldValue::U64(report.recovered))
                        .with("quarantined", FieldValue::U64(report.quarantined))
                        .with("lost_dirty", FieldValue::U64(report.lost_dirty))
                        .with("journal_records", FieldValue::U64(report.journal_records))
                        .with("generation", FieldValue::U64(report.generation as u64)),
                );
                let server =
                    Self::spawn_inner(addr, cache, config, sink, Breaker::Closed { failures: 0 })?;
                Ok((server, Some(report)))
            }
            Err(err) => {
                obs_count!(DurableMediaErrors, 1);
                sink.record(
                    &Event::new("node.recovery.failed")
                        .with("error", FieldValue::Str(err.kind_name())),
                );
                // Unrecoverable media: serve memory-only, starting in
                // degraded pass-through; the probe path restores
                // healthy mode on its own.
                let breaker = Breaker::Open {
                    remaining: config.breaker_cooldown.max(1),
                };
                let server = Self::spawn_inner(addr, cache, config, sink, breaker)?;
                Ok((server, None))
            }
        }
    }

    fn spawn_inner(
        addr: &str,
        cache: DataCache<B>,
        config: NodeConfig,
        sink: Arc<dyn EventSink>,
        breaker: Breaker,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            guarded: Mutex::new(Guarded {
                cache,
                breaker,
                sink,
            }),
            config,
            clock_us: AtomicU64::new(0),
            degraded_reads: AtomicU64::new(0),
            degraded_writes: AtomicU64::new(0),
            stop: AtomicBool::new(false),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::spawn(move || {
            accept_loop(listener, accept_shared);
        });
        let scrub_thread = config.scrub_interval.map(|interval| {
            let scrub_shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                scrub_loop(scrub_shared, interval);
            })
        });
        Ok(NodeServer {
            shared,
            addr,
            accept_thread: Some(accept_thread),
            scrub_thread,
            flushed: false,
        })
    }

    /// The bound address (with the resolved port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Aggregate appliance statistics.
    pub fn stats(&self) -> sievestore::ApplianceStats {
        *self.shared.guarded.lock().cache.stats()
    }

    /// The node's current health mode.
    pub fn mode(&self) -> NodeMode {
        self.shared.guarded.lock().breaker.mode()
    }

    /// Stops accepting connections, joins the accept thread and flushes
    /// dirty frames best-effort (with retries) so a write-back node does
    /// not strand the only copy of dirty data. In-flight connections
    /// finish their current request and then close.
    pub fn shutdown(mut self) {
        self.stop_accepting();
        self.flush_on_shutdown();
    }

    fn stop_accepting(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with one last connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.scrub_thread.take() {
            let _ = handle.join();
        }
    }

    /// Best-effort dirty-frame flush with bounded retries; failures must
    /// not panic or hang shutdown on a dead backing, but neither may
    /// they vanish silently — each failed round is counted
    /// (`node_flush_failures`) and emits one `node.flush.failed` event,
    /// and frames that never land remain journaled on the durable store
    /// (when attached) for the next incarnation to recover.
    fn flush_on_shutdown(&mut self) {
        if self.flushed {
            return;
        }
        self.flushed = true;
        let mut guarded = self.shared.guarded.lock();
        for _ in 0..=self.shared.config.shutdown_flush_retries {
            if guarded.flush_round("shutdown") == 0 {
                break;
            }
        }
        // Mark the durable journal cleanly shut down so the next open
        // recovers warm. Best-effort: on failure the next recovery is
        // merely colder (clean frames dropped), never incorrect.
        let _ = guarded.cache.shutdown_durable();
    }
}

impl<B: BackingStore + 'static> Drop for NodeServer<B> {
    fn drop(&mut self) {
        // Best effort if shutdown() wasn't called: stop accepting and
        // still try to land dirty frames on the backing store.
        self.stop_accepting();
        self.flush_on_shutdown();
    }
}

/// Background scrubber: sweeps the durable segment in bounded passes so
/// bit rot is quarantined before a request can ever be served from it.
/// Sleeps in short ticks so shutdown is never delayed a full interval.
fn scrub_loop<B: BackingStore + 'static>(shared: Arc<Shared<B>>, interval: Duration) {
    let tick = Duration::from_millis(10).min(interval);
    let mut elapsed = Duration::ZERO;
    while !shared.stop.load(Ordering::SeqCst) {
        std::thread::sleep(tick);
        elapsed += tick;
        if elapsed < interval {
            continue;
        }
        elapsed = Duration::ZERO;
        let mut guarded = shared.guarded.lock();
        let pass = guarded.cache.scrub(shared.config.scrub_batch);
        if !pass.quarantined.is_empty() {
            guarded.sink.record(
                &Event::new("node.scrub.quarantined")
                    .with("frames", FieldValue::U64(pass.quarantined.len() as u64)),
            );
        }
    }
}

fn accept_loop<B: BackingStore + 'static>(listener: TcpListener, shared: Arc<Shared<B>>) {
    for stream in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        match stream {
            Ok(stream) => {
                let conn_shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    let _ = serve_connection(stream, conn_shared);
                });
            }
            Err(_) => continue,
        }
    }
}

/// Classifies a backing-store failure for the wire. Backing hiccups are
/// transient from the client's point of view — the retry may hit a
/// healed device or the degraded path.
fn classify_backing(err: &io::Error) -> ErrorCode {
    match err.kind() {
        io::ErrorKind::InvalidData => ErrorCode::Fatal,
        _ => ErrorCode::Transient,
    }
}

/// Whether a decode failure is the idle timeout firing between frames.
fn is_idle_timeout(err: &io::Error) -> bool {
    matches!(
        err.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

fn handle_read<B: BackingStore>(shared: &Shared<B>, key: u64, now: Micros) -> Reply {
    let observed = obs_enabled!().then(Instant::now);
    let reply = handle_read_inner(shared, key, now);
    obs_count!(NodeReads, 1);
    if let Some(started) = observed {
        obs_observe!(NodeReadNanos, started.elapsed().as_nanos() as u64);
    }
    reply
}

fn handle_read_inner<B: BackingStore>(shared: &Shared<B>, key: u64, now: Micros) -> Reply {
    let mut guarded = shared.guarded.lock();
    match guarded.breaker.mode() {
        NodeMode::Degraded => {
            guarded.tick_degraded();
            match guarded.cache.read_bypass(key) {
                Ok(data) => {
                    shared.degraded_reads.fetch_add(1, Ordering::Relaxed);
                    obs_count!(NodeDegraded, 1);
                    Reply::Read {
                        hit: false,
                        data: Box::new(data),
                    }
                }
                Err(e) => Reply::Error {
                    code: classify_backing(&e),
                    message: format!("degraded read failed: {e}"),
                },
            }
        }
        NodeMode::Healthy | NodeMode::Probing => {
            let started = Instant::now();
            match guarded.cache.read(key, now) {
                Ok((data, outcome)) => {
                    if started.elapsed() > shared.config.request_deadline {
                        guarded.record_failure(&shared.config);
                        obs_count!(NodeDeadlineOverruns, 1);
                        return Reply::Error {
                            code: ErrorCode::Deadline,
                            message: format!(
                                "read of block {key} overran the {:?} deadline",
                                shared.config.request_deadline
                            ),
                        };
                    }
                    guarded.record_success();
                    Reply::Read {
                        hit: outcome.hit,
                        data: Box::new(data),
                    }
                }
                Err(e) => {
                    guarded.record_failure(&shared.config);
                    Reply::Error {
                        code: classify_backing(&e),
                        message: format!("backing read failed: {e}"),
                    }
                }
            }
        }
    }
}

fn handle_write<B: BackingStore>(
    shared: &Shared<B>,
    key: u64,
    data: &crate::backing::Block,
    now: Micros,
) -> Reply {
    let observed = obs_enabled!().then(Instant::now);
    let reply = handle_write_inner(shared, key, data, now);
    obs_count!(NodeWrites, 1);
    if let Some(started) = observed {
        obs_observe!(NodeWriteNanos, started.elapsed().as_nanos() as u64);
    }
    reply
}

fn handle_write_inner<B: BackingStore>(
    shared: &Shared<B>,
    key: u64,
    data: &crate::backing::Block,
    now: Micros,
) -> Reply {
    let mut guarded = shared.guarded.lock();
    match guarded.breaker.mode() {
        NodeMode::Degraded => {
            guarded.tick_degraded();
            match guarded.cache.write_bypass(key, data) {
                Ok(()) => {
                    shared.degraded_writes.fetch_add(1, Ordering::Relaxed);
                    obs_count!(NodeDegraded, 1);
                    Reply::Write { hit: false }
                }
                Err(e) => Reply::Error {
                    code: classify_backing(&e),
                    message: format!("degraded write failed: {e}"),
                },
            }
        }
        NodeMode::Healthy | NodeMode::Probing => {
            let started = Instant::now();
            match guarded.cache.write(key, data, now) {
                Ok(outcome) => {
                    if started.elapsed() > shared.config.request_deadline {
                        guarded.record_failure(&shared.config);
                        obs_count!(NodeDeadlineOverruns, 1);
                        return Reply::Error {
                            code: ErrorCode::Deadline,
                            message: format!(
                                "write of block {key} overran the {:?} deadline",
                                shared.config.request_deadline
                            ),
                        };
                    }
                    guarded.record_success();
                    Reply::Write { hit: outcome.hit }
                }
                Err(e) => {
                    guarded.record_failure(&shared.config);
                    Reply::Error {
                        code: classify_backing(&e),
                        message: format!("backing write failed: {e}"),
                    }
                }
            }
        }
    }
}

fn serve_connection<B: BackingStore + 'static>(
    stream: TcpStream,
    shared: Arc<Shared<B>>,
) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(shared.config.idle_timeout).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    loop {
        let request = match Request::decode(&mut reader) {
            Ok(req) => req,
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(()),
            // Idle timeout between frames: close quietly. The client
            // reconnects transparently on its next request.
            Err(e) if is_idle_timeout(&e) => return Ok(()),
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                Reply::Error {
                    code: ErrorCode::Protocol,
                    message: e.to_string(),
                }
                .encode(&mut writer)?;
                return Ok(());
            }
            Err(e) => return Err(e),
        };
        // Logical per-request clock: one millisecond of trace time per
        // request keeps sieving windows moving deterministically.
        let now = Micros::new(shared.clock_us.fetch_add(1_000, Ordering::Relaxed));
        let reply = match request {
            Request::Read { key } => handle_read(&shared, key, now),
            Request::Write { key, data } => handle_write(&shared, key, &data, now),
            Request::Stats => {
                let guarded = shared.guarded.lock();
                let s = *guarded.cache.stats();
                Reply::Stats {
                    read_hits: s.read_hits,
                    write_hits: s.write_hits,
                    read_misses: s.read_misses,
                    write_misses: s.write_misses,
                    allocation_writes: s.allocation_writes,
                    resident_blocks: guarded.cache.resident_blocks() as u64,
                    degraded_reads: shared.degraded_reads.load(Ordering::Relaxed),
                    degraded_writes: shared.degraded_writes.load(Ordering::Relaxed),
                    mode: guarded.breaker.mode(),
                }
            }
            Request::Flush => match shared.guarded.lock().cache.flush() {
                Ok(flushed) => Reply::Flush { flushed },
                Err(e) => Reply::Error {
                    code: classify_backing(&e),
                    message: format!("flush failed: {e}"),
                },
            },
            Request::Quit => return writer.flush(),
        };
        reply.encode(&mut writer)?;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backing::MemBacking;

    fn guarded() -> Guarded<MemBacking> {
        guarded_with_sink(Arc::new(NoopSink))
    }

    fn guarded_with_sink(sink: Arc<dyn EventSink>) -> Guarded<MemBacking> {
        Guarded {
            cache: DataCache::new(MemBacking::new(), sievestore::PolicySpec::Aod, 8)
                .expect("valid cache"),
            breaker: Breaker::Closed { failures: 0 },
            sink,
        }
    }

    #[test]
    fn breaker_opens_at_threshold_and_recovers_through_probe() {
        let config = NodeConfig {
            breaker_threshold: 3,
            breaker_cooldown: 2,
            ..NodeConfig::default()
        };
        let mut g = guarded();
        assert_eq!(g.breaker.mode(), NodeMode::Healthy);
        // Two failures stay closed; the third opens.
        g.record_failure(&config);
        g.record_failure(&config);
        assert_eq!(g.breaker.mode(), NodeMode::Healthy);
        g.record_failure(&config);
        assert_eq!(g.breaker.mode(), NodeMode::Degraded);
        // Cooldown drains per degraded request, then half-open.
        g.tick_degraded();
        assert_eq!(g.breaker.mode(), NodeMode::Degraded);
        g.tick_degraded();
        assert_eq!(g.breaker.mode(), NodeMode::Probing);
        // A successful probe closes the breaker.
        g.record_success();
        assert_eq!(g.breaker.mode(), NodeMode::Healthy);
    }

    #[test]
    fn failed_probe_reopens_the_breaker() {
        let config = NodeConfig {
            breaker_threshold: 1,
            breaker_cooldown: 1,
            ..NodeConfig::default()
        };
        let mut g = guarded();
        g.record_failure(&config);
        assert_eq!(g.breaker.mode(), NodeMode::Degraded);
        g.tick_degraded();
        assert_eq!(g.breaker.mode(), NodeMode::Probing);
        g.record_failure(&config);
        assert_eq!(g.breaker.mode(), NodeMode::Degraded);
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let config = NodeConfig {
            breaker_threshold: 2,
            ..NodeConfig::default()
        };
        let mut g = guarded();
        g.record_failure(&config);
        g.record_success();
        g.record_failure(&config);
        // Never two *consecutive* failures, so still healthy.
        assert_eq!(g.breaker.mode(), NodeMode::Healthy);
    }

    #[test]
    fn breaker_emits_exactly_one_event_per_mode_transition() {
        use sievestore_types::obs::CapturingSink;
        let sink = Arc::new(CapturingSink::new());
        let config = NodeConfig {
            breaker_threshold: 2,
            breaker_cooldown: 1,
            ..NodeConfig::default()
        };
        let mut g = guarded_with_sink(sink.clone());
        // Sub-threshold failure and already-closed success: no events.
        g.record_failure(&config);
        g.record_success();
        g.record_success();
        assert!(sink.events().is_empty(), "mode never changed");
        // Trip: healthy -> degraded (two consecutive failures).
        g.record_failure(&config);
        g.record_failure(&config);
        // Cooldown: degraded -> probing, then probe success -> healthy.
        g.tick_degraded();
        g.record_success();
        let events = sink.take();
        let transitions: Vec<(String, String)> = events
            .iter()
            .map(|e| {
                (
                    e.field("from").expect("from").to_string(),
                    e.field("to").expect("to").to_string(),
                )
            })
            .collect();
        assert_eq!(
            transitions,
            vec![
                ("healthy".into(), "degraded".into()),
                ("degraded".into(), "probing".into()),
                ("probing".into(), "healthy".into()),
            ]
        );
        assert!(events.iter().all(|e| e.name == "node.breaker.transition"));
    }

    #[test]
    fn backing_errors_classify_as_transient_for_clients() {
        let hiccup = io::Error::other("injected fault");
        assert_eq!(classify_backing(&hiccup), ErrorCode::Transient);
        let corrupt = io::Error::new(io::ErrorKind::InvalidData, "bad block");
        assert_eq!(classify_backing(&corrupt), ErrorCode::Fatal);
    }
}
