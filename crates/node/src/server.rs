//! The appliance's TCP front end.
//!
//! One [`NodeServer`] owns a [`DataCache`] behind a mutex and serves the
//! wire protocol over TCP, one thread per connection — the physical
//! organization of the paper's Figure 4(c), with TCP standing in for
//! iSCSI. A background clock maps wall-clock time onto trace time so the
//! sieving windows advance.

use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::Mutex;
use sievestore_types::Micros;

use crate::backing::BackingStore;
use crate::protocol::{Reply, Request};
use crate::store::DataCache;

/// Shared server state.
struct Shared<B: BackingStore> {
    cache: Mutex<DataCache<B>>,
    /// Microseconds of "trace time" per real microsecond can't be known
    /// here, so the server simply timestamps requests with an atomic
    /// logical clock advanced per request plus the caller-supplied base.
    clock_us: AtomicU64,
    stop: AtomicBool,
}

/// A running SieveStore node.
///
/// # Examples
///
/// ```
/// use sievestore::PolicySpec;
/// use sievestore_node::{DataCache, MemBacking, NodeClient, NodeServer};
///
/// # fn main() -> std::io::Result<()> {
/// let cache = DataCache::new(MemBacking::new(), PolicySpec::Aod, 64)
///     .expect("valid appliance");
/// let server = NodeServer::spawn("127.0.0.1:0", cache)?;
///
/// let mut client = NodeClient::connect(server.addr())?;
/// client.write_block(3, &[1u8; 512])?;
/// let (data, hit) = client.read_block(3)?;
/// assert_eq!(data[0], 1);
/// assert!(hit);
///
/// client.quit()?;
/// server.shutdown();
/// # Ok(())
/// # }
/// ```
pub struct NodeServer<B: BackingStore + 'static> {
    shared: Arc<Shared<B>>,
    addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
}

impl<B: BackingStore + 'static> NodeServer<B> {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// accepting connections.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn spawn(addr: &str, cache: DataCache<B>) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            cache: Mutex::new(cache),
            clock_us: AtomicU64::new(0),
            stop: AtomicBool::new(false),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::spawn(move || {
            accept_loop(listener, accept_shared);
        });
        Ok(NodeServer {
            shared,
            addr,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (with the resolved port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Aggregate appliance statistics.
    pub fn stats(&self) -> sievestore::ApplianceStats {
        *self.shared.cache.lock().stats()
    }

    /// Stops accepting connections and joins the accept thread. In-flight
    /// connections finish their current request and then close.
    pub fn shutdown(mut self) {
        self.stop_accepting();
    }

    fn stop_accepting(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with one last connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl<B: BackingStore + 'static> Drop for NodeServer<B> {
    fn drop(&mut self) {
        // Non-blocking best effort if shutdown() wasn't called.
        self.stop_accepting();
    }
}

fn accept_loop<B: BackingStore + 'static>(listener: TcpListener, shared: Arc<Shared<B>>) {
    for stream in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        match stream {
            Ok(stream) => {
                let conn_shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    let _ = serve_connection(stream, conn_shared);
                });
            }
            Err(_) => continue,
        }
    }
}

fn serve_connection<B: BackingStore + 'static>(
    stream: TcpStream,
    shared: Arc<Shared<B>>,
) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    loop {
        let request = match Request::decode(&mut reader) {
            Ok(req) => req,
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(()),
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                Reply::Error {
                    message: e.to_string(),
                }
                .encode(&mut writer)?;
                return Ok(());
            }
            Err(e) => return Err(e),
        };
        // Logical per-request clock: one millisecond of trace time per
        // request keeps sieving windows moving deterministically.
        let now = Micros::new(shared.clock_us.fetch_add(1_000, Ordering::Relaxed));
        let reply = match request {
            Request::Read { key } => match shared.cache.lock().read(key, now) {
                Ok((data, outcome)) => Reply::Read {
                    hit: outcome.hit,
                    data: Box::new(data),
                },
                Err(e) => Reply::Error {
                    message: format!("backing read failed: {e}"),
                },
            },
            Request::Write { key, data } => match shared.cache.lock().write(key, &data, now) {
                Ok(outcome) => Reply::Write { hit: outcome.hit },
                Err(e) => Reply::Error {
                    message: format!("backing write failed: {e}"),
                },
            },
            Request::Stats => {
                let cache = shared.cache.lock();
                let s = *cache.stats();
                Reply::Stats {
                    read_hits: s.read_hits,
                    write_hits: s.write_hits,
                    read_misses: s.read_misses,
                    write_misses: s.write_misses,
                    allocation_writes: s.allocation_writes,
                    resident_blocks: cache.resident_blocks() as u64,
                }
            }
            Request::Flush => match shared.cache.lock().flush() {
                Ok(flushed) => Reply::Flush { flushed },
                Err(e) => Reply::Error {
                    message: format!("flush failed: {e}"),
                },
            },
            Request::Quit => return writer.flush(),
        };
        reply.encode(&mut writer)?;
    }
}
