//! The shared-nothing, thread-per-core node server.
//!
//! [`ShardedNodeServer`] removes the global cache mutex from the request
//! path entirely: N worker threads each own a disjoint
//! `CacheEngine` slice — block `key` belongs to worker
//! [`shard_of`]`(key, N)` — and an acceptor thread deals connections to
//! workers round-robin. A request whose key lives on another shard hops
//! over a bounded lock-free SPSC ring (`crossbeam::spsc`) to its owner
//! and the reply hops back; no lock is taken anywhere on the hot path.
//! Breaker and flush state are per-worker, merged only at snapshot
//! points (Stats replies and server accessors).
//!
//! Workers drive their connections with non-blocking sockets: drain the
//! socket, decode every buffered frame, execute or forward, then emit
//! all completed replies with one `write_all`-style flush — the batched
//! I/O that makes pipelined clients cheap.
//!
//! What stayed global (by design): the TCP listener, the logical
//! request clock (a single `fetch_add` per request so sieving windows
//! advance identically to the single-lock server), the stop flag, and
//! the panic ledger that guarantees a dead worker can never wedge
//! shutdown.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::spsc::{ring, Consumer, Producer};
use sievestore_types::obs::EventSink;
use sievestore_types::{obs_gauge_adjust, shard_of, Micros};

use crate::backing::{BackingStore, Block};
use crate::engine::{Breaker, CacheEngine};
use crate::protocol::{split_frame, ErrorCode, Incoming, NodeMode, PipedReply, Reply, Request};
use crate::server::{NodeConfig, PanicLedger};
use crate::store::{DataCache, WritePolicy};

/// Capacity of each cross-shard hop ring and the acceptor's
/// connection-handoff rings.
const RING_CAPACITY: usize = 1024;

/// Bytes read from a socket per `read` call.
const READ_CHUNK: usize = 16 * 1024;

/// Per-connection write backlog (bytes) above which the worker stops
/// reading and parsing new requests from that connection until the
/// client drains some replies — pipelining backpressure, so a client
/// that submits without reading cannot grow `wbuf` without bound.
const WBUF_BACKPRESSURE: usize = 1024 * 1024;

/// Total hops queued across this worker's outboxes above which it stops
/// parsing new requests until peers drain their rings, bounding the
/// outbox queues the same way.
const OUTBOX_BACKPRESSURE: usize = 4 * RING_CAPACITY;

/// Idle iterations before a worker starts sleeping between polls.
const IDLE_SPINS: u32 = 128;

/// How long an idle worker sleeps between polls.
const IDLE_SLEEP: Duration = Duration::from_micros(200);

/// Identifies one outstanding request on its origin worker: which
/// connection issued it, its plain-ordering slot, and (for enveloped
/// requests) the client's correlation id.
#[derive(Debug, Clone, Copy)]
struct OpToken {
    conn: u32,
    slot: u32,
    corr: u32,
    piped: bool,
}

/// One message over a cross-shard ring. Requests carry the logical
/// timestamp assigned at decode time so shard placement never changes
/// sieve timing; replies carry the full wire [`Reply`].
enum Hop {
    Read {
        t: OpToken,
        key: u64,
        now: Micros,
    },
    Write {
        t: OpToken,
        key: u64,
        data: Box<Block>,
        now: Micros,
    },
    Flush {
        t: OpToken,
    },
    Done {
        t: OpToken,
        reply: Reply,
    },
    FlushDone {
        t: OpToken,
        reply: Reply,
    },
}

/// Per-worker counters published at snapshot points and merged by
/// Stats replies and server accessors.
#[derive(Default)]
struct WorkerPublic {
    read_hits: AtomicU64,
    write_hits: AtomicU64,
    read_misses: AtomicU64,
    write_misses: AtomicU64,
    allocation_writes: AtomicU64,
    batch_allocations: AtomicU64,
    resident_blocks: AtomicU64,
    degraded_reads: AtomicU64,
    degraded_writes: AtomicU64,
    /// 0 = healthy, 1 = probing, 2 = degraded.
    mode: AtomicU8,
    live_conns: AtomicU64,
    /// Cross-shard hops waiting in this worker's inbound rings at the
    /// last snapshot.
    queue_depth: AtomicU64,
}

fn mode_rank(mode: NodeMode) -> u8 {
    match mode {
        NodeMode::Healthy => 0,
        NodeMode::Probing => 1,
        NodeMode::Degraded => 2,
    }
}

fn rank_mode(rank: u8) -> NodeMode {
    match rank {
        0 => NodeMode::Healthy,
        1 => NodeMode::Probing,
        _ => NodeMode::Degraded,
    }
}

/// State shared by the acceptor, workers and the server handle.
struct SharedState {
    stop: AtomicBool,
    clock_us: AtomicU64,
    panics: PanicLedger,
}

/// Merges every worker's published counters into one Stats reply.
fn merged_stats(publics: &[Arc<WorkerPublic>]) -> Reply {
    let mut read_hits = 0;
    let mut write_hits = 0;
    let mut read_misses = 0;
    let mut write_misses = 0;
    let mut allocation_writes = 0;
    let mut resident_blocks = 0;
    let mut degraded_reads = 0;
    let mut degraded_writes = 0;
    let mut mode = 0u8;
    for p in publics {
        read_hits += p.read_hits.load(Ordering::SeqCst);
        write_hits += p.write_hits.load(Ordering::SeqCst);
        read_misses += p.read_misses.load(Ordering::SeqCst);
        write_misses += p.write_misses.load(Ordering::SeqCst);
        allocation_writes += p.allocation_writes.load(Ordering::SeqCst);
        resident_blocks += p.resident_blocks.load(Ordering::SeqCst);
        degraded_reads += p.degraded_reads.load(Ordering::SeqCst);
        degraded_writes += p.degraded_writes.load(Ordering::SeqCst);
        mode = mode.max(p.mode.load(Ordering::SeqCst));
    }
    Reply::Stats {
        read_hits,
        write_hits,
        read_misses,
        write_misses,
        allocation_writes,
        resident_blocks,
        degraded_reads,
        degraded_writes,
        mode: rank_mode(mode),
    }
}

/// One connection owned by a worker. Plain requests reply strictly in
/// order through `order`; enveloped replies bypass it and complete
/// out-of-order straight into `wbuf`.
struct Conn {
    stream: TcpStream,
    /// Unparsed inbound bytes (`rpos` marks the consumed prefix).
    rbuf: Vec<u8>,
    rpos: usize,
    /// Encoded replies not yet written (`wpos` marks the written prefix).
    wbuf: Vec<u8>,
    wpos: usize,
    /// Plain-request reply slots in arrival order; a slot becomes
    /// `Some(encoded bytes)` when its reply is ready.
    order: VecDeque<(u32, Option<Vec<u8>>)>,
    next_slot: u32,
    /// Requests forwarded to other shards (or fanned-out flushes) whose
    /// completions have not come back yet; the conn id is only recycled
    /// once this drains, so late hops can never hit a stranger.
    inflight: usize,
    /// Quit (or a protocol error) was seen: emit pending replies, then
    /// close.
    closing: bool,
    /// The socket died; stop all I/O and recycle once inflight drains.
    dead: bool,
    last_activity: Instant,
}

impl Conn {
    fn new(stream: TcpStream) -> Self {
        Conn {
            stream,
            rbuf: Vec::new(),
            rpos: 0,
            wbuf: Vec::new(),
            wpos: 0,
            order: VecDeque::new(),
            next_slot: 0,
            inflight: 0,
            closing: false,
            dead: false,
            last_activity: Instant::now(),
        }
    }

    /// Moves every leading completed plain reply into the write buffer.
    fn drain_order(&mut self) {
        while matches!(self.order.front(), Some((_, Some(_)))) {
            let (_, bytes) = self.order.pop_front().expect("checked front");
            self.wbuf.extend_from_slice(&bytes.expect("checked ready"));
        }
    }

    /// Records a completed reply: enveloped replies append directly,
    /// plain replies land in their ordering slot.
    fn complete(&mut self, slot: u32, corr: u32, piped: bool, reply: Reply) {
        if piped {
            PipedReply { corr, reply }.encode_into(&mut self.wbuf);
            return;
        }
        let mut bytes = Vec::new();
        reply.encode_into(&mut bytes);
        if let Some(entry) = self.order.iter_mut().find(|(s, _)| *s == slot) {
            entry.1 = Some(bytes);
        }
        self.drain_order();
    }

    /// Bytes of encoded replies not yet accepted by the socket.
    fn write_backlog(&self) -> usize {
        self.wbuf.len() - self.wpos
    }

    /// Whether this connection has fully quiesced and can be recycled.
    fn finished(&self) -> bool {
        if self.dead {
            return self.inflight == 0;
        }
        self.closing && self.inflight == 0 && self.order.is_empty() && self.wpos == self.wbuf.len()
    }
}

/// An in-progress ensemble-wide flush: one shard fanned the request out
/// and is aggregating per-shard results.
struct PendingFlush {
    t: OpToken,
    remaining: usize,
    flushed: u64,
    error: Option<Reply>,
}

/// A running shared-nothing node. Build one with
/// [`crate::server::NodeServerBuilder::serve_sharded`].
///
/// # Examples
///
/// ```
/// use sievestore::PolicySpec;
/// use sievestore_node::{MemBacking, NodeClient, NodeServerBuilder, WritePolicy};
///
/// # fn main() -> std::io::Result<()> {
/// let server = NodeServerBuilder::new("127.0.0.1:0")
///     .workers(2)
///     .serve_sharded(MemBacking::new(), PolicySpec::Aod, 64, WritePolicy::WriteThrough)?;
///
/// let mut client = NodeClient::connect(server.addr())?;
/// client.write_block(3, &[1u8; 512])?;
/// let (data, hit) = client.read_block(3)?;
/// assert_eq!(data[0], 1);
/// assert!(hit);
///
/// client.quit()?;
/// server.shutdown();
/// # Ok(())
/// # }
/// ```
pub struct ShardedNodeServer<B: BackingStore + 'static> {
    addr: SocketAddr,
    workers: usize,
    shared: Arc<SharedState>,
    publics: Vec<Arc<WorkerPublic>>,
    accept_thread: Option<JoinHandle<()>>,
    worker_threads: Vec<JoinHandle<()>>,
    sink: Arc<dyn EventSink>,
    stopped: bool,
    _backing: std::marker::PhantomData<fn() -> B>,
}

impl<B: BackingStore + 'static> ShardedNodeServer<B> {
    #[allow(clippy::too_many_arguments)] // crate-internal; the public face is the builder
    pub(crate) fn start(
        addr: &str,
        backing: B,
        policy: sievestore::PolicySpec,
        capacity_blocks: usize,
        write_policy: WritePolicy,
        workers: usize,
        config: NodeConfig,
        sink: Arc<dyn EventSink>,
    ) -> io::Result<Self> {
        let workers = workers.max(1);
        if capacity_blocks < workers {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("capacity {capacity_blocks} blocks cannot cover {workers} shard workers"),
            ));
        }
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let backing = Arc::new(backing);
        let shared = Arc::new(SharedState {
            stop: AtomicBool::new(false),
            clock_us: AtomicU64::new(0),
            panics: PanicLedger::new(),
        });
        let publics: Vec<Arc<WorkerPublic>> = (0..workers)
            .map(|_| Arc::new(WorkerPublic::default()))
            .collect();

        // One SPSC ring per ordered worker pair for cross-shard hops.
        let mut hop_tx: Vec<Vec<Option<Producer<Hop>>>> = (0..workers)
            .map(|_| (0..workers).map(|_| None).collect())
            .collect();
        let mut hop_rx: Vec<Vec<Option<Consumer<Hop>>>> = (0..workers)
            .map(|_| (0..workers).map(|_| None).collect())
            .collect();
        for i in 0..workers {
            for j in 0..workers {
                if i != j {
                    let (tx, rx) = ring::<Hop>(RING_CAPACITY);
                    hop_tx[i][j] = Some(tx);
                    hop_rx[j][i] = Some(rx);
                }
            }
        }
        // One SPSC ring per worker for connection handoff.
        let mut conn_tx = Vec::with_capacity(workers);
        let mut conn_rx = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = ring::<TcpStream>(RING_CAPACITY);
            conn_tx.push(tx);
            conn_rx.push(rx);
        }

        let mut worker_threads = Vec::with_capacity(workers);
        let mut hop_tx = hop_tx.into_iter();
        let mut hop_rx = hop_rx.into_iter();
        let mut conn_rx = conn_rx.into_iter();
        for index in 0..workers {
            // Spread the capacity remainder so the slices sum exactly.
            let slice = capacity_blocks / workers + usize::from(index < capacity_blocks % workers);
            let cache = DataCache::new(Arc::clone(&backing), policy.clone(), slice)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?
                .with_write_policy(write_policy);
            let engine = CacheEngine::new(cache, config, Arc::clone(&sink), Breaker::closed());
            let mut worker = Worker {
                index,
                workers,
                engine,
                config,
                shared: Arc::clone(&shared),
                publics: publics.clone(),
                conns: Vec::new(),
                free: Vec::new(),
                conn_rx: conn_rx.next().expect("one conn ring per worker"),
                ring_tx: hop_tx.next().expect("one tx row per worker"),
                ring_rx: hop_rx.next().expect("one rx row per worker"),
                outbox: (0..workers).map(|_| VecDeque::new()).collect(),
                flushes: Vec::new(),
                scratch: vec![0u8; READ_CHUNK],
            };
            let panic_shared = Arc::clone(&shared);
            worker_threads.push(std::thread::spawn(move || {
                let result = catch_unwind(AssertUnwindSafe(move || worker.run()));
                if let Err(payload) = result {
                    panic_shared.panics.record(payload.as_ref());
                    // A dead shard makes the whole node unserveable
                    // (its keys are unreachable): tear everything down
                    // rather than wedge peers forwarding into silence.
                    panic_shared.stop.store(true, Ordering::SeqCst);
                }
            }));
        }

        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::spawn(move || {
            accept_loop(listener, conn_tx, accept_shared);
        });

        Ok(ShardedNodeServer {
            addr,
            workers,
            shared,
            publics,
            accept_thread: Some(accept_thread),
            worker_threads,
            sink,
            stopped: false,
            _backing: std::marker::PhantomData,
        })
    }

    /// The bound address (with the resolved port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of shard workers.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Aggregate appliance statistics, merged across shard workers from
    /// their latest published snapshots.
    pub fn stats(&self) -> sievestore::ApplianceStats {
        let mut stats = sievestore::ApplianceStats::default();
        for p in &self.publics {
            stats.read_hits += p.read_hits.load(Ordering::SeqCst);
            stats.write_hits += p.write_hits.load(Ordering::SeqCst);
            stats.read_misses += p.read_misses.load(Ordering::SeqCst);
            stats.write_misses += p.write_misses.load(Ordering::SeqCst);
            stats.allocation_writes += p.allocation_writes.load(Ordering::SeqCst);
            stats.batch_allocations += p.batch_allocations.load(Ordering::SeqCst);
        }
        stats
    }

    /// The node's current health mode: the worst of any shard's mode.
    pub fn mode(&self) -> NodeMode {
        let worst = self
            .publics
            .iter()
            .map(|p| p.mode.load(Ordering::SeqCst))
            .max()
            .unwrap_or(0);
        rank_mode(worst)
    }

    /// Connections currently being served, summed across workers.
    pub fn live_connections(&self) -> u64 {
        self.publics
            .iter()
            .map(|p| p.live_conns.load(Ordering::SeqCst))
            .sum()
    }

    /// Cross-shard hops waiting per worker at the last snapshot.
    pub fn queue_depths(&self) -> Vec<u64> {
        self.publics
            .iter()
            .map(|p| p.queue_depth.load(Ordering::SeqCst))
            .collect()
    }

    /// Worker panics caught so far. A panicking worker stops the whole
    /// node (its shard's keys are unreachable) but can never wedge
    /// [`Self::shutdown`].
    pub fn worker_panics(&self) -> u64 {
        self.shared.panics.count()
    }

    /// The first caught panic's message, for diagnostics.
    pub fn first_panic_message(&self) -> Option<String> {
        self.shared.panics.first_message()
    }

    /// Stops the acceptor and every worker, then joins them. Each
    /// worker flushes its own dirty frames best-effort on the way out.
    pub fn shutdown(mut self) {
        self.stop_impl();
    }

    fn stop_impl(&mut self) {
        if self.stopped {
            return;
        }
        self.stopped = true;
        self.shared.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with one last connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        for handle in self.worker_threads.drain(..) {
            let _ = handle.join();
        }
        self.shared.panics.report(self.sink.as_ref());
    }
}

impl<B: BackingStore + 'static> Drop for ShardedNodeServer<B> {
    fn drop(&mut self) {
        self.stop_impl();
    }
}

/// Deals accepted connections to workers round-robin; a full handoff
/// ring falls through to the next worker rather than blocking.
fn accept_loop(
    listener: TcpListener,
    mut conn_tx: Vec<Producer<TcpStream>>,
    shared: Arc<SharedState>,
) {
    let workers = conn_tx.len();
    let mut next = 0usize;
    for stream in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let mut pending = stream;
        'place: loop {
            for attempt in 0..workers {
                let target = (next + attempt) % workers;
                match conn_tx[target].push(pending) {
                    Ok(()) => {
                        next = (target + 1) % workers;
                        break 'place;
                    }
                    Err(back) => pending = back,
                }
            }
            // Every ring is full: wait for a worker to drain.
            if shared.stop.load(Ordering::SeqCst) {
                break 'place;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }
}

/// One shard worker: owns its cache slice, its connections and its
/// side of every ring.
struct Worker<B: BackingStore + 'static> {
    index: usize,
    workers: usize,
    engine: CacheEngine<Arc<B>>,
    config: NodeConfig,
    shared: Arc<SharedState>,
    publics: Vec<Arc<WorkerPublic>>,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    conn_rx: Consumer<TcpStream>,
    ring_tx: Vec<Option<Producer<Hop>>>,
    ring_rx: Vec<Option<Consumer<Hop>>>,
    /// Hops that found their ring full: retried every iteration so a
    /// slow peer applies backpressure without deadlocking the pair.
    outbox: Vec<VecDeque<Hop>>,
    flushes: Vec<PendingFlush>,
    scratch: Vec<u8>,
}

impl<B: BackingStore + 'static> Worker<B> {
    fn run(&mut self) {
        let mut idle_spins = 0u32;
        while !self.shared.stop.load(Ordering::SeqCst) {
            let mut progressed = false;
            progressed |= self.ingest_connections();
            progressed |= self.poll_sockets();
            progressed |= self.drain_rings();
            self.publish();
            progressed |= self.flush_outboxes();
            progressed |= self.write_sockets();
            self.reap_connections();
            if progressed {
                idle_spins = 0;
            } else {
                idle_spins = idle_spins.saturating_add(1);
                if idle_spins >= IDLE_SPINS {
                    std::thread::sleep(IDLE_SLEEP);
                } else {
                    std::thread::yield_now();
                }
            }
        }
        self.teardown();
    }

    /// Final flush on the way out; runs under the thread's
    /// `catch_unwind` so a dying backing store cannot wedge shutdown.
    fn teardown(&mut self) {
        for conn in self.conns.iter_mut().flatten() {
            let _ = conn.stream.flush();
        }
        self.conns.clear();
        self.engine
            .shutdown_flush(self.config.shutdown_flush_retries);
        self.publish();
    }

    fn ingest_connections(&mut self) -> bool {
        let mut progressed = false;
        while let Some(stream) = self.conn_rx.pop() {
            stream.set_nodelay(true).ok();
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            let conn = Conn::new(stream);
            match self.free.pop() {
                Some(id) => self.conns[id] = Some(conn),
                None => self.conns.push(Some(conn)),
            }
            obs_gauge_adjust!(NodeLiveConnections, 1);
            progressed = true;
        }
        progressed
    }

    fn poll_sockets(&mut self) -> bool {
        let mut progressed = false;
        let stalled = self.outbox.iter().map(VecDeque::len).sum::<usize>() >= OUTBOX_BACKPRESSURE;
        for id in 0..self.conns.len() {
            let Some(mut conn) = self.conns[id].take() else {
                continue;
            };
            if !conn.dead {
                // Backpressure: stop ingesting requests while this
                // connection's replies back up or peers are saturated.
                if !stalled && conn.write_backlog() < WBUF_BACKPRESSURE {
                    progressed |= self.read_conn(&mut conn);
                    progressed |= self.parse_conn(id as u32, &mut conn);
                }
                self.check_idle(&mut conn);
            }
            self.conns[id] = Some(conn);
        }
        progressed
    }

    /// Drains every readable byte from the socket into the conn buffer.
    fn read_conn(&mut self, conn: &mut Conn) -> bool {
        let mut progressed = false;
        loop {
            match conn.stream.read(&mut self.scratch) {
                Ok(0) => {
                    conn.dead = true;
                    break;
                }
                Ok(n) => {
                    conn.rbuf.extend_from_slice(&self.scratch[..n]);
                    conn.last_activity = Instant::now();
                    progressed = true;
                    if n < self.scratch.len() {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.dead = true;
                    break;
                }
            }
        }
        progressed
    }

    /// Decodes every complete buffered frame and dispatches it,
    /// stopping early once the reply backlog hits the backpressure cap
    /// (the rest of `rbuf` keeps until the client drains replies).
    fn parse_conn(&mut self, conn_id: u32, conn: &mut Conn) -> bool {
        let mut progressed = false;
        while !conn.closing && !conn.dead && conn.write_backlog() < WBUF_BACKPRESSURE {
            match split_frame(&conn.rbuf[conn.rpos..]) {
                Ok(None) => break,
                Ok(Some((consumed, payload))) => {
                    let start = conn.rpos + payload.start;
                    let end = conn.rpos + payload.end;
                    let incoming = Incoming::parse(&conn.rbuf[start..end]);
                    conn.rpos += consumed;
                    progressed = true;
                    match incoming {
                        Ok(incoming) => self.dispatch(conn_id, conn, incoming),
                        Err(e) => self.protocol_error(conn, &e),
                    }
                }
                Err(e) => {
                    self.protocol_error(conn, &e);
                    progressed = true;
                }
            }
        }
        if conn.rpos > 0 {
            conn.rbuf.drain(..conn.rpos);
            conn.rpos = 0;
        }
        progressed
    }

    /// Mirrors the legacy server: answer one protocol-error reply, then
    /// close the connection.
    fn protocol_error(&mut self, conn: &mut Conn, err: &io::Error) {
        let slot = conn.next_slot;
        conn.next_slot = conn.next_slot.wrapping_add(1);
        conn.order.push_back((slot, None));
        conn.complete(
            slot,
            0,
            false,
            Reply::Error {
                code: ErrorCode::Protocol,
                message: err.to_string(),
            },
        );
        conn.closing = true;
    }

    fn check_idle(&self, conn: &mut Conn) {
        if conn.closing || conn.dead {
            return;
        }
        if let Some(timeout) = self.config.idle_timeout {
            if conn.last_activity.elapsed() <= timeout {
                return;
            }
            if conn.write_backlog() > 0 {
                // The peer stopped draining replies (writes only ever
                // WouldBlock, so a polite close could never finish):
                // drop the connection to reclaim its backlog and id.
                conn.dead = true;
            } else if conn.inflight == 0 && conn.order.is_empty() && conn.rbuf.len() == conn.rpos {
                // Idle between frames: close quietly, like the legacy
                // server's read timeout. Clients reconnect on demand.
                conn.closing = true;
            }
        }
    }

    fn dispatch(&mut self, conn_id: u32, conn: &mut Conn, incoming: Incoming) {
        let (corr, piped, request) = match incoming {
            Incoming::Plain(request) => (0, false, request),
            Incoming::Piped(piped) => (piped.corr, true, piped.request),
        };
        // Plain replies go out strictly in arrival order: reserve the
        // ordering slot before the request is executed or forwarded.
        let slot = if piped {
            0
        } else {
            let slot = conn.next_slot;
            conn.next_slot = conn.next_slot.wrapping_add(1);
            conn.order.push_back((slot, None));
            slot
        };
        let t = OpToken {
            conn: conn_id,
            slot,
            corr,
            piped,
        };
        match request {
            Request::Read { key } => {
                let now = self.tick_clock();
                let target = shard_of(key, self.workers);
                if target == self.index {
                    let reply = self.engine.handle_read(key, now);
                    conn.complete(slot, corr, piped, reply);
                } else {
                    conn.inflight += 1;
                    self.forward(target, Hop::Read { t, key, now });
                }
            }
            Request::Write { key, data } => {
                let now = self.tick_clock();
                let target = shard_of(key, self.workers);
                if target == self.index {
                    let reply = self.engine.handle_write(key, &data, now);
                    conn.complete(slot, corr, piped, reply);
                } else {
                    conn.inflight += 1;
                    self.forward(target, Hop::Write { t, key, data, now });
                }
            }
            Request::Stats => {
                // Served from published snapshots — no cross-shard trip.
                // Publish first so this worker's own latest work counts.
                self.publish();
                let reply = merged_stats(&self.publics);
                conn.complete(slot, corr, piped, reply);
            }
            Request::Flush => {
                let own = self.engine.handle_flush();
                if self.workers == 1 {
                    conn.complete(slot, corr, piped, own);
                } else {
                    let mut pending = PendingFlush {
                        t,
                        remaining: self.workers - 1,
                        flushed: 0,
                        error: None,
                    };
                    merge_flush(&mut pending, own);
                    conn.inflight += 1;
                    for target in 0..self.workers {
                        if target != self.index {
                            self.forward(target, Hop::Flush { t });
                        }
                    }
                    self.flushes.push(pending);
                }
            }
            Request::Quit => {
                conn.closing = true;
            }
        }
    }

    fn tick_clock(&self) -> Micros {
        // Logical per-request clock: one millisecond of trace time per
        // request, globally ordered so sieving windows advance exactly
        // as on the single-lock server.
        Micros::new(self.shared.clock_us.fetch_add(1_000, Ordering::Relaxed))
    }

    /// Queues a hop toward `target`, trying the ring first and falling
    /// back to the outbox (flushed every iteration) when it is full.
    fn forward(&mut self, target: usize, hop: Hop) {
        obs_gauge_adjust!(NodeWorkerQueueDepth, 1);
        if !self.outbox[target].is_empty() {
            self.outbox[target].push_back(hop);
            return;
        }
        let tx = self.ring_tx[target].as_mut().expect("peer ring exists");
        if let Err(hop) = tx.push(hop) {
            self.outbox[target].push_back(hop);
        }
    }

    fn flush_outboxes(&mut self) -> bool {
        let mut progressed = false;
        for target in 0..self.workers {
            while let Some(hop) = self.outbox[target].pop_front() {
                let tx = self.ring_tx[target].as_mut().expect("peer ring exists");
                match tx.push(hop) {
                    Ok(()) => progressed = true,
                    Err(hop) => {
                        self.outbox[target].push_front(hop);
                        break;
                    }
                }
            }
        }
        progressed
    }

    fn drain_rings(&mut self) -> bool {
        let mut progressed = false;
        for from in 0..self.workers {
            if from == self.index {
                continue;
            }
            loop {
                let hop = match self.ring_rx[from].as_mut() {
                    Some(rx) => rx.pop(),
                    None => None,
                };
                let Some(hop) = hop else { break };
                progressed = true;
                self.handle_hop(from, hop);
            }
        }
        progressed
    }

    fn handle_hop(&mut self, from: usize, hop: Hop) {
        match hop {
            Hop::Read { t, key, now } => {
                obs_gauge_adjust!(NodeWorkerQueueDepth, -1);
                let reply = self.engine.handle_read(key, now);
                self.forward_done(from, Hop::Done { t, reply });
            }
            Hop::Write { t, key, data, now } => {
                obs_gauge_adjust!(NodeWorkerQueueDepth, -1);
                let reply = self.engine.handle_write(key, &data, now);
                self.forward_done(from, Hop::Done { t, reply });
            }
            Hop::Flush { t } => {
                obs_gauge_adjust!(NodeWorkerQueueDepth, -1);
                let reply = self.engine.handle_flush();
                self.forward_done(from, Hop::FlushDone { t, reply });
            }
            Hop::Done { t, reply } => {
                self.complete_op(t, reply);
            }
            Hop::FlushDone { t, reply } => {
                // Match the full token: a plain flush in slot 0 and a
                // piped flush with corr 0 on the same connection are
                // distinct fan-outs and must aggregate separately.
                let Some(pos) = self.flushes.iter().position(|p| {
                    p.t.conn == t.conn
                        && p.t.slot == t.slot
                        && p.t.corr == t.corr
                        && p.t.piped == t.piped
                }) else {
                    return;
                };
                let pending = &mut self.flushes[pos];
                merge_flush(pending, reply);
                pending.remaining -= 1;
                if pending.remaining == 0 {
                    let pending = self.flushes.swap_remove(pos);
                    let reply = pending.error.unwrap_or(Reply::Flush {
                        flushed: pending.flushed,
                    });
                    self.complete_op(pending.t, reply);
                }
            }
        }
    }

    /// Completions (replies) never take the outbox path's gauge: route
    /// directly, falling back to the outbox when the ring is full.
    fn forward_done(&mut self, target: usize, hop: Hop) {
        if !self.outbox[target].is_empty() {
            self.outbox[target].push_back(hop);
            return;
        }
        let tx = self.ring_tx[target].as_mut().expect("peer ring exists");
        if let Err(hop) = tx.push(hop) {
            self.outbox[target].push_back(hop);
        }
    }

    fn complete_op(&mut self, t: OpToken, reply: Reply) {
        let Some(conn) = self.conns.get_mut(t.conn as usize).and_then(Option::as_mut) else {
            return;
        };
        conn.inflight = conn.inflight.saturating_sub(1);
        if !conn.dead {
            conn.complete(t.slot, t.corr, t.piped, reply);
        }
    }

    /// Publishes this worker's counters for Stats merging. Runs before
    /// replies are written out, so by the time a client sees a reply
    /// the work it did is already visible to Stats on any worker.
    fn publish(&mut self) {
        let snap = self.engine.snapshot();
        let p = &self.publics[self.index];
        p.read_hits.store(snap.stats.read_hits, Ordering::SeqCst);
        p.write_hits.store(snap.stats.write_hits, Ordering::SeqCst);
        p.read_misses
            .store(snap.stats.read_misses, Ordering::SeqCst);
        p.write_misses
            .store(snap.stats.write_misses, Ordering::SeqCst);
        p.allocation_writes
            .store(snap.stats.allocation_writes, Ordering::SeqCst);
        p.batch_allocations
            .store(snap.stats.batch_allocations, Ordering::SeqCst);
        p.resident_blocks
            .store(snap.resident_blocks, Ordering::SeqCst);
        p.degraded_reads
            .store(snap.degraded_reads, Ordering::SeqCst);
        p.degraded_writes
            .store(snap.degraded_writes, Ordering::SeqCst);
        p.mode
            .store(mode_rank(self.engine.mode()), Ordering::SeqCst);
        p.live_conns.store(
            self.conns.iter().flatten().filter(|c| !c.dead).count() as u64,
            Ordering::SeqCst,
        );
        let backlog: u64 = self
            .ring_rx
            .iter()
            .flatten()
            .map(|rx| rx.len() as u64)
            .sum();
        p.queue_depth.store(backlog, Ordering::SeqCst);
    }

    /// Writes as much buffered reply data as each socket accepts.
    fn write_sockets(&mut self) -> bool {
        let mut progressed = false;
        for conn in self.conns.iter_mut().flatten() {
            if conn.dead || conn.wpos == conn.wbuf.len() {
                continue;
            }
            loop {
                match conn.stream.write(&conn.wbuf[conn.wpos..]) {
                    Ok(0) => {
                        conn.dead = true;
                        break;
                    }
                    Ok(n) => {
                        conn.wpos += n;
                        conn.last_activity = Instant::now();
                        progressed = true;
                        if conn.wpos == conn.wbuf.len() {
                            conn.wbuf.clear();
                            conn.wpos = 0;
                            break;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        conn.dead = true;
                        break;
                    }
                }
            }
        }
        progressed
    }

    /// Recycles finished connections (dead, or cleanly quit with all
    /// replies delivered). Ids are only reused once no hop referencing
    /// them can still be in flight.
    fn reap_connections(&mut self) {
        for id in 0..self.conns.len() {
            let finished = self.conns[id].as_ref().is_some_and(Conn::finished);
            if finished {
                self.conns[id] = None;
                self.free.push(id);
                obs_gauge_adjust!(NodeLiveConnections, -1);
            }
        }
    }
}

/// Folds one shard's flush reply into an aggregating fan-out.
fn merge_flush(pending: &mut PendingFlush, reply: Reply) {
    match reply {
        Reply::Flush { flushed } => pending.flushed += flushed,
        other => {
            if pending.error.is_none() {
                pending.error = Some(other);
            }
        }
    }
}
