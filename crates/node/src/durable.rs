//! The durable cache tier: a crash-consistent on-disk frame store.
//!
//! The paper's SSD absorbs the ensemble's hot blocks; until now our
//! stand-in was a `HashMap` that evaporated on crash, forfeiting exactly
//! the warm hit-ratio the sieve's selectivity buys (and, in write-back
//! mode, potentially the only copy of acked dirty data). This module
//! gives [`crate::DataCache`] real persistent media:
//!
//! * a **frame segment** — a slot-based file of 544-byte records (32-byte
//!   header + 512-byte payload) with a per-frame CRC64 over header and
//!   payload. Payloads are never rewritten in place: every update lands
//!   in a fresh slot, so a torn write can corrupt only bytes that were
//!   never acknowledged;
//! * a **metadata journal** — fixed-size, sequenced, checksummed records
//!   (allocate/evict/dirty/flush) appended and synced before write-back
//!   acks. Recovery replays the journal's valid prefix to decide which
//!   segment slots are live;
//! * **dual journal files** with a generation-stamped header, so journal
//!   compaction at open is crash-safe: the compacted copy is written to
//!   the inactive file and published by writing its header (with a higher
//!   generation) last. A crash at any step leaves the previous journal
//!   intact and authoritative.
//!
//! # Recovery state machine
//!
//! 1. **Headers** — verify magic, version and header CRC of the segment
//!    and both journals; pick the journal with the highest valid
//!    generation. Unreadable headers on non-empty media are
//!    unrecoverable ([`DurableError`]); the node then starts memory-only
//!    in degraded pass-through mode.
//! 2. **Segment scan** — classify every slot: CRC-valid frame, empty
//!    (all zeroes), or torn/rotted (quarantined; never served).
//! 3. **Journal replay** — scan fixed-size records, verifying each CRC;
//!    stop at the first invalid record (the torn, never-acked tail) and
//!    truncate it. Fold records into a final per-key state.
//! 4. **Merge** — a key the journal says is resident recovers from its
//!    slot if the slot is CRC-valid and holds that key; otherwise the
//!    key is quarantined (re-fetched from the backing store on next
//!    access) and counted as lost dirty data if its journaled state was
//!    dirty. Segment frames the journal does not vouch for are ignored:
//!    their allocation was never acknowledged. Clean frames are trusted
//!    only when the journal ends with a [`JournalKind::Shutdown`]
//!    marker (orderly shutdown, written by [`DurableStore::shutdown`]):
//!    after a crash, the backing store may have advanced past a failed
//!    best-effort mirror, so clean frames are dropped cold while dirty
//!    frames — the only copy of their data — are always kept.
//! 5. **Compact** — rewrite the surviving state into the inactive
//!    journal and bump the generation, bounding journal growth across
//!    restarts.
//!
//! The three crash-consistency invariants this buys (proved by the
//! property suite in `tests/crash_consistency.rs`):
//!
//! 1. a frame that fails its checksum is **never served**;
//! 2. **write-through data is never lost** (the backing store always
//!    holds it; recovery can only lose warmth);
//! 3. **write-back dirty data acked after its journaled dirty record is
//!    durable survives restart**.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;

use sievestore_types::{DurableError, U64Map, BLOCK_SIZE};

use crate::backing::Block;

// ---------------------------------------------------------------------------
// CRC64 (CRC-64/XZ: reflected ECMA-182, init/xorout = !0)
// ---------------------------------------------------------------------------

const CRC64_POLY: u64 = 0xC96C_5795_D787_0F42;

const fn crc64_table() -> [u64; 256] {
    let mut table = [0u64; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u64;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 == 1 {
                (crc >> 1) ^ CRC64_POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC64_TABLE: [u64; 256] = crc64_table();

/// Streaming CRC64/XZ update (start from [`crc64_init`], finish with
/// [`crc64_finish`]).
fn crc64_update(mut crc: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        crc = CRC64_TABLE[((crc ^ b as u64) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc
}

fn crc64_init() -> u64 {
    !0
}

fn crc64_finish(crc: u64) -> u64 {
    !crc
}

/// CRC64/XZ over a sequence of byte slices, as if concatenated.
pub fn crc64(parts: &[&[u8]]) -> u64 {
    let mut crc = crc64_init();
    for part in parts {
        crc = crc64_update(crc, part);
    }
    crc64_finish(crc)
}

// ---------------------------------------------------------------------------
// Media: the byte-addressed device under the durable store
// ---------------------------------------------------------------------------

/// A byte-addressed persistent device.
///
/// Semantics mirror a page-cached file: `write_at` data is visible to
/// subsequent reads immediately but only guaranteed durable after
/// `sync`. The crash-point harness in [`crate::faults`] implements this
/// trait over an in-memory buffer and can lose or tear unsynced writes
/// at a deterministic step.
pub trait Media: Send {
    /// Reads `buf.len()` bytes at `offset`, zero-filling past EOF.
    ///
    /// # Errors
    ///
    /// Propagates device failures.
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()>;

    /// Writes `data` at `offset`, extending the device as needed.
    ///
    /// # Errors
    ///
    /// Propagates device failures.
    fn write_at(&mut self, offset: u64, data: &[u8]) -> io::Result<()>;

    /// Makes all previous writes durable.
    ///
    /// # Errors
    ///
    /// Propagates device failures.
    fn sync(&mut self) -> io::Result<()>;

    /// Current device length in bytes.
    ///
    /// # Errors
    ///
    /// Propagates device failures.
    fn len(&self) -> io::Result<u64>;

    /// Truncates (or extends with zeroes) the device to `len` bytes.
    /// Durable after the next [`Media::sync`].
    ///
    /// # Errors
    ///
    /// Propagates device failures.
    fn truncate(&mut self, len: u64) -> io::Result<()>;

    /// Whether the device currently holds zero bytes.
    ///
    /// # Errors
    ///
    /// Propagates device failures.
    fn is_empty(&self) -> io::Result<bool> {
        Ok(self.len()? == 0)
    }
}

/// [`Media`] over a real file.
#[derive(Debug)]
pub struct FileMedia {
    file: File,
}

impl FileMedia {
    /// Opens (or creates) the file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates file-creation failures.
    pub fn open(path: impl AsRef<Path>) -> io::Result<Self> {
        let file = OpenOptions::new()
            .create(true)
            .read(true)
            .write(true)
            .truncate(false)
            .open(path)?;
        Ok(FileMedia { file })
    }
}

impl Media for FileMedia {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        let mut file = &self.file;
        let len = file.metadata()?.len();
        buf.fill(0);
        if offset >= len {
            return Ok(());
        }
        file.seek(SeekFrom::Start(offset))?;
        let available = ((len - offset) as usize).min(buf.len());
        file.read_exact(&mut buf[..available])
    }

    fn write_at(&mut self, offset: u64, data: &[u8]) -> io::Result<()> {
        self.file.seek(SeekFrom::Start(offset))?;
        self.file.write_all(data)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }

    fn len(&self) -> io::Result<u64> {
        Ok(self.file.metadata()?.len())
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        self.file.set_len(len)
    }
}

/// [`Media`] over an in-memory buffer (tests, golden-bytes fixtures).
#[derive(Debug, Default)]
pub struct MemMedia {
    bytes: Vec<u8>,
}

impl MemMedia {
    /// An empty device.
    pub fn new() -> Self {
        MemMedia::default()
    }

    /// A device pre-loaded with `bytes` (rebooting a crash image).
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        MemMedia { bytes }
    }

    /// The device's current contents.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }
}

impl Media for MemMedia {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        buf.fill(0);
        let offset = offset as usize;
        if offset < self.bytes.len() {
            let available = (self.bytes.len() - offset).min(buf.len());
            buf[..available].copy_from_slice(&self.bytes[offset..offset + available]);
        }
        Ok(())
    }

    fn write_at(&mut self, offset: u64, data: &[u8]) -> io::Result<()> {
        let end = offset as usize + data.len();
        if self.bytes.len() < end {
            self.bytes.resize(end, 0);
        }
        self.bytes[offset as usize..end].copy_from_slice(data);
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        Ok(())
    }

    fn len(&self) -> io::Result<u64> {
        Ok(self.bytes.len() as u64)
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        self.bytes.resize(len as usize, 0);
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// On-disk format
// ---------------------------------------------------------------------------

/// Magic bytes opening the frame segment file.
pub const SEGMENT_MAGIC: [u8; 8] = *b"SVSTSEG1";
/// Magic bytes opening each journal file.
pub const JOURNAL_MAGIC: [u8; 8] = *b"SVSTJNL1";
/// On-disk format version this build reads and writes.
pub const FORMAT_VERSION: u16 = 1;

/// File header: magic(8) | version u16 | reserved u16 | param u32 |
/// crc64 u64, all little-endian. `param` is the slot count for the
/// segment and the generation for a journal.
pub const FILE_HEADER_LEN: usize = 24;

/// Frame record header: key u64 | seq u64 | flags u32 | reserved u32 |
/// crc64 u64 (over the first 24 header bytes then the payload).
pub const FRAME_HEADER_LEN: usize = 32;
/// One frame slot: header plus the 512-byte payload.
pub const FRAME_RECORD_LEN: usize = FRAME_HEADER_LEN + BLOCK_SIZE;

/// Journal record: seq u64 | kind u32 | slot u32 | key u64 | crc64 u64
/// (over the first 24 bytes).
pub const JOURNAL_RECORD_LEN: usize = 32;

/// Frame flag: the slot holds a frame (clear = freed/never written).
pub const FLAG_OCCUPIED: u32 = 1;
/// Frame flag: the payload was dirty (unflushed) when written.
pub const FLAG_DIRTY: u32 = 2;

/// Journal record kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
pub enum JournalKind {
    /// A clean frame was installed at `slot`.
    AllocClean = 1,
    /// A dirty frame (the cache holds the only copy) was installed.
    AllocDirty = 2,
    /// The key left residency; its slot is free for reuse.
    Evict = 3,
    /// The key's frame became dirty in place (reserved; the cache
    /// currently re-installs on every payload change).
    MarkDirty = 4,
    /// The key's dirty data reached the backing store (flush).
    MarkClean = 5,
    /// Clean-shutdown marker: the session ended in an orderly fashion
    /// and the journal reflects every acknowledged write. Recovery
    /// trusts recovered *clean* frames only when the journal ends with
    /// this marker; after a crash the backing store may have advanced
    /// past a failed best-effort mirror, so clean frames are dropped
    /// and re-fetched on next access (dirty frames — the only copy —
    /// are always kept).
    Shutdown = 6,
}

impl JournalKind {
    fn from_u32(v: u32) -> Option<Self> {
        Some(match v {
            1 => JournalKind::AllocClean,
            2 => JournalKind::AllocDirty,
            3 => JournalKind::Evict,
            4 => JournalKind::MarkDirty,
            5 => JournalKind::MarkClean,
            6 => JournalKind::Shutdown,
            _ => return None,
        })
    }
}

/// Extra segment slots beyond the cache capacity, so payload updates can
/// always land in a fresh slot before the old one is freed.
const SPARE_SLOTS: u32 = 8;

fn encode_file_header(magic: [u8; 8], param: u32) -> [u8; FILE_HEADER_LEN] {
    let mut buf = [0u8; FILE_HEADER_LEN];
    buf[0..8].copy_from_slice(&magic);
    buf[8..10].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
    // bytes 10..12 reserved (zero)
    buf[12..16].copy_from_slice(&param.to_le_bytes());
    let crc = crc64(&[&buf[0..16]]);
    buf[16..24].copy_from_slice(&crc.to_le_bytes());
    buf
}

/// Parses and verifies a file header; returns the `param` field.
fn decode_file_header(buf: &[u8; FILE_HEADER_LEN], magic: [u8; 8]) -> Result<u32, DurableError> {
    if buf[0..8] != magic {
        let what = if magic == SEGMENT_MAGIC {
            "segment"
        } else {
            "journal"
        };
        return Err(DurableError::BadMagic { what });
    }
    let version = u16::from_le_bytes([buf[8], buf[9]]);
    if version != FORMAT_VERSION {
        return Err(DurableError::UnsupportedVersion {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    let crc = u64::from_le_bytes(buf[16..24].try_into().unwrap());
    if crc != crc64(&[&buf[0..16]]) {
        return Err(DurableError::Corrupt {
            what: "file header",
            detail: "header crc mismatch".into(),
        });
    }
    Ok(u32::from_le_bytes(buf[12..16].try_into().unwrap()))
}

fn encode_frame_record(key: u64, seq: u64, flags: u32, payload: &Block) -> Vec<u8> {
    let mut buf = vec![0u8; FRAME_RECORD_LEN];
    buf[0..8].copy_from_slice(&key.to_le_bytes());
    buf[8..16].copy_from_slice(&seq.to_le_bytes());
    buf[16..20].copy_from_slice(&flags.to_le_bytes());
    // bytes 20..24 reserved (zero)
    buf[32..].copy_from_slice(payload);
    let crc = crc64(&[&buf[0..24], payload]);
    buf[24..32].copy_from_slice(&crc.to_le_bytes());
    buf
}

/// A CRC-valid frame decoded from a segment slot.
struct FrameRecord {
    key: u64,
    seq: u64,
    payload: Box<Block>,
}

/// `Ok(Some)` = valid frame, `Ok(None)` = empty (all-zero) slot,
/// `Err(())` = torn or rotted bytes.
#[allow(clippy::result_unit_err)]
fn decode_frame_record(buf: &[u8]) -> Result<Option<FrameRecord>, ()> {
    debug_assert_eq!(buf.len(), FRAME_RECORD_LEN);
    if buf.iter().all(|&b| b == 0) {
        return Ok(None);
    }
    let crc = u64::from_le_bytes(buf[24..32].try_into().unwrap());
    if crc != crc64(&[&buf[0..24], &buf[32..]]) {
        return Err(());
    }
    let flags = u32::from_le_bytes(buf[16..20].try_into().unwrap());
    if flags & FLAG_OCCUPIED == 0 {
        return Err(());
    }
    let mut payload = Box::new([0u8; BLOCK_SIZE]);
    payload.copy_from_slice(&buf[32..]);
    Ok(Some(FrameRecord {
        key: u64::from_le_bytes(buf[0..8].try_into().unwrap()),
        seq: u64::from_le_bytes(buf[8..16].try_into().unwrap()),
        payload,
    }))
}

fn encode_journal_record(seq: u64, kind: JournalKind, slot: u32, key: u64) -> [u8; 32] {
    let mut buf = [0u8; JOURNAL_RECORD_LEN];
    buf[0..8].copy_from_slice(&seq.to_le_bytes());
    buf[8..12].copy_from_slice(&(kind as u32).to_le_bytes());
    buf[12..16].copy_from_slice(&slot.to_le_bytes());
    buf[16..24].copy_from_slice(&key.to_le_bytes());
    let crc = crc64(&[&buf[0..24]]);
    buf[24..32].copy_from_slice(&crc.to_le_bytes());
    buf
}

struct JournalRecord {
    seq: u64,
    kind: JournalKind,
    slot: u32,
    key: u64,
}

fn decode_journal_record(buf: &[u8]) -> Option<JournalRecord> {
    debug_assert_eq!(buf.len(), JOURNAL_RECORD_LEN);
    let crc = u64::from_le_bytes(buf[24..32].try_into().unwrap());
    if crc != crc64(&[&buf[0..24]]) {
        return None;
    }
    let kind = JournalKind::from_u32(u32::from_le_bytes(buf[8..12].try_into().unwrap()))?;
    Some(JournalRecord {
        seq: u64::from_le_bytes(buf[0..8].try_into().unwrap()),
        kind,
        slot: u32::from_le_bytes(buf[12..16].try_into().unwrap()),
        key: u64::from_le_bytes(buf[16..24].try_into().unwrap()),
    })
}

// ---------------------------------------------------------------------------
// Recovery results
// ---------------------------------------------------------------------------

/// One frame restored by recovery.
pub struct RecoveredFrame {
    /// The block key.
    pub key: u64,
    /// The verified 512-byte payload.
    pub data: Box<Block>,
    /// Whether the frame was dirty (the cache holds the only copy).
    pub dirty: bool,
}

/// What recovery found on the media.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Frames restored warm (CRC-verified, journal-vouched).
    pub recovered: u64,
    /// Journal-resident keys whose slot failed verification; they will
    /// be re-fetched from the backing store on next access.
    pub quarantined: u64,
    /// Quarantined keys whose journaled state was dirty — the only copy
    /// of that data is gone.
    pub lost_dirty: u64,
    /// Segment slots holding torn or rotted bytes.
    pub torn_slots: u64,
    /// Valid journal records replayed.
    pub journal_records: u64,
    /// Whether the journal had a torn (truncated) tail.
    pub journal_truncated: bool,
    /// Whether the previous session ended with a clean-shutdown marker.
    pub clean_shutdown: bool,
    /// Clean frames dropped because the shutdown was unclean (the
    /// backing store may have advanced past a failed best-effort
    /// mirror); they are re-fetched from backing on next access.
    pub dropped_clean: u64,
    /// The journal generation now active (after compaction).
    pub generation: u32,
}

/// The outcome of recovery: the store, the surviving frames and the
/// report for observability.
pub struct Recovery {
    /// The opened store, ready for service.
    pub store: DurableStore,
    /// Frames restored from media, in ascending sequence order (oldest
    /// first, so LRU warm-insertion leaves the newest most recent).
    pub frames: Vec<RecoveredFrame>,
    /// Counters describing what was found.
    pub report: RecoveryReport,
}

impl fmt::Debug for Recovery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Recovery")
            .field("frames", &self.frames.len())
            .field("report", &self.report)
            .finish_non_exhaustive()
    }
}

/// Result of one scrub pass over a range of slots.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScrubPass {
    /// Slots examined (occupied or not).
    pub scanned: u64,
    /// Occupied slots whose checksum verified.
    pub verified: u64,
    /// Keys whose slot failed verification and was quarantined.
    pub quarantined: Vec<u64>,
    /// The slot index where the next pass should start.
    pub next_slot: u32,
}

// ---------------------------------------------------------------------------
// DurableStore
// ---------------------------------------------------------------------------

/// The set of media a [`DurableStore`] lives on.
pub struct DurableMediaSet {
    /// The frame segment device.
    pub frames: Box<dyn Media>,
    /// Journal file A.
    pub journal_a: Box<dyn Media>,
    /// Journal file B.
    pub journal_b: Box<dyn Media>,
}

impl DurableMediaSet {
    /// A fully in-memory media set (tests).
    pub fn in_memory() -> Self {
        DurableMediaSet {
            frames: Box::new(MemMedia::new()),
            journal_a: Box::new(MemMedia::new()),
            journal_b: Box::new(MemMedia::new()),
        }
    }

    /// File-backed media under `dir` (`frames.seg`, `journal.a`,
    /// `journal.b`), creating the directory if needed.
    ///
    /// # Errors
    ///
    /// Propagates directory/file creation failures.
    pub fn open_dir(dir: impl AsRef<Path>) -> io::Result<Self> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        Ok(DurableMediaSet {
            frames: Box::new(FileMedia::open(dir.join("frames.seg"))?),
            journal_a: Box::new(FileMedia::open(dir.join("journal.a"))?),
            journal_b: Box::new(FileMedia::open(dir.join("journal.b"))?),
        })
    }
}

/// Which journal file is taking appends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ActiveJournal {
    A,
    B,
}

/// A crash-consistent frame store: checksummed slot segment plus a
/// sequenced metadata journal. See the [module docs](self) for the
/// format and recovery semantics.
///
/// The store tracks *placement* (key → slot) and writes through to
/// media; residency policy and payload caching stay in
/// [`crate::DataCache`].
pub struct DurableStore {
    frames: Box<dyn Media>,
    journal_a: Box<dyn Media>,
    journal_b: Box<dyn Media>,
    active: ActiveJournal,
    generation: u32,
    /// Append offset in the active journal.
    journal_end: u64,
    slot_count: u32,
    /// key → occupied slot.
    slot_of: U64Map<u32>,
    /// slot → key (u64::MAX = free). Drives scrub and slot accounting.
    slot_key: Vec<u64>,
    free: Vec<u32>,
    next_seq: u64,
    /// Whether the journal currently ends with a clean-shutdown marker.
    shutdown_marked: bool,
}

impl std::fmt::Debug for DurableStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableStore")
            .field("slots", &self.slot_count)
            .field("occupied", &self.slot_of.len())
            .field("generation", &self.generation)
            .field("next_seq", &self.next_seq)
            .finish()
    }
}

impl DurableStore {
    /// Opens the store: formats fresh media, or recovers existing state
    /// (verifying checksums, replaying the journal, quarantining torn
    /// frames and compacting the journal).
    ///
    /// `capacity_blocks` is the cache capacity the store must be able to
    /// hold; fresh media is formatted with a few spare slots beyond it.
    ///
    /// # Errors
    ///
    /// [`DurableError::Io`] for media failures; [`DurableError::BadMagic`],
    /// [`DurableError::UnsupportedVersion`] or [`DurableError::Corrupt`]
    /// when non-empty media is not a readable store (unrecoverable — the
    /// caller decides whether to run memory-only); and
    /// [`DurableError::Geometry`] when existing media is too small for
    /// `capacity_blocks`.
    pub fn open(media: DurableMediaSet, capacity_blocks: usize) -> Result<Recovery, DurableError> {
        let DurableMediaSet {
            frames,
            journal_a,
            journal_b,
        } = media;
        let needed = capacity_blocks as u32 + SPARE_SLOTS;
        if frames.len()? == 0 {
            Self::format(frames, journal_a, journal_b, needed)
        } else {
            let recovery = Self::recover(frames, journal_a, journal_b)?;
            if recovery.store.slot_count < needed {
                return Err(DurableError::Geometry(format!(
                    "existing segment has {} slots, capacity {} needs {}",
                    recovery.store.slot_count, capacity_blocks, needed
                )));
            }
            Ok(recovery)
        }
    }

    /// Formats fresh media: segment header, and journal A at generation 1.
    fn format(
        mut frames: Box<dyn Media>,
        mut journal_a: Box<dyn Media>,
        mut journal_b: Box<dyn Media>,
        slot_count: u32,
    ) -> Result<Recovery, DurableError> {
        frames.truncate(0)?;
        frames.write_at(0, &encode_file_header(SEGMENT_MAGIC, slot_count))?;
        frames.sync()?;
        journal_b.truncate(0)?;
        journal_b.sync()?;
        journal_a.truncate(0)?;
        journal_a.write_at(0, &encode_file_header(JOURNAL_MAGIC, 1))?;
        journal_a.sync()?;
        let store = DurableStore {
            frames,
            journal_a,
            journal_b,
            active: ActiveJournal::A,
            generation: 1,
            journal_end: FILE_HEADER_LEN as u64,
            slot_count,
            slot_of: U64Map::with_capacity(slot_count as usize),
            slot_key: vec![u64::MAX; slot_count as usize],
            free: (0..slot_count).rev().collect(),
            next_seq: 1,
            shutdown_marked: false,
        };
        Ok(Recovery {
            store,
            frames: Vec::new(),
            report: RecoveryReport {
                generation: 1,
                clean_shutdown: true,
                ..RecoveryReport::default()
            },
        })
    }

    /// Recovers existing media per the module-level state machine.
    fn recover(
        frames: Box<dyn Media>,
        journal_a: Box<dyn Media>,
        journal_b: Box<dyn Media>,
    ) -> Result<Recovery, DurableError> {
        // 1. Headers.
        let mut header = [0u8; FILE_HEADER_LEN];
        frames.read_at(0, &mut header)?;
        let slot_count = decode_file_header(&header, SEGMENT_MAGIC)?;
        let gen_of = |media: &dyn Media| -> Option<u32> {
            if media.len().ok()? < FILE_HEADER_LEN as u64 {
                return None;
            }
            let mut header = [0u8; FILE_HEADER_LEN];
            media.read_at(0, &mut header).ok()?;
            decode_file_header(&header, JOURNAL_MAGIC).ok()
        };
        let gen_a = gen_of(journal_a.as_ref());
        let gen_b = gen_of(journal_b.as_ref());
        let (active, generation) = match (gen_a, gen_b) {
            (Some(a), Some(b)) if b > a => (ActiveJournal::B, b),
            (Some(a), _) => (ActiveJournal::A, a),
            (None, Some(b)) => (ActiveJournal::B, b),
            (None, None) => {
                return Err(DurableError::Corrupt {
                    what: "journal",
                    detail: "no journal file has a valid header".into(),
                })
            }
        };

        // 2. Segment scan.
        let mut slots: Vec<Option<FrameRecord>> = Vec::with_capacity(slot_count as usize);
        let mut torn = vec![false; slot_count as usize];
        let mut torn_slots = 0u64;
        let mut max_seq = 0u64;
        let mut buf = vec![0u8; FRAME_RECORD_LEN];
        for slot in 0..slot_count {
            frames.read_at(Self::slot_offset(slot), &mut buf)?;
            match decode_frame_record(&buf) {
                Ok(Some(rec)) => {
                    max_seq = max_seq.max(rec.seq);
                    slots.push(Some(rec));
                }
                Ok(None) => slots.push(None),
                Err(()) => {
                    torn[slot as usize] = true;
                    torn_slots += 1;
                    slots.push(None);
                }
            }
        }

        // 3. Journal replay (valid prefix only).
        let journal = match active {
            ActiveJournal::A => journal_a.as_ref(),
            ActiveJournal::B => journal_b.as_ref(),
        };
        let journal_len = journal.len()?;
        let mut offset = FILE_HEADER_LEN as u64;
        let mut rec_buf = [0u8; JOURNAL_RECORD_LEN];
        #[derive(Clone, Copy, Default)]
        enum KeyState {
            Resident {
                slot: u32,
                dirty: bool,
            },
            #[default]
            Gone,
        }
        let mut state: U64Map<KeyState> = U64Map::new();
        // Track journal order per key (insertion order of final states
        // is reconstructed below by seq).
        let mut journal_records = 0u64;
        let mut clean_shutdown = false;
        let journal_truncated;
        loop {
            if offset + JOURNAL_RECORD_LEN as u64 > journal_len {
                journal_truncated = offset < journal_len;
                break;
            }
            journal.read_at(offset, &mut rec_buf)?;
            let Some(rec) = decode_journal_record(&rec_buf) else {
                journal_truncated = true;
                break;
            };
            max_seq = max_seq.max(rec.seq);
            // Clean only when the marker is the *last* valid record.
            clean_shutdown = rec.kind == JournalKind::Shutdown;
            match rec.kind {
                JournalKind::AllocClean => {
                    state.insert(
                        rec.key,
                        KeyState::Resident {
                            slot: rec.slot,
                            dirty: false,
                        },
                    );
                }
                JournalKind::AllocDirty => {
                    state.insert(
                        rec.key,
                        KeyState::Resident {
                            slot: rec.slot,
                            dirty: true,
                        },
                    );
                }
                JournalKind::Evict => {
                    state.insert(rec.key, KeyState::Gone);
                }
                JournalKind::MarkDirty | JournalKind::MarkClean => {
                    if let Some(KeyState::Resident { dirty, .. }) = state.get_mut(rec.key) {
                        *dirty = rec.kind == JournalKind::MarkDirty;
                    }
                }
                JournalKind::Shutdown => {}
            }
            journal_records += 1;
            offset += JOURNAL_RECORD_LEN as u64;
        }
        // A torn tail means appends were attempted after the last valid
        // record, so any marker in the prefix is not the session's end.
        if journal_truncated {
            clean_shutdown = false;
        }

        // 4. Merge: journal-resident keys recover from their verified
        // slot or are quarantined.
        let mut recovered: Vec<RecoveredFrame> = Vec::new();
        let mut quarantined = 0u64;
        let mut lost_dirty = 0u64;
        let mut dropped_clean = 0u64;
        let mut slot_of = U64Map::with_capacity(slot_count as usize);
        let mut slot_key = vec![u64::MAX; slot_count as usize];
        let mut order: Vec<(u64, u64, u32, bool)> = Vec::new(); // (seq, key, slot, dirty)
        for (key, st) in state.iter() {
            let KeyState::Resident { slot, dirty } = *st else {
                continue;
            };
            // After an unclean shutdown a clean frame may be staler than
            // the backing store (a best-effort mirror failure is
            // swallowed while backing writes keep being acknowledged),
            // so only dirty frames — the sole copy of their data — are
            // trusted. Clean frames re-fetch from backing on access.
            if !clean_shutdown && !dirty {
                dropped_clean += 1;
                continue;
            }
            let valid = (slot < slot_count)
                .then(|| slots[slot as usize].as_ref())
                .flatten()
                .filter(|rec| rec.key == key);
            match valid {
                Some(rec) => order.push((rec.seq, key, slot, dirty)),
                None => {
                    quarantined += 1;
                    if dirty {
                        lost_dirty += 1;
                    }
                }
            }
        }
        // Oldest first: LRU warm-insertion leaves the newest most recent.
        order.sort_unstable();
        for (_, key, slot, dirty) in &order {
            // A well-formed journal never maps two keys to one slot; on
            // forged media, quarantine the loser instead of panicking.
            let Some(rec) = slots[*slot as usize].take() else {
                quarantined += 1;
                if *dirty {
                    lost_dirty += 1;
                }
                continue;
            };
            slot_of.insert(*key, *slot);
            slot_key[*slot as usize] = *key;
            recovered.push(RecoveredFrame {
                key: *key,
                data: rec.payload,
                dirty: *dirty,
            });
        }
        let free: Vec<u32> = (0..slot_count)
            .rev()
            .filter(|&s| slot_key[s as usize] == u64::MAX)
            .collect();

        let mut store = DurableStore {
            frames,
            journal_a,
            journal_b,
            active,
            generation,
            journal_end: offset,
            slot_count,
            slot_of,
            slot_key,
            free,
            next_seq: max_seq + 1,
            shutdown_marked: false,
        };
        // Drop the torn journal tail so a future append at this offset
        // can never be followed by stale-but-valid phantom records.
        store.active_journal().truncate(offset)?;
        store.active_journal().sync()?;

        // 5. Crash-safe compaction into the inactive journal.
        store.compact(&recovered)?;

        let report = RecoveryReport {
            recovered: recovered.len() as u64,
            quarantined,
            lost_dirty,
            torn_slots,
            journal_records,
            journal_truncated,
            clean_shutdown,
            dropped_clean,
            generation: store.generation,
        };
        Ok(Recovery {
            store,
            frames: recovered,
            report,
        })
    }

    fn slot_offset(slot: u32) -> u64 {
        FILE_HEADER_LEN as u64 + slot as u64 * FRAME_RECORD_LEN as u64
    }

    fn active_journal(&mut self) -> &mut Box<dyn Media> {
        match self.active {
            ActiveJournal::A => &mut self.journal_a,
            ActiveJournal::B => &mut self.journal_b,
        }
    }

    /// Rewrites the live state into the inactive journal and publishes
    /// it by writing its higher-generation header last. A crash at any
    /// step leaves the previous journal authoritative.
    fn compact(&mut self, live: &[RecoveredFrame]) -> Result<(), DurableError> {
        let new_gen = self.generation + 1;
        let (target, new_active) = match self.active {
            ActiveJournal::A => (&mut self.journal_b, ActiveJournal::B),
            ActiveJournal::B => (&mut self.journal_a, ActiveJournal::A),
        };
        // Records first (the header slot stays invalid until they are
        // durable), then truncate stale bytes, sync, and publish.
        let mut offset = FILE_HEADER_LEN as u64;
        for frame in live {
            let slot = *self.slot_of.get(frame.key).expect("live frame has a slot");
            let kind = if frame.dirty {
                JournalKind::AllocDirty
            } else {
                JournalKind::AllocClean
            };
            let rec = encode_journal_record(self.next_seq, kind, slot, frame.key);
            self.next_seq += 1;
            target.write_at(offset, &rec)?;
            offset += JOURNAL_RECORD_LEN as u64;
        }
        target.truncate(offset)?;
        target.sync()?;
        target.write_at(0, &encode_file_header(JOURNAL_MAGIC, new_gen))?;
        target.sync()?;
        self.active = new_active;
        self.generation = new_gen;
        self.journal_end = offset;
        Ok(())
    }

    /// Appends one journal record and makes it durable.
    fn journal_append(&mut self, kind: JournalKind, slot: u32, key: u64) -> io::Result<()> {
        self.shutdown_marked = false;
        let rec = encode_journal_record(self.next_seq, kind, slot, key);
        self.next_seq += 1;
        let offset = self.journal_end;
        let journal = self.active_journal();
        journal.write_at(offset, &rec)?;
        journal.sync()?;
        self.journal_end = offset + JOURNAL_RECORD_LEN as u64;
        sievestore_types::obs_count!(DurableJournalRecords, 1);
        Ok(())
    }

    /// Persists `data` for `key`: frame bytes to a fresh slot (synced),
    /// then the journal record (synced). Only after both are durable —
    /// and therefore only after the data would survive a crash — does
    /// this return, so a write-back ack ordered after `put` upholds the
    /// durability invariant. An existing slot for `key` is freed after
    /// the new one is journaled (never overwritten in place).
    ///
    /// # Errors
    ///
    /// Propagates media failures; the previous slot (if any) stays
    /// authoritative on error.
    pub fn put(&mut self, key: u64, data: &Block, dirty: bool) -> io::Result<()> {
        let old_slot = self.slot_of.get(key).copied();
        let slot = self.free.pop().ok_or_else(|| {
            io::Error::other(format!(
                "durable segment out of slots ({} occupied)",
                self.slot_of.len()
            ))
        })?;
        let flags = FLAG_OCCUPIED | if dirty { FLAG_DIRTY } else { 0 };
        let rec = encode_frame_record(key, self.next_seq, flags, data);
        if let Err(e) = self
            .frames
            .write_at(Self::slot_offset(slot), &rec)
            .and_then(|()| self.frames.sync())
        {
            self.free.push(slot);
            return Err(e);
        }
        let kind = if dirty {
            JournalKind::AllocDirty
        } else {
            JournalKind::AllocClean
        };
        if let Err(e) = self.journal_append(kind, slot, key) {
            self.free.push(slot);
            return Err(e);
        }
        self.slot_of.insert(key, slot);
        self.slot_key[slot as usize] = key;
        if let Some(old) = old_slot {
            self.slot_key[old as usize] = u64::MAX;
            self.free.push(old);
        }
        Ok(())
    }

    /// Appends a clean-shutdown marker (idempotent) so the next open
    /// can trust recovered clean frames. Without the marker, recovery
    /// keeps only dirty frames — after a crash the backing store may
    /// have advanced past a failed best-effort mirror, so clean frames
    /// cannot be trusted.
    ///
    /// # Errors
    ///
    /// Propagates media failures; the next recovery then treats the
    /// shutdown as unclean, which is safe (merely colder).
    pub fn shutdown(&mut self) -> io::Result<()> {
        if self.shutdown_marked {
            return Ok(());
        }
        self.journal_append(JournalKind::Shutdown, 0, 0)?;
        self.shutdown_marked = true;
        Ok(())
    }

    /// Journals that `key`'s dirty data reached the backing store.
    ///
    /// # Errors
    ///
    /// Propagates media failures.
    pub fn mark_clean(&mut self, key: u64) -> io::Result<()> {
        if let Some(slot) = self.slot_of.get(key).copied() {
            self.journal_append(JournalKind::MarkClean, slot, key)?;
        }
        Ok(())
    }

    /// Journals that `key` left residency and frees its slot.
    ///
    /// # Errors
    ///
    /// Propagates media failures; the slot stays occupied on error.
    pub fn evict(&mut self, key: u64) -> io::Result<()> {
        if let Some(slot) = self.slot_of.get(key).copied() {
            self.journal_append(JournalKind::Evict, slot, key)?;
            self.slot_of.remove(key);
            self.slot_key[slot as usize] = u64::MAX;
            self.free.push(slot);
        }
        Ok(())
    }

    /// Whether `key` currently owns a slot.
    pub fn contains(&self, key: u64) -> bool {
        self.slot_of.contains_key(key)
    }

    /// Occupied slots.
    pub fn len(&self) -> usize {
        self.slot_of.len()
    }

    /// Whether no slot is occupied.
    pub fn is_empty(&self) -> bool {
        self.slot_of.is_empty()
    }

    /// Total slots in the segment.
    pub fn slots(&self) -> u32 {
        self.slot_count
    }

    /// Copies the raw bytes of the three media devices `(frames,
    /// journal_a, journal_b)` — a diagnostic and test aid for simulating
    /// a restart over in-memory media.
    ///
    /// # Errors
    ///
    /// Propagates media failures.
    pub fn clone_media_bytes(&self) -> io::Result<(Vec<u8>, Vec<u8>, Vec<u8>)> {
        let snap = |media: &dyn Media| -> io::Result<Vec<u8>> {
            let mut bytes = vec![0u8; media.len()? as usize];
            media.read_at(0, &mut bytes)?;
            Ok(bytes)
        };
        Ok((
            snap(self.frames.as_ref())?,
            snap(self.journal_a.as_ref())?,
            snap(self.journal_b.as_ref())?,
        ))
    }

    /// Verifies up to `max_slots` slots starting at `start_slot`
    /// (wrapping), quarantining any occupied slot whose bytes no longer
    /// match their checksum — bit rot caught before it is ever served.
    /// Quarantined keys are evicted from the store (journaled), and the
    /// caller re-installs from its in-memory frame or re-fetches from
    /// backing.
    ///
    /// # Errors
    ///
    /// Propagates media failures.
    pub fn scrub(&mut self, start_slot: u32, max_slots: u32) -> io::Result<ScrubPass> {
        let mut pass = ScrubPass::default();
        if self.slot_count == 0 {
            return Ok(pass);
        }
        let mut buf = vec![0u8; FRAME_RECORD_LEN];
        let mut slot = start_slot % self.slot_count;
        for _ in 0..max_slots.min(self.slot_count) {
            pass.scanned += 1;
            let key = self.slot_key[slot as usize];
            if key != u64::MAX {
                self.frames.read_at(Self::slot_offset(slot), &mut buf)?;
                let ok = matches!(&decode_frame_record(&buf), Ok(Some(rec)) if rec.key == key);
                if ok {
                    pass.verified += 1;
                } else {
                    self.evict(key)?;
                    pass.quarantined.push(key);
                }
            }
            slot = (slot + 1) % self.slot_count;
        }
        pass.next_slot = slot;
        Ok(pass)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(fill: u8) -> Block {
        [fill; BLOCK_SIZE]
    }

    fn open_mem(capacity: usize) -> Recovery {
        DurableStore::open(DurableMediaSet::in_memory(), capacity).expect("open fresh store")
    }

    /// Shuts a store down cleanly and reopens it from the same bytes.
    fn reopen(mut store: DurableStore, capacity: usize) -> Recovery {
        store.shutdown().expect("write shutdown marker");
        reopen_unclean(store, capacity)
    }

    /// Reopens from the same bytes *without* a clean-shutdown marker,
    /// simulating a crash.
    fn reopen_unclean(store: DurableStore, capacity: usize) -> Recovery {
        let take = |media: Box<dyn Media>| -> Vec<u8> {
            let len = media.len().unwrap() as usize;
            let mut bytes = vec![0u8; len];
            media.read_at(0, &mut bytes).unwrap();
            bytes
        };
        let media = DurableMediaSet {
            frames: Box::new(MemMedia::from_bytes(take(store.frames))),
            journal_a: Box::new(MemMedia::from_bytes(take(store.journal_a))),
            journal_b: Box::new(MemMedia::from_bytes(take(store.journal_b))),
        };
        DurableStore::open(media, capacity).expect("reopen store")
    }

    #[test]
    fn crc64_matches_known_vector() {
        // CRC-64/XZ check value for "123456789".
        assert_eq!(crc64(&[b"123456789"]), 0x995D_C9BB_DF19_39FA);
        // Split input gives the same digest.
        assert_eq!(crc64(&[b"1234", b"56789"]), 0x995D_C9BB_DF19_39FA);
    }

    #[test]
    fn fresh_store_formats_and_reopens_empty() {
        let r = open_mem(4);
        assert_eq!(r.report.recovered, 0);
        assert_eq!(r.store.slots(), 4 + SPARE_SLOTS);
        let r = reopen(r.store, 4);
        assert!(r.frames.is_empty());
        assert_eq!(r.report.torn_slots, 0);
    }

    #[test]
    fn put_evict_round_trip_survives_reopen() {
        let mut r = open_mem(8);
        r.store.put(1, &block(0x11), false).unwrap();
        r.store.put(2, &block(0x22), true).unwrap();
        r.store.put(3, &block(0x33), false).unwrap();
        r.store.evict(3).unwrap();
        assert_eq!(r.store.len(), 2);

        let r = reopen(r.store, 8);
        assert_eq!(r.report.recovered, 2);
        assert_eq!(r.report.quarantined, 0);
        let by_key: Vec<(u64, bool)> = r.frames.iter().map(|f| (f.key, f.dirty)).collect();
        assert_eq!(by_key, vec![(1, false), (2, true)]);
        assert_eq!(*r.frames[0].data, block(0x11));
        assert_eq!(*r.frames[1].data, block(0x22));
        assert!(!r.store.contains(3));
    }

    #[test]
    fn mark_clean_survives_reopen() {
        let mut r = open_mem(8);
        r.store.put(7, &block(0x77), true).unwrap();
        r.store.mark_clean(7).unwrap();
        let r = reopen(r.store, 8);
        assert_eq!(r.frames.len(), 1);
        assert!(!r.frames[0].dirty, "flush record survived");
    }

    #[test]
    fn payload_update_uses_a_fresh_slot() {
        let mut r = open_mem(4);
        r.store.put(9, &block(0xA1), true).unwrap();
        let first = *r.store.slot_of.get(9).unwrap();
        r.store.put(9, &block(0xA2), true).unwrap();
        let second = *r.store.slot_of.get(9).unwrap();
        assert_ne!(
            first, second,
            "in-place rewrite would lose acked data on a torn write"
        );
        let r = reopen(r.store, 4);
        assert_eq!(*r.frames[0].data, block(0xA2));
    }

    #[test]
    fn recovery_quarantines_rotted_slots() {
        let mut r = open_mem(8);
        r.store.put(1, &block(0x11), false).unwrap();
        r.store.put(2, &block(0x22), true).unwrap();
        let slot2 = *r.store.slot_of.get(2).unwrap();
        // Flip one payload bit of key 2's slot behind the store's back.
        let offset = DurableStore::slot_offset(slot2) + FRAME_HEADER_LEN as u64 + 100;
        let mut byte = [0u8; 1];
        r.store.frames.read_at(offset, &mut byte).unwrap();
        byte[0] ^= 0x40;
        r.store.frames.write_at(offset, &byte).unwrap();

        let r = reopen(r.store, 8);
        assert_eq!(r.report.recovered, 1);
        assert_eq!(r.report.quarantined, 1);
        assert_eq!(r.report.lost_dirty, 1, "key 2 was dirty");
        assert_eq!(r.frames[0].key, 1);
        assert!(!r.store.contains(2));
    }

    #[test]
    fn scrub_quarantines_and_reports() {
        let mut r = open_mem(8);
        r.store.put(1, &block(0x11), false).unwrap();
        r.store.put(2, &block(0x22), false).unwrap();
        let slot1 = *r.store.slot_of.get(1).unwrap();
        let offset = DurableStore::slot_offset(slot1) + FRAME_HEADER_LEN as u64;
        r.store.frames.write_at(offset, &[0xFF]).unwrap();

        let pass = r.store.scrub(0, r.store.slots()).unwrap();
        assert_eq!(pass.quarantined, vec![1]);
        assert_eq!(pass.verified, 1);
        assert!(!r.store.contains(1));
        assert!(r.store.contains(2));
        // A clean pass afterwards finds nothing.
        let pass = r.store.scrub(pass.next_slot, r.store.slots()).unwrap();
        assert!(pass.quarantined.is_empty());
    }

    #[test]
    fn unclean_reopen_drops_clean_frames_keeps_dirty() {
        let mut r = open_mem(8);
        r.store.put(1, &block(0x11), false).unwrap();
        r.store.put(2, &block(0x22), true).unwrap();

        // No shutdown marker: the backing store may have advanced past
        // a failed best-effort mirror, so the clean frame is dropped.
        let r = reopen_unclean(r.store, 8);
        assert!(!r.report.clean_shutdown);
        assert_eq!(r.report.recovered, 1);
        assert_eq!(r.report.dropped_clean, 1);
        assert_eq!(r.report.quarantined, 0, "dropped, not quarantined");
        assert_eq!(r.frames[0].key, 2);
        assert!(r.frames[0].dirty);
        assert!(!r.store.contains(1), "dropped frame's slot is free again");
    }

    #[test]
    fn shutdown_marker_is_idempotent_and_invalidated_by_writes() {
        let mut r = open_mem(8);
        r.store.put(1, &block(0x11), false).unwrap();
        r.store.shutdown().unwrap();
        r.store.shutdown().unwrap();
        let end = r.store.journal_end;
        // A second shutdown with no intervening writes appends nothing.
        assert_eq!(
            end,
            (FILE_HEADER_LEN + 2 * JOURNAL_RECORD_LEN) as u64,
            "alloc + one marker only"
        );
        // A write after the marker makes the journal unclean again.
        r.store.put(2, &block(0x22), false).unwrap();
        let r = reopen_unclean(r.store, 8);
        assert!(!r.report.clean_shutdown);
        assert_eq!(r.report.dropped_clean, 2);
    }

    #[test]
    fn compaction_bounds_journal_growth_across_reopens() {
        let mut r = open_mem(8);
        for i in 0..100u64 {
            r.store.put(i % 4, &block(i as u8), false).unwrap();
        }
        let r = reopen(r.store, 8);
        // After compaction the journal holds one record per live frame.
        assert_eq!(
            r.store.journal_end,
            (FILE_HEADER_LEN + 4 * JOURNAL_RECORD_LEN) as u64
        );
        let r2 = reopen(r.store, 8);
        assert_eq!(r2.report.recovered, 4);
        assert!(r2.report.generation > r.report.generation);
    }

    #[test]
    fn geometry_mismatch_is_rejected() {
        let r = open_mem(4);
        let take = |media: Box<dyn Media>| -> Vec<u8> {
            let len = media.len().unwrap() as usize;
            let mut bytes = vec![0u8; len];
            media.read_at(0, &mut bytes).unwrap();
            bytes
        };
        let media = DurableMediaSet {
            frames: Box::new(MemMedia::from_bytes(take(r.store.frames))),
            journal_a: Box::new(MemMedia::from_bytes(take(r.store.journal_a))),
            journal_b: Box::new(MemMedia::from_bytes(take(r.store.journal_b))),
        };
        let err = DurableStore::open(media, 64).unwrap_err();
        assert!(matches!(err, DurableError::Geometry(_)), "{err}");
    }

    #[test]
    fn garbage_media_is_unrecoverable_not_a_panic() {
        let media = DurableMediaSet {
            frames: Box::new(MemMedia::from_bytes(vec![0xAB; 4096])),
            journal_a: Box::new(MemMedia::new()),
            journal_b: Box::new(MemMedia::new()),
        };
        let err = DurableStore::open(media, 4).unwrap_err();
        assert!(matches!(err, DurableError::BadMagic { .. }), "{err}");
    }

    #[test]
    fn file_media_round_trips() {
        let dir = std::env::temp_dir().join(format!("sievestore-durable-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut m = FileMedia::open(dir.join("media.bin")).unwrap();
        m.write_at(10, b"hello").unwrap();
        m.sync().unwrap();
        let mut buf = [0u8; 20];
        m.read_at(8, &mut buf).unwrap();
        assert_eq!(&buf[2..7], b"hello");
        assert_eq!(buf[0], 0, "zero-filled before the write");
        assert_eq!(buf[7..], [0u8; 13], "zero-filled past EOF");
        m.truncate(12).unwrap();
        assert_eq!(m.len().unwrap(), 12);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_backed_store_survives_process_style_reopen() {
        let dir = std::env::temp_dir().join(format!("sievestore-durable2-{}", std::process::id()));
        {
            let mut r = DurableStore::open(DurableMediaSet::open_dir(&dir).unwrap(), 8)
                .expect("fresh file store");
            r.store.put(5, &block(0x55), true).unwrap();
            r.store.put(6, &block(0x66), false).unwrap();
            r.store.shutdown().unwrap();
        }
        let r = DurableStore::open(DurableMediaSet::open_dir(&dir).unwrap(), 8)
            .expect("recover file store");
        assert_eq!(r.report.recovered, 2);
        let keys: Vec<u64> = r.frames.iter().map(|f| f.key).collect();
        assert_eq!(keys, vec![5, 6]);
        assert!(r.frames[0].dirty && !r.frames[1].dirty);
        std::fs::remove_dir_all(&dir).ok();
    }
}
